// Command-line dispatcher: loads a DPDP instance from a CSV file (see
// model/instance_io.h for the format), dispatches it with the requested
// policy, and prints the episode metrics — the entry point for running
// this library on external workloads.
//
// Usage:
//   solve_instance <instance.csv> [method] [train_episodes]
//     method: baseline1 | baseline2 | baseline3 | DQN | AC | DDQN |
//             ST-DDQN | DGN | DDGN | ST-DDGN      (default: baseline1)
//
// With no arguments, a demo instance is generated, exported next to the
// binary, and solved — so the example is runnable out of the box.

#include <cstdio>
#include <memory>
#include <string>

#include "core/dpdp.h"

namespace {

int Run(const dpdp::Instance& instance, const std::string& method,
        int episodes) {
  std::printf("instance '%s': %d orders, %d vehicles, %d nodes\n",
              instance.name.c_str(), instance.num_orders(),
              instance.num_vehicles(), instance.network->num_nodes());

  dpdp::EpisodeResult result;
  if (method == "baseline1" || method == "baseline2" ||
      method == "baseline3") {
    dpdp::MinIncrementalLengthDispatcher b1;
    dpdp::MinTotalLengthDispatcher b2;
    dpdp::MaxAcceptedOrdersDispatcher b3;
    dpdp::Dispatcher* d = method == "baseline1"
                              ? static_cast<dpdp::Dispatcher*>(&b1)
                              : method == "baseline2"
                                    ? static_cast<dpdp::Dispatcher*>(&b2)
                                    : static_cast<dpdp::Dispatcher*>(&b3);
    dpdp::Simulator sim(&instance);
    result = sim.RunEpisode(d);
  } else {
    // Learned policy: build an STD prediction from the instance's own
    // stream (self-prediction; plug a real history when you have one),
    // train, then evaluate greedily.
    const dpdp::nn::Matrix predicted = dpdp::BuildStdMatrix(
        *instance.network, instance.orders, instance.num_time_intervals,
        instance.horizon_minutes);
    std::printf("training %s for %d episodes...\n", method.c_str(),
                episodes);
    const dpdp::DrlOutcome out =
        dpdp::TrainEvalOnInstance(instance, predicted, method, /*seed=*/1,
                                  episodes);
    std::printf("(%.1fs training)\n", out.train_seconds);
    result = out.eval;
  }

  std::printf("\nmethod            : %s\n", method.c_str());
  std::printf("orders served     : %d / %d\n", result.num_served,
              result.num_orders);
  std::printf("vehicles used     : %.0f\n", result.nuv);
  std::printf("total travel (km) : %.1f\n", result.total_travel_length);
  std::printf("total cost        : %.1f\n", result.total_cost);
  return result.all_served() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string method = argc > 2 ? argv[2] : "baseline1";
  const int episodes = argc > 3 ? std::atoi(argv[3])
                                : dpdp::EnvInt("DPDP_EPISODES", 60);

  if (argc > 1) {
    const dpdp::Result<dpdp::Instance> loaded =
        dpdp::LoadInstanceCsvFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 2;
    }
    return Run(loaded.value(), method, episodes);
  }

  // Demo mode: generate, export, reload, solve.
  std::printf("no instance given — generating a demo workload\n");
  dpdp::DpdpDataset dataset(dpdp::StandardDatasetConfig(7, 80.0));
  const dpdp::Instance demo = dataset.SampleInstance("demo", 60, 15, 0, 4, 3);
  const std::string path = "demo_instance.csv";
  DPDP_CHECK_OK(dpdp::SaveInstanceCsvFile(demo, path));
  std::printf("exported %s (re-run with: solve_instance %s ST-DDGN 60)\n\n",
              path.c_str(), path.c_str());
  return Run(demo, method, episodes);
}
