// Ape-X training-fabric demo and benchmark: N closed-loop actors generate
// experience through the batched serving path (DispatchService /
// ShardRouter) while one learner consumes minibatches from the sharded
// replay and hot-swaps new weights to the actors through the ModelServer
// snapshot channel.
//
// What it proves, end to end:
//   * deterministic replay-order mode is actor-count invariant — the
//     1-actor and 4-actor runs finish with bit-identical policy weights
//     and identical per-episode results (the same golden the test suite
//     asserts, re-checked here on the benchmark configuration);
//   * the actors really train through the fabric: nonzero learner steps,
//     at least one published snapshot per run, and every actor saw a
//     model sequence number >= 1 (i.e. decisions were scored on weights
//     the learner published mid-run, not just the seed snapshot);
//   * experience-generation throughput scales with the actor count
//     against the pre-fabric baseline (one simulator + one local agent
//     per seed, run sequentially).
//
// A note on the scaling measurement: decision evaluation is CPU-bound, so
// on a single core the fabric cannot out-compute a local agent. What it
// CAN do is amortize the one cost that is not CPU: the synchronous
// downstream commit per dispatch batch (ServeConfig::commit_us — "wait
// for the dispatch channel to ack before releasing replies"). The
// baseline pays that ack once per decision; the fabric pays it once per
// micro-batch, so four concurrent actors share each wait. Set
// DPDP_SERVE_COMMIT_US=0 to watch the work-conserving (flat) curve
// instead.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/apex_train_demo
//
// Knobs (all optional):
//   DPDP_TRAIN_ORDERS      orders per episode        (default 10)
//   DPDP_TRAIN_VEHICLES    vehicles                  (default 4)
//   DPDP_TRAIN_HIDDEN      policy hidden width       (default 32)
//   DPDP_TRAIN_EPISODES    episodes per run          (default 12)
//   DPDP_TRAIN_SYNC_EVERY  episodes per generation   (default 4)
//   DPDP_SERVE_COMMIT_US   per-batch commit latency  (default 4000)
//   DPDP_BENCH_JSON        result file               (default BENCH_8.json)
//   DPDP_METRICS_DIR       also dump the registry snapshot there

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dpdp.h"

namespace {

/// The pre-fabric baseline's dispatch channel: forwards every decision to
/// the wrapped dispatcher, then blocks on the downstream ack that the
/// serving fabric pays once per micro-batch.
class CommitWaitDispatcher : public dpdp::Dispatcher {
 public:
  CommitWaitDispatcher(dpdp::Dispatcher* inner, long commit_us)
      : inner_(inner), commit_us_(commit_us) {}

  const char* name() const override { return "commit_wait"; }
  int ChooseVehicle(const dpdp::DispatchContext& context) override {
    const int vehicle = inner_->ChooseVehicle(context);
    if (commit_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(commit_us_));
    }
    return vehicle;
  }
  void OnOrderAssigned(const dpdp::DispatchContext& context,
                       int vehicle) override {
    inner_->OnOrderAssigned(context, vehicle);
  }
  void OnEpisodeEnd(const dpdp::EpisodeResult& result) override {
    inner_->OnEpisodeEnd(result);
  }

 private:
  dpdp::Dispatcher* inner_;
  long commit_us_;
};

/// Aborts unless the two weight sets are bitwise identical.
void CheckSameWeights(const std::vector<dpdp::nn::Matrix>& a,
                      const std::vector<dpdp::nn::Matrix>& b) {
  DPDP_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    DPDP_CHECK(a[i].rows() == b[i].rows());
    DPDP_CHECK(a[i].cols() == b[i].cols());
    for (int r = 0; r < a[i].rows(); ++r) {
      for (int c = 0; c < a[i].cols(); ++c) {
        DPDP_CHECK(a[i](r, c) == b[i](r, c));
      }
    }
  }
}

void CheckSameEpisode(const dpdp::EpisodeResult& a,
                      const dpdp::EpisodeResult& b) {
  DPDP_CHECK(a.num_served == b.num_served);
  DPDP_CHECK(a.num_unserved == b.num_unserved);
  DPDP_CHECK(a.num_decisions == b.num_decisions);
  DPDP_CHECK(a.nuv == b.nuv);
  DPDP_CHECK(a.total_travel_length == b.total_travel_length);
  DPDP_CHECK(a.total_cost == b.total_cost);
}

struct BenchRow {
  std::string name;
  double ns_per_op = 0.0;  ///< Wall nanoseconds per recorded transition.
  double transitions_per_second = 0.0;
  long transitions = 0;
  double wall_seconds = 0.0;
};

BenchRow MakeRow(const std::string& name, long transitions,
                 double wall_seconds) {
  BenchRow row;
  row.name = name;
  row.transitions = transitions;
  row.wall_seconds = wall_seconds;
  if (transitions > 0 && wall_seconds > 0.0) {
    row.transitions_per_second = transitions / wall_seconds;
    row.ns_per_op = wall_seconds * 1e9 / static_cast<double>(transitions);
  }
  return row;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  DPDP_CHECK(out.good());
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"ns_per_op\": %g, "
                  "\"items_per_second\": %g, \"transitions\": %ld, "
                  "\"wall_seconds\": %g}",
                  r.name.c_str(), r.ns_per_op, r.transitions_per_second,
                  r.transitions, r.wall_seconds);
    out << line << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  DPDP_CHECK(out.good());
}

}  // namespace

int main() {
  const int orders = dpdp::EnvInt("DPDP_TRAIN_ORDERS", 10);
  const int vehicles = dpdp::EnvInt("DPDP_TRAIN_VEHICLES", 4);
  const int hidden = dpdp::EnvInt("DPDP_TRAIN_HIDDEN", 32);
  const int episodes = dpdp::EnvInt("DPDP_TRAIN_EPISODES", 12);
  const int sync_every = dpdp::EnvInt("DPDP_TRAIN_SYNC_EVERY", 4);
  const long commit_us = dpdp::EnvInt("DPDP_SERVE_COMMIT_US", 4000);

  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/3, /*mean_orders_per_day=*/90.0));
  const dpdp::Instance instance = dataset.SampleInstance(
      "apex-campus", orders, vehicles, /*day_lo=*/0, /*day_hi=*/2,
      /*seed=*/100);

  dpdp::AgentConfig agent_config = dpdp::MakeStDdqnConfig(/*seed=*/5);
  agent_config.hidden_dim = hidden;
  agent_config.epsilon_decay_episodes = episodes;
  agent_config.batch_size = 8;

  std::printf("apex_train_demo: %d orders, %d vehicles, hidden=%d, "
              "%d episodes, sync_every=%d, commit=%ldus\n",
              orders, vehicles, hidden, episodes, sync_every, commit_us);

  std::vector<BenchRow> rows;

  // --- Baseline: one simulator + one local agent per seed, sequential,
  // paying the downstream ack per decision.
  {
    dpdp::DqnFleetAgent agent(agent_config, "baseline");
    agent.set_training(true);
    CommitWaitDispatcher channel(&agent, commit_us);
    dpdp::Simulator sim(&instance);
    long transitions = 0;
    const dpdp::WallTimer timer;
    for (int e = 0; e < episodes; ++e) {
      transitions += sim.RunEpisode(&channel).num_decisions;
    }
    rows.push_back(
        MakeRow("BM_OneSimPerSeed", transitions, timer.ElapsedSeconds()));
    std::printf("  %-20s %8.1f transitions/s  (%ld transitions, %.2fs)\n",
                "one-sim-per-seed", rows.back().transitions_per_second,
                transitions, rows.back().wall_seconds);
  }

  // --- The fabric at 1 and 4 actors: identical configuration except the
  // actor count, so the deterministic-mode golden applies to the exact
  // runs being timed.
  std::vector<dpdp::train::ApexReport> reports;
  std::vector<std::vector<dpdp::nn::Matrix>> weights;
  for (const int actors : {1, 4}) {
    dpdp::train::ApexConfig config;
    config.num_actors = actors;
    config.episodes = episodes;
    config.sync_every = sync_every;
    config.deterministic = true;
    config.replay_shards = 4;
    config.shard_capacity = 4096;
    config.updates_per_generation = 8;
    config.serve.max_batch = 8;
    config.serve.max_wait_us = 50;
    config.serve.commit_us = commit_us;
    dpdp::train::ApexTrainer trainer(&instance, config, agent_config);
    reports.push_back(trainer.Run());
    weights.push_back(trainer.PolicyWeights());
    const dpdp::train::ApexReport& report = reports.back();
    rows.push_back(MakeRow("BM_ApexActors/" + std::to_string(actors),
                           report.transitions, report.wall_seconds));
    std::printf("  %-20s %8.1f transitions/s  (%ld transitions, %.2fs, "
                "%llu learner steps, %llu publishes, max seen seq %llu)\n",
                ("apex actors=" + std::to_string(actors)).c_str(),
                report.transitions_per_second, report.transitions,
                report.wall_seconds,
                static_cast<unsigned long long>(report.learner_updates),
                static_cast<unsigned long long>(report.publishes),
                static_cast<unsigned long long>(report.max_model_seq_seen));

    // The actors genuinely trained through the fabric.
    DPDP_CHECK(report.episodes_done == episodes);
    DPDP_CHECK(report.learner_updates > 0);
    DPDP_CHECK(report.publishes >= 1);
    DPDP_CHECK(report.max_model_seq_seen >= 1);
    DPDP_CHECK(report.sheds == 0);
  }

  // --- The golden: actor count must not change the learned weights or
  // any episode outcome.
  CheckSameWeights(weights[0], weights[1]);
  DPDP_CHECK(reports[0].episodes.size() == reports[1].episodes.size());
  for (size_t e = 0; e < reports[0].episodes.size(); ++e) {
    CheckSameEpisode(reports[0].episodes[e], reports[1].episodes[e]);
  }
  DPDP_CHECK(reports[0].transitions == reports[1].transitions);
  std::printf("  golden: 1-actor and 4-actor weights bitwise identical "
              "across %d episodes\n", episodes);

  const double speedup = rows[2].transitions_per_second /
                         rows[0].transitions_per_second;
  std::printf("  4-actor speedup over one-sim-per-seed: %.2fx\n", speedup);

  // The train.* registry rollup must reconcile exactly against the two
  // fabric runs (the baseline records no train.* metrics).
  auto& registry = dpdp::obs::MetricsRegistry::Global();
  DPDP_CHECK(registry.GetCounter("train.episodes")->Value() ==
             static_cast<uint64_t>(2 * episodes));
  DPDP_CHECK(registry.GetCounter("train.transitions")->Value() ==
             static_cast<uint64_t>(reports[0].transitions +
                                   reports[1].transitions));
  DPDP_CHECK(registry.GetCounter("train.learner_steps")->Value() ==
             reports[0].learner_updates + reports[1].learner_updates);
  DPDP_CHECK(registry.GetCounter("train.publishes")->Value() ==
             reports[0].publishes + reports[1].publishes);

  const std::string bench_path =
      dpdp::EnvStr("DPDP_BENCH_JSON", "BENCH_8.json");
  WriteBenchJson(bench_path, rows);
  std::printf("  wrote %s\n", bench_path.c_str());
  DPDP_CHECK_OK(dpdp::obs::WriteMetricsFiles());
  return 0;
}
