// Chaos soak for the fault-tolerant serving fabric: a sharded fabric with
// seeded fault injection (service-loop crashes, stalls, slow evaluations)
// is driven by closed-loop clients while a trainer stand-in publishes
// checkpoints — some deliberately corrupt, some stale — and the
// ShardSupervisor's watchdog keeps the whole thing alive.
//
// What it proves, end to end, with a FIXED chaos seed (replayable):
//   * zero lost replies: every submitted request resolves — through the
//     model, the deadline fallback, or a shed — never a hung future;
//   * zero wrong replies: every model answer equals the local ground
//     truth for the snapshot seq it was scored on, crashes, restarts and
//     reroutes notwithstanding (the batching invariant under failover);
//   * crashed shards are supervised back up (restarts > 0) after their
//     partition failed over (rerouted > 0), and the per-shard request
//     ledger still rolls up exactly to the aggregate counter;
//   * corrupt checkpoint publishes are quarantined (serve.ckpt_rejected
//     > 0) and stale re-publishes skipped (serve.model_stale_skips > 0)
//     while valid ones keep hot-swapping mid-soak;
//   * tail latency stays bounded: p99 is deadline + watchdog + backoff
//     scale, orders of magnitude under the lost-reply timeout.
//
// The CI chaos-smoke job runs this binary with DPDP_METRICS_DIR set and
// asserts the restarts / reroutes / rejected counters straight from the
// metrics_snapshot.json artifact.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/chaos_serve_demo
//
// Knobs (all optional):
//   DPDP_CHAOS_SHARDS        shards                     (default 4)
//   DPDP_CHAOS_CLIENTS       closed-loop clients        (default 8)
//   DPDP_CHAOS_MAX_WAVES     wave cap before giving up  (default 200)
//   DPDP_SERVE_CHAOS_SEED    chaos schedule seed        (default 42)
//   DPDP_SERVE_DEADLINE_US   per-request deadline       (default 20000)
//   DPDP_BENCH_JSON          result file                (default BENCH_7.json)
//   DPDP_METRICS_DIR         also dump registry + trace there
//
// Telemetry-plane knobs (all default OFF; see README "Telemetry"):
//   DPDP_OBS_HTTP_PORT       /metrics, /slo, /timeseries, plus a
//                            supervisor-backed /healthz (503 while any
//                            shard scans dead)
//   DPDP_OBS_SAMPLE_MS       time-series sampling period
//   DPDP_SLO_* / DPDP_FLIGHT_RECORDER   SLO monitor + black box
//   DPDP_OBS_LINGER_MS       keep the exporter up after the soak

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dpdp.h"

namespace fs = std::filesystem;

namespace {

/// A hand-built decision context (no simulator): vehicle v's incremental
/// length is 3 + v, so the greedy fallback always picks vehicle 0 — shed
/// and deadline-expired replies have a known ground truth.
struct FixedContext {
  explicit FixedContext(const dpdp::Instance* inst, int num_vehicles = 4) {
    context.instance = inst;
    context.order = &inst->orders[0];
    context.now = 100.0;
    context.time_interval = 10;
    context.options.resize(num_vehicles);
    for (int v = 0; v < num_vehicles; ++v) {
      dpdp::VehicleOption& opt = context.options[v];
      opt.vehicle = v;
      opt.feasible = true;
      opt.used = (v % 2) != 0;
      opt.num_assigned_orders = v;
      opt.current_length = 5.0 + v;
      opt.new_length = 8.0 + 2.0 * v;
      opt.incremental_length = 3.0 + v;
      opt.st_score = 0.0;
      opt.position = {static_cast<double>(v), 0.0};
    }
    context.num_feasible = num_vehicles;
  }
  dpdp::DispatchContext context;
};

/// Truncates `path` to half its size — a torn write whose CRC cannot pass.
void TearFile(const fs::path& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
}

/// Current value of a registry counter (0 when it does not exist yet).
double Counter(const std::string& name) {
  for (const dpdp::obs::MetricSnapshot& snap :
       dpdp::obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name &&
        snap.kind == dpdp::obs::MetricSnapshot::Kind::kCounter) {
      return snap.value;
    }
  }
  return 0.0;
}

/// Sum of serve.shard<k>.<field> over all shards in the registry.
double ShardSum(int num_shards, const std::string& field) {
  double sum = 0.0;
  for (int k = 0; k < num_shards; ++k) {
    sum += Counter("serve.shard" + std::to_string(k) + "." + field);
  }
  return sum;
}

}  // namespace

int main() {
  const int num_shards = dpdp::EnvInt("DPDP_CHAOS_SHARDS", 4);
  const int num_clients = dpdp::EnvInt("DPDP_CHAOS_CLIENTS", 8);
  const int max_waves = dpdp::EnvInt("DPDP_CHAOS_MAX_WAVES", 200);
  const long deadline_us = dpdp::EnvInt("DPDP_SERVE_DEADLINE_US", 20000);
  constexpr int kRequestsPerWave = 10;
  DPDP_CHECK(num_shards >= 2 && num_clients >= 1);

  // Two weight sets with one architecture: the trainer stand-in publishes
  // checkpoint seq n with parity-selected weights, so the ground truth of
  // ANY model reply is a pure function of its model_seq — even across
  // crashes, restarts and reroutes. The server's init snapshot (seq 0)
  // carries config_a's weights, which matches the even-parity rule.
  const dpdp::AgentConfig config_a = dpdp::MakeStDdqnConfig(/*seed=*/5);
  dpdp::AgentConfig config_b = config_a;
  config_b.seed = 4242;

  // One tiny campus per client: FixedContext hand-builds the decision, so
  // the instance only anchors the campus name (the shard key) + one order.
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/3, /*mean_orders_per_day=*/90.0));
  std::vector<dpdp::Instance> campuses;
  campuses.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    campuses.push_back(dataset.SampleInstance(
        "campus-" + std::to_string(c), /*num_orders=*/2, /*num_vehicles=*/4,
        /*day_lo=*/0, /*day_hi=*/2, /*seed=*/100 + c));
  }
  std::vector<std::unique_ptr<FixedContext>> contexts;
  contexts.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    contexts.push_back(std::make_unique<FixedContext>(&campuses[c]));
  }

  // Ground truth per weight set, from independent local agents.
  const int choice_a = [&] {
    dpdp::DqnFleetAgent agent(config_a, "truth-a");
    return agent.ChooseVehicle(contexts[0]->context);
  }();
  const int choice_b = [&] {
    dpdp::DqnFleetAgent agent(config_b, "truth-b");
    return agent.ChooseVehicle(contexts[0]->context);
  }();

  // The fabric under chaos: crashes, stalls, slowdowns AND corrupt
  // publishes all drawn from one fixed-seed schedule.
  dpdp::serve::ShardedServeConfig serve_config;
  serve_config.num_shards = num_shards;
  serve_config.shard.max_batch = 8;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.queue_capacity = 256;
  serve_config.shard.deadline_us = deadline_us;
  serve_config.shard.chaos.seed =
      static_cast<uint64_t>(dpdp::EnvInt("DPDP_SERVE_CHAOS_SEED", 42));
  serve_config.shard.chaos.crash_prob = 0.05;
  serve_config.shard.chaos.stall_prob = 0.05;
  serve_config.shard.chaos.stall_us = 5000;
  serve_config.shard.chaos.slow_prob = 0.10;
  serve_config.shard.chaos.slow_us = 500;
  serve_config.shard.chaos.corrupt_publish_prob = 0.35;
  const dpdp::serve::ChaosPolicy publish_chaos(serve_config.shard.chaos);

  dpdp::serve::ModelServer models(config_a);
  const fs::path ckpt_dir =
      fs::temp_directory_path() /
      ("dpdp_chaos_demo_" + std::to_string(static_cast<uint64_t>(::getpid())));
  fs::remove_all(ckpt_dir);
  fs::create_directories(ckpt_dir);
  models.StartWatcher(ckpt_dir.string(), /*poll_ms=*/5);

  dpdp::serve::ShardRouter router(serve_config, &models);
  dpdp::serve::SupervisorConfig sup_config;
  sup_config.watchdog_period_ms = 2;
  sup_config.stuck_after_ms = 100;
  sup_config.breaker.failure_threshold = 2;
  sup_config.breaker.backoff.initial_backoff_ms = 5;
  sup_config.breaker.backoff.max_backoff_ms = 40;
  dpdp::serve::ShardSupervisor supervisor(sup_config, &router);
  supervisor.Start();

  std::printf("chaos_serve_demo: %d shards, %d clients, chaos seed %llu, "
              "deadline %ld us\n",
              num_shards, num_clients,
              static_cast<unsigned long long>(serve_config.shard.chaos.seed),
              deadline_us);

  // The live telemetry plane (env-driven, inert by default). The default
  // /healthz is replaced with a supervisor-backed one: 503 while any shard
  // scans dead, with the per-shard verdicts in the body — so the CI smoke
  // job's scrape checks the watchdog, not just the socket.
  dpdp::obs::Telemetry telemetry(dpdp::obs::Telemetry::FromEnv());
  telemetry.Start();
  if (telemetry.exporter().running()) {
    telemetry.exporter().AddEndpoint("/healthz", [&supervisor, num_shards] {
      dpdp::obs::HttpResponse response;
      bool all_up = true;
      std::string body;
      for (int k = 0; k < num_shards; ++k) {
        const dpdp::serve::ShardHealth health = supervisor.health(k);
        if (health == dpdp::serve::ShardHealth::kDead) all_up = false;
        body += "shard" + std::to_string(k) + " " +
                dpdp::serve::ShardHealthName(health) + "\n";
      }
      response.status = all_up ? 200 : 503;
      response.body = (all_up ? "ok\n" : "degraded\n") + body;
      return response;
    });
    std::printf("  telemetry: http://127.0.0.1:%d/metrics\n",
                telemetry.exporter().port());
  }

  // Trainer stand-in: publishes checkpoint seq n every ~10 ms with
  // parity-selected weights. The chaos stream tears some publishes
  // (exercising CRC rejection and, after repeated probes, quarantine),
  // and every 7th publish also re-drops a superseded seq-1 file — a
  // "backup restored into the live directory" the watcher must skip
  // without rolling the model back.
  std::atomic<bool> stop_publisher{false};
  std::thread publisher([&] {
    dpdp::DqnFleetAgent agent_a(config_a, "trainer-a");
    dpdp::DqnFleetAgent agent_b(config_b, "trainer-b");
    uint64_t seq = 0;
    while (!stop_publisher.load()) {
      ++seq;
      const fs::path path =
          ckpt_dir / ("ckpt_" + std::to_string(seq) + ".ckpt");
      dpdp::DqnFleetAgent& source = (seq % 2 == 0) ? agent_a : agent_b;
      const dpdp::Status saved = dpdp::SaveCheckpoint(
          path.string(), static_cast<int>(seq), source, seq);
      DPDP_CHECK(saved.ok());
      if (publish_chaos.CorruptPublishAt(seq)) TearFile(path);
      if (seq % 7 == 0 && models.current_seq() >= 2) {
        const std::string stale_path =
            (ckpt_dir / ("stale_" + std::to_string(seq) + ".ckpt")).string();
        const dpdp::Status stale = dpdp::SaveCheckpoint(
            stale_path, /*episodes_done=*/1, agent_b, /*seq=*/1);
        DPDP_CHECK(stale.ok());
        // An operator "restoring a backup" into the live model: the footer
        // seq is superseded, so the server must skip it (stale is a
        // polling outcome, not an error) and never roll the model back.
        const dpdp::Status skipped = models.LoadCheckpointFile(stale_path);
        DPDP_CHECK(skipped.ok());
        DPDP_CHECK(models.current_seq() >= 2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Closed-loop clients in waves, until chaos has demonstrably hit on all
  // four fronts (a supervised restart, a failover reroute, a quarantined
  // checkpoint, a stale skip) or the wave / wall-clock caps say this seed
  // cannot produce them (seed 42 can — the caps guard retuned knobs).
  std::atomic<long> unanswered{0};
  std::atomic<long> mismatches{0};
  std::atomic<long> sheds_seen{0};
  std::atomic<long> deadline_seen{0};
  std::mutex latency_mu;
  std::vector<double> latencies_s;
  long total_requests = 0;
  int waves = 0;

  const auto t0 = std::chrono::steady_clock::now();
  const auto time_cap = t0 + std::chrono::seconds(120);
  while (waves < max_waves && std::chrono::steady_clock::now() < time_cap) {
    ++waves;
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> local_lat;
        local_lat.reserve(kRequestsPerWave);
        for (int i = 0; i < kRequestsPerWave; ++i) {
          const auto start = std::chrono::steady_clock::now();
          std::future<dpdp::serve::ServeReply> fut =
              router.Submit(contexts[c]->context);
          if (fut.wait_for(std::chrono::seconds(60)) !=
              std::future_status::ready) {
            ++unanswered;  // A lost promise: the one absolute failure.
            continue;
          }
          const dpdp::serve::ServeReply reply = fut.get();
          local_lat.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
          if (reply.shed) ++sheds_seen;
          if (reply.deadline_exceeded) ++deadline_seen;
          int want;
          if (reply.shed || reply.deadline_exceeded) {
            want = 0;  // Greedy fallback on FixedContext.
          } else {
            want = (reply.model_seq % 2 == 0) ? choice_a : choice_b;
          }
          if (reply.vehicle != want) ++mismatches;
        }
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies_s.insert(latencies_s.end(), local_lat.begin(),
                           local_lat.end());
      });
    }
    for (std::thread& t : clients) t.join();
    total_requests += static_cast<long>(num_clients) * kRequestsPerWave;

    const dpdp::serve::RouterStats wave_stats = router.Stats();
    if (wave_stats.total.restarts >= 1 && wave_stats.total.rerouted >= 1 &&
        Counter("serve.ckpt_rejected") >= 1.0 &&
        Counter("serve.model_stale_skips") >= 1.0) {
      break;
    }
  }

  stop_publisher.store(true);
  publisher.join();
  supervisor.Stop();  // Always before the router (restart/teardown race).
  router.Stop();
  models.StopWatcher();

  const dpdp::serve::RouterStats stats = router.Stats();
  const double p50_us =
      dpdp::serve::PercentileNearestRank(latencies_s, 0.50) * 1e6;
  const double p99_us =
      dpdp::serve::PercentileNearestRank(latencies_s, 0.99) * 1e6;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf(
      "  %ld requests over %d wave(s) in %.1f s: %ld unanswered, "
      "%ld mismatched, %ld shed, %ld past deadline\n",
      total_requests, waves, wall_s, unanswered.load(), mismatches.load(),
      sheds_seen.load(), deadline_seen.load());
  std::printf(
      "  chaos: %.0f crash(es) -> %llu restart(s), %llu rerouted; "
      "%.0f ckpt rejected, %.0f stale skipped, %.0f hot swaps; "
      "p50 %.0f us, p99 %.0f us\n",
      Counter("serve.chaos.crashes"),
      static_cast<unsigned long long>(stats.total.restarts),
      static_cast<unsigned long long>(stats.total.rerouted),
      Counter("serve.ckpt_rejected"), Counter("serve.model_stale_skips"),
      Counter("serve.model_swaps"), p50_us, p99_us);

  // ---- The invariants the fault-tolerance layer is sold on. ----
  DPDP_CHECK(unanswered.load() == 0);  // Zero lost replies, ever.
  DPDP_CHECK(mismatches.load() == 0);  // Failover never changes answers.
  DPDP_CHECK(stats.total.requests == static_cast<uint64_t>(total_requests));
  DPDP_CHECK(stats.total.restarts >= 1);
  DPDP_CHECK(stats.total.rerouted >= 1);
  DPDP_CHECK(Counter("serve.ckpt_rejected") >= 1.0);
  DPDP_CHECK(Counter("serve.model_stale_skips") >= 1.0);
  // Bounded tail: recovery is deadline + watchdog + backoff scale. The
  // bound is deliberately loose — the point is "orders of magnitude below
  // the 60 s lost-reply timeout", not a machine-speed benchmark.
  DPDP_CHECK(p99_us < 1e6);
  // Exact rollup under chaos, straight from the global registry: every
  // admitted request was booked once on its shard and once aggregate.
  DPDP_CHECK(Counter("serve.requests") == ShardSum(num_shards, "requests"));
  std::printf("  all chaos invariants held\n");

  // Bench row + registry dump for the CI chaos-smoke artifact.
  const std::string json_path =
      dpdp::EnvStr("DPDP_BENCH_JSON", "BENCH_7.json");
  {
    std::ofstream out(json_path, std::ios::trunc);
    DPDP_CHECK(out.good());
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\n  \"benchmarks\": [\n    {\"name\": \"BM_ChaosServeSoak\", "
        "\"requests\": %ld, \"unanswered\": %ld, \"restarts\": %llu, "
        "\"rerouted\": %llu, \"p50_us\": %g, \"p99_us\": %g}\n  ]\n}\n",
        total_requests, unanswered.load(),
        static_cast<unsigned long long>(stats.total.restarts),
        static_cast<unsigned long long>(stats.total.rerouted), p50_us,
        p99_us);
    out << line;
    DPDP_CHECK(out.good());
  }
  std::printf("  wrote %s\n", json_path.c_str());

  // Deterministic scrape window for external scrapers, then stop the
  // plane (final time-series sample + timeseries.csv/json export).
  const long linger_ms = dpdp::EnvInt("DPDP_OBS_LINGER_MS", 0);
  if (linger_ms > 0 && telemetry.exporter().running()) {
    std::printf("  telemetry: lingering %ld ms for scrapers\n", linger_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  telemetry.Stop();
  if (telemetry.SloWindows() > 0) {
    std::printf("  slo: %llu window(s), %llu breach(es)\n",
                static_cast<unsigned long long>(telemetry.SloWindows()),
                static_cast<unsigned long long>(telemetry.SloBreaches()));
  }

  const dpdp::Status metrics_written = dpdp::obs::WriteMetricsFiles();
  DPDP_CHECK(metrics_written.ok());

  fs::remove_all(ckpt_dir);
  return 0;
}
