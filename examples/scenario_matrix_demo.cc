// Scenario-matrix demo and benchmark: the method x scenario sweep over
// config-driven worlds (scenario/scenario.h). Every scenario is a pure
// function of (config, seed) — layered demand surges and bursts,
// deterministic traffic waves, heterogeneous fleet classes and
// docking-constrained stations composed onto the same baseline campus.
//
// What it proves, end to end:
//   * the matrix harness is worker-count invariant — the 1-thread and
//     4-thread sweeps produce bit-identical cells (everything except wall
//     time), the same golden tests/scenario_test.cc asserts;
//   * every cell genuinely ran: nonzero decisions, the sampled order
//     count, and the scenario.* metrics rollup reconciles exactly against
//     the per-cell results (2x one sweep, because the two sweeps are
//     identical);
//   * the scenario layers genuinely bite: the adversarial world's order
//     stream differs from the baseline world's.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/scenario_matrix_demo
//
// Knobs (all optional):
//   DPDP_MATRIX_ORDERS    orders per sampled instance   (default 10)
//   DPDP_MATRIX_VEHICLES  vehicles                      (default 4)
//   DPDP_MATRIX_EPISODES  DRL training episodes / cell  (default 3)
//   DPDP_MATRIX_CSV       matrix CSV file       (default scenario_matrix.csv)
//   DPDP_BENCH_JSON       result file           (default BENCH_9.json)
//   DPDP_METRICS_DIR      also dump the registry snapshot there

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/dpdp.h"

namespace {

struct BenchRow {
  std::string name;
  double ns_per_op = 0.0;  ///< Wall nanoseconds per dispatch decision.
  double decisions_per_second = 0.0;
  long decisions = 0;
  double wall_seconds = 0.0;
};

BenchRow MakeRow(const std::string& name, long decisions,
                 double wall_seconds) {
  BenchRow row;
  row.name = name;
  row.decisions = decisions;
  row.wall_seconds = wall_seconds;
  if (decisions > 0 && wall_seconds > 0.0) {
    row.decisions_per_second = decisions / wall_seconds;
    row.ns_per_op = wall_seconds * 1e9 / static_cast<double>(decisions);
  }
  return row;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  DPDP_CHECK(out.good());
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"ns_per_op\": %g, "
                  "\"items_per_second\": %g, \"decisions\": %ld, "
                  "\"wall_seconds\": %g}",
                  r.name.c_str(), r.ns_per_op, r.decisions_per_second,
                  r.decisions, r.wall_seconds);
    out << line << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  DPDP_CHECK(out.good());
}

/// Aborts unless the two matrices are bitwise identical in every field
/// except wall_seconds (the only run-to-run varying one).
void CheckSameMatrix(const dpdp::ScenarioMatrixResult& a,
                     const dpdp::ScenarioMatrixResult& b) {
  DPDP_CHECK(a.cells.size() == b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    const dpdp::ScenarioCell& x = a.cells[i];
    const dpdp::ScenarioCell& y = b.cells[i];
    DPDP_CHECK(x.scenario == y.scenario);
    DPDP_CHECK(x.method == y.method);
    DPDP_CHECK(x.num_orders == y.num_orders);
    DPDP_CHECK(x.num_served == y.num_served);
    DPDP_CHECK(x.service_rate == y.service_rate);
    DPDP_CHECK(x.nuv == y.nuv);
    DPDP_CHECK(x.total_cost == y.total_cost);
    DPDP_CHECK(x.reward == y.reward);
    DPDP_CHECK(x.decisions == y.decisions);
    DPDP_CHECK(x.degraded == y.degraded);
    DPDP_CHECK(x.breakdowns == y.breakdowns);
    DPDP_CHECK(x.replanned == y.replanned);
    DPDP_CHECK(x.cancelled == y.cancelled);
  }
}

}  // namespace

int main() {
  const int orders = dpdp::EnvIntStrict("DPDP_MATRIX_ORDERS", 10, 1, 10000);
  const int vehicles =
      dpdp::EnvIntStrict("DPDP_MATRIX_VEHICLES", 4, 1, 1000);
  const int episodes =
      dpdp::EnvIntStrict("DPDP_MATRIX_EPISODES", 3, 1, 10000);

  dpdp::ScenarioMatrixConfig config;
  for (const char* name : {"baseline", "surge_noon", "traffic_waves",
                           "hetero_fleet", "adversarial"}) {
    config.scenarios.push_back(dpdp::scenario::BuiltinScenario(name).value());
  }
  config.methods = {"B1", "B3", "DQN"};
  config.num_orders = orders;
  config.num_vehicles = vehicles;
  config.episodes = episodes;

  std::printf("scenario_matrix_demo: %zu scenarios x %zu methods, "
              "%d orders, %d vehicles, %d episodes/cell\n",
              config.scenarios.size(), config.methods.size(), orders,
              vehicles, episodes);

  // --- The golden: the same matrix on 1 and on 4 workers must be
  // bit-identical cell for cell.
  auto& registry = dpdp::obs::MetricsRegistry::Global();
  const uint64_t cells_before =
      registry.GetCounter("scenario.cells")->Value();
  const uint64_t worlds_before =
      registry.GetCounter("scenario.worlds")->Value();
  const uint64_t decisions_before =
      registry.GetCounter("scenario.decisions")->Value();
  const uint64_t served_before =
      registry.GetCounter("scenario.orders_served")->Value();

  dpdp::ThreadPool pool1(1);
  const dpdp::WallTimer timer1;
  const dpdp::ScenarioMatrixResult serial =
      dpdp::RunScenarioMatrix(config, &pool1);
  const double serial_seconds = timer1.ElapsedSeconds();

  dpdp::ThreadPool pool4(4);
  const dpdp::WallTimer timer4;
  const dpdp::ScenarioMatrixResult parallel =
      dpdp::RunScenarioMatrix(config, &pool4);
  const double parallel_seconds = timer4.ElapsedSeconds();

  CheckSameMatrix(serial, parallel);
  std::printf("  golden: 1-thread and 4-thread matrices bit-identical "
              "(%zu cells)\n", serial.cells.size());

  std::printf("%s", parallel.FormatTable().c_str());

  // --- Every cell genuinely ran.
  long total_decisions = 0;
  long total_served = 0;
  for (const dpdp::ScenarioCell& cell : parallel.cells) {
    DPDP_CHECK(cell.decisions > 0);
    DPDP_CHECK(cell.num_orders == orders);
    DPDP_CHECK(cell.num_served > 0);
    total_decisions += cell.decisions;
    total_served += cell.num_served;
  }

  // --- The scenario layers genuinely bite: the adversarial world draws a
  // different order stream than the baseline world.
  {
    const dpdp::ScenarioWorld base =
        dpdp::BuildScenarioWorld(config.scenarios[0], config);
    const dpdp::ScenarioWorld adv =
        dpdp::BuildScenarioWorld(config.scenarios.back(), config);
    bool differs = adv.instance.orders.size() != base.instance.orders.size();
    for (size_t i = 0;
         !differs && i < base.instance.orders.size(); ++i) {
      differs = base.instance.orders[i].pickup_node !=
                    adv.instance.orders[i].pickup_node ||
                base.instance.orders[i].create_time_min !=
                    adv.instance.orders[i].create_time_min;
    }
    DPDP_CHECK(differs);
    DPDP_CHECK(!adv.instance.vehicle_profiles.empty());
    DPDP_CHECK(!adv.instance.node_service_surcharge_min.empty());
  }

  // --- The scenario.* registry rollup must reconcile exactly: two
  // identical sweeps plus the two single worlds built just above.
  const uint64_t num_cells = serial.cells.size();
  DPDP_CHECK(registry.GetCounter("scenario.cells")->Value() - cells_before ==
             2 * num_cells);
  DPDP_CHECK(registry.GetCounter("scenario.worlds")->Value() -
                 worlds_before ==
             2 * config.scenarios.size());
  DPDP_CHECK(registry.GetCounter("scenario.decisions")->Value() -
                 decisions_before ==
             static_cast<uint64_t>(2 * total_decisions));
  DPDP_CHECK(registry.GetCounter("scenario.orders_served")->Value() -
                 served_before ==
             static_cast<uint64_t>(2 * total_served));
  std::printf("  scenario.* rollup reconciled: %llu cells, %ld decisions "
              "per sweep\n",
              static_cast<unsigned long long>(num_cells), total_decisions);
  std::printf("  sweep wall: %.2fs on 1 thread, %.2fs on 4 threads\n",
              serial_seconds, parallel_seconds);

  // --- Artifacts: per-cell bench rows, the matrix CSV, the metrics dump.
  std::vector<BenchRow> rows;
  rows.push_back(MakeRow("BM_ScenarioMatrix/threads:1", total_decisions,
                         serial_seconds));
  rows.push_back(MakeRow("BM_ScenarioMatrix/threads:4", total_decisions,
                         parallel_seconds));
  for (const dpdp::ScenarioCell& cell : parallel.cells) {
    rows.push_back(MakeRow("BM_ScenarioCell/" + cell.scenario + "/" +
                               cell.method,
                           cell.decisions, cell.wall_seconds));
  }
  const std::string bench_path =
      dpdp::EnvStr("DPDP_BENCH_JSON", "BENCH_9.json");
  WriteBenchJson(bench_path, rows);
  std::printf("  wrote %s\n", bench_path.c_str());

  const std::string csv_path =
      dpdp::EnvStr("DPDP_MATRIX_CSV", "scenario_matrix.csv");
  {
    std::ofstream csv(csv_path, std::ios::trunc);
    DPDP_CHECK(csv.good());
    csv << parallel.ToCsv();
    DPDP_CHECK(csv.good());
  }
  std::printf("  wrote %s\n", csv_path.c_str());

  DPDP_CHECK_OK(dpdp::obs::WriteMetricsFiles());
  return 0;
}
