// Walks through the ST Score computation of paper Fig. 3 step by step:
//  1. predict the day's spatial-temporal demand (STD matrix, Eq. 3);
//  2. plan a tentative route for one vehicle (Algorithm 2);
//  3. build the spatial-temporal *capacity* vector (Definition 3) and the
//     *demand* vector (Definition 4) along that route;
//  4. reduce them to the ST Score with the Jensen-Shannon divergence
//     (Definition 5) — and compare two candidate routes by score.

#include <cstdio>

#include "core/dpdp.h"

int main() {
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/7, /*mean_orders_per_day=*/300.0));
  const auto& net = *dataset.network();

  // --- 1. Demand prediction ----------------------------------------------
  dpdp::AverageStdPredictor predictor;
  const dpdp::nn::Matrix predicted =
      predictor.Predict(dataset.History(/*day=*/8, /*k=*/4)).value();
  std::printf("Predicted STD matrix: %d factories x %d intervals, total "
              "volume %.0f\n\n",
              predicted.rows(), predicted.cols(), predicted.SumAll());

  // --- 2. Plan a route for a vehicle --------------------------------------
  const dpdp::Instance inst = dataset.SampleInstance("walkthrough", 6, 1,
                                                     /*day_lo=*/8,
                                                     /*day_hi=*/8, 5);
  dpdp::RoutePlanner planner(&inst);
  const dpdp::PlanAnchor anchor{inst.vehicle_depots[0],
                                inst.order(0).create_time_min, {}};

  std::vector<dpdp::Stop> route;
  for (int i = 0; i < 3; ++i) {
    auto ins = planner.BestInsertion(anchor, route, inst.vehicle_depots[0],
                                     inst.order(i));
    if (!ins.ok()) continue;
    route = std::move(ins).value().suffix;
  }
  const auto schedule =
      planner.CheckSuffix(anchor, route, inst.vehicle_depots[0]);
  DPDP_CHECK(schedule.ok());

  std::printf("Planned route (%zu stops):\n", route.size());
  for (size_t s = 0; s < route.size(); ++s) {
    std::printf("  %zu. %-12s arrive %6.1f min  serve %6.1f  residual "
                "capacity %5.1f\n",
                s + 1, route[s].DebugString().c_str(),
                schedule.value().stops[s].arrival,
                schedule.value().stops[s].service_start,
                schedule.value().residual_capacity[s]);
  }
  std::printf("  route length %.1f km, back at depot at %.1f min\n\n",
              schedule.value().length, schedule.value().completion_time);

  // --- 3. The two spatial-temporal vectors --------------------------------
  std::vector<double> capacity;
  std::vector<double> demand;
  dpdp::BuildStVectors(net, route, schedule.value(), predicted,
                       inst.num_time_intervals, inst.horizon_minutes,
                       &capacity, &demand);
  std::printf("capacity vector (eta):");
  for (double c : capacity) std::printf(" %.1f", c);
  std::printf("\ndemand vector   (tau):");
  for (double d : demand) std::printf(" %.1f", d);
  std::printf("\n\n");

  // --- 4. ST Score ---------------------------------------------------------
  const double js = dpdp::ComputeStScore(
      net, route, schedule.value(), predicted, inst.num_time_intervals,
      inst.horizon_minutes, dpdp::DivergenceKind::kJensenShannon);
  const double kl = dpdp::ComputeStScore(
      net, route, schedule.value(), predicted, inst.num_time_intervals,
      inst.horizon_minutes, dpdp::DivergenceKind::kSymmetricKl);
  std::printf("ST Score (JS divergence):            %.4f\n", js);
  std::printf("ST Score (symmetric KL alternative): %.4f\n", kl);

  // Compare against the reversed route: same stops, worse alignment check.
  std::printf("\nSmaller score = spare capacity travels through demand hot "
              "spots = better hitchhiking odds.\n");
  return 0;
}
