// Observability walkthrough: train a DQN dispatcher for a couple of
// episodes with the metrics registry, per-episode metrics.csv time series
// and the Chrome-trace span tracer all active, then cross-check that the
// recorded telemetry reconciles exactly with the simulator's own episode
// accounting.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   DPDP_METRICS_DIR=/tmp/dpdp_obs DPDP_TRACE=1 \
//       ./build/examples/observability_demo
//
// Afterwards /tmp/dpdp_obs contains:
//   metrics.csv            one row per training episode (loss, epsilon,
//                          mean/max Q, replay size, degradations, ...)
//   metrics_snapshot.csv   point-in-time dump of every counter/gauge/
//   metrics_snapshot.json  histogram in the global registry
//   trace.json             load in https://ui.perfetto.dev or
//                          chrome://tracing (written at process exit)

#include <cstdio>

#include "core/dpdp.h"

int main() {
  // Snapshot the registry counters up front so the reconciliation below
  // measures exactly this run (the counters are process-global).
  dpdp::obs::MetricsRegistry& registry = dpdp::obs::MetricsRegistry::Global();
  dpdp::obs::Counter* decisions = registry.GetCounter("sim.decisions");
  dpdp::obs::Counter* degraded = registry.GetCounter("sim.degraded_decisions");
  dpdp::obs::Histogram* latency = registry.GetHistogram(
      "sim.decision_latency_s", dpdp::obs::LatencyBucketsSeconds());
  const uint64_t decisions_before = decisions->Value();
  const uint64_t degraded_before = degraded->Value();
  const uint64_t latency_before = latency->Count();

  // A small world so the demo doubles as a CI smoke test.
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/3, /*mean_orders_per_day=*/60.0));
  const dpdp::Instance instance = dataset.SampleInstance(
      "obs-demo", /*num_orders=*/12, /*num_vehicles=*/5,
      /*day_lo=*/0, /*day_hi=*/2, /*seed=*/4);
  dpdp::AverageStdPredictor predictor;
  const dpdp::Result<dpdp::nn::Matrix> predicted =
      predictor.Predict(dataset.History(/*day=*/3, /*k=*/2));
  DPDP_CHECK(predicted.ok());

  dpdp::SimulatorConfig sim_config;
  sim_config.predicted_std = predicted.value();
  dpdp::Simulator simulator(&instance, sim_config);
  std::unique_ptr<dpdp::Agent> agent =
      dpdp::MakeAgentByName("DQN", /*seed=*/1);
  agent->set_training(true);

  // RunEpisodes writes $DPDP_METRICS_DIR/metrics.csv automatically; the
  // span tracer was armed by DPDP_TRACE=1 at startup and flushes
  // trace.json at process exit.
  dpdp::TrainOptions options;
  options.episodes = dpdp::EnvInt("DPDP_EPISODES", 2);
  const dpdp::TrainingCurve curve =
      dpdp::RunEpisodes(&simulator, agent.get(), options);

  long total_decisions = 0;
  long total_degraded = 0;
  for (const dpdp::EpisodeResult& r : curve.episodes) {
    total_decisions += r.num_decisions;
    total_degraded += r.num_degraded_decisions;
  }
  std::printf("trained %zu episodes: %ld decisions, %ld degraded\n",
              curve.episodes.size(), total_decisions, total_degraded);

  // Acceptance cross-check: the registry's decision-latency histogram and
  // degradation counter must reconcile exactly with EpisodeResult totals.
  DPDP_CHECK(decisions->Value() - decisions_before ==
             static_cast<uint64_t>(total_decisions));
  DPDP_CHECK(latency->Count() - latency_before ==
             static_cast<uint64_t>(total_decisions));
  DPDP_CHECK(degraded->Value() - degraded_before ==
             static_cast<uint64_t>(total_degraded));

  // Dump the registry (no-op unless DPDP_METRICS_DIR is set).
  DPDP_CHECK_OK(dpdp::obs::WriteMetricsFiles());

  const std::string dir = dpdp::EnvStr("DPDP_METRICS_DIR", "");
  if (dir.empty()) {
    std::printf("set DPDP_METRICS_DIR to export metrics files\n");
  } else {
    std::printf("metrics written under %s\n", dir.c_str());
  }
  if (dpdp::obs::TraceEnabled()) {
    std::printf("trace.json will be flushed at exit (%zu spans so far)\n",
                dpdp::obs::BufferedSpanCount());
  } else {
    std::printf("set DPDP_TRACE=1 to record a Perfetto trace\n");
  }
  std::printf("telemetry reconciled: OK\n");
  return 0;
}
