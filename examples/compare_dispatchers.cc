// Compares every dispatching policy in the library — the three greedy
// baselines and the DRL agents — on one sampled large-scale instance
// (Fig. 6 scale: 50 vehicles / 150 orders by default).
//
// Knobs (environment): DPDP_ORDERS, DPDP_VEHICLES, DPDP_EPISODES,
// DPDP_SEEDS, DPDP_FAST.

#include <cstdio>
#include <memory>

#include "core/dpdp.h"

int main() {
  using dpdp::TextTable;

  const int num_orders = dpdp::EnvInt("DPDP_ORDERS", 150);
  const int num_vehicles = dpdp::EnvInt("DPDP_VEHICLES", 50);
  const int episodes =
      dpdp::EnvInt("DPDP_EPISODES", dpdp::FastMode() ? 5 : 60);
  const int seeds = dpdp::EnvInt("DPDP_SEEDS", dpdp::FastMode() ? 1 : 2);

  dpdp::DpdpDataset dataset(dpdp::StandardDatasetConfig(
      /*seed=*/7, /*mean_orders_per_day=*/static_cast<double>(num_orders)));
  const dpdp::Instance instance =
      dataset.SampleInstance("compare", num_orders, num_vehicles,
                             /*day_lo=*/0, /*day_hi=*/9, /*seed=*/42);
  dpdp::AverageStdPredictor predictor;
  const dpdp::nn::Matrix predicted =
      predictor.Predict(dataset.History(10, 4)).value();

  std::printf("Instance: %d orders, %d vehicles | training %d episodes x "
              "%d seeds per DRL method\n\n",
              instance.num_orders(), instance.num_vehicles(), episodes,
              seeds);

  TextTable table({"method", "NUV", "TC", "TC std", "infer s"});
  auto add = [&](const dpdp::MethodSummary& s) {
    table.AddRow({s.method, TextTable::Num(s.nuv_mean(), 1),
                  TextTable::Num(s.tc_mean()), TextTable::Num(s.tc_std()),
                  TextTable::Num(s.wall_mean(), 3)});
  };

  dpdp::MinIncrementalLengthDispatcher b1;
  dpdp::MinTotalLengthDispatcher b2;
  dpdp::MaxAcceptedOrdersDispatcher b3;
  add(dpdp::RunBaseline(instance, &b1));
  add(dpdp::RunBaseline(instance, &b2));
  add(dpdp::RunBaseline(instance, &b3));

  std::vector<std::string> methods = dpdp::ComparisonDrlMethods();
  methods.push_back("Graph-AC");  // Library extension: relational AC.
  for (const std::string& method : methods) {
    add(dpdp::RunDrlMethod(instance, predicted, method, episodes, seeds,
                           /*seed_base=*/11));
    std::printf("trained %s\n", method.c_str());
  }

  std::printf("\n%s\n", table.ToString().c_str());
  return 0;
}
