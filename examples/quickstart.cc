// Quickstart: generate a synthetic campus + one day of orders, dispatch
// with a heuristic baseline and with a briefly trained ST-DDGN policy, and
// compare the number of used vehicles (NUV) and total cost (TC).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/dpdp.h"

int main() {
  using dpdp::TextTable;

  // 1. A "world": the 27-factory campus and a pool of synthetic days that
  //    stands in for the paper's historical order data.
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/7, /*mean_orders_per_day=*/150.0));

  // 2. A large-scale instance (Fig. 6 scale): 50 vehicles, 150 orders
  //    sampled from the pool's first ten days.
  const dpdp::Instance instance = dataset.SampleInstance(
      "quickstart", /*num_orders=*/150, /*num_vehicles=*/50,
      /*day_lo=*/0, /*day_hi=*/9, /*seed=*/42);
  std::printf("Instance: %d orders, %d vehicles, %d factories\n",
              instance.num_orders(), instance.num_vehicles(),
              instance.network->num_factories());

  // 3. Predict the day's spatial-temporal demand from the previous four
  //    days (Definition 1 + Eq. 3).
  dpdp::AverageStdPredictor predictor;
  const dpdp::Result<dpdp::nn::Matrix> predicted =
      predictor.Predict(dataset.History(/*day=*/10, /*k=*/4));
  DPDP_CHECK(predicted.ok());

  TextTable table({"method", "NUV", "TC", "TTL (km)", "served"});
  auto add_row = [&](const char* method, const dpdp::EpisodeResult& r) {
    table.AddRow({method, TextTable::Num(r.nuv, 0),
                  TextTable::Num(r.total_cost),
                  TextTable::Num(r.total_travel_length),
                  TextTable::Num(r.num_served, 0)});
  };

  // 4. Dispatch with the UAT heuristic (Baseline 1).
  {
    dpdp::Simulator sim(&instance);
    dpdp::MinIncrementalLengthDispatcher baseline;
    add_row("baseline1 (UAT heuristic)", sim.RunEpisode(&baseline));
  }

  // 5. Train ST-DDGN briefly and evaluate the greedy policy.
  const int episodes = dpdp::EnvInt("DPDP_EPISODES",
                                    dpdp::FastMode() ? 5 : 40);
  const dpdp::DrlOutcome outcome = dpdp::TrainEvalOnInstance(
      instance, predicted.value(), "ST-DDGN", /*seed=*/1, episodes);
  add_row("ST-DDGN (trained)", outcome.eval);
  std::printf("Trained ST-DDGN for %d episodes in %.1fs\n", episodes,
              outcome.train_seconds);

  std::printf("\n%s\n", table.ToString().c_str());
  return 0;
}
