// City-scale sharded serving demo and benchmark: hundreds of campuses and
// roughly a thousand closed-loop clients are served through the sharded
// dispatch fabric at several shard counts, and every configuration is
// checked bitwise against independent local agents before throughput is
// compared.
//
// What it proves, end to end:
//   * the shard count is a pure throughput knob — per-campus episode
//     results are bitwise identical at every shard count AND to the
//     unsharded local-agent baseline;
//   * the campus-hash partition spreads a large campus population across
//     every shard (no shard starves), and per-shard request accounting
//     rolls up exactly to the aggregate;
//   * aggregate served throughput scales with the shard count when the
//     per-batch downstream commit dominates the serving cost.
//
// A note on the scaling measurement: decision evaluation is CPU-bound, so
// on a single core a work-conserving service loop cannot go faster by
// being split into shards. The demo therefore models the one fabric cost
// that is NOT CPU: a synchronous downstream commit per batch
// (ServeConfig::commit_us — think "wait for the dispatch channel to ack
// the batch before releasing replies"). Commit waits consume no CPU and
// genuinely overlap across shard loops, which is exactly the property
// sharding buys in a real deployment. Set DPDP_SERVE_COMMIT_US=0 to watch
// the work-conserving (flat) curve instead.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/sharded_serve_demo
//
// Knobs (all optional):
//   DPDP_SHARD_CAMPUSES    distinct campuses           (default 240)
//   DPDP_SHARD_CLIENTS     closed-loop clients         (default 960)
//   DPDP_SHARD_COUNTS      shard counts to sweep       (default "1,2,4,8")
//   DPDP_SHARD_ORDERS      orders per campus           (default 6)
//   DPDP_SHARD_VEHICLES    vehicles per campus         (default 4)
//   DPDP_SHARD_HIDDEN      policy hidden width         (default 64)
//   DPDP_SERVE_COMMIT_US   per-batch commit latency    (default 8000)
//   DPDP_SERVE_MAX_BATCH / DPDP_SERVE_MAX_WAIT_US     service policy
//   DPDP_BENCH_JSON        result file                 (default BENCH_6.json)
//   DPDP_METRICS_DIR       also dump the registry snapshot there
//
// Telemetry-plane knobs (all default OFF; see README "Telemetry"):
//   DPDP_OBS_HTTP_PORT     /metrics + /healthz + /slo + /timeseries port
//   DPDP_OBS_SAMPLE_MS     time-series sampling period
//   DPDP_SLO_*             SLO objectives (window, p99, shed, deadline)
//   DPDP_OBS_LINGER_MS     keep the exporter up this long after the sweep
//                          so an external scraper (the CI telemetry-smoke
//                          job) can curl it deterministically

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dpdp.h"

namespace {

/// Aborts unless every deterministic field of the two episode results is
/// identical (wall-clock fields excluded: they measure the machine, not
/// the policy).
void CheckSameEpisode(const dpdp::EpisodeResult& local,
                      const dpdp::EpisodeResult& served) {
  DPDP_CHECK(local.num_served == served.num_served);
  DPDP_CHECK(local.num_unserved == served.num_unserved);
  DPDP_CHECK(local.num_decisions == served.num_decisions);
  DPDP_CHECK(local.num_degraded_decisions == served.num_degraded_decisions);
  DPDP_CHECK(local.nuv == served.nuv);
  DPDP_CHECK(local.total_travel_length == served.total_travel_length);
  DPDP_CHECK(local.total_cost == served.total_cost);
  DPDP_CHECK(local.sum_incremental_length == served.sum_incremental_length);
  DPDP_CHECK(local.order_assignment == served.order_assignment);
}

std::vector<int> ParseCounts(const std::string& spec) {
  std::vector<int> counts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int n = std::stoi(item);
    DPDP_CHECK(n >= 1);
    counts.push_back(n);
  }
  DPDP_CHECK(!counts.empty());
  return counts;
}

struct BenchRow {
  std::string name;
  double ns_per_op = 0.0;  ///< Wall nanoseconds per decision.
  double decisions_per_second = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  long shed = 0;
};

BenchRow MakeRow(const std::string& name,
                 const dpdp::serve::LoadReport& report, long shed) {
  BenchRow row;
  row.name = name;
  row.ns_per_op = report.total_decisions > 0
                      ? report.wall_seconds * 1e9 /
                            static_cast<double>(report.total_decisions)
                      : 0.0;
  row.decisions_per_second = report.decisions_per_second;
  row.p50_us = report.p50_us;
  row.p95_us = report.p95_us;
  row.p99_us = report.p99_us;
  row.shed = shed;
  return row;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  DPDP_CHECK(out.good());
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"ns_per_op\": %g, "
                  "\"items_per_second\": %g, \"p50_us\": %g, "
                  "\"p95_us\": %g, \"p99_us\": %g, \"shed\": %ld}",
                  r.name.c_str(), r.ns_per_op, r.decisions_per_second,
                  r.p50_us, r.p95_us, r.p99_us, r.shed);
    out << line << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  DPDP_CHECK(out.good());
}

}  // namespace

int main() {
  const int num_campuses = dpdp::EnvInt("DPDP_SHARD_CAMPUSES", 240);
  const int num_clients = dpdp::EnvInt("DPDP_SHARD_CLIENTS", 960);
  const int orders = dpdp::EnvInt("DPDP_SHARD_ORDERS", 6);
  const int vehicles = dpdp::EnvInt("DPDP_SHARD_VEHICLES", 4);
  const int hidden = dpdp::EnvInt("DPDP_SHARD_HIDDEN", 64);
  const long commit_us = dpdp::EnvInt("DPDP_SERVE_COMMIT_US", 8000);
  const std::vector<int> shard_counts =
      ParseCounts(dpdp::EnvStr("DPDP_SHARD_COUNTS", "1,2,4,8"));
  DPDP_CHECK(num_campuses > 0 && num_clients >= num_campuses);

  // One sampled campus per name; clients round-robin over the campuses, so
  // several closed-loop clients share each campus (they are independent
  // request streams of the same site — their episodes are identical by
  // determinism, which the bitwise check exploits).
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/3, /*mean_orders_per_day=*/90.0));
  std::vector<dpdp::Instance> campuses;
  campuses.reserve(num_campuses);
  for (int i = 0; i < num_campuses; ++i) {
    campuses.push_back(dataset.SampleInstance(
        "campus-" + std::to_string(i), orders, vehicles,
        /*day_lo=*/0, /*day_hi=*/2, /*seed=*/100 + i));
  }
  std::vector<const dpdp::Instance*> campus_ptrs;
  for (const dpdp::Instance& inst : campuses) campus_ptrs.push_back(&inst);
  std::vector<const dpdp::Instance*> client_ptrs;
  client_ptrs.reserve(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    client_ptrs.push_back(&campuses[i % num_campuses]);
  }

  dpdp::AgentConfig config = dpdp::MakeStDdqnConfig(/*seed=*/5);
  config.hidden_dim = hidden;

  dpdp::serve::LoadOptions options;
  options.sim.record_plan = true;  // OA needed for the bitwise check.

  std::printf("sharded_serve_demo: %d campuses, %d clients, %d orders, "
              "%d vehicles, hidden=%d, commit=%ldus\n",
              num_campuses, num_clients, orders, vehicles, hidden,
              commit_us);

  // The live telemetry plane, entirely env-driven: with every knob at its
  // default this is an inert object; with DPDP_OBS_HTTP_PORT set the
  // sweep below can be scraped mid-run at /metrics.
  dpdp::obs::Telemetry telemetry(dpdp::obs::Telemetry::FromEnv());
  telemetry.Start();
  if (telemetry.exporter().running()) {
    std::printf("  telemetry: http://127.0.0.1:%d/metrics\n",
                telemetry.exporter().port());
  }

  // The ground truth: one local agent per campus, no service involved.
  // Client i of every sharded run below must match campus i % C bitwise.
  const dpdp::serve::LoadReport local =
      dpdp::serve::RunLocalAgentsLoad(campus_ptrs, config, options);
  std::printf("  local baseline: %ld decisions over %d campuses\n",
              local.total_decisions, num_campuses);

  // One snapshot source for every shard count: N shards subscribe to the
  // same ModelServer, so a sweep compares fabrics, not models.
  dpdp::serve::ModelServer models(config);

  std::vector<BenchRow> rows;
  double one_shard_ips = 0.0;
  for (const int num_shards : shard_counts) {
    dpdp::serve::ShardedServeConfig serve_config;
    serve_config.num_shards = num_shards;
    serve_config.shard.max_batch = dpdp::EnvInt("DPDP_SERVE_MAX_BATCH", 16);
    serve_config.shard.max_wait_us =
        dpdp::EnvInt("DPDP_SERVE_MAX_WAIT_US", 300);
    // Admission must never trip in this demo: a shed reply is a greedy
    // decision and would (correctly) fail the bitwise check.
    serve_config.shard.queue_capacity = num_clients;
    serve_config.shard.commit_us = commit_us;

    dpdp::serve::ShardRouter router(serve_config, &models);
    const dpdp::serve::LoadReport served =
        dpdp::serve::RunServedLoad(client_ptrs, &router, options);
    const dpdp::serve::RouterStats stats = router.Stats();
    router.Stop();

    // ---- The invariants the fabric is sold on. ----
    DPDP_CHECK(stats.total.sheds == 0);
    DPDP_CHECK(stats.total.requests ==
               static_cast<uint64_t>(served.total_decisions));
    for (int i = 0; i < num_clients; ++i) {
      CheckSameEpisode(local.clients[i % num_campuses].episodes[0],
                       served.clients[i].episodes[0]);
    }
    // Every shard must have carried real traffic: the campus-hash
    // partition map may not starve a shard at this campus population.
    for (int k = 0; k < num_shards; ++k) {
      DPDP_CHECK(stats.shards[k].requests > 0);
    }

    std::printf("  %d shard(s): %ld decisions, %.0f dec/s, p50 %.0f us, "
                "p99 %.0f us, %llu batches, 0 shed\n",
                num_shards, served.total_decisions,
                served.decisions_per_second, served.p50_us, served.p99_us,
                static_cast<unsigned long long>(stats.total.batches));
    if (num_shards == 1) one_shard_ips = served.decisions_per_second;
    rows.push_back(MakeRow(
        "BM_ShardedServeThroughput/" + std::to_string(num_shards), served,
        static_cast<long>(stats.total.sheds)));
  }

  if (one_shard_ips > 0.0) {
    std::printf("  scaling vs 1 shard:");
    for (size_t i = 0; i < shard_counts.size(); ++i) {
      std::printf(" %dx=%.2f", shard_counts[i],
                  rows[i].decisions_per_second / one_shard_ips);
    }
    std::printf("\n");
  }

  // Registry rollup: all served traffic flowed through tagged shards, so
  // the aggregate request counter equals the per-shard sum exactly — even
  // accumulated across the whole sweep.
  uint64_t aggregate = 0, per_shard_sum = 0;
  for (const dpdp::obs::MetricSnapshot& snap :
       dpdp::obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.kind != dpdp::obs::MetricSnapshot::Kind::kCounter) continue;
    if (snap.name == "serve.requests") aggregate = snap.count;
    if (snap.name.rfind("serve.shard", 0) == 0 &&
        snap.name.size() > 11 &&
        snap.name.find(".requests") != std::string::npos) {
      per_shard_sum += snap.count;
    }
  }
  DPDP_CHECK(aggregate == per_shard_sum);
  std::printf("  rollup: serve.requests == sum(serve.shard<k>.requests) "
              "== %llu\n",
              static_cast<unsigned long long>(aggregate));

  const std::string json_path =
      dpdp::EnvStr("DPDP_BENCH_JSON", "BENCH_6.json");
  WriteBenchJson(json_path, rows);
  std::printf("  wrote %s\n", json_path.c_str());

  // Hold the exporter open so an external scraper has a deterministic
  // window over the fully-populated registry, then stop the plane (the
  // sampler's final export writes timeseries.csv/json under
  // DPDP_METRICS_DIR).
  const long linger_ms = dpdp::EnvInt("DPDP_OBS_LINGER_MS", 0);
  if (linger_ms > 0 && telemetry.exporter().running()) {
    std::printf("  telemetry: lingering %ld ms for scrapers\n", linger_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  telemetry.Stop();
  if (telemetry.SloWindows() > 0) {
    std::printf("  slo: %llu window(s), %llu breach(es)\n",
                static_cast<unsigned long long>(telemetry.SloWindows()),
                static_cast<unsigned long long>(telemetry.SloBreaches()));
  }

  // Dump the registry (per-shard counters included) when asked: the CI
  // smoke job cross-checks the rollup from this artifact.
  const dpdp::Status metrics_written = dpdp::obs::WriteMetricsFiles();
  DPDP_CHECK(metrics_written.ok());
  return 0;
}
