// Serving-layer demo and benchmark: N concurrent simulated campuses share
// one micro-batching DispatchService, with the model loaded from a real
// checkpoint file and hot-swapped mid-run — then the same N campuses run
// again as independent unbatched agents, and the two runs are checked
// bitwise-identical per campus before throughput is compared.
//
// What it proves, end to end:
//   * batching changes wall-clock cost, never decisions (every campus's
//     episode result — costs, lengths, assignments — matches its local run
//     exactly, whatever batch interleavings occurred);
//   * a checkpoint published during the run swaps in without shedding,
//     dropping or stalling a single request;
//   * the shared batched service out-serves independent agents.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/serve_demo
//
// Knobs (all optional):
//   DPDP_SERVE_CLIENTS     concurrent campuses        (default 8)
//   DPDP_SERVE_EPISODES    episodes per campus        (default 1)
//   DPDP_SERVE_ORDERS      orders per campus          (default 24)
//   DPDP_SERVE_VEHICLES    vehicles per campus        (default 8)
//   DPDP_SERVE_HIDDEN      policy hidden width        (default 128)
//   DPDP_SERVE_MAX_BATCH / DPDP_SERVE_MAX_WAIT_US / DPDP_SERVE_QUEUE_CAP
//                          service policy             (see README)
//   DPDP_BENCH_JSON        result file                (default BENCH_5.json)

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dpdp.h"

namespace {

namespace fs = std::filesystem;

/// Aborts unless every deterministic field of the two episode results is
/// identical (wall-clock fields excluded: they measure the machine, not
/// the policy).
void CheckSameEpisode(const dpdp::EpisodeResult& local,
                      const dpdp::EpisodeResult& served, int client) {
  DPDP_CHECK(local.num_served == served.num_served);
  DPDP_CHECK(local.num_unserved == served.num_unserved);
  DPDP_CHECK(local.num_decisions == served.num_decisions);
  DPDP_CHECK(local.num_degraded_decisions == served.num_degraded_decisions);
  DPDP_CHECK(local.nuv == served.nuv);
  DPDP_CHECK(local.total_travel_length == served.total_travel_length);
  DPDP_CHECK(local.total_cost == served.total_cost);
  DPDP_CHECK(local.sum_incremental_length == served.sum_incremental_length);
  DPDP_CHECK(local.order_assignment == served.order_assignment);
  (void)client;
}

/// Combines two phases of the same workload into one report (latencies
/// pooled, wall times summed, percentiles recomputed).
dpdp::serve::LoadReport MergeReports(const dpdp::serve::LoadReport& a,
                                     const dpdp::serve::LoadReport& b) {
  dpdp::serve::LoadReport out = a;
  out.wall_seconds += b.wall_seconds;
  out.total_decisions += b.total_decisions;
  out.decisions_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.total_decisions) / out.wall_seconds
          : 0.0;
  std::vector<double> latencies;
  for (const dpdp::serve::LoadReport* r : {&a, &b}) {
    for (const dpdp::serve::ClientOutcome& c : r->clients) {
      latencies.insert(latencies.end(), c.latencies_s.begin(),
                       c.latencies_s.end());
    }
  }
  out.p50_us = dpdp::serve::PercentileNearestRank(latencies, 0.50) * 1e6;
  out.p95_us = dpdp::serve::PercentileNearestRank(latencies, 0.95) * 1e6;
  out.p99_us = dpdp::serve::PercentileNearestRank(latencies, 0.99) * 1e6;
  return out;
}

struct BenchRow {
  std::string name;
  double ns_per_op = 0.0;          ///< Wall nanoseconds per decision.
  double decisions_per_second = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  long shed = 0;
};

BenchRow MakeRow(const std::string& name,
                 const dpdp::serve::LoadReport& report, long shed) {
  BenchRow row;
  row.name = name;
  row.ns_per_op = report.total_decisions > 0
                      ? report.wall_seconds * 1e9 /
                            static_cast<double>(report.total_decisions)
                      : 0.0;
  row.decisions_per_second = report.decisions_per_second;
  row.p50_us = report.p50_us;
  row.p95_us = report.p95_us;
  row.p99_us = report.p99_us;
  row.shed = shed;
  return row;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  DPDP_CHECK(out.good());
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"ns_per_op\": %g, "
                  "\"items_per_second\": %g, \"p50_us\": %g, "
                  "\"p95_us\": %g, \"p99_us\": %g, \"shed\": %ld}",
                  r.name.c_str(), r.ns_per_op, r.decisions_per_second,
                  r.p50_us, r.p95_us, r.p99_us, r.shed);
    out << line << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  DPDP_CHECK(out.good());
}

}  // namespace

int main() {
  const int clients = dpdp::EnvInt("DPDP_SERVE_CLIENTS", 8);
  const int episodes = dpdp::EnvInt("DPDP_SERVE_EPISODES", 1);
  const int orders = dpdp::EnvInt("DPDP_SERVE_ORDERS", 24);
  const int vehicles = dpdp::EnvInt("DPDP_SERVE_VEHICLES", 8);
  const int hidden = dpdp::EnvInt("DPDP_SERVE_HIDDEN", 512);
  DPDP_CHECK(clients > 0 && episodes > 0);

  // One sampled campus per client, each with its own seed. Client i's
  // workload is identical across the two runs below — that's what makes
  // the bitwise comparison meaningful.
  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/3, /*mean_orders_per_day=*/90.0));
  std::vector<dpdp::Instance> campuses;
  campuses.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    campuses.push_back(dataset.SampleInstance(
        "campus-" + std::to_string(i), orders, vehicles,
        /*day_lo=*/0, /*day_hi=*/2, /*seed=*/100 + i));
  }
  std::vector<const dpdp::Instance*> instance_ptrs;
  for (const dpdp::Instance& inst : campuses) instance_ptrs.push_back(&inst);

  // ST-DDQN-family policy; width is a knob because the batching win is a
  // GEMM-amortization effect and scales with model size.
  dpdp::AgentConfig config = dpdp::MakeStDdqnConfig(/*seed=*/5);
  config.hidden_dim = hidden;

  // The served workload runs in two phases (a model hot-swap lands between
  // them), so the unbatched baseline runs the doubled episode count in one
  // go — same total work, same seeds.
  dpdp::serve::LoadOptions options;
  options.episodes_per_client = episodes;
  options.sim.record_plan = true;  // OA needed for the bitwise check.
  dpdp::serve::LoadOptions unbatched_options = options;
  unbatched_options.episodes_per_client = 2 * episodes;

  // ---- Run 1: N independent unbatched agents (the baseline). ----
  std::printf("serve_demo: %d campuses x 2x%d episode(s), %d orders, "
              "%d vehicles, hidden=%d\n",
              clients, episodes, orders, vehicles, hidden);
  const dpdp::serve::LoadReport unbatched = dpdp::serve::RunLocalAgentsLoad(
      instance_ptrs, config, unbatched_options);
  std::printf("  unbatched: %ld decisions, %.0f dec/s, p50 %.0f us, "
              "p99 %.0f us\n",
              unbatched.total_decisions, unbatched.decisions_per_second,
              unbatched.p50_us, unbatched.p99_us);

  // ---- Run 2: the same campuses through one shared service. ----
  // The model comes in through the real serving path: a checkpoint file on
  // disk, loaded by the watcher. Its weights are the same deterministic
  // init the local agents used, so decisions must match bitwise.
  const fs::path model_dir =
      fs::temp_directory_path() /
      ("dpdp_serve_demo_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(model_dir);
  fs::create_directories(model_dir);
  {
    dpdp::DqnFleetAgent producer(config, "producer");
    const dpdp::Status saved = dpdp::SaveCheckpoint(
        (model_dir / "policy.ckpt").string(), /*episodes_done=*/1, producer,
        /*seq=*/1);
    DPDP_CHECK(saved.ok());
  }
  dpdp::serve::ModelServer models(config);
  DPDP_CHECK(models.PollOnce(model_dir.string()) == 1);
  DPDP_CHECK(models.current_seq() == 1);
  models.StartWatcher(model_dir.string(), /*poll_ms=*/5);

  // A closed loop of `clients` blocked callers never has more than
  // `clients` requests pending, so the flush trigger defaults to exactly
  // that (the env-var overrides still win).
  dpdp::serve::ServeConfig serve_config;
  serve_config.max_batch = dpdp::EnvInt("DPDP_SERVE_MAX_BATCH", clients);
  serve_config.max_wait_us = dpdp::EnvInt("DPDP_SERVE_MAX_WAIT_US", 300);
  serve_config.queue_capacity = dpdp::EnvInt("DPDP_SERVE_QUEUE_CAP", 256);
  dpdp::serve::DispatchService service(serve_config, &models);

  // Phase A on the checkpoint-loaded model...
  const dpdp::serve::LoadReport served_a =
      dpdp::serve::RunServedLoad(instance_ptrs, &service, options);

  // ...then "training" publishes a newer checkpoint (same weights, higher
  // seq) while the service stays live, and phase B runs across the swap.
  // Identical weights keep phase B bitwise-equal to the local agents, so
  // the swap is provably invisible to decisions; the swaps_applied counter
  // proves it really happened inside the live service loop.
  {
    dpdp::DqnFleetAgent producer(config, "producer");
    const dpdp::Status saved = dpdp::SaveCheckpoint(
        (model_dir / "policy_v2.ckpt").string(), /*episodes_done=*/2,
        producer, /*seq=*/2);
    DPDP_CHECK(saved.ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (models.current_seq() != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  DPDP_CHECK(models.current_seq() == 2);  // The watcher picked it up.
  const dpdp::serve::LoadReport served_b =
      dpdp::serve::RunServedLoad(instance_ptrs, &service, options);
  DPDP_CHECK(service.swaps_applied() >= 1);  // Swapped while serving.

  const dpdp::serve::LoadReport served = MergeReports(served_a, served_b);
  const uint64_t sheds = service.sheds();
  const uint64_t batches = service.batches();
  const uint64_t requests = service.requests();
  service.Stop();
  models.StopWatcher();
  fs::remove_all(model_dir);

  std::printf("  served:    %ld decisions, %.0f dec/s, p50 %.0f us, "
              "p99 %.0f us, %llu batches (mean %.2f), %llu shed, "
              "%llu swap(s) applied\n",
              served.total_decisions, served.decisions_per_second,
              served.p50_us, served.p99_us,
              static_cast<unsigned long long>(batches),
              batches > 0 ? static_cast<double>(requests - sheds) /
                                static_cast<double>(batches)
                          : 0.0,
              static_cast<unsigned long long>(sheds),
              static_cast<unsigned long long>(service.swaps_applied()));

  // ---- The invariants the serving layer is sold on. ----
  DPDP_CHECK(served.total_decisions == unbatched.total_decisions);
  DPDP_CHECK(sheds == 0);  // Nominal load: admission never tripped.
  for (int i = 0; i < clients; ++i) {
    const dpdp::serve::ClientOutcome& baseline = unbatched.clients[i];
    DPDP_CHECK(baseline.episodes.size() == static_cast<size_t>(2 * episodes));
    for (int e = 0; e < episodes; ++e) {
      CheckSameEpisode(baseline.episodes[e],
                       served_a.clients[i].episodes[e], i);
      CheckSameEpisode(baseline.episodes[episodes + e],
                       served_b.clients[i].episodes[e], i);
    }
  }
  std::printf("  bitwise check: all %d campuses identical served vs local, "
              "across the swap\n",
              clients);

  // Service-side view from the global registry: how long batches queued
  // and evaluated, independent of the client-measured round trips above.
  for (const dpdp::obs::MetricSnapshot& snap :
       dpdp::obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name != "serve.queue_wait_s" &&
        snap.name != "serve.eval_latency_s") {
      continue;
    }
    std::printf("  %s: p50 %.0f us, p95 %.0f us, p99 %.0f us (%llu samples)\n",
                snap.name.c_str(),
                dpdp::obs::HistogramQuantile(snap, 0.50) * 1e6,
                dpdp::obs::HistogramQuantile(snap, 0.95) * 1e6,
                dpdp::obs::HistogramQuantile(snap, 0.99) * 1e6,
                static_cast<unsigned long long>(snap.count));
  }

  const double speedup =
      unbatched.decisions_per_second > 0.0
          ? served.decisions_per_second / unbatched.decisions_per_second
          : 0.0;
  std::printf("  throughput: %.2fx vs unbatched agents\n", speedup);

  const std::string json_path =
      dpdp::EnvStr("DPDP_BENCH_JSON", "BENCH_5.json");
  WriteBenchJson(json_path,
                 {MakeRow("BM_ServeThroughput/" + std::to_string(clients),
                          served, static_cast<long>(sheds)),
                  MakeRow("BM_UnbatchedAgents/" + std::to_string(clients),
                          unbatched, 0)});
  std::printf("  wrote %s\n", json_path.c_str());
  return 0;
}
