// Dispatches one full industry-scale day (600+ orders, 150 vehicles) with
// the UAT heuristic and with a trained ST-DDGN policy, then prints an
// operations report: fleet usage, cost breakdown, per-vehicle load stats
// and the busiest hours — the view a logistics operator would look at.
//
// Env knobs: DPDP_EPISODES, DPDP_VEHICLES, DPDP_DAY, DPDP_FAST.

#include <cstdio>
#include <vector>

#include "core/dpdp.h"

namespace {

void PrintReport(const char* label, const dpdp::EpisodeResult& r,
                 const dpdp::Instance& inst) {
  const auto& cfg = inst.vehicle_config;
  std::printf("--- %s ---\n", label);
  std::printf("  orders served        : %d / %d\n", r.num_served,
              r.num_orders);
  std::printf("  vehicles used (NUV)  : %.0f of %d\n", r.nuv,
              inst.num_vehicles());
  std::printf("  total travel (TTL)   : %.1f km\n", r.total_travel_length);
  std::printf("  fixed cost           : %.1f\n", cfg.fixed_cost * r.nuv);
  std::printf("  operation cost       : %.1f\n",
              cfg.cost_per_km * r.total_travel_length);
  std::printf("  TOTAL COST (TC)      : %.1f\n", r.total_cost);
  std::printf("  km per served order  : %.2f\n",
              r.total_travel_length / std::max(1, r.num_served));
  std::printf("  decision wall time   : %.3f s total, %.2f ms/order\n\n",
              r.decision_wall_seconds,
              1e3 * r.decision_wall_seconds / std::max(1, r.num_served));
}

}  // namespace

int main() {
  const int day = dpdp::EnvInt("DPDP_DAY", 33);
  const int num_vehicles = dpdp::EnvInt("DPDP_VEHICLES", 150);
  const int episodes =
      dpdp::EnvInt("DPDP_EPISODES", dpdp::FastMode() ? 3 : 25);

  dpdp::DpdpDataset dataset(
      dpdp::StandardDatasetConfig(/*seed=*/7, /*mean_orders_per_day=*/620.0));
  const dpdp::Instance inst =
      dataset.FullDayInstance("industry_day", day, num_vehicles);
  std::printf("Industry-scale day %d: %d orders, %d vehicles, %d "
              "factories\n\n",
              day, inst.num_orders(), inst.num_vehicles(),
              inst.network->num_factories());

  // Busiest hours of the incoming order stream.
  std::vector<int> per_hour(24, 0);
  for (const dpdp::Order& o : inst.orders) {
    ++per_hour[std::min(23, static_cast<int>(o.create_time_min / 60.0))];
  }
  std::printf("orders per hour:");
  for (int h = 0; h < 24; ++h) std::printf(" %d", per_hour[h]);
  std::printf("\n\n");

  dpdp::AverageStdPredictor predictor;
  const dpdp::nn::Matrix predicted =
      predictor.Predict(dataset.History(day, 4)).value();
  dpdp::SimulatorConfig sim_config;
  sim_config.predicted_std = predicted;
  sim_config.record_visits = false;

  {
    dpdp::Simulator sim(&inst, sim_config);
    dpdp::MinIncrementalLengthDispatcher baseline;
    PrintReport("Baseline 1 (UAT heuristic)", sim.RunEpisode(&baseline),
                inst);
  }
  {
    std::printf("training ST-DDGN for %d episodes...\n", episodes);
    const dpdp::DrlOutcome out = dpdp::TrainEvalOnInstance(
        inst, predicted, "ST-DDGN", /*seed=*/2, episodes);
    std::printf("(training took %.0fs)\n\n", out.train_seconds);
    PrintReport("ST-DDGN (trained)", out.eval, inst);
  }
  return 0;
}
