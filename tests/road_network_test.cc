#include <gtest/gtest.h>

#include <cmath>

#include "net/road_network.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

TEST(RoadNetwork, FromCoordinatesEuclidean) {
  const auto net = testing::MakeLineNetwork();
  EXPECT_EQ(net->num_nodes(), 5);
  EXPECT_EQ(net->num_depots(), 1);
  EXPECT_EQ(net->num_factories(), 4);
  EXPECT_DOUBLE_EQ(net->Distance(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(net->Distance(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(net->Distance(0, 2), 20.0);
  EXPECT_NEAR(net->Distance(1, 3), 10.0, 1e-12);
  EXPECT_NEAR(net->Distance(0, 3), std::sqrt(200.0), 1e-12);
  EXPECT_DOUBLE_EQ(net->Distance(2, 2), 0.0);
}

TEST(RoadNetwork, RoadFactorScalesDistances) {
  std::vector<NodeInfo> nodes(2);
  nodes[0] = {0, NodeKind::kDepot, 0.0, 0.0, "d"};
  nodes[1] = {1, NodeKind::kFactory, 3.0, 4.0, "f"};
  const RoadNetwork net =
      RoadNetwork::FromCoordinates(std::move(nodes), 1.5);
  EXPECT_DOUBLE_EQ(net.Distance(0, 1), 7.5);
  // Euclidean proximity is unscaled.
  EXPECT_DOUBLE_EQ(net.EuclideanDistance(0, 1), 5.0);
}

TEST(RoadNetwork, TravelTimeMinutes) {
  const auto net = testing::MakeLineNetwork();
  // 10 km at 60 km/h = 10 minutes.
  EXPECT_DOUBLE_EQ(net->TravelTimeMinutes(0, 1, 60.0), 10.0);
  EXPECT_DOUBLE_EQ(net->TravelTimeMinutes(0, 2, 30.0), 40.0);
}

TEST(RoadNetwork, FactoryOrdinalsAreDense) {
  const auto net = testing::MakeLineNetwork();
  EXPECT_EQ(net->FactoryOrdinal(0), -1);  // Depot.
  EXPECT_EQ(net->FactoryOrdinal(1), 0);
  EXPECT_EQ(net->FactoryOrdinal(4), 3);
  EXPECT_EQ(net->FactoryNode(0), 1);
  EXPECT_EQ(net->FactoryNode(3), 4);
  EXPECT_EQ(net->factory_ids().size(), 4u);
  EXPECT_EQ(net->depot_ids().size(), 1u);
}

TEST(RoadNetwork, CreateValidatesShape) {
  std::vector<NodeInfo> nodes(2);
  nodes[0].kind = NodeKind::kDepot;
  nodes[1].kind = NodeKind::kFactory;
  EXPECT_FALSE(RoadNetwork::Create(nodes, nn::Matrix(3, 3)).ok());
  EXPECT_FALSE(RoadNetwork::Create({}, nn::Matrix(0, 0)).ok());
}

TEST(RoadNetwork, CreateValidatesDiagonalAndSign) {
  std::vector<NodeInfo> nodes(2);
  nodes[0].kind = NodeKind::kDepot;
  nodes[1].kind = NodeKind::kFactory;
  nn::Matrix bad_diag(2, 2);
  bad_diag(0, 0) = 1.0;
  EXPECT_FALSE(RoadNetwork::Create(nodes, bad_diag).ok());
  nn::Matrix negative(2, 2);
  negative(0, 1) = -1.0;
  EXPECT_FALSE(RoadNetwork::Create(nodes, negative).ok());
}

TEST(RoadNetwork, CreateAcceptsAsymmetricDistances) {
  std::vector<NodeInfo> nodes(2);
  nodes[0].kind = NodeKind::kDepot;
  nodes[1].kind = NodeKind::kFactory;
  nn::Matrix d(2, 2);
  d(0, 1) = 5.0;
  d(1, 0) = 9.0;  // One-way streets: directed graph.
  const Result<RoadNetwork> net = RoadNetwork::Create(nodes, d);
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net.value().Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(net.value().Distance(1, 0), 9.0);
}

}  // namespace
}  // namespace dpdp
