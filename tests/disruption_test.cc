// Fault-injection tests: the seeded disruption stream, the simulator's
// breakdown / cancellation / inflation handling (no-interference rule,
// validated by the brute-force feasibility oracle), and the
// graceful-degradation fallback path.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/greedy_baselines.h"
#include "datagen/dataset.h"
#include "exp/harness.h"
#include "gtest/gtest.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "sim/disruption.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::CheckEpisodeFeasible;

bool SameEvent(const DisruptionEvent& a, const DisruptionEvent& b) {
  return a.kind == b.kind && a.time == b.time && a.vehicle == b.vehicle &&
         a.order == b.order && a.duration_min == b.duration_min &&
         a.factor == b.factor;
}

bool SameStream(const std::vector<DisruptionEvent>& a,
                const std::vector<DisruptionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameEvent(a[i], b[i])) return false;
  }
  return true;
}

DisruptionConfig AllFaultsConfig(uint64_t seed) {
  DisruptionConfig cfg;
  cfg.seed = seed;
  cfg.breakdown_prob = 1.0;
  cfg.cancel_prob = 1.0;
  cfg.inflation_prob = 1.0;
  return cfg;
}

Instance CampusInstance() {
  DpdpDataset dataset(StandardDatasetConfig(3, 60.0));
  return dataset.SampleInstance("fault", 20, 6, 0, 2, 4);
}

// ------------------------------------------------------ event generator --

TEST(DisruptionStream, DefaultConfigInjectsNothing) {
  const Instance inst = CampusInstance();
  DisruptionConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_TRUE(GenerateDisruptionEvents(cfg, inst, 0).empty());
}

TEST(DisruptionStream, PureFunctionOfSeedAndEpisode) {
  const Instance inst = CampusInstance();
  const DisruptionConfig cfg = AllFaultsConfig(17);
  const auto a = GenerateDisruptionEvents(cfg, inst, 4);
  const auto b = GenerateDisruptionEvents(cfg, inst, 4);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(SameStream(a, b));

  // Different episodes and different seeds draw different streams.
  EXPECT_FALSE(SameStream(a, GenerateDisruptionEvents(cfg, inst, 5)));
  EXPECT_FALSE(
      SameStream(a, GenerateDisruptionEvents(AllFaultsConfig(18), inst, 4)));
}

TEST(DisruptionStream, EventsSortedByTime) {
  const Instance inst = CampusInstance();
  const auto events = GenerateDisruptionEvents(AllFaultsConfig(23), inst, 0);
  ASSERT_GT(events.size(), 1u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time) << "event " << i;
  }
}

TEST(DisruptionStream, KindSubStreamsAreIndependent) {
  // Enabling cancellations must not shift the breakdown draws: each kind
  // has its own forked sub-stream, and per-entity tuples are drawn
  // unconditionally.
  const Instance inst = CampusInstance();
  DisruptionConfig only_breakdowns;
  only_breakdowns.seed = 31;
  only_breakdowns.breakdown_prob = 1.0;
  DisruptionConfig both = only_breakdowns;
  both.cancel_prob = 1.0;

  std::vector<DisruptionEvent> a;
  for (const DisruptionEvent& e :
       GenerateDisruptionEvents(only_breakdowns, inst, 2)) {
    if (e.kind == DisruptionKind::kBreakdown) a.push_back(e);
  }
  std::vector<DisruptionEvent> b;
  for (const DisruptionEvent& e : GenerateDisruptionEvents(both, inst, 2)) {
    if (e.kind == DisruptionKind::kBreakdown) b.push_back(e);
  }
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(SameStream(a, b));
}

TEST(DisruptionStream, ProbabilityZeroKindEmitsNoEvents) {
  const Instance inst = CampusInstance();
  DisruptionConfig cfg;
  cfg.seed = 5;
  cfg.breakdown_prob = 1.0;
  for (const DisruptionEvent& e : GenerateDisruptionEvents(cfg, inst, 0)) {
    EXPECT_EQ(e.kind, DisruptionKind::kBreakdown);
  }
}

// ---------------------------------------------------- disrupted episodes --

TEST(DisruptedEpisode, BreakdownsKeepEpisodeFeasible) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.record_plan = true;
  config.disruption.seed = 7;
  config.disruption.breakdown_prob = 0.7;
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult result = sim.RunEpisode(&greedy);

  EXPECT_GT(result.num_breakdowns, 0);
  EXPECT_EQ(result.num_served + result.num_unserved, result.num_orders);
  EXPECT_EQ(result.skipped_orders.size(),
            static_cast<size_t>(result.num_unserved));
  EXPECT_FALSE(result.disruption_trace.empty());
  // The executed plan honors every constraint even mid-disruption: the
  // oracle re-checks LIFO, capacity, deadlines and OA/RP consistency
  // without reusing any planner code (no-interference violations would
  // surface as duplicated or orphaned stops).
  EXPECT_TRUE(CheckEpisodeFeasible(inst, result));
}

TEST(DisruptedEpisode, AllFaultKindsTogetherStayFeasible) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.record_plan = true;
  config.buffer_window_min = 30.0;  // Lets cancels land pre-dispatch too.
  config.disruption = AllFaultsConfig(11);
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult result = sim.RunEpisode(&greedy);

  EXPECT_EQ(result.num_served + result.num_unserved, result.num_orders);
  EXPECT_TRUE(CheckEpisodeFeasible(inst, result));
}

TEST(DisruptedEpisode, CancellationsWithBufferingSkipOrders) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.record_plan = true;
  config.buffer_window_min = 30.0;
  config.disruption.seed = 13;
  config.disruption.cancel_prob = 1.0;
  config.disruption.cancel_max_delay_min = 30.0;
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult result = sim.RunEpisode(&greedy);

  EXPECT_GT(result.num_cancelled, 0);
  int cancelled_skips = 0;
  for (const OrderSkip& skip : result.skipped_orders) {
    if (skip.reason == SkipReason::kCancelled) ++cancelled_skips;
  }
  EXPECT_EQ(cancelled_skips, result.num_cancelled);
  EXPECT_TRUE(CheckEpisodeFeasible(inst, result));
}

TEST(DisruptedEpisode, TravelInflationDelaysButKeepsFeasibility) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.record_plan = true;
  config.disruption.seed = 19;
  config.disruption.inflation_prob = 1.0;
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult result = sim.RunEpisode(&greedy);

  EXPECT_EQ(result.num_breakdowns, 0);
  EXPECT_EQ(result.num_cancelled, 0);
  EXPECT_TRUE(CheckEpisodeFeasible(inst, result));
}

TEST(DisruptedEpisode, StreamFollowsSimulatorEpisodeCounter) {
  // Episode e of a long-lived simulator and episode e of a fresh simulator
  // fast-forwarded with set_episodes_run draw the same fault stream — the
  // property checkpoint resume relies on.
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.disruption.seed = 29;
  config.disruption.breakdown_prob = 0.6;
  config.disruption.cancel_prob = 0.4;
  MinIncrementalLengthDispatcher greedy;

  Simulator continuous(&inst, config);
  EpisodeResult third;
  for (int e = 0; e < 3; ++e) third = continuous.RunEpisode(&greedy);

  Simulator resumed(&inst, config);
  resumed.set_episodes_run(2);
  const EpisodeResult replay = resumed.RunEpisode(&greedy);

  EXPECT_EQ(replay.total_cost, third.total_cost);
  EXPECT_EQ(replay.nuv, third.nuv);
  EXPECT_EQ(replay.num_breakdowns, third.num_breakdowns);
  EXPECT_EQ(replay.num_cancelled, third.num_cancelled);
  EXPECT_EQ(replay.disruption_trace.size(), third.disruption_trace.size());
}

// ------------------------------------------------- graceful degradation --

/// A dispatcher that always gives an unusable answer.
class BrokenDispatcher : public Dispatcher {
 public:
  explicit BrokenDispatcher(int answer) : answer_(answer) {}
  const char* name() const override { return "Broken"; }
  int ChooseVehicle(const DispatchContext&) override { return answer_; }

 private:
  int answer_;
};

TEST(GracefulDegradation, InvalidChoiceFallsBackToGreedy) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.record_plan = true;

  Simulator sim_broken(&inst, config);
  BrokenDispatcher broken(-1);
  const EpisodeResult degraded = sim_broken.RunEpisode(&broken);

  Simulator sim_greedy(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult reference = sim_greedy.RunEpisode(&greedy);

  // Every decision degraded, and the fallback IS Baseline 1, so the two
  // episodes are identical.
  EXPECT_EQ(degraded.num_degraded_decisions, degraded.num_served);
  EXPECT_GT(degraded.num_degraded_decisions, 0);
  EXPECT_EQ(degraded.total_cost, reference.total_cost);
  EXPECT_EQ(degraded.nuv, reference.nuv);
  EXPECT_TRUE(CheckEpisodeFeasible(inst, degraded));
}

TEST(GracefulDegradation, OutOfRangeChoiceAlsoDegrades) {
  const Instance inst = CampusInstance();
  Simulator sim(&inst, SimulatorConfig{});
  BrokenDispatcher broken(1 << 20);
  const EpisodeResult result = sim.RunEpisode(&broken);
  EXPECT_EQ(result.num_degraded_decisions, result.num_served);
  EXPECT_GT(result.num_served, 0);
}

/// Rewrites every weight double in an nn::SaveParameters blob to NaN
/// (format: u64 count, then per parameter i32 rows, i32 cols, doubles).
std::string PoisonWeights(const std::string& blob) {
  std::string out = blob;
  size_t pos = 0;
  uint64_t n = 0;
  std::memcpy(&n, out.data() + pos, sizeof(n));
  pos += sizeof(n);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (uint64_t p = 0; p < n; ++p) {
    int32_t rows = 0;
    int32_t cols = 0;
    std::memcpy(&rows, out.data() + pos, sizeof(rows));
    pos += sizeof(rows);
    std::memcpy(&cols, out.data() + pos, sizeof(cols));
    pos += sizeof(cols);
    for (int64_t i = 0; i < static_cast<int64_t>(rows) * cols; ++i) {
      std::memcpy(out.data() + pos, &nan, sizeof(nan));
      pos += sizeof(nan);
    }
  }
  EXPECT_EQ(pos, out.size());
  return out;
}

TEST(GracefulDegradation, NanQValuesDegradeEveryDecision) {
  const Instance inst = CampusInstance();
  DqnFleetAgent agent(MakeDqnConfig(/*seed=*/3), "DQN");

  std::ostringstream saved;
  agent.Save(&saved);
  std::istringstream poisoned(PoisonWeights(saved.str()));
  ASSERT_TRUE(agent.Load(&poisoned));

  SimulatorConfig config;
  config.record_plan = true;
  Simulator sim(&inst, config);
  const EpisodeResult degraded = sim.RunEpisode(&agent);

  Simulator sim_greedy(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult reference = sim_greedy.RunEpisode(&greedy);

  // The NaN guard rejects every forward pass, so the whole episode runs on
  // the greedy fallback instead of crashing or propagating NaN costs.
  EXPECT_EQ(degraded.num_degraded_decisions, degraded.num_served);
  EXPECT_GT(degraded.num_degraded_decisions, 0);
  EXPECT_EQ(degraded.total_cost, reference.total_cost);
  EXPECT_TRUE(std::isfinite(degraded.total_cost));
  EXPECT_TRUE(CheckEpisodeFeasible(inst, degraded));
}

// --------------------------------------------------- trace + skip names --

TEST(SkipReasons, NamesAreStable) {
  EXPECT_STREQ(SkipReasonName(SkipReason::kNoFeasibleVehicle),
               "no_feasible_vehicle");
  EXPECT_STREQ(SkipReasonName(SkipReason::kCancelled), "cancelled");
  EXPECT_STREQ(SkipReasonName(SkipReason::kBreakdownDropped),
               "breakdown_dropped");
}

TEST(DisruptionTrace, WritesCsvWithHeaderAndRows) {
  const Instance inst = CampusInstance();
  SimulatorConfig config;
  config.disruption = AllFaultsConfig(37);
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher greedy;
  const EpisodeResult result = sim.RunEpisode(&greedy);
  ASSERT_FALSE(result.disruption_trace.empty());

  const std::string path = ::testing::TempDir() + "/dpdp_trace.csv";
  ASSERT_TRUE(WriteDisruptionTraceCsv(path, result.disruption_trace).ok());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  ASSERT_TRUE(std::getline(file, header));
  EXPECT_EQ(header,
            "kind,time,vehicle,order,duration_min,factor,"
            "orders_replanned,orders_dropped,ignored");
  size_t rows = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, result.disruption_trace.size());
}

TEST(DisruptionTrace, DebugStringMentionsKind) {
  AppliedDisruption applied;
  applied.event.kind = DisruptionKind::kBreakdown;
  applied.event.vehicle = 3;
  EXPECT_NE(applied.DebugString().find(
                DisruptionKindName(DisruptionKind::kBreakdown)),
            std::string::npos);
}

}  // namespace
}  // namespace dpdp
