// Checkpoint/recovery tests: atomic on-disk format, corruption detection
// via the CRC footer, and the flagship guarantee — kill + resume training
// is bit-identical to an uninterrupted run.

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "datagen/dataset.h"
#include "exp/harness.h"
#include "gtest/gtest.h"
#include "rl/actor_critic.h"
#include "rl/checkpoint.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "rl/trainer.h"
#include "sim/simulator.h"
#include "util/crc32.h"

namespace dpdp {
namespace {

Instance CampusInstance() {
  DpdpDataset dataset(StandardDatasetConfig(3, 60.0));
  return dataset.SampleInstance("ckpt", 12, 5, 0, 2, 4);
}

/// Simulator config with fault injection on, so resume must also realign
/// the disruption streams to stay bit-identical.
SimulatorConfig FaultySimConfig() {
  SimulatorConfig config;
  config.record_visits = false;
  config.disruption.seed = 41;
  config.disruption.breakdown_prob = 0.3;
  config.disruption.cancel_prob = 0.3;
  return config;
}

std::string AgentStateBytes(const DqnFleetAgent& agent) {
  std::ostringstream os;
  const Status s = agent.SaveState(&os);
  EXPECT_TRUE(s.ok()) << s;
  return os.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good()) << path;
}

bool FileExists(const std::string& path) {
  std::ifstream file(path);
  return file.good();
}

TEST(Checkpoint, SaveLoadRoundTripRestoresFullAgentState) {
  const Instance inst = CampusInstance();
  DqnFleetAgent trained(MakeDqnConfig(/*seed=*/9), "DQN");
  trained.set_training(true);
  Simulator sim(&inst, FaultySimConfig());
  TrainOptions options;
  options.episodes = 2;
  RunEpisodes(&sim, &trained, options);

  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, /*episodes_done=*/2, trained).ok());

  DqnFleetAgent restored(MakeDqnConfig(/*seed=*/9), "DQN");
  const Result<int> episodes = LoadCheckpoint(path, &restored);
  ASSERT_TRUE(episodes.ok()) << episodes.status();
  EXPECT_EQ(episodes.value(), 2);
  EXPECT_EQ(restored.episodes_trained(), trained.episodes_trained());
  EXPECT_EQ(restored.epsilon(), trained.epsilon());
  EXPECT_EQ(AgentStateBytes(restored), AgentStateBytes(trained));
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const Instance inst = CampusInstance();
  const int total_episodes = 6;
  const int kill_after = 3;

  // Reference: one uninterrupted 6-episode run.
  DqnFleetAgent uninterrupted(MakeDqnConfig(/*seed=*/9), "DQN");
  uninterrupted.set_training(true);
  Simulator sim_a(&inst, FaultySimConfig());
  TrainOptions full;
  full.episodes = total_episodes;
  RunEpisodes(&sim_a, &uninterrupted, full);

  // "Crashing" run: train to the checkpoint, then throw the process state
  // away (fresh agent, fresh simulator) and resume from disk.
  const std::string dir = TempPath("kill_resume");
  {
    DqnFleetAgent doomed(MakeDqnConfig(/*seed=*/9), "DQN");
    doomed.set_training(true);
    Simulator sim_b(&inst, FaultySimConfig());
    TrainOptions first_half;
    first_half.episodes = kill_after;
    first_half.checkpoint_every = kill_after;
    first_half.checkpoint_dir = dir;
    RunEpisodes(&sim_b, &doomed, first_half);
    ASSERT_TRUE(FileExists(first_half.checkpoint_path("DQN")));
  }
  DqnFleetAgent resumed(MakeDqnConfig(/*seed=*/9), "DQN");
  resumed.set_training(true);
  Simulator sim_c(&inst, FaultySimConfig());
  TrainOptions second_half;
  second_half.episodes = total_episodes;
  second_half.checkpoint_dir = dir;
  second_half.resume_from = second_half.checkpoint_path("DQN");
  const TrainingCurve tail = RunEpisodes(&sim_c, &resumed, second_half);

  // The resumed run only executed the remaining episodes...
  EXPECT_EQ(tail.nuv.size(),
            static_cast<size_t>(total_episodes - kill_after));
  // ...and its full training state — weights, target net, Adam moments,
  // RNG, epsilon schedule, replay buffer, best-weights snapshot — matches
  // the uninterrupted run byte for byte.
  EXPECT_EQ(AgentStateBytes(resumed), AgentStateBytes(uninterrupted));
}

TEST(Checkpoint, MissingFileIsNotFound) {
  DqnFleetAgent agent(MakeDqnConfig(3), "DQN");
  const Result<int> r = LoadCheckpoint(TempPath("never_written.ckpt"), &agent);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    agent_ = std::make_unique<DqnFleetAgent>(MakeDqnConfig(5), "DQN");
    path_ = TempPath("corrupt.ckpt");
    ASSERT_TRUE(SaveCheckpoint(path_, 1, *agent_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 32u);
  }

  std::unique_ptr<DqnFleetAgent> agent_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CheckpointCorruption, SingleBitFlipFailsCrc) {
  std::string flipped = bytes_;
  flipped[flipped.size() / 2] ^= 0x20;  // Somewhere inside the payload.
  WriteFileBytes(path_, flipped);
  const Result<int> r = LoadCheckpoint(path_, agent_.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("CRC"), std::string::npos)
      << r.status();
}

TEST_F(CheckpointCorruption, TruncationIsDetected) {
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() / 2));
  EXPECT_FALSE(LoadCheckpoint(path_, agent_.get()).ok());
  WriteFileBytes(path_, bytes_.substr(0, 4));  // Shorter than the header.
  EXPECT_FALSE(LoadCheckpoint(path_, agent_.get()).ok());
}

TEST_F(CheckpointCorruption, BadMagicIsDetected) {
  std::string wrong = bytes_;
  wrong[0] = 'X';
  WriteFileBytes(path_, wrong);
  const Result<int> r = LoadCheckpoint(path_, agent_.get());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("magic"), std::string::npos)
      << r.status();
}

TEST_F(CheckpointCorruption, ArchitectureMismatchRejected) {
  // A DGN agent has different layer shapes; its LoadState must refuse the
  // DQN blob instead of reinterpreting it.
  DqnFleetAgent other(MakeDgnConfig(5), "DGN");
  const Result<int> r = LoadCheckpoint(path_, &other);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Checkpoint, SeqFooterRoundTrips) {
  DqnFleetAgent agent(MakeDqnConfig(11), "DQN");
  const std::string path = TempPath("seq.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, /*episodes_done=*/7, agent,
                             /*seq=*/42).ok());

  const Result<CheckpointInfo> info = ReadCheckpointInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().episodes_done, 7);
  EXPECT_EQ(info.value().seq, 42u);

  // The seq footer never interferes with a full restore.
  DqnFleetAgent restored(MakeDqnConfig(11), "DQN");
  const Result<int> episodes = LoadCheckpoint(path, &restored);
  ASSERT_TRUE(episodes.ok()) << episodes.status();
  EXPECT_EQ(episodes.value(), 7);
}

TEST(Checkpoint, DefaultSeqIsEpisodesDone) {
  // The training loop saves once per episode, so episodes_done is already
  // a valid monotonic publication number — seq 0 means "use it".
  DqnFleetAgent agent(MakeDqnConfig(11), "DQN");
  const std::string path = TempPath("seq_default.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, /*episodes_done=*/5, agent).ok());
  const Result<CheckpointInfo> info = ReadCheckpointInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().seq, 5u);
}

TEST(Checkpoint, ReadCheckpointInfoValidatesWithoutAnAgent) {
  DqnFleetAgent agent(MakeDqnConfig(11), "DQN");
  const std::string path = TempPath("probe.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, 3, agent, 30).ok());
  const std::string bytes = ReadFileBytes(path);

  // Torn write: the probe must fail exactly like a full load would,
  // because the watcher uses it as its only integrity gate.
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 6));
  EXPECT_FALSE(ReadCheckpointInfo(path).ok());

  std::string flipped = bytes;
  flipped[flipped.size() / 3] ^= 0x01;
  WriteFileBytes(path, flipped);
  EXPECT_FALSE(ReadCheckpointInfo(path).ok());

  const Result<CheckpointInfo> missing =
      ReadCheckpointInfo(TempPath("no_such.ckpt"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  WriteFileBytes(path, bytes);  // Intact again: probe succeeds.
  ASSERT_TRUE(ReadCheckpointInfo(path).ok());
}

TEST(Checkpoint, VersionOneFilesStillLoadAndReportEpisodesAsSeq) {
  // Rebuild a version-1 file (no seq footer) from a fresh v2 checkpoint:
  // drop the 8-byte seq, stamp version 1, recompute the CRC.
  DqnFleetAgent agent(MakeDqnConfig(13), "DQN");
  const std::string path = TempPath("v1.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, /*episodes_done=*/4, agent, 99).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 8u + 4u + 8u + 4u);

  std::string v1 = bytes.substr(0, bytes.size() - 8 - 4);  // - seq - CRC.
  const uint32_t version1 = 1;
  std::memcpy(&v1[8], &version1, sizeof(version1));
  const uint32_t crc = Crc32(v1.data() + 8, v1.size() - 8);
  v1.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  WriteFileBytes(path, v1);

  const Result<CheckpointInfo> info = ReadCheckpointInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().episodes_done, 4);
  EXPECT_EQ(info.value().seq, 4u) << "v1 files report seq = episodes_done";

  DqnFleetAgent restored(MakeDqnConfig(13), "DQN");
  const Result<int> episodes = LoadCheckpoint(path, &restored);
  ASSERT_TRUE(episodes.ok()) << episodes.status();
  EXPECT_EQ(episodes.value(), 4);
  EXPECT_EQ(AgentStateBytes(restored), AgentStateBytes(agent));
}

TEST(Checkpoint, SaveLeavesNoTmpFileBehind) {
  DqnFleetAgent agent(MakeDqnConfig(7), "DQN");
  const std::string path = TempPath("clean.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, 0, agent).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(Checkpoint, SaveCreatesParentDirectories) {
  DqnFleetAgent agent(MakeDqnConfig(7), "DQN");
  const std::string path = TempPath("nested/dirs/deep.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, 0, agent).ok());
  EXPECT_TRUE(FileExists(path));
}

TEST(Checkpoint, ActorCriticReportsUnsupported) {
  ActorCriticAgent agent(MakeDqnConfig(3), "AC");
  const Status s = SaveCheckpoint(TempPath("ac.ckpt"), 0, agent);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(TrainOptions, CheckpointPathUsesDirAndAgentName) {
  TrainOptions options;
  options.checkpoint_dir = "/tmp/ckpts";
  EXPECT_EQ(options.checkpoint_path("ST-DDGN"), "/tmp/ckpts/ST-DDGN.ckpt");
}

}  // namespace
}  // namespace dpdp
