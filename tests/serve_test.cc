#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "rl/checkpoint.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "serve/dispatch_service.h"
#include "serve/load_generator.h"
#include "serve/model_server.h"
#include "serve/service_dispatcher.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace dpdp::serve {
namespace {

namespace fs = std::filesystem;
using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// A day with enough demand to exercise many decisions on the line network.
std::vector<Order> BusyOrders(int n) {
  std::vector<Order> orders;
  for (int i = 0; i < n; ++i) {
    const int pickup = 1 + (i % 2);    // F1 / F2
    const int delivery = 3 + (i % 2);  // F3 / F4
    orders.push_back(MakeOrder(i, pickup, delivery, 5.0 + (i % 3),
                               10.0 * i, 600.0 + 10.0 * i));
  }
  return orders;
}

/// A hand-built decision context (no simulator) for request-level tests.
/// Vehicle v's incremental length is 3 + v, so the greedy fallback picks 0.
struct FixedContext {
  explicit FixedContext(const Instance* inst, int num_vehicles = 4) {
    context.instance = inst;
    context.order = &inst->orders[0];
    context.now = 100.0;
    context.time_interval = 10;
    context.options.resize(num_vehicles);
    for (int v = 0; v < num_vehicles; ++v) {
      VehicleOption& opt = context.options[v];
      opt.vehicle = v;
      opt.feasible = true;
      opt.used = (v % 2) != 0;
      opt.num_assigned_orders = v;
      opt.current_length = 5.0 + v;
      opt.new_length = 8.0 + 2.0 * v;
      opt.incremental_length = 3.0 + v;
      opt.st_score = 0.0;
      opt.position = {static_cast<double>(v), 0.0};
    }
    context.num_feasible = num_vehicles;
  }
  DispatchContext context;
};

/// Bitwise episode-equality: every deterministic field of the outcome.
/// Wall-clock fields are excluded on purpose (they measure the machine,
/// not the policy).
void ExpectSameEpisode(const EpisodeResult& a, const EpisodeResult& b) {
  EXPECT_EQ(a.num_orders, b.num_orders);
  EXPECT_EQ(a.num_served, b.num_served);
  EXPECT_EQ(a.num_unserved, b.num_unserved);
  EXPECT_EQ(a.num_decisions, b.num_decisions);
  EXPECT_EQ(a.num_degraded_decisions, b.num_degraded_decisions);
  EXPECT_EQ(a.nuv, b.nuv);
  EXPECT_EQ(a.total_travel_length, b.total_travel_length);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.sum_incremental_length, b.sum_incremental_length);
  EXPECT_EQ(a.order_assignment, b.order_assignment);
}

void ExpectSameWeights(const std::vector<nn::Matrix>& a,
                       const std::vector<nn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows());
    ASSERT_EQ(a[i].cols(), b[i].cols());
    for (int r = 0; r < a[i].rows(); ++r) {
      for (int c = 0; c < a[i].cols(); ++c) {
        EXPECT_EQ(a[i](r, c), b[i](r, c)) << "param " << i << " (" << r
                                          << ", " << c << ")";
      }
    }
  }
}

/// The decision a local evaluation-mode agent with `config` makes on `ctx`.
int LocalChoice(const AgentConfig& config, const DispatchContext& ctx) {
  DqnFleetAgent agent(config, "expected");
  return agent.ChooseVehicle(ctx);
}

/// Unique scratch directory under the system temp dir.
fs::path MakeScratchDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dpdp_serve_test_" + tag + "_" +
       std::to_string(static_cast<uint64_t>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// RequestQueue: flush policy + admission bound
// ---------------------------------------------------------------------------

DecisionRequest MakeRequest(const DispatchContext* ctx) {
  DecisionRequest r;
  r.context = ctx;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(RequestQueueTest, FlushesImmediatelyAtMaxBatch) {
  RequestQueue queue(16);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  }

  // max_wait is 10 s; a full batch must flush without waiting it out.
  std::vector<DecisionRequest> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/3, /*max_wait_us=*/10'000'000),
            3);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0) << "full batch waited for the max_wait deadline";
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, FlushesPartialBatchAfterMaxWait) {
  RequestQueue queue(16);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);

  // Only 2 of max_batch 8 present: the pop must return them once the
  // oldest request ages past max_wait instead of blocking for more.
  std::vector<DecisionRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/8, /*max_wait_us=*/2000), 2);
}

TEST(RequestQueueTest, LatePushJoinsWaitingBatch) {
  RequestQueue queue(16);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  std::thread pusher([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.TryPush(MakeRequest(nullptr));
  });
  // Generous max_wait: the second request lands inside the window and the
  // pop returns both coalesced.
  std::vector<DecisionRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/2, /*max_wait_us=*/2'000'000),
            2);
  pusher.join();
}

TEST(RequestQueueTest, BoundedAdmissionRejectsWithoutConsuming) {
  RequestQueue queue(2);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);

  DecisionRequest overflow = MakeRequest(nullptr);
  std::future<ServeReply> fut = overflow.reply.get_future();
  EXPECT_EQ(queue.TryPush(std::move(overflow)), PushResult::kFull);

  // The rejected request still owns its promise — the shed path can answer.
  ServeReply reply;
  reply.vehicle = 7;
  reply.shed = true;
  overflow.reply.set_value(reply);
  EXPECT_EQ(fut.get().vehicle, 7);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueueTest, ZeroCapacityShedsEverything) {
  RequestQueue queue(0);
  EXPECT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kFull);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, CloseDrainsBacklogThenReturnsZero) {
  RequestQueue queue(8);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(MakeRequest(nullptr)), PushResult::kClosed);

  // Close never drops admitted requests: they drain in batches, then the
  // consumer sees 0 (its exit signal).
  std::vector<DecisionRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/2, /*max_wait_us=*/100), 2);
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/2, /*max_wait_us=*/100), 1);
  EXPECT_EQ(queue.PopBatch(&out, /*max_batch=*/2, /*max_wait_us=*/100), 0);
}

// ---------------------------------------------------------------------------
// Served decisions == local-agent decisions (the core invariant)
// ---------------------------------------------------------------------------

void RunServedMatchesLocal(const AgentConfig& config) {
  const Instance inst = MakeTestInstance(BusyOrders(12), 3);
  SimulatorConfig sim_config;
  sim_config.record_plan = true;

  DqnFleetAgent agent(config, "local");
  Simulator local_sim(&inst, sim_config);
  const EpisodeResult local = local_sim.RunEpisode(&agent);
  ASSERT_GT(local.num_decisions, 0);

  ModelServer models(config);
  ServeConfig serve_config;
  serve_config.max_batch = 4;
  serve_config.max_wait_us = 200;
  DispatchService service(serve_config, &models);
  ServiceDispatcher dispatcher(&service);
  Simulator served_sim(&inst, sim_config);
  const EpisodeResult served = served_sim.RunEpisode(&dispatcher);
  service.Stop();

  ExpectSameEpisode(local, served);
  EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(inst, served));
  EXPECT_EQ(service.sheds(), 0u);
  EXPECT_EQ(service.degraded(), 0u);
  EXPECT_EQ(service.requests(),
            static_cast<uint64_t>(served.num_decisions));
  EXPECT_GT(service.batches(), 0u);
}

TEST(DispatchServiceTest, ServedEpisodeMatchesLocalAgentMlp) {
  RunServedMatchesLocal(MakeStDdqnConfig(7));
}

TEST(DispatchServiceTest, ServedEpisodeMatchesLocalAgentGraph) {
  RunServedMatchesLocal(MakeStDdgnConfig(7));
}

TEST(DispatchServiceTest, FourClientsBitwiseMatchSingleClient) {
  const Instance inst = MakeTestInstance(BusyOrders(10), 3);
  const AgentConfig config = MakeStDdqnConfig(3);
  LoadOptions options;
  options.sim.record_plan = true;

  ModelServer models(config);
  ServeConfig serve_config;
  serve_config.max_batch = 8;
  serve_config.max_wait_us = 300;

  LoadReport solo;
  {
    DispatchService service(serve_config, &models);
    solo = RunServedLoad({&inst}, &service, options);
  }
  ASSERT_EQ(solo.clients.size(), 1u);
  ASSERT_EQ(solo.clients[0].episodes.size(), 1u);
  ASSERT_GT(solo.total_decisions, 0);

  // Four concurrent clients on copies of the same campus: whatever batch
  // interleavings occur, every client's episode must equal the solo run.
  LoadReport quad;
  {
    DispatchService service(serve_config, &models);
    quad = RunServedLoad({&inst, &inst, &inst, &inst}, &service, options);
    EXPECT_EQ(service.sheds(), 0u);
  }
  ASSERT_EQ(quad.clients.size(), 4u);
  for (const ClientOutcome& client : quad.clients) {
    ASSERT_EQ(client.episodes.size(), 1u);
    ExpectSameEpisode(solo.clients[0].episodes[0], client.episodes[0]);
    EXPECT_EQ(client.sheds, 0);
  }
  EXPECT_EQ(quad.total_decisions, 4 * solo.total_decisions);
}

// ---------------------------------------------------------------------------
// Load shedding
// ---------------------------------------------------------------------------

TEST(DispatchServiceTest, ShedPathMatchesGreedyInsertionBaseline) {
  const Instance inst = MakeTestInstance(BusyOrders(8), 3);
  SimulatorConfig sim_config;
  sim_config.record_plan = true;

  // Drain mode: capacity 0 sheds every request, deterministically forcing
  // the fallback path for a whole episode.
  const AgentConfig config = MakeStDdqnConfig(5);
  ModelServer models(config);
  ServeConfig serve_config;
  serve_config.queue_capacity = 0;
  DispatchService service(serve_config, &models);
  ServiceDispatcher dispatcher(&service, "shed-client");
  Simulator served_sim(&inst, sim_config);
  const EpisodeResult shed = served_sim.RunEpisode(&dispatcher);
  service.Stop();

  ASSERT_GT(shed.num_decisions, 0);
  EXPECT_EQ(service.sheds(), service.requests());
  EXPECT_EQ(dispatcher.sheds(), shed.num_decisions);
  EXPECT_EQ(service.batches(), 0u);

  // Shed decisions are exactly Baseline 1 (min incremental length), so the
  // whole degraded episode equals the baseline's — and stays feasible.
  MinIncrementalLengthDispatcher baseline;
  Simulator baseline_sim(&inst, sim_config);
  const EpisodeResult expected = baseline_sim.RunEpisode(&baseline);
  ExpectSameEpisode(expected, shed);
  EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(inst, shed));
}

TEST(DispatchServiceTest, DegradedModelOutputIsReportedNotSubstituted) {
  const AgentConfig config = MakeStDdqnConfig(9);
  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  FixedContext fixed(&inst);

  ModelServer models(config);
  // Poison the published weights: NaNs in the output head make every Q
  // non-finite, which the service must surface as vehicle -1 (degraded)
  // rather than silently substituting greedy — that's the caller's
  // fallback so degradation counts match a local-agent run. (The head is
  // poisoned rather than the input layer because rectifiers can squash a
  // lone upstream NaN back to 0.)
  DqnFleetAgent agent(config, "poison-source");
  auto poisoned = std::make_shared<ModelSnapshot>();
  poisoned->seq = 1;
  poisoned->source = "poisoned";
  poisoned->weights = agent.ExportPolicyWeights();
  ASSERT_FALSE(poisoned->weights.empty());
  for (size_t i = poisoned->weights.size() - 2; i < poisoned->weights.size();
       ++i) {
    nn::Matrix& w = poisoned->weights[i];
    for (int r = 0; r < w.rows(); ++r) {
      for (int c = 0; c < w.cols(); ++c) {
        w(r, c) = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  ASSERT_TRUE(models.Publish(poisoned));

  DispatchService service(ServeConfig{}, &models);
  const ServeReply reply = service.Submit(fixed.context).get();
  service.Stop();

  EXPECT_EQ(reply.vehicle, -1);
  EXPECT_TRUE(reply.degraded);
  EXPECT_FALSE(reply.shed);
  EXPECT_EQ(reply.model_seq, 1u);
  EXPECT_EQ(service.degraded(), 1u);
}

// ---------------------------------------------------------------------------
// Hot swap under concurrent load
// ---------------------------------------------------------------------------

TEST(HotSwapTest, SwapUnderConcurrentRequestsNeverTearsOrStalls) {
  AgentConfig config_a = MakeStDdqnConfig(21);
  AgentConfig config_b = config_a;
  config_b.seed = 4242;  // Same architecture, different weights.

  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  const FixedContext fixed(&inst);

  // Ground truth per weight set, computed by local agents up front.
  const int choice_a = LocalChoice(config_a, fixed.context);
  const int choice_b = LocalChoice(config_b, fixed.context);
  ASSERT_GE(choice_a, 0);
  ASSERT_GE(choice_b, 0);

  ModelServer models(config_a);
  const std::weak_ptr<const ModelSnapshot> init_snapshot = models.Current();

  const std::vector<nn::Matrix> weights_a =
      DqnFleetAgent(config_a, "a").ExportPolicyWeights();
  const std::vector<nn::Matrix> weights_b =
      DqnFleetAgent(config_b, "b").ExportPolicyWeights();

  ServeConfig serve_config;
  serve_config.max_batch = 8;
  serve_config.max_wait_us = 100;
  DispatchService service(serve_config, &models);

  // Requesters hammer the service while the swapper publishes alternating
  // snapshots with rising seq. Every reply must match the ground-truth
  // choice OF THE SNAPSHOT THAT SCORED IT (reply.model_seq): a torn weight
  // sync or a batch evaluated on half-swapped weights shows up as a reply
  // whose vehicle matches neither.
  constexpr int kRequesters = 4;
  constexpr int kRequestsEach = 40;
  constexpr int kSwaps = 30;
  std::atomic<int> mismatches{0};
  std::atomic<int> unanswered{0};

  std::vector<std::thread> requesters;
  requesters.reserve(kRequesters);
  for (int t = 0; t < kRequesters; ++t) {
    requesters.emplace_back([&] {
      for (int i = 0; i < kRequestsEach; ++i) {
        std::future<ServeReply> fut = service.Submit(fixed.context);
        if (fut.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          unanswered.fetch_add(1);
          return;  // Abandoning the future would block in ~future anyway.
        }
        const ServeReply reply = fut.get();
        const int expected =
            (reply.model_seq % 2 == 0) ? choice_a : choice_b;
        if (reply.shed) continue;  // Shed replies bypass the model.
        if (reply.vehicle != expected) mismatches.fetch_add(1);
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 1; i <= kSwaps; ++i) {
      auto snap = std::make_shared<ModelSnapshot>();
      snap->seq = static_cast<uint64_t>(i);
      snap->source = "swap";
      snap->weights = (i % 2 == 0) ? weights_a : weights_b;
      models.Publish(std::move(snap));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  for (std::thread& t : requesters) t.join();
  swapper.join();

  EXPECT_EQ(unanswered.load(), 0) << "hot swap stalled in-flight requests";
  EXPECT_EQ(mismatches.load(), 0) << "a reply matched neither snapshot's "
                                     "ground truth (torn weight sync)";

  // One more request after the dust settles: it must be scored by the
  // final snapshot (Publish happened-before), proving the service loop
  // really does pick up swaps (not just tolerate them).
  const ServeReply last = service.Submit(fixed.context).get();
  EXPECT_EQ(last.model_seq, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(last.vehicle, kSwaps % 2 == 0 ? choice_a : choice_b);
  EXPECT_GE(service.swaps_applied(), 1u);
  service.Stop();

  // Retirement: nothing references the seq-0 init snapshot anymore, so its
  // storage must be gone — refcount retirement, not a leak or a cache.
  EXPECT_TRUE(init_snapshot.expired());
}

// ---------------------------------------------------------------------------
// ModelServer: checkpoint directory watching
// ---------------------------------------------------------------------------

TEST(ModelServerTest, InitSnapshotMatchesFreshAgent) {
  const AgentConfig config = MakeStDdqnConfig(13);
  ModelServer models(config);
  const std::shared_ptr<const ModelSnapshot> snap = models.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->seq, 0u);
  EXPECT_EQ(snap->source, "init");
  DqnFleetAgent agent(config, "fresh");
  ExpectSameWeights(snap->weights, agent.ExportPolicyWeights());
}

TEST(ModelServerTest, PublishRejectsStaleSeq) {
  ModelServer models(MakeStDdqnConfig(13));
  auto newer = std::make_shared<ModelSnapshot>();
  newer->seq = 5;
  newer->weights = models.Current()->weights;
  ASSERT_TRUE(models.Publish(newer));

  auto stale = std::make_shared<ModelSnapshot>();
  stale->seq = 5;  // Equal is stale too: strictly-newer wins.
  stale->weights = newer->weights;
  EXPECT_FALSE(models.Publish(stale));
  EXPECT_EQ(models.current_seq(), 5u);
}

TEST(ModelServerTest, PollLoadsNewestBySeqAndSkipsStale) {
  const fs::path dir = MakeScratchDir("poll");
  const AgentConfig config = MakeStDdqnConfig(17);
  AgentConfig config_b = config;
  config_b.seed = 99;

  DqnFleetAgent agent_a(config, "a");
  DqnFleetAgent agent_b(config_b, "b");
  ASSERT_TRUE(SaveCheckpoint((dir / "a.ckpt").string(), 5, agent_a).ok());
  ASSERT_TRUE(
      SaveCheckpoint((dir / "b.ckpt").string(), 9, agent_b, 9).ok());

  ModelServer models(config);
  EXPECT_EQ(models.PollOnce(dir.string()), 1);
  EXPECT_EQ(models.current_seq(), 9u);
  // The published weights are agent_b's, proving seq (not filename order
  // or mtime) picked the winner.
  ExpectSameWeights(models.Current()->weights, agent_b.ExportPolicyWeights());

  // Re-poll with nothing new: no churn.
  EXPECT_EQ(models.PollOnce(dir.string()), 0);

  // An older checkpoint re-appearing (restore from backup) must not roll
  // the serving model back.
  ASSERT_TRUE(
      SaveCheckpoint((dir / "restored.ckpt").string(), 3, agent_a, 3).ok());
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  EXPECT_EQ(models.current_seq(), 9u);

  fs::remove_all(dir);
}

TEST(ModelServerTest, PollSkipsCorruptAndStagingFiles) {
  const fs::path dir = MakeScratchDir("corrupt");
  const AgentConfig config = MakeStDdqnConfig(19);
  DqnFleetAgent agent(config, "a");
  ASSERT_TRUE(SaveCheckpoint((dir / "good.ckpt").string(), 4, agent, 4).ok());

  {
    // Torn file: valid prefix, truncated body — must fail its CRC probe.
    std::ifstream in(dir / "good.ckpt", std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream torn(dir / "torn.ckpt", std::ios::binary);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
  }
  {
    std::ofstream junk(dir / "junk.ckpt", std::ios::binary);
    junk << "not a checkpoint at all";
  }
  {
    // In-progress atomic save: .tmp staging files are never candidates,
    // even with a huge would-be seq inside.
    ASSERT_TRUE(
        SaveCheckpoint((dir / "staging.ckpt").string(), 50, agent, 50).ok());
    fs::rename(dir / "staging.ckpt", dir / "staging.ckpt.tmp");
  }

  ModelServer models(config);
  EXPECT_EQ(models.PollOnce(dir.string()), 1);
  EXPECT_EQ(models.current_seq(), 4u);

  fs::remove_all(dir);
}

TEST(ModelServerTest, WatcherPicksUpNewCheckpoint) {
  const fs::path dir = MakeScratchDir("watcher");
  const AgentConfig config = MakeStDdqnConfig(23);
  ModelServer models(config);
  models.StartWatcher(dir.string(), /*poll_ms=*/5);

  DqnFleetAgent agent(config, "producer");
  ASSERT_TRUE(
      SaveCheckpoint((dir / "live.ckpt").string(), 20, agent, 20).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (models.current_seq() != 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(models.current_seq(), 20u);
  models.StopWatcher();
  models.StopWatcher();  // Idempotent.

  fs::remove_all(dir);
}

TEST(ModelServerTest, ServiceAppliesCheckpointLoadedMidRun) {
  // End-to-end: a checkpoint written by the training stack, loaded through
  // PollOnce, changes what the service serves — and the served decision
  // equals a local agent restored from the same file.
  const fs::path dir = MakeScratchDir("e2e");
  const AgentConfig config = MakeStDdqnConfig(29);
  AgentConfig trained_config = config;
  trained_config.seed = 777;

  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  const FixedContext fixed(&inst);
  const int init_choice = LocalChoice(config, fixed.context);
  const int trained_choice = LocalChoice(trained_config, fixed.context);

  DqnFleetAgent trained(trained_config, "trained");
  ASSERT_TRUE(
      SaveCheckpoint((dir / "model.ckpt").string(), 12, trained, 12).ok());

  ModelServer models(config);
  DispatchService service(ServeConfig{}, &models);

  ServeReply before = service.Submit(fixed.context).get();
  EXPECT_EQ(before.model_seq, 0u);
  EXPECT_EQ(before.vehicle, init_choice);

  ASSERT_EQ(models.PollOnce(dir.string()), 1);
  ServeReply after = service.Submit(fixed.context).get();
  EXPECT_EQ(after.model_seq, 12u);
  EXPECT_EQ(after.vehicle, trained_choice);
  EXPECT_EQ(service.swaps_applied(), 1u);
  service.Stop();

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Percentile helper
// ---------------------------------------------------------------------------

TEST(LoadGeneratorTest, NearestRankPercentiles) {
  const std::vector<double> samples = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 0.5), 0.0);
}

}  // namespace
}  // namespace dpdp::serve
