// Golden determinism tests for the parallel experiment stack: the same
// work must produce bit-identical results no matter how many threads run
// it, because every parallel task derives its RNG stream from
// (base_seed, task_index) instead of from shared scheduler state.

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/greedy_baselines.h"
#include "exp/harness.h"
#include "gtest/gtest.h"
#include "rl/dqn_agent.h"
#include "rl/trainer.h"
#include "sim/simulator.h"
#include "stpred/predictor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dpdp {
namespace {

// ------------------------------------------------------- Rng::Fork(id) --

TEST(RngFork, SameTaskIdYieldsSameStream) {
  const Rng parent(123);
  Rng a = parent.Fork(7);
  Rng b = parent.Fork(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
}

TEST(RngFork, DistinctTaskIdsYieldDistinctStreams) {
  const Rng parent(123);
  std::set<uint64_t> first_draws;
  for (uint64_t id = 0; id < 64; ++id) {
    Rng fork = parent.Fork(id);
    first_draws.insert(fork.NextU64());
  }
  // All 64 sub-streams open differently (SplitMix64 finalization makes
  // collisions here astronomically unlikely; a hit means Fork is broken).
  EXPECT_EQ(first_draws.size(), 64u);
}

TEST(RngFork, IndependentOfParentDrawState) {
  // Fork(id) is a pure function of (seed, id): draws on the parent must
  // not change what a later fork produces. (The legacy zero-arg Fork()
  // intentionally depends on parent state — different contract.)
  Rng fresh(99);
  Rng drawn(99);
  for (int i = 0; i < 10; ++i) (void)drawn.NextU64();
  Rng a = fresh.Fork(3);
  Rng b = drawn.Fork(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
}

TEST(RngFork, DeriveSeedDiffersFromBaseSeed) {
  // Task 0's stream must not alias the parent's own stream.
  for (uint64_t seed : {0ULL, 1ULL, 17ULL, 0xdeadbeefULL}) {
    EXPECT_NE(Rng::DeriveSeed(seed, 0), seed);
    EXPECT_NE(Rng::DeriveSeed(seed, 0), Rng::DeriveSeed(seed, 1));
  }
}

// ---------------------------------------------- RunDrlMethod golden run --

struct HarnessWorld {
  HarnessWorld()
      : dataset(StandardDatasetConfig(3, 60.0)),
        instance(dataset.SampleInstance("t", 12, 5, 0, 2, 4)) {
    AverageStdPredictor predictor;
    predicted = predictor.Predict(dataset.History(3, 2)).value();
  }
  DpdpDataset dataset;
  Instance instance;
  nn::Matrix predicted;
};

void ExpectIdenticalSummaries(const std::string& method) {
  HarnessWorld world;
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const MethodSummary a = RunDrlMethod(world.instance, world.predicted,
                                       method, /*episodes=*/3,
                                       /*num_seeds=*/4, /*seed_base=*/7,
                                       &serial);
  const MethodSummary b = RunDrlMethod(world.instance, world.predicted,
                                       method, /*episodes=*/3,
                                       /*num_seeds=*/4, /*seed_base=*/7,
                                       &parallel);
  ASSERT_EQ(a.nuv.size(), 4u);
  ASSERT_EQ(b.nuv.size(), 4u);
  for (size_t s = 0; s < a.nuv.size(); ++s) {
    // Bit-identical, not approximately equal: the parallel runs replay
    // the exact arithmetic of the serial ones.
    EXPECT_EQ(a.nuv[s], b.nuv[s]) << method << " seed " << s;
    EXPECT_EQ(a.tc[s], b.tc[s]) << method << " seed " << s;
  }
}

TEST(DeterminismGolden, RunDrlMethodDqnOneVsFourThreads) {
  ExpectIdenticalSummaries("DQN");
}

TEST(DeterminismGolden, RunDrlMethodStDdgnOneVsFourThreads) {
  ExpectIdenticalSummaries("ST-DDGN");
}

TEST(DeterminismGolden, SeedRunsActuallyDiffer) {
  // Sanity check that the golden comparison is not vacuous: different
  // seeds should explore differently on this instance.
  HarnessWorld world;
  ThreadPool serial(1);
  const MethodSummary s = RunDrlMethod(world.instance, world.predicted,
                                       "DQN", /*episodes=*/3,
                                       /*num_seeds=*/4, /*seed_base=*/7,
                                       &serial);
  const bool any_difference =
      s.tc[0] != s.tc[1] || s.tc[1] != s.tc[2] || s.tc[2] != s.tc[3] ||
      s.nuv[0] != s.nuv[1] || s.nuv[1] != s.nuv[2] || s.nuv[2] != s.nuv[3];
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------ disrupted runs stay golden --

TEST(DeterminismGolden, DisruptedRunDrlMethodOneVsFourThreads) {
  // Fault injection must not break the 1-thread == N-thread contract: the
  // disruption stream is a pure function of (seed, episode index), never
  // of scheduling. Each parallel seed-task builds its own Simulator, so
  // all of them replay identical fault streams.
  HarnessWorld world;
  SimulatorConfig faulty;
  faulty.disruption.seed = 91;
  faulty.disruption.breakdown_prob = 0.4;
  faulty.disruption.cancel_prob = 0.4;
  faulty.disruption.inflation_prob = 0.4;

  ThreadPool serial(1);
  ThreadPool parallel(4);
  const MethodSummary a = RunDrlMethod(world.instance, world.predicted,
                                       "DQN", /*episodes=*/3,
                                       /*num_seeds=*/4, /*seed_base=*/7,
                                       &serial, &faulty);
  const MethodSummary b = RunDrlMethod(world.instance, world.predicted,
                                       "DQN", /*episodes=*/3,
                                       /*num_seeds=*/4, /*seed_base=*/7,
                                       &parallel, &faulty);
  ASSERT_EQ(a.nuv.size(), 4u);
  ASSERT_EQ(b.nuv.size(), 4u);
  EXPECT_TRUE(a.seed_errors.empty());
  EXPECT_TRUE(b.seed_errors.empty());
  for (size_t s = 0; s < a.nuv.size(); ++s) {
    EXPECT_EQ(a.nuv[s], b.nuv[s]) << "seed " << s;
    EXPECT_EQ(a.tc[s], b.tc[s]) << "seed " << s;
  }
}

TEST(DeterminismGolden, DisruptionTraceIdenticalAcrossThreadCounts) {
  // Same property one level deeper: the per-episode applied-disruption
  // traces of parallel per-seed simulators match the serial ones event
  // for event.
  HarnessWorld world;
  SimulatorConfig faulty;
  faulty.disruption.seed = 93;
  faulty.disruption.breakdown_prob = 0.6;
  faulty.disruption.cancel_prob = 0.6;
  faulty.record_visits = false;

  auto run_traces = [&](ThreadPool* pool) {
    std::vector<std::string> traces(4);
    pool->ParallelFor(4, [&](int s) {
      SimulatorConfig config = faulty;
      Simulator sim(&world.instance, config);
      MinIncrementalLengthDispatcher greedy;
      std::ostringstream os;
      for (int e = 0; e < 3; ++e) {
        const EpisodeResult result = sim.RunEpisode(&greedy);
        for (const AppliedDisruption& applied : result.disruption_trace) {
          os << applied.DebugString() << "\n";
        }
      }
      traces[s] = os.str();
    });
    return traces;
  };
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const std::vector<std::string> t1 = run_traces(&serial);
  const std::vector<std::string> t4 = run_traces(&parallel);
  EXPECT_FALSE(t1[0].empty());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(t1[s], t4[s]) << "seed slot " << s;
  }
}

// ------------------------------------------- parallel minibatch updates --

// Trains one agent with the parallel-batch path on the given pool and
// returns the serialized final weights.
std::string TrainParallelBatch(const HarnessWorld& world, ThreadPool* pool) {
  AgentConfig config = MakeStDdgnConfig(/*seed=*/11);
  config.parallel_batch = true;
  config.batch_pool = pool;
  DqnFleetAgent agent(config, "ST-DDGN");

  SimulatorConfig sim_config;
  sim_config.predicted_std = world.predicted;
  sim_config.record_visits = false;
  Simulator simulator(&world.instance, sim_config);
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 4;
  RunEpisodes(&simulator, &agent, options);

  std::ostringstream os;
  agent.Save(&os);
  return os.str();
}

TEST(DeterminismGolden, ParallelBatchOneVsFourThreads) {
  HarnessWorld world;
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const std::string w1 = TrainParallelBatch(world, &serial);
  const std::string w4 = TrainParallelBatch(world, &parallel);
  EXPECT_FALSE(w1.empty());
  // The ordered gradient reduction makes every update — and therefore the
  // final weight bytes — identical across worker counts.
  EXPECT_EQ(w1, w4);
}

}  // namespace
}  // namespace dpdp
