#include <gtest/gtest.h>

#include <sstream>

#include "baselines/greedy_baselines.h"
#include "datagen/dataset.h"
#include "exp/harness.h"
#include "model/instance_io.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

TEST(InstanceIo, RoundTripPreservesEverything) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 7.5, 12.0, 200.0),
                        MakeOrder(1, 3, 4, 10.0, 30.0, 400.0)},
                       3);
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);

  const Result<Instance> loaded = LoadInstanceCsv(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Instance& inst = loaded.value();

  EXPECT_EQ(inst.name, original.name);
  EXPECT_EQ(inst.num_time_intervals, original.num_time_intervals);
  EXPECT_DOUBLE_EQ(inst.horizon_minutes, original.horizon_minutes);
  ASSERT_EQ(inst.num_orders(), original.num_orders());
  for (int i = 0; i < inst.num_orders(); ++i) {
    EXPECT_EQ(inst.orders[i].pickup_node, original.orders[i].pickup_node);
    EXPECT_EQ(inst.orders[i].delivery_node,
              original.orders[i].delivery_node);
    EXPECT_DOUBLE_EQ(inst.orders[i].quantity, original.orders[i].quantity);
    EXPECT_DOUBLE_EQ(inst.orders[i].create_time_min,
                     original.orders[i].create_time_min);
    EXPECT_DOUBLE_EQ(inst.orders[i].latest_time_min,
                     original.orders[i].latest_time_min);
  }
  EXPECT_EQ(inst.vehicle_depots, original.vehicle_depots);
  EXPECT_DOUBLE_EQ(inst.vehicle_config.capacity,
                   original.vehicle_config.capacity);
  EXPECT_DOUBLE_EQ(inst.vehicle_config.fixed_cost,
                   original.vehicle_config.fixed_cost);
  // Distance matrix round-trips exactly (precision 17 digits).
  for (int i = 0; i < inst.network->num_nodes(); ++i) {
    for (int j = 0; j < inst.network->num_nodes(); ++j) {
      EXPECT_DOUBLE_EQ(inst.network->Distance(i, j),
                       original.network->Distance(i, j));
    }
  }
  EXPECT_EQ(inst.network->num_depots(), original.network->num_depots());
}

TEST(InstanceIo, RoundTripOnGeneratedCampusInstance) {
  DpdpDataset dataset(StandardDatasetConfig(5, 80.0));
  const Instance original = dataset.SampleInstance("gen", 25, 8, 0, 2, 3);
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  const Result<Instance> loaded = LoadInstanceCsv(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().num_orders(), 25);
  EXPECT_EQ(loaded.value().num_vehicles(), 8);
  EXPECT_TRUE(ValidateInstance(loaded.value()).ok());
}

TEST(InstanceIo, FileRoundTrip) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  const std::string path = ::testing::TempDir() + "/dpdp_instance.csv";
  ASSERT_TRUE(SaveInstanceCsvFile(original, path).ok());
  const Result<Instance> loaded = LoadInstanceCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().num_orders(), 1);
}

TEST(InstanceIo, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadInstanceCsvFile("/nonexistent/never.csv").ok());
}

TEST(InstanceIo, LoadRejectsGarbage) {
  std::stringstream garbage("hello,world\n1,2,3\n");
  EXPECT_FALSE(LoadInstanceCsv(&garbage).ok());
}

TEST(InstanceIo, LoadRejectsUnknownSection) {
  std::stringstream bad("[wat]\na\n");
  const Result<Instance> r = LoadInstanceCsv(&bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceIo, LoadRejectsMalformedNumbers) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  std::string text = buffer.str();
  // Corrupt a quantity field.
  const size_t pos = text.find("[orders]");
  ASSERT_NE(pos, std::string::npos);
  text.replace(text.find("5,", pos), 2, "x,");
  std::stringstream corrupted(text);
  EXPECT_FALSE(LoadInstanceCsv(&corrupted).ok());
}

TEST(InstanceIo, LoadRejectsPartiallyNumericFields) {
  // "12x" must not silently parse as 12 (std::stoi would accept it).
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  std::string text = buffer.str();
  const size_t pos = text.find("[orders]");
  ASSERT_NE(pos, std::string::npos);
  const size_t field = text.find("10,", pos);  // create_min column.
  ASSERT_NE(field, std::string::npos);
  text.replace(field, 3, "10x,");
  std::stringstream corrupted(text);
  const Result<Instance> r = LoadInstanceCsv(&corrupted);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceIo, LoadRejectsTruncatedFile) {
  // Cutting the file mid-way leaves the distance matrix incomplete; the
  // loader must notice instead of defaulting missing entries to zero.
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  const std::string text = buffer.str();
  const size_t cut = text.find("[vehicle_config]");
  ASSERT_NE(cut, std::string::npos);
  // Keep the header and roughly half of the distance rows.
  const size_t dist = text.find("[distances]");
  ASSERT_NE(dist, std::string::npos);
  const size_t half = dist + (cut - dist) / 2;
  const size_t line_end = text.find('\n', half);
  ASSERT_NE(line_end, std::string::npos);
  std::stringstream truncated(text.substr(0, line_end + 1));
  const Result<Instance> r = LoadInstanceCsv(&truncated);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceIo, LoadRejectsDuplicateDistanceEntries) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  std::string text = buffer.str();
  const size_t dist = text.find("[distances]\nfrom,to,km\n");
  ASSERT_NE(dist, std::string::npos);
  const size_t first_row = dist + std::string("[distances]\nfrom,to,km\n")
                                      .size();
  const size_t first_end = text.find('\n', first_row);
  ASSERT_NE(first_end, std::string::npos);
  const std::string row = text.substr(first_row, first_end + 1 - first_row);
  text.insert(first_end + 1, row);  // Same (from,to) pair twice.
  std::stringstream duplicated(text);
  const Result<Instance> r = LoadInstanceCsv(&duplicated);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("duplicate"), std::string::npos)
      << r.status();
}

TEST(InstanceIo, LoadRejectsMissingMetaSection) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  std::string text = buffer.str();
  const size_t nodes = text.find("[nodes]");
  ASSERT_NE(nodes, std::string::npos);
  std::stringstream headless(text.substr(nodes));
  EXPECT_FALSE(LoadInstanceCsv(&headless).ok());
}

TEST(InstanceIo, LoadRejectsBinaryGarbage) {
  std::string blob = "\x7f""ELF\x01\x02\x03";
  blob.push_back('\0');
  blob += "\xff\xfe more bytes \x00\x01";
  std::stringstream garbage(blob);
  EXPECT_FALSE(LoadInstanceCsv(&garbage).ok());
}

TEST(InstanceIo, LoadToleratesCommentsAndBlankLines) {
  const Instance original =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  const std::string text =
      "# exported by tests\n\n" + buffer.str() + "\n# trailing comment\n";
  std::stringstream annotated(text);
  EXPECT_TRUE(LoadInstanceCsv(&annotated).ok());
}

TEST(InstanceIo, LoadedInstanceSimulatesIdentically) {
  DpdpDataset dataset(StandardDatasetConfig(5, 60.0));
  const Instance original = dataset.SampleInstance("sim", 20, 6, 0, 1, 9);
  std::stringstream buffer;
  SaveInstanceCsv(original, &buffer);
  const Result<Instance> loaded = LoadInstanceCsv(&buffer);
  ASSERT_TRUE(loaded.ok());

  MinIncrementalLengthDispatcher b1;
  Simulator sim_a(&original);
  Simulator sim_b(&loaded.value());
  const EpisodeResult a = sim_a.RunEpisode(&b1);
  const EpisodeResult b = sim_b.RunEpisode(&b1);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.nuv, b.nuv);
}

}  // namespace
}  // namespace dpdp
