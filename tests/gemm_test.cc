#include <gtest/gtest.h>

#include <vector>

#include "nn/gemm.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace dpdp::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

/// Exact elementwise equality — the kernels promise bit-identity to the
/// ordered reference, not closeness.
void ExpectBitEqual(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      ASSERT_EQ(got(r, c), want(r, c)) << "at (" << r << ", " << c << ")";
    }
  }
}

/// Shapes chosen to cover full 4x8 micro-kernel tiles, partial tiles in
/// both dimensions, single rows/columns, and k values around the panel
/// width.
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},  {1, 5, 9},  {3, 7, 5},   {4, 8, 8},    {5, 9, 17},
    {8, 16, 8}, {13, 3, 29}, {16, 32, 24}, {31, 17, 33}, {64, 64, 64},
};

TEST(Gemm, BitEqualToOrderedReference) {
  Rng rng(101);
  Workspace ws;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix got, want;
    Gemm(a, b, &got, &ws);
    GemmReference(a, b, &want);
    ExpectBitEqual(got, want);
  }
}

TEST(GemmBias, BitEqualToReferencePlusBias) {
  Rng rng(102);
  Workspace ws;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    const Matrix bias = RandomMatrix(1, s.n, &rng);
    Matrix got, want;
    GemmBias(a, b, bias, &got, &ws);
    // The kernel adds the bias once, after the k-accumulation finishes.
    GemmReference(a, b, &want);
    for (int r = 0; r < want.rows(); ++r) {
      for (int c = 0; c < want.cols(); ++c) want(r, c) += bias(0, c);
    }
    ExpectBitEqual(got, want);
  }
}

TEST(GemmTransposedB, BitEqualToExplicitTranspose) {
  Rng rng(103);
  Workspace ws;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.n, s.k, &rng);  // Given transposed.
    Matrix got, want;
    GemmTransposedB(a, b, &got, &ws);
    GemmReference(a, b.Transpose(), &want);
    ExpectBitEqual(got, want);
  }
}

TEST(GemmTransposedA, BitEqualToExplicitTranspose) {
  Rng rng(104);
  Workspace ws;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, &rng);  // Given transposed.
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix got, want;
    GemmTransposedA(a, b, &got, &ws);
    GemmReference(a.Transpose(), b, &want);
    ExpectBitEqual(got, want);
  }
}

TEST(GemmTransposedA, AccumulateAddsFinishedDotOnce) {
  // accumulate=true must compute out += a^T b with each element's full dot
  // added in ONE operation onto the prior contents — bit-equal to
  // elementwise (init + reference).
  Rng rng(105);
  Workspace ws;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    const Matrix init = RandomMatrix(s.m, s.n, &rng);
    Matrix got = init;
    GemmTransposedA(a, b, &got, &ws, /*accumulate=*/true);
    Matrix want;
    GemmReference(a.Transpose(), b, &want);
    for (int r = 0; r < want.rows(); ++r) {
      for (int c = 0; c < want.cols(); ++c) want(r, c) += init(r, c);
    }
    ExpectBitEqual(got, want);
  }
}

TEST(Gemm, ThreadCountDoesNotChangeBits) {
  // The parallel fan-out splits on row-block boundaries; every output
  // element runs the same code on the same inputs regardless of the
  // worker count. Shape chosen to exceed kGemmParallelMinFlops so the
  // threaded path actually engages.
  const int n = 160;
  ASSERT_GT(2LL * n * n * n, kGemmParallelMinFlops);
  Rng rng(106);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  const int saved = GemmThreads();
  Workspace ws;
  SetGemmThreads(1);
  Matrix serial;
  Gemm(a, b, &serial, &ws);
  SetGemmThreads(4);
  Matrix threaded;
  Gemm(a, b, &threaded, &ws);
  SetGemmThreads(saved);
  ExpectBitEqual(threaded, serial);
}

TEST(Gemm, WorkspaceReuseAcrossShapesIsHarmless) {
  // One Workspace shared across interleaved calls of different shapes and
  // kernels must give the same bits as a fresh Workspace per call: the
  // pack buffer is fully rewritten by each call.
  Rng rng(107);
  Workspace shared;
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    const Matrix bt = b.Transpose();
    Matrix got1, got2, want1, want2;
    Gemm(a, b, &got1, &shared);
    GemmTransposedB(a, bt, &got2, &shared);
    Workspace fresh1, fresh2;
    Gemm(a, b, &want1, &fresh1);
    GemmTransposedB(a, bt, &want2, &fresh2);
    ExpectBitEqual(got1, want1);
    ExpectBitEqual(got2, want2);
  }
}

TEST(Gemm, RepeatedCallsIntoSameOutputAreStable) {
  // The output matrix doubles as scratch target across calls (Resize
  // without zeroing): stale contents from a prior, larger result must not
  // leak into a smaller one.
  Rng rng(108);
  Workspace ws;
  const Matrix big_a = RandomMatrix(32, 16, &rng);
  const Matrix big_b = RandomMatrix(16, 24, &rng);
  const Matrix small_a = RandomMatrix(3, 5, &rng);
  const Matrix small_b = RandomMatrix(5, 2, &rng);
  Matrix out;
  Gemm(big_a, big_b, &out, &ws);
  Gemm(small_a, small_b, &out, &ws);
  Matrix want;
  GemmReference(small_a, small_b, &want);
  ExpectBitEqual(out, want);
}

TEST(Gemm, MatrixWrappersMatchKernels) {
  // The value-returning Matrix methods route through the same kernels via
  // the thread-local Workspace; results must be bit-identical.
  Rng rng(109);
  Workspace ws;
  const Matrix a = RandomMatrix(9, 13, &rng);
  const Matrix b = RandomMatrix(13, 7, &rng);
  Matrix want;
  Gemm(a, b, &want, &ws);
  ExpectBitEqual(a.MatMul(b), want);
  const Matrix bt = b.Transpose();
  Matrix want_t;
  GemmTransposedB(a, bt, &want_t, &ws);
  ExpectBitEqual(a.MatMulTransposed(bt), want_t);
  const Matrix at = a.Transpose();
  Matrix want_ta;
  GemmTransposedA(at, b, &want_ta, &ws);
  ExpectBitEqual(at.TransposedMatMul(b), want_ta);
}

TEST(GemmReference, MatchesHandResult) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  Matrix out;
  GemmReference(a, b, &out);
  EXPECT_TRUE(out.AllClose(Matrix::FromRows({{58, 64}, {139, 154}})));
}

}  // namespace
}  // namespace dpdp::nn
