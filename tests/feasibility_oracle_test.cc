// Tests for the brute-force feasibility oracle itself (tests/test_util.h)
// plus its end-to-end application: every route the simulator executes must
// satisfy LIFO, capacity, time-window and return-to-depot constraints.
//
// The oracle is an independent re-implementation of the Sec. III rules, so
// these tests first prove it *rejects* each constraint violation (a broken
// oracle that accepts everything would make the end-to-end checks
// meaningless), then run it over real simulated episodes.

#include <vector>

#include "baselines/greedy_baselines.h"
#include "exp/harness.h"
#include "gtest/gtest.h"
#include "sim/simulator.h"
#include "stpred/predictor.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using dpdp::testing::CheckEpisodeFeasible;
using dpdp::testing::CheckRouteFeasible;
using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

Stop Pickup(const Order& o) {
  return Stop{o.pickup_node, o.id, StopType::kPickup};
}
Stop Delivery(const Order& o) {
  return Stop{o.delivery_node, o.id, StopType::kDelivery};
}

// Line world reminder (test_util.h): depot 0 at (0,0), F1 at (10,0),
// F2 at (20,0), F3 at (10,10), F4 at (0,10); 1 km/min, zero service time.

TEST(FeasibilityOracle, EmptyRouteIsFeasible) {
  const Instance inst = MakeTestInstance({});
  EXPECT_TRUE(CheckRouteFeasible(inst, 0, {}));
}

TEST(FeasibilityOracle, AcceptsSimpleFeasibleRoute) {
  // F1 -> F2 pickup/delivery: 10 km to F1, 10 km more to F2, arrive at 20
  // min, well before the 100-min deadline.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 0.0, 100.0)});
  const Order& o = inst.order(0);
  EXPECT_TRUE(CheckRouteFeasible(inst, 0, {Pickup(o), Delivery(o)}));
}

TEST(FeasibilityOracle, AcceptsNestedLifoRoute) {
  // Pickup 0, pickup 1, deliver 1, deliver 0 — properly nested.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 4, 30.0, 0.0, 500.0),
                        MakeOrder(1, 2, 3, 30.0, 0.0, 500.0)});
  const Order& a = inst.order(0);
  const Order& b = inst.order(1);
  EXPECT_TRUE(CheckRouteFeasible(
      inst, 0, {Pickup(a), Pickup(b), Delivery(b), Delivery(a)}));
}

TEST(FeasibilityOracle, RejectsFifoInterleaving) {
  // Pickup 0, pickup 1, deliver 0 — order 0 is *below* order 1 on the
  // stack, so unloading it first violates LIFO.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 4, 30.0, 0.0, 500.0),
                        MakeOrder(1, 2, 3, 30.0, 0.0, 500.0)});
  const Order& a = inst.order(0);
  const Order& b = inst.order(1);
  const ::testing::AssertionResult r = CheckRouteFeasible(
      inst, 0, {Pickup(a), Pickup(b), Delivery(a), Delivery(b)});
  EXPECT_FALSE(r);
  EXPECT_NE(std::string(r.message()).find("LIFO"), std::string::npos);
}

TEST(FeasibilityOracle, RejectsCapacityOverflow) {
  // Two 60-unit orders on board at once exceeds Q = 100.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 4, 60.0, 0.0, 500.0),
                        MakeOrder(1, 2, 3, 60.0, 0.0, 500.0)});
  const Order& a = inst.order(0);
  const Order& b = inst.order(1);
  const ::testing::AssertionResult r = CheckRouteFeasible(
      inst, 0, {Pickup(a), Pickup(b), Delivery(b), Delivery(a)});
  EXPECT_FALSE(r);
  EXPECT_NE(std::string(r.message()).find("capacity"), std::string::npos);
  // Sequentially (one at a time) the same two orders fit fine.
  EXPECT_TRUE(CheckRouteFeasible(
      inst, 0, {Pickup(a), Delivery(a), Pickup(b), Delivery(b)}));
}

TEST(FeasibilityOracle, RejectsMissedDeadline) {
  // Even the earliest replay reaches F2 at minute 20; deadline 15 is
  // unmeetable by any schedule of this stop sequence.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 0.0, 15.0)});
  const Order& o = inst.order(0);
  const ::testing::AssertionResult r =
      CheckRouteFeasible(inst, 0, {Pickup(o), Delivery(o)});
  EXPECT_FALSE(r);
  EXPECT_NE(std::string(r.message()).find("deadline"), std::string::npos);
}

TEST(FeasibilityOracle, WaitsForOrderCreationBeforePickup) {
  // The order only exists at minute 60; the vehicle arrives at F1 at 10,
  // waits 50 minutes, and delivers at F2 at 70 — feasible with deadline
  // 80, infeasible with 65 (the wait is not optional).
  const Instance feasible =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 60.0, 80.0)});
  const Order& a = feasible.order(0);
  EXPECT_TRUE(CheckRouteFeasible(feasible, 0, {Pickup(a), Delivery(a)}));

  const Instance infeasible =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 60.0, 65.0)});
  const Order& b = infeasible.order(0);
  EXPECT_FALSE(CheckRouteFeasible(infeasible, 0, {Pickup(b), Delivery(b)}));
}

TEST(FeasibilityOracle, RejectsUndeliveredOnboardOrder) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 0.0, 500.0)});
  const Order& o = inst.order(0);
  const ::testing::AssertionResult r =
      CheckRouteFeasible(inst, 0, {Pickup(o)});
  EXPECT_FALSE(r);
  EXPECT_NE(std::string(r.message()).find("undelivered"), std::string::npos);
}

TEST(FeasibilityOracle, RejectsDeliveryWithoutPickup) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 0.0, 500.0)});
  const Order& o = inst.order(0);
  EXPECT_FALSE(CheckRouteFeasible(inst, 0, {Delivery(o)}));
}

TEST(FeasibilityOracle, RejectsStopAtWrongNode) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 40.0, 0.0, 500.0)});
  const Order& o = inst.order(0);
  // Pickup recorded at the delivery node.
  EXPECT_FALSE(CheckRouteFeasible(
      inst, 0, {Stop{o.delivery_node, o.id, StopType::kPickup}, Delivery(o)}));
}

// ------------------------------------------- end-to-end over simulator --

// Runs one recorded episode per baseline dispatcher on a sampled campus
// instance and feeds every executed route through the oracle.
TEST(FeasibilityOracle, SimulatedBaselineEpisodesAreFeasible) {
  DpdpDataset dataset(StandardDatasetConfig(3, 80.0));
  const Instance inst = dataset.SampleInstance("oracle", 30, 8, 0, 2, 5);
  SimulatorConfig config;
  config.record_plan = true;

  MinIncrementalLengthDispatcher b1;
  MinTotalLengthDispatcher b2;
  MaxAcceptedOrdersDispatcher b3;
  for (Dispatcher* dispatcher :
       std::vector<Dispatcher*>{&b1, &b2, &b3}) {
    Simulator simulator(&inst, config);
    const EpisodeResult result = simulator.RunEpisode(dispatcher);
    EXPECT_TRUE(CheckEpisodeFeasible(inst, result)) << dispatcher->name();
  }
}

TEST(FeasibilityOracle, SimulatedDrlEpisodeIsFeasible) {
  DpdpDataset dataset(StandardDatasetConfig(3, 60.0));
  const Instance inst = dataset.SampleInstance("oracle-drl", 15, 5, 0, 2, 6);
  AverageStdPredictor predictor;
  const nn::Matrix predicted = predictor.Predict(dataset.History(3, 2)).value();

  // An untrained epsilon-greedy agent takes near-random feasible actions —
  // a good adversarial driver for the oracle.
  auto agent = MakeAgentByName("ST-DDGN", /*seed=*/9);
  SimulatorConfig config;
  config.predicted_std = predicted;
  config.record_plan = true;
  Simulator simulator(&inst, config);
  agent->set_training(true);
  for (int episode = 0; episode < 3; ++episode) {
    const EpisodeResult result = simulator.RunEpisode(agent.get());
    agent->OnEpisodeEnd(result);
    EXPECT_TRUE(CheckEpisodeFeasible(inst, result)) << "episode " << episode;
  }
}

TEST(FeasibilityOracle, CatchesTamperedAssignment) {
  // Guards the consistency check: corrupting OA must be detected.
  DpdpDataset dataset(StandardDatasetConfig(3, 80.0));
  const Instance inst = dataset.SampleInstance("tamper", 20, 6, 0, 2, 5);
  SimulatorConfig config;
  config.record_plan = true;
  MinIncrementalLengthDispatcher b1;
  Simulator simulator(&inst, config);
  EpisodeResult result = simulator.RunEpisode(&b1);
  ASSERT_TRUE(CheckEpisodeFeasible(inst, result));

  ASSERT_FALSE(result.order_assignment.empty());
  result.order_assignment[0] =
      (result.order_assignment[0] + 1) % inst.num_vehicles();
  EXPECT_FALSE(CheckEpisodeFeasible(inst, result));
}

}  // namespace
}  // namespace dpdp
