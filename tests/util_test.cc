#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/crc32.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace dpdp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::Infeasible("no route");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "no route");
  EXPECT_EQ(s.ToString(), "Infeasible: no route");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::OutOfRange("x"));
}

TEST(Status, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInfeasible, StatusCode::kResourceExhausted,
        StatusCode::kTimeout, StatusCode::kInternal}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

Status FailsThenPropagates(bool fail) {
  DPDP_RETURN_IF_ERROR(fail ? Status::Timeout("inner") : Status::OK());
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kTimeout);
}

// ---------------------------------------------------------------- Result --

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values occur.
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, PoissonMeanApproximate) {
  Rng rng(13);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(rng.Poisson(2.5));
    large.Add(rng.Poisson(80.0));  // Normal-approximation branch.
  }
  EXPECT_NEAR(small.mean(), 2.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);  // Zero-weight category never drawn.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

// ----------------------------------------------------------------- Stats --

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
}

// ----------------------------------------------------------------- Crc32 --

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32, SeedChainsIncrementalComputation) {
  const char data[] = "hello, dpdp checkpoint";
  const size_t n = sizeof(data) - 1;
  const uint32_t whole = Crc32(data, n);
  const uint32_t part = Crc32(data + 5, n - 5, Crc32(data, 5));
  EXPECT_EQ(part, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(256, 'a');
  const uint32_t before = Crc32(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

// ----------------------------------------------------------------- Retry --

TEST(Retry, TransientFailureClassification) {
  EXPECT_TRUE(IsTransientFailure(StatusCode::kInternal));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kTimeout));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kOk));
}

RetryPolicy FastPolicy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff_ms = 1;
  p.max_backoff_ms = 2;
  return p;
}

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  int attempts = 0;
  const Status s = RunWithRetry(
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::Timeout("flaky") : Status::OK();
      },
      FastPolicy(), &attempts);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST(Retry, PermanentFailureReturnsImmediately) {
  int calls = 0;
  const Status s = RunWithRetry(
      [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("bad input");
      },
      FastPolicy());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // Not retried: retrying can't fix bad input.
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  int calls = 0;
  const Status s = RunWithRetry(
      [&]() -> Status {
        ++calls;
        return Status::Internal("always down");
      },
      FastPolicy());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, ExceptionBecomesTransientInternal) {
  int calls = 0;
  const Status s = RunWithRetry(
      [&]() -> Status {
        ++calls;
        if (calls == 1) throw std::runtime_error("boom");
        return Status::OK();
      },
      FastPolicy());
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 2);  // The throw counted as a transient attempt.
}

TEST(Retry, ExceptionMessageSurvivesInStatus) {
  RetryPolicy once = FastPolicy();
  once.max_attempts = 1;
  const Status s = RunWithRetry(
      []() -> Status { throw std::runtime_error("disk on fire"); }, once);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.ToString().find("disk on fire"), std::string::npos);
}

// ----------------------------------------------------------------- Table --

TEST(Table, AlignedRendering) {
  TextTable t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name | v  |"), std::string::npos);
  EXPECT_NE(s.find("| long | 22 |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  TextTable t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(5.0, 0), "5");
}

}  // namespace
}  // namespace dpdp
