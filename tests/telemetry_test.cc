// Telemetry-plane suite: Prometheus name sanitization and exposition
// rendering (shard-label extraction, cumulative histogram series), the
// HTTP exporter's request parsing and live-socket behavior (partial
// reads, 404/405, concurrent scrapes — runs under TSan in CI), SLO
// window math goldens against synthetic registry counters, the
// time-series sampler's delta semantics and ring bound, flight-recorder
// recording/dumping (including the auto-dump a dead shard triggers),
// request-hop trace linkage, and the staged (.tmp-then-rename) export
// path shared by every obs file flush.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "rl/config.h"
#include "serve/chaos.h"
#include "serve/dispatch_service.h"
#include "serve/model_server.h"
#include "serve/shard_router.h"
#include "serve/shard_supervisor.h"
#include "test_util.h"
#include "util/timer.h"

namespace dpdp::obs {
namespace {

namespace fs = std::filesystem;
using dpdp::serve::ChaosAction;
using dpdp::serve::ChaosConfig;
using dpdp::serve::ChaosPolicy;
using dpdp::serve::ModelServer;
using dpdp::serve::ServeReply;
using dpdp::serve::ShardedServeConfig;
using dpdp::serve::ShardRouter;
using dpdp::serve::ShardSupervisor;
using dpdp::serve::SupervisorConfig;
using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

/// Unique scratch directory under the system temp dir.
fs::path MakeScratchDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dpdp_telemetry_test_" + tag + "_" +
       std::to_string(static_cast<uint64_t>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// True when `dir` contains no leftover "*.tmp" staging file — every
/// staged export must rename its temp file away before returning.
bool NoTmpLeft(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return false;
  }
  return true;
}

/// A synthetic snapshot entry (counters/gauges).
MetricSnapshot MakeScalar(const std::string& name, MetricSnapshot::Kind kind,
                          double value) {
  MetricSnapshot m;
  m.name = name;
  m.kind = kind;
  m.value = value;
  return m;
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(SanitizeMetricNameTest, RewritesIllegalCharacters) {
  EXPECT_EQ(SanitizeMetricName("serve.queue_wait_s"), "serve_queue_wait_s");
  EXPECT_EQ(SanitizeMetricName("rl:step"), "rl:step");  // ':' is legal.
  EXPECT_EQ(SanitizeMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("already_legal_123"), "already_legal_123");
  EXPECT_EQ(SanitizeMetricName(""), "");
}

TEST(SanitizeMetricNameTest, LeadingDigitGetsPrefixed) {
  EXPECT_EQ(SanitizeMetricName("99th.latency"), "_99th_latency");
  EXPECT_EQ(SanitizeMetricName("0"), "_0");
}

TEST(PrometheusTest, CountersAndGaugesRenderWithTypeHeaders) {
  std::vector<MetricSnapshot> snapshot;
  snapshot.push_back(
      MakeScalar("train.steps", MetricSnapshot::Kind::kCounter, 42.0));
  snapshot.push_back(
      MakeScalar("train.epsilon", MetricSnapshot::Kind::kGauge, 0.125));
  const std::string text = PrometheusFromSnapshot(snapshot);
  EXPECT_NE(text.find("# TYPE train_steps counter\n"), std::string::npos);
  EXPECT_NE(text.find("train_steps 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE train_epsilon gauge\n"), std::string::npos);
  EXPECT_NE(text.find("train_epsilon 0.125\n"), std::string::npos);
}

TEST(PrometheusTest, ShardSeriesCollapseIntoLabeledFamily) {
  // Aggregate + two shard series, deliberately given out of shard order —
  // the family must carry ONE type header with the unlabeled aggregate
  // first (shard -1 sorts lowest) and the shard series sorted by index.
  std::vector<MetricSnapshot> snapshot;
  snapshot.push_back(
      MakeScalar("serve.shard1.requests", MetricSnapshot::Kind::kCounter, 7));
  snapshot.push_back(
      MakeScalar("serve.requests", MetricSnapshot::Kind::kCounter, 10));
  snapshot.push_back(
      MakeScalar("serve.shard0.requests", MetricSnapshot::Kind::kCounter, 3));
  const std::string text = PrometheusFromSnapshot(snapshot);

  const size_t type_at = text.find("# TYPE serve_requests counter\n");
  ASSERT_NE(type_at, std::string::npos);
  EXPECT_EQ(text.find("# TYPE serve_requests counter", type_at + 1),
            std::string::npos)
      << "family header must be emitted exactly once:\n"
      << text;
  const size_t aggregate_at = text.find("serve_requests 10\n");
  const size_t shard0_at = text.find("serve_requests{shard=\"0\"} 3\n");
  const size_t shard1_at = text.find("serve_requests{shard=\"1\"} 7\n");
  ASSERT_NE(aggregate_at, std::string::npos) << text;
  ASSERT_NE(shard0_at, std::string::npos) << text;
  ASSERT_NE(shard1_at, std::string::npos) << text;
  EXPECT_LT(aggregate_at, shard0_at);
  EXPECT_LT(shard0_at, shard1_at);
}

TEST(PrometheusTest, NonShardNamesKeepTheirFullName) {
  // ".shard" without digits, or digits not followed by '.', is NOT a
  // shard label — the name passes through whole.
  std::vector<MetricSnapshot> snapshot;
  snapshot.push_back(
      MakeScalar("serve.shards", MetricSnapshot::Kind::kGauge, 8));
  snapshot.push_back(
      MakeScalar("serve.shardX.requests", MetricSnapshot::Kind::kCounter, 1));
  const std::string text = PrometheusFromSnapshot(snapshot);
  EXPECT_NE(text.find("serve_shards 8\n"), std::string::npos);
  EXPECT_NE(text.find("serve_shardX_requests 1\n"), std::string::npos);
  EXPECT_EQ(text.find("{shard="), std::string::npos);
}

TEST(PrometheusTest, HistogramRendersCumulativeBuckets) {
  MetricSnapshot m;
  m.name = "serve.batch_latency_s";
  m.kind = MetricSnapshot::Kind::kHistogram;
  m.bounds = {0.001, 0.01, 0.1};
  m.buckets = {5, 3, 0, 2};  // Last = overflow.
  m.count = 10;
  m.sum = 0.75;
  const std::string text = PrometheusFromSnapshot({m});
  EXPECT_NE(text.find("# TYPE serve_batch_latency_s histogram\n"),
            std::string::npos);
  // Buckets are CUMULATIVE in the exposition format.
  EXPECT_NE(text.find("serve_batch_latency_s_bucket{le=\"0.001\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_batch_latency_s_bucket{le=\"0.01\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_batch_latency_s_bucket{le=\"0.1\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_batch_latency_s_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_batch_latency_s_sum 0.75\n"), std::string::npos);
  EXPECT_NE(text.find("serve_batch_latency_s_count 10\n"), std::string::npos);
}

TEST(PrometheusTest, GlobalRegistrySnapshotParsesAsExposition) {
  // Render the real global registry (whatever this process accumulated so
  // far) and structurally validate every line: a '#' comment or a
  // "<name>[{labels}] <number>" sample whose family was declared by a
  // preceding # TYPE line.
  MetricsRegistry::Global().GetCounter("tmtest.prom.live")->Add(3);
  const std::string text =
      PrometheusFromSnapshot(MetricsRegistry::Global().Snapshot());
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  bool saw_live = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(name.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    if (name == "tmtest_prom_live") saw_live = true;
  }
  EXPECT_TRUE(saw_live);
}

// ---------------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------------

TEST(HttpParseTest, AcceptsWellFormedGet) {
  std::string path;
  EXPECT_EQ(HttpExporter::ParseRequestPath(
                "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", &path),
            0);
  EXPECT_EQ(path, "/metrics");
}

TEST(HttpParseTest, RejectsMalformedAndNonGet) {
  std::string path;
  EXPECT_EQ(HttpExporter::ParseRequestPath("", &path), 400);
  EXPECT_EQ(HttpExporter::ParseRequestPath("GARBAGE\r\n\r\n", &path), 400);
  EXPECT_EQ(HttpExporter::ParseRequestPath("GET \r\n\r\n", &path), 400);
  EXPECT_EQ(
      HttpExporter::ParseRequestPath("GET metrics HTTP/1.1\r\n\r\n", &path),
      400);
  EXPECT_EQ(
      HttpExporter::ParseRequestPath("POST /metrics HTTP/1.1\r\n\r\n", &path),
      405);
  EXPECT_EQ(
      HttpExporter::ParseRequestPath("DELETE / HTTP/1.1\r\n\r\n", &path), 405);
}

TEST(HttpExporterTest, HandlePathDispatchesBuiltinsAndCustoms) {
  HttpExporter exporter(0);  // Never started: HandlePath needs no socket.
  EXPECT_EQ(exporter.HandlePath("/healthz").status, 200);
  EXPECT_EQ(exporter.HandlePath("/healthz").body, "ok\n");
  EXPECT_EQ(exporter.HandlePath("/healthz?verbose=1").body, "ok\n")
      << "query strings must be stripped before lookup";
  EXPECT_EQ(exporter.HandlePath("/nope").status, 404);

  MetricsRegistry::Global().GetCounter("tmtest.http.dispatch")->Add(9);
  const HttpResponse metrics = exporter.HandlePath("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("tmtest_http_dispatch 9"), std::string::npos);

  exporter.AddEndpoint("/custom", [] {
    HttpResponse r;
    r.body = "v1";
    return r;
  });
  EXPECT_EQ(exporter.HandlePath("/custom").body, "v1");
  exporter.AddEndpoint("/custom", [] {  // Replacement wins.
    HttpResponse r;
    r.body = "v2";
    return r;
  });
  EXPECT_EQ(exporter.HandlePath("/custom").body, "v2");
}

TEST(HttpExporterTest, DisabledExporterStartIsANoop) {
  ASSERT_EQ(::getenv("DPDP_OBS_HTTP_PORT"), nullptr);
  HttpExporter exporter;  // Default: DPDP_OBS_HTTP_PORT unset -> disabled.
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), -1);
  exporter.Stop();  // Idempotent on a never-started exporter.
}

/// Sends `wire` to 127.0.0.1:`port` in `chunks` pieces (a pause between
/// them, so the exporter must survive partial reads) and returns the full
/// response (read to EOF).
std::string RawHttpExchange(int port, const std::string& wire,
                            int chunks = 1) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const size_t stride = (wire.size() + chunks - 1) / chunks;
  for (size_t at = 0; at < wire.size(); at += stride) {
    const size_t n = std::min(stride, wire.size() - at);
    if (::send(fd, wire.data() + at, n, MSG_NOSIGNAL) < 0) break;
    if (at + n < wire.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporterTest, ServesMetricsOverALiveSocket) {
  HttpExporter exporter(0);  // Ephemeral port.
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_TRUE(exporter.running());
  const int port = exporter.port();
  ASSERT_GT(port, 0);

  MetricsRegistry::Global().GetCounter("tmtest.http.live")->Add(5);
  const std::string response =
      RawHttpExchange(port, "GET /metrics HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_NE(response.find("tmtest_http_live 5"), std::string::npos);

  // Headers split over several TCP segments must still parse.
  const std::string split = RawHttpExchange(
      port, "GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n", /*chunks=*/4);
  EXPECT_NE(split.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(split.find("ok\n"), std::string::npos);

  EXPECT_NE(RawHttpExchange(port, "GET /nope HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  EXPECT_NE(RawHttpExchange(port, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), -1);
}

TEST(HttpExporterTest, ConcurrentScrapesAllSucceed) {
  HttpExporter exporter(0);
  ASSERT_TRUE(exporter.Start().ok());
  const int port = exporter.port();
  ASSERT_GT(port, 0);
  MetricsRegistry::Global().GetCounter("tmtest.http.concurrent")->Add(1);

  // Several scrapers racing metric writers: the exporter serves each
  // connection in turn (backlog absorbs the burst) and every scrape gets a
  // complete, parseable response. TSan watches the registry reads.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter* counter =
        MetricsRegistry::Global().GetCounter("tmtest.http.concurrent");
    while (!stop.load(std::memory_order_relaxed)) counter->Add(1);
  });
  constexpr int kScrapers = 4;
  std::vector<std::future<std::string>> scrapes;
  scrapes.reserve(kScrapers);
  for (int i = 0; i < kScrapers; ++i) {
    scrapes.push_back(std::async(std::launch::async, [port] {
      return RawHttpExchange(port,
                             "GET /metrics HTTP/1.1\r\nHost: c\r\n\r\n");
    }));
  }
  for (std::future<std::string>& f : scrapes) {
    const std::string response = f.get();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("tmtest_http_concurrent"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  exporter.Stop();
}

// ---------------------------------------------------------------------------
// SLO monitor: window math goldens
// ---------------------------------------------------------------------------

/// An SloConfig pointed at this test's private synthetic metrics, so the
/// goldens are immune to whatever the rest of the process records.
SloConfig SyntheticSloConfig(const std::string& tag) {
  SloConfig config;
  config.window_ms = 1000;
  config.p99_latency_s = 0.01;
  config.max_shed_rate = 0.1;
  config.max_deadline_rate = 0.5;
  config.error_budget = 0.25;
  config.requests_metric = "tmtest." + tag + ".requests";
  config.shed_metric = "tmtest." + tag + ".shed";
  config.deadline_metric = "tmtest." + tag + ".deadline";
  config.latency_metric = "tmtest." + tag + ".latency_s";
  return config;
}

TEST(SloMonitorTest, AllBoundsNegativeDisablesTheMonitor) {
  SloMonitor monitor(SloConfig{});  // Default bounds are all -1.
  EXPECT_FALSE(monitor.enabled());
  monitor.TickAt(1000000000);
  monitor.TickAt(5000000000);
  EXPECT_EQ(monitor.windows(), 0u);
}

TEST(SloMonitorTest, WindowDeltasAndBreachJudgments) {
  const SloConfig config = SyntheticSloConfig("slo1");
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* requests = registry.GetCounter(config.requests_metric);
  Counter* shed = registry.GetCounter(config.shed_metric);
  Counter* deadline = registry.GetCounter(config.deadline_metric);
  Histogram* latency =
      registry.GetHistogram(config.latency_metric, LatencyBucketsSeconds());

  // Pre-monitor history that the anchor must absorb, not count.
  requests->Add(1000);
  shed->Add(500);
  for (int i = 0; i < 50; ++i) latency->Record(5.0);

  SloMonitor monitor(config);
  ASSERT_TRUE(monitor.enabled());
  const int64_t t0 = 1000000000;
  monitor.TickAt(t0);  // Anchor only: no window evaluated.
  EXPECT_EQ(monitor.windows(), 0u);

  // Window 1 — healthy: 200 requests, 2 sheds (1%), fast latencies.
  requests->Add(200);
  shed->Add(2);
  for (int i = 0; i < 100; ++i) latency->Record(0.004);
  const SloWindowReport w1 = monitor.EvaluateWindowAt(t0 + 1000000000);
  EXPECT_EQ(w1.window_start_ns, t0);
  EXPECT_EQ(w1.window_end_ns, t0 + 1000000000);
  EXPECT_EQ(w1.requests, 200u);
  EXPECT_EQ(w1.shed, 2u);
  EXPECT_EQ(w1.deadline_exceeded, 0u);
  EXPECT_EQ(w1.latency_count, 100u);
  EXPECT_DOUBLE_EQ(w1.shed_rate, 0.01);
  // All 100 samples sit in the le=0.005 bucket, so the window p99 must
  // land inside it — well under the 10 ms objective.
  EXPECT_GT(w1.p99_s, 0.0);
  EXPECT_LE(w1.p99_s, 0.005);
  EXPECT_FALSE(w1.breached());
  EXPECT_EQ(monitor.windows(), 1u);
  EXPECT_EQ(monitor.breaches(), 0u);
  EXPECT_DOUBLE_EQ(monitor.BudgetBurn(), 0.0);

  // Window 2 — latency regression: every sample lands at 200 ms.
  requests->Add(100);
  for (int i = 0; i < 50; ++i) latency->Record(0.2);
  const SloWindowReport w2 = monitor.EvaluateWindowAt(t0 + 2000000000);
  EXPECT_EQ(w2.requests, 100u);
  EXPECT_EQ(w2.latency_count, 50u);
  EXPECT_GT(w2.p99_s, 0.1);
  EXPECT_TRUE(w2.latency_breach);
  EXPECT_FALSE(w2.shed_breach);
  EXPECT_TRUE(w2.breached());

  // Window 3 — shed storm with deadline misses: 30 of 100 requests shed
  // (30% > 10%) and 60 past their deadline (60% > 50%).
  requests->Add(100);
  shed->Add(30);
  deadline->Add(60);
  const SloWindowReport w3 = monitor.EvaluateWindowAt(t0 + 3000000000);
  EXPECT_EQ(w3.shed, 30u);
  EXPECT_EQ(w3.deadline_exceeded, 60u);
  EXPECT_DOUBLE_EQ(w3.shed_rate, 0.3);
  EXPECT_DOUBLE_EQ(w3.deadline_rate, 0.6);
  EXPECT_TRUE(w3.shed_breach);
  EXPECT_TRUE(w3.deadline_breach);
  EXPECT_FALSE(w3.latency_breach) << "no latency samples in this window";
  EXPECT_EQ(w3.latency_count, 0u);

  // Budget burn: 2 of 3 windows breached against a 25% budget ->
  // (2/3) / 0.25 = 8/3, burning well past the budget line.
  EXPECT_EQ(monitor.windows(), 3u);
  EXPECT_EQ(monitor.breaches(), 2u);
  EXPECT_NEAR(monitor.BudgetBurn(), (2.0 / 3.0) / 0.25, 1e-12);

  // History keeps the reports in order; ToJson reflects the totals.
  const std::vector<SloWindowReport> history = monitor.History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].requests, 200u);
  EXPECT_EQ(history[2].shed, 30u);
  const std::string json = monitor.ToJson();
  EXPECT_NE(json.find("\"windows\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"breached_windows\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"breached\": true"), std::string::npos);
}

TEST(SloMonitorTest, TickAtEvaluatesOncePerElapsedWindow) {
  SloConfig config = SyntheticSloConfig("slo2");
  config.p99_latency_s = 1.0;  // Wide-open bounds: only windows() matters.
  config.max_shed_rate = 1.0;
  config.max_deadline_rate = 1.0;
  SloMonitor monitor(config);
  const int64_t t0 = 5000000000;
  monitor.TickAt(t0);
  EXPECT_EQ(monitor.windows(), 0u);  // Anchor.
  monitor.TickAt(t0 + 400000000);  // 0.4 s: inside the window.
  EXPECT_EQ(monitor.windows(), 0u);
  monitor.TickAt(t0 + 1100000000);  // 1.1 s: one window elapsed.
  EXPECT_EQ(monitor.windows(), 1u);
  monitor.TickAt(t0 + 1200000000);  // Only 0.1 s since the last eval.
  EXPECT_EQ(monitor.windows(), 1u);
  // A long gap collapses into ONE window ending now — the monitor never
  // back-fills a phantom breach-free streak.
  monitor.TickAt(t0 + 60000000000);
  EXPECT_EQ(monitor.windows(), 2u);
}

TEST(SloMonitorTest, BreachEdgeTriggersFlightRecorderDump) {
  const fs::path dir = MakeScratchDir("slo_breach");
  ::setenv("DPDP_FLIGHT_RECORDER_FILE",
           (dir / "breach_dump.json").c_str(), 1);
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();

  SloConfig config = SyntheticSloConfig("slo3");
  Counter* requests =
      MetricsRegistry::Global().GetCounter(config.requests_metric);
  Counter* shed = MetricsRegistry::Global().GetCounter(config.shed_metric);
  SloMonitor monitor(config);
  const int64_t t0 = 7000000000;
  monitor.TickAt(t0);

  const uint64_t dumps_before = FlightRecorderDumps();
  requests->Add(10);
  shed->Add(9);  // 90% shed rate: massive breach.
  const SloWindowReport w1 = monitor.EvaluateWindowAt(t0 + 1000000000);
  ASSERT_TRUE(w1.shed_breach);
  EXPECT_EQ(FlightRecorderDumps(), dumps_before + 1);

  // Staying breached is the SAME incident: no second dump.
  requests->Add(10);
  shed->Add(9);
  const SloWindowReport w2 = monitor.EvaluateWindowAt(t0 + 2000000000);
  ASSERT_TRUE(w2.shed_breach);
  EXPECT_EQ(FlightRecorderDumps(), dumps_before + 1);

  const std::string dump = ReadFile(dir / "breach_dump.json");
  EXPECT_NE(dump.find("\"reason\": \"slo_breach\""), std::string::npos);
  EXPECT_NE(dump.find("slo.breach"), std::string::npos);
  EXPECT_TRUE(NoTmpLeft(dir));

  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
  ::unsetenv("DPDP_FLIGHT_RECORDER_FILE");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, SampleOnceRecordsDeltasPerKind) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("tmtest.ts.counter");
  Gauge* gauge = registry.GetGauge("tmtest.ts.gauge");
  Histogram* histogram =
      registry.GetHistogram("tmtest.ts.hist_s", LatencyBucketsSeconds());
  counter->Add(7);
  gauge->Set(3.5);
  histogram->Record(0.001);

  TimeSeriesSampler sampler;  // Never started: deterministic SampleOnce.
  sampler.SampleOnce();       // Baseline row (absorbs prior history).
  counter->Add(5);
  gauge->Set(-2.0);
  histogram->Record(0.002);
  histogram->Record(0.004);
  sampler.SampleOnce();

  const std::vector<std::string> columns = sampler.ColumnNames();
  auto column = [&columns](const std::string& name) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    ADD_FAILURE() << "missing column " << name;
    return -1;
  };
  const int c_counter = column("tmtest.ts.counter");
  const int c_gauge = column("tmtest.ts.gauge");
  const int c_hcount = column("tmtest.ts.hist_s.count");
  const int c_hsum = column("tmtest.ts.hist_s.sum");
  ASSERT_GE(c_counter, 0);
  ASSERT_GE(c_gauge, 0);
  ASSERT_GE(c_hcount, 0);
  ASSERT_GE(c_hsum, 0);

  const std::vector<TimeSeriesRow> rows = sampler.Rows();
  ASSERT_EQ(rows.size(), 2u);
  const TimeSeriesRow& last = rows.back();
  ASSERT_EQ(last.values.size(), columns.size());
  EXPECT_DOUBLE_EQ(last.values[c_counter], 5.0);   // Delta, not total.
  EXPECT_DOUBLE_EQ(last.values[c_gauge], -2.0);    // Instantaneous.
  EXPECT_DOUBLE_EQ(last.values[c_hcount], 2.0);    // New samples.
  EXPECT_NEAR(last.values[c_hsum], 0.006, 1e-12);  // Their sum.
  EXPECT_GT(last.t_ns, rows.front().t_ns);
}

TEST(TimeSeriesTest, RingEvictsOldestRows) {
  TimeSeriesSampler::Options options;
  options.capacity = 4;
  TimeSeriesSampler sampler(options);
  Counter* counter = MetricsRegistry::Global().GetCounter("tmtest.ts.ring");
  for (int i = 0; i < 7; ++i) {
    counter->Add(1);
    sampler.SampleOnce();
  }
  EXPECT_EQ(sampler.RowCount(), 4u);
  const std::vector<TimeSeriesRow> rows = sampler.Rows();
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].t_ns, rows[i - 1].t_ns);
  }
}

TEST(TimeSeriesTest, CsvAndJsonCarryColumnsAndRows) {
  TimeSeriesSampler sampler;
  MetricsRegistry::Global().GetCounter("tmtest.ts.export")->Add(2);
  sampler.SampleOnce();
  const std::string csv = sampler.ToCsv();
  EXPECT_EQ(csv.rfind("t_ns,", 0), 0u) << csv.substr(0, 80);
  EXPECT_NE(csv.find("tmtest.ts.export"), std::string::npos);
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"tmtest.ts.export\""), std::string::npos);
}

TEST(TimeSeriesTest, WriteFilesStagesIntoTargetDir) {
  const fs::path dir = MakeScratchDir("timeseries");
  TimeSeriesSampler sampler;
  sampler.SampleOnce();
  ASSERT_TRUE(sampler.WriteFiles(dir.string()).ok());
  EXPECT_TRUE(fs::exists(dir / "timeseries.csv"));
  EXPECT_TRUE(fs::exists(dir / "timeseries.json"));
  EXPECT_TRUE(NoTmpLeft(dir));
  // No dir anywhere: a clean no-op, not an error.
  ASSERT_EQ(::getenv("DPDP_METRICS_DIR"), nullptr);
  EXPECT_TRUE(sampler.WriteFiles().ok());
  fs::remove_all(dir);
}

TEST(TimeSeriesTest, StartStopRunsTheBackgroundThread) {
  TimeSeriesSampler::Options options;
  options.sample_interval_ms = 5;
  TimeSeriesSampler sampler(options);
  sampler.Start();  // Samples immediately, then every 5 ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();  // Final sample on the way out.
  EXPECT_GE(sampler.RowCount(), 2u);
  const size_t rows_after_stop = sampler.RowCount();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(sampler.RowCount(), rows_after_stop) << "thread kept sampling";
}

TEST(TimeSeriesTest, FromEnvDefaultsToDisabledSampling) {
  ASSERT_EQ(::getenv("DPDP_OBS_SAMPLE_MS"), nullptr);
  const TimeSeriesSampler::Options options = TimeSeriesSampler::FromEnv();
  EXPECT_LE(options.sample_interval_ms, 0)
      << "telemetry knobs must default OFF";
  TimeSeriesSampler sampler(options);
  sampler.Start();  // Must not launch a thread.
  sampler.Stop();
  EXPECT_EQ(sampler.RowCount(), 0u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DisabledRecordingIsDropped) {
  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
  RecordFlight(FlightEventKind::kCustom, "tmtest.dropped");
  EXPECT_TRUE(SnapshotFlightEvents().empty());
}

TEST(FlightRecorderTest, RecordsEventsWithFieldsInOrder) {
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();
  RecordFlight(FlightEventKind::kCrash, "tmtest.crash", 3, 17);
  RecordFlight(FlightEventKind::kRestart, "tmtest.restart", 3, 2, 99);
  const std::vector<FlightEvent> events = SnapshotFlightEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kCrash);
  EXPECT_STREQ(events[0].name, "tmtest.crash");
  EXPECT_EQ(events[0].shard, 3);
  EXPECT_EQ(events[0].arg0, 17u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kRestart);
  EXPECT_EQ(events[1].arg1, 99u);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
}

TEST(FlightRecorderTest, RingKeepsOnlyTheNewestEvents) {
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();
  const int total = kFlightRingCapacity + 50;
  for (int i = 0; i < total; ++i) {
    RecordFlight(FlightEventKind::kCustom, "tmtest.wrap", -1,
                 static_cast<uint64_t>(i));
  }
  const std::vector<FlightEvent> events = SnapshotFlightEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kFlightRingCapacity));
  // Oldest-first, and the oldest survivors are the post-wrap ones.
  EXPECT_EQ(events.front().arg0, static_cast<uint64_t>(total) -
                                     static_cast<uint64_t>(kFlightRingCapacity));
  EXPECT_EQ(events.back().arg0, static_cast<uint64_t>(total - 1));
  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
}

TEST(FlightRecorderTest, ConcurrentWritersNeverBlockADump) {
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        RecordFlight(FlightEventKind::kCustom, "tmtest.race",
                     t, i++);
      }
    });
  }
  // Dumps racing the writers: seqlock skips torn slots, never blocks.
  for (int i = 0; i < 20; ++i) {
    const std::vector<FlightEvent> events = SnapshotFlightEvents();
    for (const FlightEvent& e : events) {
      EXPECT_GE(e.shard, 0);
      EXPECT_LT(e.shard, 3);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
}

TEST(FlightRecorderTest, DumpWritesWellFormedJson) {
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();
  RecordFlight(FlightEventKind::kBreaker, "tmtest.breaker", 1, 2);
  const fs::path dir = MakeScratchDir("flight_dump");
  const fs::path path = dir / "dump.json";
  ASSERT_TRUE(DumpFlightRecorder("unit_test", path.string()).ok());
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(dump.find("\"dumped_at_ns\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"breaker\""), std::string::npos);
  EXPECT_NE(dump.find("tmtest.breaker"), std::string::npos);
  EXPECT_NE(dump.find("\"shard\": 1"), std::string::npos);
  EXPECT_TRUE(NoTmpLeft(dir));
  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Request-hop tracing
// ---------------------------------------------------------------------------

TEST(TraceHopTest, DisabledTracingYieldsInactiveContexts) {
  SetTraceEnabled(false);
  const TraceContext context = NewTraceContext();
  EXPECT_FALSE(context.active());
  const TraceContext after =
      RecordHop("tmtest.hop", context, 0, 10, FlowPhase::kStart);
  EXPECT_FALSE(after.active());
  EXPECT_EQ(BufferedSpanCount(), 0u);
}

TEST(TraceHopTest, HopChainLinksParentsAndEmitsFlowEvents) {
  DiscardTrace();
  SetTraceEnabled(true);
  const TraceContext root = NewTraceContext();
  ASSERT_TRUE(root.active());
  EXPECT_EQ(root.span_id, 0u) << "root has no parent span";

  const int64_t t0 = MonotonicNanos();
  const TraceContext after_route = RecordHop("tmtest.hop.route", root, t0,
                                             t0 + 1000, FlowPhase::kStart);
  EXPECT_EQ(after_route.trace_id, root.trace_id);
  EXPECT_NE(after_route.span_id, 0u);
  const TraceContext after_queue =
      RecordHop("tmtest.hop.queue", after_route, t0 + 1000, t0 + 2000,
                FlowPhase::kStep);
  EXPECT_NE(after_queue.span_id, after_route.span_id);
  const TraceContext done = RecordHop("tmtest.hop.reply", after_queue,
                                      t0 + 2000, t0 + 3000, FlowPhase::kEnd);
  EXPECT_EQ(done.trace_id, root.trace_id);
  EXPECT_EQ(BufferedSpanCount(), 3u);

  const fs::path dir = MakeScratchDir("trace");
  const fs::path path = dir / "trace.json";
  ASSERT_TRUE(WriteTraceFile(path.string()).ok());
  SetTraceEnabled(false);
  const std::string trace = ReadFile(path);
  EXPECT_TRUE(NoTmpLeft(dir));
  EXPECT_EQ(BufferedSpanCount(), 0u) << "write must consume the buffers";

  // The three hop slices, with parent links: route's parent is 0 (the
  // root), queue's parent is route's span.
  EXPECT_NE(trace.find("\"tmtest.hop.route\""), std::string::npos);
  EXPECT_NE(trace.find("\"tmtest.hop.queue\""), std::string::npos);
  EXPECT_NE(trace.find("\"tmtest.hop.reply\""), std::string::npos);
  {
    std::ostringstream want;
    want << "\"trace\": " << root.trace_id << ", \"span\": "
         << after_route.span_id << ", \"parent\": 0";
    EXPECT_NE(trace.find(want.str()), std::string::npos) << trace;
  }
  {
    std::ostringstream want;
    want << "\"trace\": " << root.trace_id << ", \"span\": "
         << after_queue.span_id << ", \"parent\": " << after_route.span_id;
    EXPECT_NE(trace.find(want.str()), std::string::npos) << trace;
  }

  // One flow chain on the trace id: s -> t -> f, the f carrying the
  // enclosing-slice binding point.
  std::ostringstream flow_id;
  flow_id << "\"id\": " << root.trace_id;
  EXPECT_NE(trace.find("\"cat\": \"flow\", \"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"flow\", \"ph\": \"t\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"flow\", \"ph\": \"f\""), std::string::npos);
  EXPECT_NE(trace.find(flow_id.str()), std::string::npos);
  EXPECT_NE(trace.find("\"bp\": \"e\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(TraceHopTest, ServedRequestCarriesItsTraceIdIntoTheReply) {
  // End-to-end: with tracing on, a request served by the fabric surfaces
  // its trace id in the reply and leaves a connected hop chain (route ->
  // queue -> eval -> commit -> reply) in the trace file.
  DiscardTrace();
  SetTraceEnabled(true);
  const AgentConfig config = MakeStDdqnConfig(51);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 1;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.commit_us = 50;  // > 0 so the commit hop exists.
  ShardRouter router(serve_config, &models);

  const Instance inst = MakeTestInstance({MakeOrder(0, 1, 3, 5, 0, 600)}, 4);
  DispatchContext context;
  context.instance = &inst;
  context.order = &inst.orders[0];
  context.now = 100.0;
  context.time_interval = 10;
  context.options.resize(4);
  for (int v = 0; v < 4; ++v) {
    VehicleOption& opt = context.options[v];
    opt.vehicle = v;
    opt.feasible = true;
    opt.num_assigned_orders = v;
    opt.current_length = 5.0 + v;
    opt.new_length = 8.0 + 2.0 * v;
    opt.incremental_length = 3.0 + v;
    opt.position = {static_cast<double>(v), 0.0};
  }
  context.num_feasible = 4;

  const ServeReply reply = router.Submit(context).get();
  router.Stop();
  EXPECT_NE(reply.trace_id, 0u);

  const fs::path dir = MakeScratchDir("served_trace");
  const fs::path path = dir / "trace.json";
  ASSERT_TRUE(WriteTraceFile(path.string()).ok());
  SetTraceEnabled(false);
  const std::string trace = ReadFile(path);
  for (const char* hop :
       {"serve.hop.route", "serve.hop.queue", "serve.hop.eval",
        "serve.hop.commit", "serve.hop.reply"}) {
    EXPECT_NE(trace.find(hop), std::string::npos) << "missing hop " << hop;
  }
  std::ostringstream want;
  want << "\"trace\": " << reply.trace_id;
  EXPECT_NE(trace.find(want.str()), std::string::npos)
      << "the reply's trace id must appear in the hop args";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Staged export path
// ---------------------------------------------------------------------------

TEST(StagedWriteTest, CreatesParentDirsAndLeavesNoTmp) {
  const fs::path dir = MakeScratchDir("staged");
  const fs::path nested = dir / "a" / "b" / "file.json";
  ASSERT_TRUE(internal::WriteFileStaged(nested.string(), "{\"x\": 1}\n").ok());
  EXPECT_EQ(ReadFile(nested), "{\"x\": 1}\n");
  EXPECT_TRUE(NoTmpLeft(nested.parent_path()));
  // Overwrite through the same staging path.
  ASSERT_TRUE(internal::WriteFileStaged(nested.string(), "{\"x\": 2}\n").ok());
  EXPECT_EQ(ReadFile(nested), "{\"x\": 2}\n");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The black box in anger: a chaos crash dumps the flight recorder
// ---------------------------------------------------------------------------

/// Scans chaos seeds for a schedule that fires exactly `wanted` at
/// (shard 0, tick 0) and nothing else in the shards x ticks window
/// (mirrors chaos_serve_test.cc — the found seed replays identically).
uint64_t FindSeedWithLoneFault(ChaosConfig config, ChaosAction wanted,
                               int shards, int ticks) {
  for (uint64_t seed = 1; seed < 500000; ++seed) {
    config.seed = seed;
    const ChaosPolicy policy(config);
    if (policy.ActionAt(0, 0) != wanted) continue;
    bool lone = true;
    for (int s = 0; s < shards && lone; ++s) {
      for (int t = (s == 0) ? 1 : 0; t < ticks && lone; ++t) {
        if (policy.ActionAt(s, t) != ChaosAction::kNone) lone = false;
      }
    }
    if (lone) return seed;
  }
  ADD_FAILURE() << "no lone-fault chaos seed in scan range";
  return 0;
}

/// A campus name the router's hash partition homes on `shard`.
std::string CampusOnShard(const ShardRouter& router, int shard) {
  for (int i = 0; i < 10000; ++i) {
    std::string name = "campus-" + std::to_string(i);
    if (router.ShardOfCampus(name) == shard) return name;
  }
  ADD_FAILURE() << "no campus name hashes to shard " << shard;
  return "";
}

template <typename Predicate>
bool WaitFor(Predicate predicate, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(FlightRecorderIntegrationTest, ShardDeathDumpsTheBlackBox) {
  ChaosConfig chaos;
  chaos.crash_prob = 0.05;
  chaos.seed = FindSeedWithLoneFault(chaos, ChaosAction::kCrash,
                                     /*shards=*/2, /*ticks=*/20);
  ASSERT_NE(chaos.seed, 0u);

  const fs::path dir = MakeScratchDir("shard_dead");
  ::setenv("DPDP_FLIGHT_RECORDER_FILE",
           (dir / "shard_dead.json").c_str(), 1);
  SetFlightRecorderEnabled(true);
  ResetFlightRecorder();

  const AgentConfig config = MakeStDdqnConfig(53);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.chaos = chaos;
  ShardRouter router(serve_config, &models);
  ShardSupervisor supervisor(SupervisorConfig{}, &router);  // Manual scans.

  Instance inst = MakeTestInstance({MakeOrder(0, 1, 3, 5, 0, 600)}, 4);
  inst.name = CampusOnShard(router, 0);
  DispatchContext context;
  context.instance = &inst;
  context.order = &inst.orders[0];
  context.now = 100.0;
  context.time_interval = 10;
  context.options.resize(4);
  for (int v = 0; v < 4; ++v) {
    VehicleOption& opt = context.options[v];
    opt.vehicle = v;
    opt.feasible = true;
    opt.incremental_length = 3.0 + v;
    opt.position = {static_cast<double>(v), 0.0};
  }
  context.num_feasible = 4;

  const uint64_t dumps_before = FlightRecorderDumps();
  std::future<ServeReply> orphan = router.Submit(context);
  ASSERT_TRUE(WaitFor([&] { return router.shard(0).crashed(); },
                      std::chrono::seconds(30)));

  // The dead-edge scan captures the black box BEFORE failover/restart
  // overwrite the rings, exactly once per death.
  supervisor.ScanOnce(MonotonicNanos());
  EXPECT_EQ(FlightRecorderDumps(), dumps_before + 1);
  supervisor.ScanOnce(MonotonicNanos());  // Healthy again: no second dump.
  EXPECT_EQ(FlightRecorderDumps(), dumps_before + 1);

  const ServeReply rescued = orphan.get();
  EXPECT_FALSE(rescued.shed);
  router.Stop();

  const std::string dump = ReadFile(dir / "shard_dead.json");
  EXPECT_NE(dump.find("\"reason\": \"shard_dead\""), std::string::npos);
  EXPECT_NE(dump.find("serve.crash"), std::string::npos)
      << "the crash event must be on the black box:\n"
      << dump;
  EXPECT_NE(dump.find("\"kind\": \"crash\""), std::string::npos);
  EXPECT_TRUE(NoTmpLeft(dir));

  SetFlightRecorderEnabled(false);
  ResetFlightRecorder();
  ::unsetenv("DPDP_FLIGHT_RECORDER_FILE");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dpdp::obs
