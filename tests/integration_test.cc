// End-to-end integration tests over the whole pipeline: dataset ->
// prediction -> simulation -> dispatching (heuristic, learned, exact),
// checking the cross-module invariants the paper's evaluation relies on.

#include <gtest/gtest.h>

#include "core/dpdp.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<DpdpDataset>(StandardDatasetConfig(7, 80.0));
    instance_ = dataset_->SampleInstance("integ", 40, 12, 0, 4, 21);
    AverageStdPredictor predictor;
    predicted_ = predictor.Predict(dataset_->History(5, 4)).value();
  }

  std::unique_ptr<DpdpDataset> dataset_;
  Instance instance_;
  nn::Matrix predicted_;
};

TEST_F(IntegrationTest, AllDispatchersServeTheDay) {
  SimulatorConfig config;
  config.predicted_std = predicted_;
  config.record_plan = true;  // Feed every route to the feasibility oracle.
  MinIncrementalLengthDispatcher b1;
  MinTotalLengthDispatcher b2;
  MaxAcceptedOrdersDispatcher b3;
  for (Dispatcher* d : std::vector<Dispatcher*>{&b1, &b2, &b3}) {
    Simulator sim(&instance_, config);
    const EpisodeResult r = sim.RunEpisode(d);
    EXPECT_TRUE(r.all_served()) << d->name();
    EXPECT_LE(r.nuv, instance_.num_vehicles());
    EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(instance_, r))
        << d->name();
  }
  for (const std::string& m : ComparisonDrlMethods()) {
    auto agent = MakeAgentByName(m, 3);
    Simulator sim(&instance_, config);
    const EpisodeResult r = sim.RunEpisode(agent.get());
    EXPECT_TRUE(r.all_served()) << m;
    EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(instance_, r)) << m;
  }
}

TEST_F(IntegrationTest, CostIdentityAcrossDispatchers) {
  SimulatorConfig config;
  config.predicted_std = predicted_;
  MinIncrementalLengthDispatcher b1;
  Simulator sim(&instance_, config);
  const EpisodeResult r = sim.RunEpisode(&b1);
  const VehicleConfig& cfg = instance_.vehicle_config;
  EXPECT_NEAR(r.total_cost,
              cfg.fixed_cost * r.nuv + cfg.cost_per_km * r.total_travel_length,
              1e-9);
}

TEST_F(IntegrationTest, TrainedPolicyNotWorseThanRandomPolicy) {
  // A trained DDQN policy should clearly beat the untrained (random-init
  // argmax) one on its training instance.
  AgentConfig config = MakeDdqnConfig(11);
  config.epsilon_decay_episodes = 10;
  SimulatorConfig sim_config;
  sim_config.predicted_std = predicted_;
  Simulator sim(&instance_, sim_config);

  DqnFleetAgent fresh(config, "DDQN");
  const double untrained_tc = sim.RunEpisode(&fresh).total_cost;

  DqnFleetAgent agent(config, "DDQN");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 25;
  RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  const double trained_tc = sim.RunEpisode(&agent).total_cost;
  EXPECT_LT(trained_tc, untrained_tc);
}

TEST_F(IntegrationTest, ExactOptimumLowerBoundsEverythingOnTinyInstance) {
  const Instance tiny = SampleInstanceInWindow(
      dataset_.get(), "tiny", 5, 4, 0, 2, 540.0, 720.0, 13);
  ExactSolverConfig config;
  config.time_limit_seconds = 30.0;
  BranchAndBoundSolver solver(&tiny, config);
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  if (!sol.optimal) GTEST_SKIP() << "exact search hit the limit";

  SimulatorConfig sim_config;
  MinIncrementalLengthDispatcher b1;
  MinTotalLengthDispatcher b2;
  MaxAcceptedOrdersDispatcher b3;
  for (Dispatcher* d : std::vector<Dispatcher*>{&b1, &b2, &b3}) {
    Simulator sim(&tiny, sim_config);
    const EpisodeResult r = sim.RunEpisode(d);
    if (r.all_served()) {
      EXPECT_LE(sol.total_cost, r.total_cost + 1e-6) << d->name();
    }
  }
}

TEST_F(IntegrationTest, StScoreFeatureFlowsEndToEnd) {
  // An ST-DDGN agent consuming a real predicted STD must see non-trivial
  // ST Scores in at least some decisions.
  class Spy : public Dispatcher {
   public:
    const char* name() const override { return "spy"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      for (const VehicleOption& o : ctx.options) {
        if (o.feasible && o.st_score > 0.0) saw_positive_score = true;
      }
      for (const VehicleOption& o : ctx.options) {
        if (o.feasible) return o.vehicle;
      }
      return -1;
    }
    bool saw_positive_score = false;
  };
  SimulatorConfig config;
  config.predicted_std = predicted_;
  Simulator sim(&instance_, config);
  Spy spy;
  (void)sim.RunEpisode(&spy);
  EXPECT_TRUE(spy.saw_positive_score);
}

TEST_F(IntegrationTest, ReplayedScheduleIsConstraintClean) {
  // After a full baseline episode, every executed route must re-validate
  // under the planner from the depot (LIFO + capacity; time windows were
  // enforced online with waiting, so we re-check structure only by
  // replaying pickups/deliveries).
  SimulatorConfig config;
  config.record_visits = true;
  Simulator sim(&instance_, config);
  MinIncrementalLengthDispatcher b1;
  const EpisodeResult r = sim.RunEpisode(&b1);
  ASSERT_TRUE(r.all_served());
  // Capacity distribution only has entries within vehicle capacity.
  const nn::Matrix cap = sim.LastCapacityDistribution();
  EXPECT_GE(cap.SumAll(), 0.0);
}

TEST_F(IntegrationTest, UmbrellaHeaderExposesEverything) {
  // Compile-time test: all public types are reachable via core/dpdp.h.
  Rng rng(1);
  (void)rng;
  Status s = Status::OK();
  (void)s;
  TextTable t({"a"});
  (void)t;
  WallTimer timer;
  (void)timer;
  SUCCEED();
}

}  // namespace
}  // namespace dpdp
