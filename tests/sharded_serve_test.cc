// Shard-aware correctness suite for the sharded dispatch fabric
// (serve::ShardRouter): the 1-vs-N-shard bitwise determinism golden, the
// campus-hash partition contract, router policies, per-shard admission
// accounting, and the hot-swap soak under sharded load. Runs under TSan in
// CI alongside serve_test — every invariant here must hold for arbitrary
// thread interleavings, not just the ones this machine happens to produce.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "serve/dispatch_service.h"
#include "serve/load_generator.h"
#include "serve/model_server.h"
#include "serve/shard_router.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "util/rng.h"

namespace dpdp::serve {
namespace {

using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

/// Bitwise episode-equality: every deterministic field of the outcome.
/// Wall-clock fields are excluded on purpose (they measure the machine,
/// not the policy).
void ExpectSameEpisode(const EpisodeResult& a, const EpisodeResult& b) {
  EXPECT_EQ(a.num_orders, b.num_orders);
  EXPECT_EQ(a.num_served, b.num_served);
  EXPECT_EQ(a.num_unserved, b.num_unserved);
  EXPECT_EQ(a.num_decisions, b.num_decisions);
  EXPECT_EQ(a.num_degraded_decisions, b.num_degraded_decisions);
  EXPECT_EQ(a.nuv, b.nuv);
  EXPECT_EQ(a.total_travel_length, b.total_travel_length);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.sum_incremental_length, b.sum_incremental_length);
  EXPECT_EQ(a.order_assignment, b.order_assignment);
}

/// A set of genuinely distinct campuses on the line network: per-campus
/// forked Rng streams vary the demand pattern, and distinct names feed the
/// campus-hash partition. Campus c's content is a pure function of
/// (seed, c) — the same across every shard-count run of a test.
std::vector<Instance> MakeCampuses(int num_campuses, int orders_per_campus,
                                   int vehicles, uint64_t seed = 1234) {
  std::vector<Instance> campuses;
  campuses.reserve(num_campuses);
  const Rng base(seed);
  for (int c = 0; c < num_campuses; ++c) {
    Rng stream = base.Fork(static_cast<uint64_t>(c));
    std::vector<Order> orders;
    orders.reserve(orders_per_campus);
    for (int i = 0; i < orders_per_campus; ++i) {
      const int pickup = 1 + stream.UniformInt(2);    // F1 / F2
      const int delivery = 3 + stream.UniformInt(2);  // F3 / F4
      orders.push_back(MakeOrder(i, pickup, delivery,
                                 2.0 + stream.UniformInt(5), 8.0 * i,
                                 600.0 + 10.0 * i));
    }
    Instance inst = MakeTestInstance(std::move(orders), vehicles);
    inst.name = "campus-" + std::to_string(c);
    campuses.push_back(std::move(inst));
  }
  return campuses;
}

std::vector<const Instance*> Pointers(const std::vector<Instance>& campuses) {
  std::vector<const Instance*> ptrs;
  ptrs.reserve(campuses.size());
  for (const Instance& inst : campuses) ptrs.push_back(&inst);
  return ptrs;
}

/// Current value of a registry counter (0 when it does not exist yet).
double RegistryCounter(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name &&
        snap.kind == obs::MetricSnapshot::Kind::kCounter) {
      return snap.value;
    }
  }
  return 0.0;
}

/// Current value of a registry gauge (-1 when it does not exist yet).
double RegistryGauge(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name && snap.kind == obs::MetricSnapshot::Kind::kGauge) {
      return snap.value;
    }
  }
  return -1.0;
}

/// Sample count of a registry histogram (0 when it does not exist yet).
uint64_t RegistryHistogramCount(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name &&
        snap.kind == obs::MetricSnapshot::Kind::kHistogram) {
      return snap.count;
    }
  }
  return 0;
}

/// A hand-built decision context (no simulator) for request-level tests.
/// Vehicle v's incremental length is 3 + v, so the greedy fallback picks 0.
struct FixedContext {
  explicit FixedContext(const Instance* inst, int num_vehicles = 4) {
    context.instance = inst;
    context.order = &inst->orders[0];
    context.now = 100.0;
    context.time_interval = 10;
    context.options.resize(num_vehicles);
    for (int v = 0; v < num_vehicles; ++v) {
      VehicleOption& opt = context.options[v];
      opt.vehicle = v;
      opt.feasible = true;
      opt.used = (v % 2) != 0;
      opt.num_assigned_orders = v;
      opt.current_length = 5.0 + v;
      opt.new_length = 8.0 + 2.0 * v;
      opt.incremental_length = 3.0 + v;
      opt.st_score = 0.0;
      opt.position = {static_cast<double>(v), 0.0};
    }
    context.num_feasible = num_vehicles;
  }
  DispatchContext context;
};

/// The decision a local evaluation-mode agent with `config` makes on `ctx`.
int LocalChoice(const AgentConfig& config, const DispatchContext& ctx) {
  DqnFleetAgent agent(config, "expected");
  return agent.ChooseVehicle(ctx);
}

// ---------------------------------------------------------------------------
// Partition map
// ---------------------------------------------------------------------------

TEST(CampusHashTest, StableAndPlatformIndependent) {
  // FNV-1a 64 of known strings — these exact values are the cross-process
  // partition contract; a hash change silently reshuffles every campus.
  EXPECT_EQ(CampusHash(""), 14695981039346656037ull);
  EXPECT_EQ(CampusHash("a"), 12638187200555641996ull);
  EXPECT_EQ(CampusHash("campus-0"), CampusHash("campus-0"));
  EXPECT_NE(CampusHash("campus-0"), CampusHash("campus-1"));
}

TEST(CampusHashTest, PartitionCoversShardsReasonably) {
  // 256 campuses over 8 shards: the FNV map must not starve any shard
  // (a starved shard means an idle service loop and a hot neighbor).
  ModelServer models(MakeStDdqnConfig(3));
  ShardedServeConfig config;
  config.num_shards = 8;
  ShardRouter router(config, &models);
  std::vector<int> per_shard(8, 0);
  for (int c = 0; c < 256; ++c) {
    const int shard = router.ShardOfCampus("campus-" + std::to_string(c));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    ++per_shard[shard];
  }
  for (int k = 0; k < 8; ++k) {
    EXPECT_GT(per_shard[k], 8) << "shard " << k << " nearly starved";
  }
  router.Stop();
}

TEST(ShardRouterTest, RoundRobinRotatesEvenly) {
  ModelServer models(MakeStDdqnConfig(3));
  ShardedServeConfig config;
  config.num_shards = 3;
  config.policy = RouterPolicy::kRoundRobin;
  ShardRouter router(config, &models);
  const Instance inst = MakeTestInstance({MakeOrder(0, 1, 3, 5, 0, 600)}, 2);
  FixedContext fixed(&inst, 2);
  std::vector<int> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(router.ShardOf(fixed.context));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 0, 1, 2}));
  router.Stop();
}

// ---------------------------------------------------------------------------
// The 1-vs-N-shard bitwise determinism golden
// ---------------------------------------------------------------------------

TEST(ShardGoldenTest, SameSeedsThroughOneTwoEightShardsBitwiseIdentical) {
  // The same campus set served through 1, 2 and 8 shards must produce
  // per-campus episodes bitwise identical to each other AND to local
  // agents — the shard count is a pure throughput knob. The 1-shard
  // configuration is exactly the PR-5 single-service path (one queue, one
  // loop, one net replica), so this golden also pins the degeneration.
  const std::vector<Instance> campuses = MakeCampuses(6, 10, 3);
  const std::vector<const Instance*> ptrs = Pointers(campuses);
  const AgentConfig config = MakeStDdqnConfig(11);
  LoadOptions options;
  options.sim.record_plan = true;

  const LoadReport local = RunLocalAgentsLoad(ptrs, config, options);
  ASSERT_EQ(local.clients.size(), campuses.size());
  ASSERT_GT(local.total_decisions, 0);

  const double requests_before = RegistryCounter("serve.requests");
  std::map<int, double> shard_counter_before;
  for (int k = 0; k < 8; ++k) {
    shard_counter_before[k] =
        RegistryCounter("serve.shard" + std::to_string(k) + ".requests");
  }

  ModelServer models(config);  // One snapshot source for every shard count.
  long served_requests = 0;
  for (const int num_shards : {1, 2, 8}) {
    ShardedServeConfig serve_config;
    serve_config.num_shards = num_shards;
    serve_config.shard.max_batch = 4;
    serve_config.shard.max_wait_us = 200;
    ShardRouter router(serve_config, &models);
    const LoadReport served = RunServedLoad(ptrs, &router, options);
    router.Stop();

    ASSERT_EQ(served.clients.size(), campuses.size());
    for (size_t i = 0; i < campuses.size(); ++i) {
      ASSERT_EQ(served.clients[i].episodes.size(), 1u);
      ExpectSameEpisode(local.clients[i].episodes[0],
                        served.clients[i].episodes[0]);
      EXPECT_EQ(served.clients[i].sheds, 0);
    }

    // Campus-hash stickiness: shard k answered exactly the decisions of
    // the campuses the partition map assigns to it.
    const RouterStats stats = router.Stats();
    ASSERT_EQ(stats.shards.size(), static_cast<size_t>(num_shards));
    std::vector<uint64_t> expected_per_shard(num_shards, 0);
    for (size_t i = 0; i < campuses.size(); ++i) {
      expected_per_shard[router.ShardOfCampus(campuses[i].name)] +=
          static_cast<uint64_t>(local.clients[i].episodes[0].num_decisions);
    }
    for (int k = 0; k < num_shards; ++k) {
      EXPECT_EQ(stats.shards[k].requests, expected_per_shard[k])
          << num_shards << "-shard run, shard " << k;
    }
    EXPECT_EQ(stats.total.requests,
              static_cast<uint64_t>(served.total_decisions));
    EXPECT_EQ(stats.total.sheds, 0u);
    EXPECT_EQ(stats.total.degraded, 0u);
    served_requests += served.total_decisions;
  }

  // Cross-shard registry rollup: every request of this test flowed through
  // a tagged shard, so the aggregate counter's delta must equal the sum of
  // the per-shard counters' deltas exactly.
  const double aggregate_delta =
      RegistryCounter("serve.requests") - requests_before;
  double shard_delta = 0.0;
  for (int k = 0; k < 8; ++k) {
    shard_delta +=
        RegistryCounter("serve.shard" + std::to_string(k) + ".requests") -
        shard_counter_before[k];
  }
  EXPECT_DOUBLE_EQ(aggregate_delta, shard_delta);
  EXPECT_DOUBLE_EQ(aggregate_delta, static_cast<double>(served_requests));
}

TEST(ShardGoldenTest, GraphNetFamilyMatchesAcrossShards) {
  // The relational (ST-DDGN) family exercises the block-diagonal adjacency
  // path; two shards suffice to prove the fabric preserves it.
  const std::vector<Instance> campuses = MakeCampuses(4, 8, 3, /*seed=*/77);
  const std::vector<const Instance*> ptrs = Pointers(campuses);
  const AgentConfig config = MakeStDdgnConfig(11);
  LoadOptions options;
  options.sim.record_plan = true;

  const LoadReport local = RunLocalAgentsLoad(ptrs, config, options);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_batch = 4;
  serve_config.shard.max_wait_us = 200;
  ShardRouter router(serve_config, &models);
  const LoadReport served = RunServedLoad(ptrs, &router, options);
  router.Stop();
  for (size_t i = 0; i < campuses.size(); ++i) {
    ExpectSameEpisode(local.clients[i].episodes[0],
                      served.clients[i].episodes[0]);
  }
}

TEST(ShardRouterTest, RoundRobinPolicyPreservesDecisions) {
  // Round-robin scatters one campus's requests across every shard; the
  // decisions must still be bitwise those of a local agent, because WHICH
  // shard evaluates a request is invisible to the answer.
  const std::vector<Instance> campuses = MakeCampuses(3, 8, 3, /*seed=*/55);
  const std::vector<const Instance*> ptrs = Pointers(campuses);
  const AgentConfig config = MakeStDdqnConfig(19);
  LoadOptions options;
  options.sim.record_plan = true;

  const LoadReport local = RunLocalAgentsLoad(ptrs, config, options);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 3;
  serve_config.policy = RouterPolicy::kRoundRobin;
  serve_config.shard.max_batch = 4;
  serve_config.shard.max_wait_us = 200;
  ShardRouter router(serve_config, &models);
  const LoadReport served = RunServedLoad(ptrs, &router, options);
  router.Stop();
  for (size_t i = 0; i < campuses.size(); ++i) {
    ExpectSameEpisode(local.clients[i].episodes[0],
                      served.clients[i].episodes[0]);
  }
}

// ---------------------------------------------------------------------------
// Per-shard admission control
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, DrainModeShedsOnEveryShardWithPerShardAccounting) {
  const std::vector<Instance> campuses = MakeCampuses(4, 1, 4, /*seed=*/91);
  ModelServer models(MakeStDdqnConfig(23));
  ShardedServeConfig config;
  config.num_shards = 2;
  config.shard.queue_capacity = 0;  // Drain mode: shed everything.
  ShardRouter router(config, &models);

  int total = 0;
  for (const Instance& inst : campuses) {
    FixedContext fixed(&inst);
    const int expected_shard = router.ShardOfCampus(inst.name);
    for (int i = 0; i < 3; ++i) {
      const ServeReply reply = router.Submit(fixed.context).get();
      EXPECT_TRUE(reply.shed);
      EXPECT_EQ(reply.vehicle, 0);  // Greedy fallback: min incremental.
      EXPECT_EQ(reply.shard, expected_shard);
      ++total;
    }
  }
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.total.requests, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.total.sheds, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.total.batches, 0u);
  // Shedding is per shard: each shard shed exactly what was routed to it.
  for (size_t k = 0; k < stats.shards.size(); ++k) {
    EXPECT_EQ(stats.shards[k].sheds, stats.shards[k].requests);
  }
  router.Stop();
}

// ---------------------------------------------------------------------------
// Telemetry rollup: queue-depth gauges, latency histogram, reroute latency
// ---------------------------------------------------------------------------

TEST(TelemetryRollupTest, QueueDepthAndLatencyRollUpAcrossShards) {
  const std::vector<Instance> campuses = MakeCampuses(4, 6, 3, /*seed=*/67);
  const std::vector<const Instance*> ptrs = Pointers(campuses);
  const AgentConfig config = MakeStDdqnConfig(29);
  ModelServer models(config);

  const double requests_before = RegistryCounter("serve.requests");
  const uint64_t latency_before =
      RegistryHistogramCount("serve.request_latency_s");
  std::map<int, double> shard_requests_before;
  for (int k = 0; k < 2; ++k) {
    shard_requests_before[k] =
        RegistryCounter("serve.shard" + std::to_string(k) + ".requests");
  }

  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_batch = 4;
  serve_config.shard.max_wait_us = 200;
  ShardRouter router(serve_config, &models);
  LoadOptions options;
  const LoadReport served = RunServedLoad(ptrs, &router, options);
  router.Stop();
  ASSERT_GT(served.total_decisions, 0);

  // Queue-depth gauges exist for the aggregate and every shard, and after
  // a drained run they all read 0 — the last batch pop saw an empty
  // backlog. (A -1 here means the gauge was never registered.)
  EXPECT_EQ(RegistryGauge("serve.queue_depth"), 0.0);
  for (int k = 0; k < 2; ++k) {
    EXPECT_EQ(RegistryGauge("serve.shard" + std::to_string(k) +
                            ".queue_depth"),
              0.0)
        << "shard " << k;
  }

  // Every answered request records one end-to-end latency sample, on every
  // path (served / shed / deadline) — the histogram the SLO monitor's p99
  // objective reads. Its count delta must match the requests delta, which
  // in turn must equal the per-shard rollup.
  const double aggregate_delta =
      RegistryCounter("serve.requests") - requests_before;
  EXPECT_EQ(static_cast<double>(
                RegistryHistogramCount("serve.request_latency_s") -
                latency_before),
            aggregate_delta);
  double shard_delta = 0.0;
  for (int k = 0; k < 2; ++k) {
    shard_delta +=
        RegistryCounter("serve.shard" + std::to_string(k) + ".requests") -
        shard_requests_before[k];
  }
  EXPECT_DOUBLE_EQ(aggregate_delta, shard_delta);
  EXPECT_DOUBLE_EQ(aggregate_delta,
                   static_cast<double>(served.total_decisions));

  // The load generator's percentiles come from the same histogram-quantile
  // estimator the telemetry plane uses, so they are finite and ordered.
  EXPECT_GE(served.p95_us, served.p50_us);
  EXPECT_GE(served.p99_us, served.p95_us);
  EXPECT_GT(served.p99_us, 0.0);
}

TEST(TelemetryRollupTest, RerouteRecordsItsLatencyHistogram) {
  ModelServer models(MakeStDdqnConfig(43));
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_wait_us = 200;
  ShardRouter router(serve_config, &models);

  // A campus homed on shard 0, with shard 0's partition failed over: the
  // submit diverts to shard 1 and must record exactly one reroute-latency
  // sample (the fast path records none).
  std::string campus;
  for (int i = 0; i < 10000 && campus.empty(); ++i) {
    const std::string name = "campus-" + std::to_string(i);
    if (router.ShardOfCampus(name) == 0) campus = name;
  }
  ASSERT_FALSE(campus.empty());
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 3, 5, 0, 600)}, 4);
  inst.name = campus;
  const FixedContext fixed(&inst);

  const uint64_t reroute_before =
      RegistryHistogramCount("serve.reroute_latency_s");
  router.TripShard(0);
  const ServeReply diverted = router.Submit(fixed.context).get();
  EXPECT_EQ(diverted.shard, 1);
  EXPECT_FALSE(diverted.shed);
  EXPECT_EQ(RegistryHistogramCount("serve.reroute_latency_s"),
            reroute_before + 1);
  EXPECT_EQ(router.shard(0).rerouted(), 1u);

  // Restored: the next submit stays home and records nothing.
  router.RestoreShard(0);
  const ServeReply home = router.Submit(fixed.context).get();
  EXPECT_EQ(home.shard, 0);
  EXPECT_EQ(RegistryHistogramCount("serve.reroute_latency_s"),
            reroute_before + 1);
  router.Stop();
}

// ---------------------------------------------------------------------------
// Hot-swap soak under sharded load
// ---------------------------------------------------------------------------

TEST(ShardedHotSwapSoakTest, AllShardsTrackPublishesWithoutSeqRegression) {
  // K checkpoints with strictly increasing seq are published while every
  // shard serves closed-loop requesters. Invariants, per reply: the
  // decision matches the per-seq ground truth (a reply scored by snapshot
  // s must equal the local choice under s's weights — torn weight syncs
  // show up as matching neither), the answering shard is the partition
  // map's, and each requester's observed seq never decreases (its campus
  // is pinned to one shard whose loop syncs monotonically; a regression
  // would mean a shard rolled its replica back mid-stream).
  AgentConfig config_a = MakeStDdqnConfig(31);
  AgentConfig config_b = config_a;
  config_b.seed = 909;  // Same architecture, different weights.

  const std::vector<Instance> campuses = MakeCampuses(6, 1, 4, /*seed=*/47);
  std::vector<std::unique_ptr<FixedContext>> contexts;
  std::vector<int> choice_a, choice_b;
  for (const Instance& inst : campuses) {
    contexts.push_back(std::make_unique<FixedContext>(&inst));
    choice_a.push_back(LocalChoice(config_a, contexts.back()->context));
    choice_b.push_back(LocalChoice(config_b, contexts.back()->context));
    ASSERT_GE(choice_a.back(), 0);
    ASSERT_GE(choice_b.back(), 0);
  }

  const std::vector<nn::Matrix> weights_a =
      DqnFleetAgent(config_a, "a").ExportPolicyWeights();
  const std::vector<nn::Matrix> weights_b =
      DqnFleetAgent(config_b, "b").ExportPolicyWeights();

  ModelServer models(config_a);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 4;
  serve_config.shard.max_batch = 8;
  serve_config.shard.max_wait_us = 100;
  ShardRouter router(serve_config, &models);

  constexpr int kSwaps = 25;
  constexpr int kRequestsEach = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> wrong_shard{0};
  std::atomic<int> seq_regressions{0};
  std::atomic<int> unanswered{0};

  std::vector<std::thread> requesters;
  requesters.reserve(campuses.size());
  for (size_t c = 0; c < campuses.size(); ++c) {
    requesters.emplace_back([&, c] {
      const int expected_shard = router.ShardOfCampus(campuses[c].name);
      uint64_t last_seq = 0;
      for (int i = 0; i < kRequestsEach; ++i) {
        std::future<ServeReply> fut = router.Submit(contexts[c]->context);
        if (fut.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          unanswered.fetch_add(1);
          return;
        }
        const ServeReply reply = fut.get();
        if (reply.shed) continue;  // Shed replies bypass the model.
        if (reply.shard != expected_shard) wrong_shard.fetch_add(1);
        const int expected = (reply.model_seq % 2 == 0)
                                 ? choice_a[c]
                                 : choice_b[c];
        if (reply.vehicle != expected) mismatches.fetch_add(1);
        if (reply.model_seq < last_seq) seq_regressions.fetch_add(1);
        last_seq = reply.model_seq;
      }
    });
  }
  std::thread publisher([&] {
    for (int i = 1; i <= kSwaps; ++i) {
      auto snap = std::make_shared<ModelSnapshot>();
      snap->seq = static_cast<uint64_t>(i);
      snap->source = "soak";
      snap->weights = (i % 2 == 0) ? weights_a : weights_b;
      models.Publish(std::move(snap));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  for (std::thread& t : requesters) t.join();
  publisher.join();

  EXPECT_EQ(unanswered.load(), 0) << "a shard stalled in-flight requests";
  EXPECT_EQ(mismatches.load(), 0)
      << "a reply matched neither snapshot's ground truth (torn sync)";
  EXPECT_EQ(wrong_shard.load(), 0) << "router violated the partition map";
  EXPECT_EQ(seq_regressions.load(), 0) << "a shard rolled back its replica";

  // After the dust settles every shard that serves another request must be
  // on the final snapshot (Publish happened-before), and its recorded
  // net_seq is final too — the fan-out reached all N subscribers.
  for (size_t c = 0; c < campuses.size(); ++c) {
    const ServeReply last = router.Submit(contexts[c]->context).get();
    EXPECT_EQ(last.model_seq, static_cast<uint64_t>(kSwaps));
    EXPECT_EQ(last.vehicle, kSwaps % 2 == 0 ? choice_a[c] : choice_b[c]);
  }
  for (int k = 0; k < router.num_shards(); ++k) {
    if (router.shard(k).requests() > router.shard(k).sheds()) {
      EXPECT_EQ(router.shard(k).net_seq(), static_cast<uint64_t>(kSwaps))
          << "shard " << k << " never caught up";
    }
  }
  router.Stop();
}

}  // namespace
}  // namespace dpdp::serve
