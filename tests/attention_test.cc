#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace dpdp::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}

Matrix FullMask(int n) { return Matrix(n, n, 1.0); }

TEST(Attention, OutputShape) {
  Rng rng(1);
  MultiHeadSelfAttention attn(8, 2, &rng);
  const Matrix y = attn.Forward(RandomMatrix(5, 8, &rng), FullMask(5));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(Attention, WeightsAreRowStochastic) {
  Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, &rng);
  attn.Forward(RandomMatrix(6, 8, &rng), FullMask(6));
  for (const Matrix& a : attn.last_attention_weights()) {
    for (int i = 0; i < a.rows(); ++i) {
      double sum = 0.0;
      for (int j = 0; j < a.cols(); ++j) {
        EXPECT_GE(a(i, j), 0.0);
        sum += a(i, j);
      }
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(Attention, MaskedPositionsGetZeroWeight) {
  Rng rng(3);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix mask(4, 4);
  // Row i attends to itself and its successor only.
  for (int i = 0; i < 4; ++i) {
    mask(i, i) = 1.0;
    mask(i, (i + 1) % 4) = 1.0;
  }
  attn.Forward(RandomMatrix(4, 8, &rng), mask);
  for (const Matrix& a : attn.last_attention_weights()) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (mask(i, j) == 0.0) EXPECT_DOUBLE_EQ(a(i, j), 0.0);
      }
    }
  }
}

TEST(Attention, SelfOnlyMaskIgnoresOtherRows) {
  // With a diagonal mask, changing row 1's features must not change row
  // 0's output.
  Rng rng(4);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix x = RandomMatrix(3, 8, &rng);
  const Matrix diag = Matrix::Identity(3);
  const Matrix y1 = attn.Forward(x, diag);
  for (int c = 0; c < 8; ++c) x(1, c) += 10.0;
  const Matrix y2 = attn.Forward(x, diag);
  for (int c = 0; c < 8; ++c) EXPECT_NEAR(y1(0, c), y2(0, c), 1e-12);
}

TEST(Attention, MaskedRowsDoNotInfluenceOutput) {
  // Row 0 attends only to {0, 1}; perturbing row 2 must not change row 0.
  Rng rng(5);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix mask(3, 3, 0.0);
  mask(0, 0) = mask(0, 1) = 1.0;
  mask(1, 1) = 1.0;
  mask(2, 2) = 1.0;
  Matrix x = RandomMatrix(3, 8, &rng);
  const Matrix y1 = attn.Forward(x, mask);
  for (int c = 0; c < 8; ++c) x(2, c) -= 3.0;
  const Matrix y2 = attn.Forward(x, mask);
  for (int c = 0; c < 8; ++c) EXPECT_NEAR(y1(0, c), y2(0, c), 1e-12);
}

TEST(Attention, ParameterCount) {
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, &rng);
  // Wq, Wk, Wv, Wo each contribute weight + bias.
  EXPECT_EQ(attn.Params().size(), 8u);
}

TEST(Attention, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  const int n = 4;
  const int d = 8;
  MultiHeadSelfAttention attn(d, 2, &rng);
  Matrix mask(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    mask(i, i) = 1.0;
    mask(i, (i + 1) % n) = 1.0;
    mask(i, (i + 2) % n) = 1.0;
  }
  const Matrix x = RandomMatrix(n, d, &rng, 0.7);
  const Matrix probe = RandomMatrix(n, d, &rng, 0.5);

  const Matrix y = attn.Forward(x, mask);
  const Matrix dx = attn.Backward(probe);

  auto loss = [&] {
    return attn.Forward(x, mask).Hadamard(probe).SumAll();
  };

  // Parameter gradients.
  const double eps = 1e-6;
  for (Parameter* p : attn.Params()) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double saved = p->value(r, c);
        p->value(r, c) = saved + eps;
        const double lp = loss();
        p->value(r, c) = saved - eps;
        const double lm = loss();
        p->value(r, c) = saved;
        EXPECT_NEAR(p->grad(r, c), (lp - lm) / (2.0 * eps), 2e-5);
      }
    }
  }

  // Input gradients.
  Matrix x_var = x;
  auto loss_x = [&] {
    return attn.Forward(x_var, mask).Hadamard(probe).SumAll();
  };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) {
      x_var(r, c) = x(r, c) + eps;
      const double lp = loss_x();
      x_var(r, c) = x(r, c) - eps;
      const double lm = loss_x();
      x_var(r, c) = x(r, c);
      EXPECT_NEAR(dx(r, c), (lp - lm) / (2.0 * eps), 2e-5);
    }
  }
}

TEST(Attention, SingleHeadEqualsMultiHeadParamCountInvariance) {
  // d_model must be divisible by heads; 1 head always works.
  Rng rng(8);
  MultiHeadSelfAttention attn(6, 1, &rng);
  const Matrix y = attn.Forward(RandomMatrix(3, 6, &rng), FullMask(3));
  EXPECT_EQ(y.cols(), 6);
  EXPECT_EQ(attn.last_attention_weights().size(), 1u);
}

}  // namespace
}  // namespace dpdp::nn
