// Correctness suite for the src/train/ Ape-X actor-learner fabric:
// sharded-replay conservation under concurrent push/sample (exact element
// accounting), checkpoint roundtrips, the 1-vs-2-vs-4-actor deterministic
// training golden (bit-identical final weights for any actor count), the
// kill-the-learner checkpoint-resume golden, greedy fabric-vs-local
// parity, the Environment step-API parity shim check, and the
// DPDP_TRAIN_* config layer. Runs under TSan in CI alongside the serve
// suites — the replay stripes and the actor barrier must hold for
// arbitrary interleavings.

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "rl/replay.h"
#include "sim/environment.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "train/actor.h"
#include "train/apex.h"
#include "train/learner.h"
#include "train/replay_shard.h"
#include "util/rng.h"

namespace dpdp::train {
namespace {

using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

Instance MakeTrainInstance(int num_orders = 8, int num_vehicles = 3) {
  std::vector<Order> orders;
  orders.reserve(num_orders);
  Rng rng(77);
  for (int i = 0; i < num_orders; ++i) {
    const int pickup = 1 + rng.UniformInt(2);
    const int delivery = 3 + rng.UniformInt(2);
    orders.push_back(MakeOrder(i, pickup, delivery, 2.0 + rng.UniformInt(5),
                               10.0 * i, 700.0 + 10.0 * i));
  }
  return MakeTestInstance(std::move(orders), num_vehicles);
}

/// Small-but-real agent config: every training knob active, sized so a
/// 6-episode run stays sub-second.
AgentConfig MakeTrainAgentConfig(uint64_t seed = 5) {
  AgentConfig config;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.attention_levels = 1;
  config.num_neighbors = 2;
  config.replay_capacity = 256;
  config.batch_size = 4;
  config.updates_per_episode = 1;
  config.scale_updates_with_episode = false;
  config.epsilon_start = 0.5;
  config.epsilon_end = 0.1;
  config.epsilon_decay_episodes = 6;
  config.target_sync_episodes = 2;
  config.track_best_weights = false;
  config.seed = seed;
  return config;
}

ApexConfig MakeApexConfig() {
  ApexConfig config;
  config.num_actors = 1;
  config.episodes = 6;
  config.sync_every = 2;
  config.deterministic = true;
  config.replay_shards = 3;
  config.shard_capacity = 128;
  config.updates_per_generation = 2;
  config.target_sync_updates = 3;
  config.serve.max_batch = 4;
  config.serve.max_wait_us = 50;
  return config;
}

Transition MakeTaggedTransition(double tag) {
  Transition t;
  t.action = 0;
  t.reward = static_cast<float>(tag);
  t.terminal = true;
  return t;
}

void ExpectSameWeights(const std::vector<nn::Matrix>& a,
                       const std::vector<nn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows());
    ASSERT_EQ(a[i].cols(), b[i].cols());
    for (int r = 0; r < a[i].rows(); ++r) {
      for (int c = 0; c < a[i].cols(); ++c) {
        ASSERT_EQ(a[i](r, c), b[i](r, c))
            << "param " << i << " (" << r << ", " << c << ")";
      }
    }
  }
}

void ExpectSameEpisode(const EpisodeResult& a, const EpisodeResult& b) {
  EXPECT_EQ(a.num_orders, b.num_orders);
  EXPECT_EQ(a.num_served, b.num_served);
  EXPECT_EQ(a.num_unserved, b.num_unserved);
  EXPECT_EQ(a.num_decisions, b.num_decisions);
  EXPECT_EQ(a.num_degraded_decisions, b.num_degraded_decisions);
  EXPECT_EQ(a.nuv, b.nuv);
  EXPECT_EQ(a.total_travel_length, b.total_travel_length);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.sum_incremental_length, b.sum_incremental_length);
}

// --- ShardedReplayBuffer ---------------------------------------------------

TEST(ShardedReplayBufferTest, ConservesEveryElementUnderConcurrency) {
  // 4 pushers commit episodes with globally unique reward tags while 2
  // samplers hammer Sample. Capacity is big enough that nothing is ever
  // evicted, so afterwards the stored multiset must be EXACTLY the pushed
  // multiset — any lost, duplicated or torn element fails.
  constexpr int kPushers = 4;
  constexpr int kEpisodesPerPusher = 25;
  constexpr int kTransitionsPerEpisode = 7;
  ShardedReplayBuffer replay(/*num_shards=*/5, /*capacity_per_shard=*/1024);
  // Seed one element so concurrent samplers never see an empty buffer.
  replay.AddEpisode(0, {MakeTaggedTransition(-1.0)});

  std::vector<std::thread> pushers;
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&replay, p] {
      for (int e = 0; e < kEpisodesPerPusher; ++e) {
        const int episode = 1 + p * kEpisodesPerPusher + e;
        std::vector<Transition> transitions;
        for (int t = 0; t < kTransitionsPerEpisode; ++t) {
          transitions.push_back(
              MakeTaggedTransition(episode * 100.0 + t));
        }
        replay.AddEpisode(episode, std::move(transitions));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> samplers;
  for (int s = 0; s < 2; ++s) {
    samplers.emplace_back([&replay, &stop, s] {
      Rng rng(1000 + s);
      while (!stop.load()) {
        const std::vector<Transition> batch = replay.Sample(8, &rng);
        ASSERT_EQ(batch.size(), 8u);
      }
    });
  }
  for (std::thread& t : pushers) t.join();
  stop.store(true);
  for (std::thread& t : samplers) t.join();

  std::multiset<double> expected{-1.0};
  for (int p = 0; p < kPushers; ++p) {
    for (int e = 0; e < kEpisodesPerPusher; ++e) {
      const int episode = 1 + p * kEpisodesPerPusher + e;
      for (int t = 0; t < kTransitionsPerEpisode; ++t) {
        expected.insert(episode * 100.0 + t);
      }
    }
  }
  std::multiset<double> stored;
  for (const Transition& t : replay.Snapshot()) {
    stored.insert(t.reward);
  }
  EXPECT_EQ(replay.size(),
            1 + kPushers * kEpisodesPerPusher * kTransitionsPerEpisode);
  EXPECT_EQ(stored, expected);
}

TEST(ShardedReplayBufferTest, SamplingIsDeterministicGivenRngState) {
  ShardedReplayBuffer replay(3, 64);
  for (int e = 0; e < 9; ++e) {
    replay.AddEpisode(e, {MakeTaggedTransition(e), MakeTaggedTransition(e + 0.5)});
  }
  Rng rng_a(42);
  Rng rng_b(42);
  const std::vector<Transition> a = replay.Sample(16, &rng_a);
  const std::vector<Transition> b = replay.Sample(16, &rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].reward, b[i].reward);
  }
}

TEST(ShardedReplayBufferTest, SaveLoadRoundtrip) {
  ShardedReplayBuffer replay(2, 16);
  for (int e = 0; e < 6; ++e) {
    replay.AddEpisode(e, {MakeTaggedTransition(10.0 * e)});
  }
  std::stringstream buffer;
  replay.Save(&buffer);

  ShardedReplayBuffer restored(2, 16);
  ASSERT_TRUE(restored.Load(&buffer));
  EXPECT_EQ(restored.size(), replay.size());
  const std::vector<Transition> a = replay.Snapshot();
  const std::vector<Transition> b = restored.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].reward, b[i].reward);

  // Shape mismatches refuse to load instead of silently reshuffling.
  std::stringstream again;
  replay.Save(&again);
  ShardedReplayBuffer wrong_shards(3, 16);
  EXPECT_FALSE(wrong_shards.Load(&again));
  std::stringstream once_more;
  replay.Save(&once_more);
  ShardedReplayBuffer wrong_capacity(2, 32);
  EXPECT_FALSE(wrong_capacity.Load(&once_more));
}

// --- Reward folding --------------------------------------------------------

TEST(FoldEpisodeRewardsTest, FoldsEpisodeMeanIntoEveryStep) {
  std::vector<EpisodeStep> steps(3);
  steps[0].instant_reward = -1.0;
  steps[1].instant_reward = -2.0;
  steps[2].instant_reward = -6.0;
  steps[2].terminal = true;
  const std::vector<Transition> folded = FoldEpisodeRewards(std::move(steps));
  ASSERT_EQ(folded.size(), 3u);
  const double mean = (-1.0 - 2.0 - 6.0) / 3.0;
  EXPECT_EQ(folded[0].reward, static_cast<float>(-1.0 + mean));
  EXPECT_EQ(folded[1].reward, static_cast<float>(-2.0 + mean));
  EXPECT_EQ(folded[2].reward, static_cast<float>(-6.0 + mean));
  EXPECT_FALSE(folded[0].terminal);
  EXPECT_TRUE(folded[2].terminal);
}

// --- Environment step-API shim ---------------------------------------------

/// The greedy-insertion rule as a plain Dispatcher (not an Agent), to
/// drive the facade.
class GreedyDispatcher : public Dispatcher {
 public:
  const char* name() const override { return "greedy"; }
  int ChooseVehicle(const DispatchContext& context) override {
    return GreedyInsertionFallback(context);
  }
};

TEST(EnvironmentStepTest, StepLoopMatchesSimulatorFacade) {
  const Instance instance = MakeTrainInstance();
  Simulator facade(&instance);
  GreedyDispatcher greedy;
  const EpisodeResult via_facade = facade.RunEpisode(&greedy);

  Environment env(&instance);
  env.Reset();
  while (env.AdvanceToDecision()) {
    env.Apply(GreedyInsertionFallback(env.ObserveDecision()));
  }
  ExpectSameEpisode(via_facade, env.result());
  EXPECT_EQ(via_facade.num_orders, static_cast<int>(instance.orders.size()));
}

// --- Deterministic actor-count invariance ----------------------------------

TEST(ApexTrainerTest, DeterministicModeIsActorCountInvariant) {
  const Instance instance = MakeTrainInstance();
  const AgentConfig agent_config = MakeTrainAgentConfig();

  std::vector<std::vector<nn::Matrix>> weights;
  std::vector<ApexReport> reports;
  for (const int actors : {1, 2, 4}) {
    ApexConfig config = MakeApexConfig();
    config.num_actors = actors;
    ApexTrainer trainer(&instance, config, agent_config);
    reports.push_back(trainer.Run());
    weights.push_back(trainer.PolicyWeights());
  }

  for (size_t i = 1; i < weights.size(); ++i) {
    ExpectSameWeights(weights[0], weights[i]);
    ASSERT_EQ(reports[0].episodes.size(), reports[i].episodes.size());
    for (size_t e = 0; e < reports[0].episodes.size(); ++e) {
      ExpectSameEpisode(reports[0].episodes[e], reports[i].episodes[e]);
    }
    EXPECT_EQ(reports[0].transitions, reports[i].transitions);
    EXPECT_EQ(reports[0].learner_updates, reports[i].learner_updates);
    EXPECT_EQ(reports[0].final_seq, reports[i].final_seq);
  }
  // The run genuinely trained and the actors picked up published weights.
  EXPECT_GT(reports[0].learner_updates, 0u);
  EXPECT_GE(reports[0].publishes, 1u);
  EXPECT_GE(reports[0].max_model_seq_seen, 1u);
  EXPECT_EQ(reports[0].sheds, 0);
}

// A sharded serving fabric behind the actors must not change the outcome
// (the batching invariant makes the shard count decision-invariant).
TEST(ApexTrainerTest, ServeShardCountIsDecisionInvariant) {
  const Instance instance = MakeTrainInstance();
  const AgentConfig agent_config = MakeTrainAgentConfig();

  ApexConfig single = MakeApexConfig();
  single.num_actors = 2;
  ApexTrainer trainer_single(&instance, single, agent_config);
  trainer_single.Run();

  ApexConfig sharded = MakeApexConfig();
  sharded.num_actors = 2;
  sharded.serve_shards = 2;
  ApexTrainer trainer_sharded(&instance, sharded, agent_config);
  trainer_sharded.Run();

  ExpectSameWeights(trainer_single.PolicyWeights(),
                    trainer_sharded.PolicyWeights());
}

// --- Kill-the-learner checkpoint resume ------------------------------------

TEST(ApexTrainerTest, ResumeFromFabricCheckpointMatchesUninterrupted) {
  const Instance instance = MakeTrainInstance();
  const AgentConfig agent_config = MakeTrainAgentConfig();
  const std::string dir = ::testing::TempDir() + "/apex_resume";

  // Uninterrupted 6-episode run, checkpointing at every generation.
  ApexConfig full = MakeApexConfig();
  full.num_actors = 2;
  full.checkpoint_every = 1;
  full.checkpoint_dir = dir;
  ApexTrainer uninterrupted(&instance, full, agent_config);
  const ApexReport full_report = uninterrupted.Run();
  ASSERT_EQ(full_report.episodes_done, 6);

  // "Kill" after generation 2 (4 episodes): a fresh trainer resumes from
  // that generation's fabric checkpoint and finishes the run. Everything
  // downstream — actor decisions, replay contents, learner sampling,
  // final weights — must be bit-identical to never having died.
  ApexConfig resumed_config = MakeApexConfig();
  resumed_config.num_actors = 2;
  resumed_config.resume_from = dir + "/apex-000002.ckpt";
  ApexTrainer resumed(&instance, resumed_config, agent_config);
  const ApexReport resumed_report = resumed.Run();

  EXPECT_EQ(resumed_report.episodes_done, 6);
  ExpectSameWeights(uninterrupted.PolicyWeights(), resumed.PolicyWeights());
  EXPECT_EQ(uninterrupted.learner_agent()->episodes_trained(),
            resumed.learner_agent()->episodes_trained());
  // Only the post-resume episodes were (re)run.
  ExpectSameEpisode(full_report.episodes[4], resumed_report.episodes[4]);
  ExpectSameEpisode(full_report.episodes[5], resumed_report.episodes[5]);
}

// The fabric checkpoint's payload prefix is a plain agent blob: a serving
// ModelServer pointed at the checkpoint file must be able to restore and
// publish it (the actors' weight channel is the checkpoint watcher in a
// multi-process deployment).
TEST(ApexTrainerTest, FabricCheckpointIsModelServerCompatible) {
  const Instance instance = MakeTrainInstance();
  const AgentConfig agent_config = MakeTrainAgentConfig();
  const std::string dir = ::testing::TempDir() + "/apex_serve_compat";

  ApexConfig config = MakeApexConfig();
  config.checkpoint_every = 1;
  config.checkpoint_dir = dir;
  ApexTrainer trainer(&instance, config, agent_config);
  const ApexReport report = trainer.Run();
  ASSERT_GE(report.final_seq, 3u);

  serve::ModelServer models(agent_config);
  EXPECT_EQ(models.PollOnce(dir), 1);
  EXPECT_EQ(models.current_seq(), report.final_seq);
  ExpectSameWeights(models.Current()->weights, trainer.PolicyWeights());
}

// --- Fabric-vs-local greedy parity -----------------------------------------

TEST(ApexTrainerTest, GreedyFabricEpisodeMatchesLocalAgent) {
  const Instance instance = MakeTrainInstance();
  AgentConfig agent_config = MakeTrainAgentConfig();
  // No exploration, no learning: the fabric episode is pure served
  // inference on the seq-0 snapshot, which must equal a local
  // evaluation-mode agent built from the same config.
  agent_config.epsilon_start = 0.0;
  agent_config.epsilon_end = 0.0;

  ApexConfig config = MakeApexConfig();
  config.episodes = 1;
  config.sync_every = 1;
  config.updates_per_generation = 0;
  ApexTrainer trainer(&instance, config, agent_config);
  const ApexReport report = trainer.Run();

  DqnFleetAgent local(agent_config, "local");
  Simulator sim(&instance);
  const EpisodeResult local_result = sim.RunEpisode(&local);
  ASSERT_EQ(report.episodes.size(), 1u);
  ExpectSameEpisode(report.episodes[0], local_result);
  EXPECT_EQ(report.explore_decisions, 0);
  EXPECT_GT(report.served_decisions, 0);
}

// --- Async mode smoke -------------------------------------------------------

TEST(ApexTrainerTest, AsyncModeTrainsAndPublishes) {
  const Instance instance = MakeTrainInstance();
  const AgentConfig agent_config = MakeTrainAgentConfig();
  ApexConfig config = MakeApexConfig();
  config.deterministic = false;
  config.num_actors = 3;
  config.episodes = 9;
  config.sync_every = 3;
  ApexTrainer trainer(&instance, config, agent_config);
  const ApexReport report = trainer.Run();
  EXPECT_EQ(report.episodes_done, 9);
  EXPECT_GT(report.transitions, 0);
  EXPECT_GT(report.learner_updates, 0u);
  EXPECT_GE(report.publishes, 1u);
  for (const EpisodeResult& episode : report.episodes) {
    EXPECT_GT(episode.num_decisions, 0);
  }
}

// --- Config layer -----------------------------------------------------------

TEST(ApexConfigTest, FromEnvReadsTrainKnobs) {
  setenv("DPDP_TRAIN_ACTORS", "7", 1);
  setenv("DPDP_TRAIN_EPISODES", "21", 1);
  setenv("DPDP_TRAIN_SYNC_EVERY", "3", 1);
  setenv("DPDP_TRAIN_DETERMINISTIC", "0", 1);
  setenv("DPDP_TRAIN_REPLAY_SHARDS", "9", 1);
  setenv("DPDP_TRAIN_SHARD_CAP", "512", 1);
  setenv("DPDP_TRAIN_MIN_REPLAY", "64", 1);
  setenv("DPDP_TRAIN_UPDATES_PER_SYNC", "5", 1);
  setenv("DPDP_TRAIN_TARGET_SYNC_UPDATES", "11", 1);
  setenv("DPDP_TRAIN_CHECKPOINT_EVERY", "2", 1);
  setenv("DPDP_TRAIN_CHECKPOINT_DIR", "/tmp/apex-test-ckpts", 1);
  setenv("DPDP_TRAIN_RESUME_FROM", "/tmp/apex-test-ckpts/apex-000001.ckpt",
         1);
  setenv("DPDP_TRAIN_SEED", "31337", 1);
  setenv("DPDP_TRAIN_SERVE_SHARDS", "2", 1);
  setenv("DPDP_SERVE_MAX_BATCH", "12", 1);

  const ApexConfig config = ApexConfig::FromEnv();
  EXPECT_EQ(config.num_actors, 7);
  EXPECT_EQ(config.episodes, 21);
  EXPECT_EQ(config.sync_every, 3);
  EXPECT_FALSE(config.deterministic);
  EXPECT_EQ(config.replay_shards, 9);
  EXPECT_EQ(config.shard_capacity, 512);
  EXPECT_EQ(config.min_replay, 64);
  EXPECT_EQ(config.updates_per_generation, 5);
  EXPECT_EQ(config.target_sync_updates, 11);
  EXPECT_EQ(config.checkpoint_every, 2);
  EXPECT_EQ(config.checkpoint_dir, "/tmp/apex-test-ckpts");
  EXPECT_EQ(config.resume_from, "/tmp/apex-test-ckpts/apex-000001.ckpt");
  EXPECT_EQ(config.explore_seed_base, 31337u);
  EXPECT_EQ(config.serve_shards, 2);
  EXPECT_EQ(config.serve.max_batch, 12);

  for (const char* name :
       {"DPDP_TRAIN_ACTORS", "DPDP_TRAIN_EPISODES", "DPDP_TRAIN_SYNC_EVERY",
        "DPDP_TRAIN_DETERMINISTIC", "DPDP_TRAIN_REPLAY_SHARDS",
        "DPDP_TRAIN_SHARD_CAP", "DPDP_TRAIN_MIN_REPLAY",
        "DPDP_TRAIN_UPDATES_PER_SYNC", "DPDP_TRAIN_TARGET_SYNC_UPDATES",
        "DPDP_TRAIN_CHECKPOINT_EVERY", "DPDP_TRAIN_CHECKPOINT_DIR",
        "DPDP_TRAIN_RESUME_FROM", "DPDP_TRAIN_SEED",
        "DPDP_TRAIN_SERVE_SHARDS", "DPDP_SERVE_MAX_BATCH"}) {
    unsetenv(name);
  }
}

TEST(ApexConfigTest, CheckpointDirFallsBackToGenericKnob) {
  setenv("DPDP_CHECKPOINT_DIR", "/tmp/generic-ckpts", 1);
  EXPECT_EQ(ApexConfig::FromEnv().checkpoint_dir, "/tmp/generic-ckpts");
  setenv("DPDP_TRAIN_CHECKPOINT_DIR", "/tmp/train-ckpts", 1);
  EXPECT_EQ(ApexConfig::FromEnv().checkpoint_dir, "/tmp/train-ckpts");
  unsetenv("DPDP_TRAIN_CHECKPOINT_DIR");
  unsetenv("DPDP_CHECKPOINT_DIR");
}

}  // namespace
}  // namespace dpdp::train
