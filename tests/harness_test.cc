#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "baselines/greedy_baselines.h"
#include "exp/harness.h"
#include "exp/heatmap.h"
#include "rl/actor_critic.h"
#include "stpred/predictor.h"
#include "rl/dqn_agent.h"

namespace dpdp {
namespace {

TEST(Env, IntAndDoubleFallbacks) {
  ::unsetenv("DPDP_TEST_KNOB");
  EXPECT_EQ(EnvInt("DPDP_TEST_KNOB", 7), 7);
  EXPECT_DOUBLE_EQ(EnvDouble("DPDP_TEST_KNOB", 1.5), 1.5);
  ::setenv("DPDP_TEST_KNOB", "42", 1);
  EXPECT_EQ(EnvInt("DPDP_TEST_KNOB", 7), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("DPDP_TEST_KNOB", 1.5), 42.0);
  ::unsetenv("DPDP_TEST_KNOB");
}

TEST(Harness, StandardDatasetConfigMatchesPaperWorld) {
  const DpdpDataset::Config config = StandardDatasetConfig(3, 150.0);
  EXPECT_EQ(config.campus.num_factories, 27);
  EXPECT_EQ(config.num_intervals, 144);
  EXPECT_DOUBLE_EQ(config.orders.mean_orders_per_day, 150.0);
  EXPECT_GT(config.vehicle.fixed_cost, config.vehicle.cost_per_km);
}

TEST(Harness, MakeAgentByNameCoversAllMethods) {
  for (const std::string& m :
       {"DQN", "AC", "DDQN", "ST-DDQN", "DGN", "DDGN", "ST-DDGN"}) {
    auto agent = MakeAgentByName(m, 1);
    ASSERT_NE(agent, nullptr) << m;
    EXPECT_EQ(std::string(agent->name()), m);
  }
  EXPECT_NE(dynamic_cast<ActorCriticAgent*>(MakeAgentByName("AC", 1).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<DqnFleetAgent*>(MakeAgentByName("ST-DDGN", 1).get()),
      nullptr);
}

TEST(Harness, AgentConfigFlagsMatchAblationGrid) {
  auto* ddqn = dynamic_cast<DqnFleetAgent*>(MakeAgentByName("DDQN", 1).get());
  // Careful: the unique_ptr above is a temporary — re-fetch properly.
  auto owned = MakeAgentByName("DDQN", 1);
  ddqn = dynamic_cast<DqnFleetAgent*>(owned.get());
  ASSERT_NE(ddqn, nullptr);
  EXPECT_FALSE(ddqn->config().use_graph);
  EXPECT_FALSE(ddqn->config().use_st_score);
  EXPECT_TRUE(ddqn->config().double_dqn);

  auto owned2 = MakeAgentByName("ST-DDGN", 1);
  auto* stddgn = dynamic_cast<DqnFleetAgent*>(owned2.get());
  ASSERT_NE(stddgn, nullptr);
  EXPECT_TRUE(stddgn->config().use_graph);
  EXPECT_TRUE(stddgn->config().use_st_score);
  EXPECT_TRUE(stddgn->config().double_dqn);

  auto owned3 = MakeAgentByName("DGN", 1);
  auto* dgn = dynamic_cast<DqnFleetAgent*>(owned3.get());
  ASSERT_NE(dgn, nullptr);
  EXPECT_TRUE(dgn->config().use_graph);
  EXPECT_FALSE(dgn->config().double_dqn);
}

TEST(Harness, MethodListsMatchPaper) {
  EXPECT_EQ(ComparisonDrlMethods(),
            (std::vector<std::string>{"DQN", "AC", "DGN", "ST-DDGN"}));
  EXPECT_EQ(AblationModels(),
            (std::vector<std::string>{"DDQN", "ST-DDQN", "DDGN", "ST-DDGN"}));
}

TEST(Harness, SampleInstanceInWindowRespectsBounds) {
  DpdpDataset dataset(StandardDatasetConfig(3, 400.0));
  const Instance inst = SampleInstanceInWindow(
      &dataset, "w", 8, 5, 0, 2, /*t_lo=*/540.0, /*t_hi=*/720.0, 9);
  EXPECT_EQ(inst.num_orders(), 8);
  EXPECT_EQ(inst.num_vehicles(), 5);
  for (const Order& o : inst.orders) {
    EXPECT_GE(o.create_time_min, 540.0);
    EXPECT_LT(o.create_time_min, 720.0);
  }
  EXPECT_TRUE(ValidateInstance(inst).ok());
}

TEST(Harness, RunBaselineIsSingleDeterministicRun) {
  DpdpDataset dataset(StandardDatasetConfig(3, 100.0));
  const Instance inst = dataset.SampleInstance("b", 30, 10, 0, 2, 4);
  MinIncrementalLengthDispatcher b1;
  const MethodSummary a = RunBaseline(inst, &b1);
  const MethodSummary b = RunBaseline(inst, &b1);
  ASSERT_EQ(a.nuv.size(), 1u);
  EXPECT_DOUBLE_EQ(a.tc_mean(), b.tc_mean());
  EXPECT_DOUBLE_EQ(a.tc_std(), 0.0);
}

TEST(Harness, TrainEvalOnInstanceProducesCurve) {
  DpdpDataset dataset(StandardDatasetConfig(3, 60.0));
  const Instance inst = dataset.SampleInstance("t", 15, 5, 0, 2, 4);
  AverageStdPredictor predictor;
  const nn::Matrix predicted = predictor.Predict(dataset.History(3, 2)).value();
  const DrlOutcome out =
      TrainEvalOnInstance(inst, predicted, "DDQN", 1, /*episodes=*/4);
  EXPECT_EQ(out.curve.nuv.size(), 4u);
  EXPECT_EQ(out.curve.total_cost.size(), 4u);
  EXPECT_TRUE(out.eval.all_served());
  EXPECT_GT(out.train_seconds, 0.0);
}

TEST(Harness, RunDrlMethodAggregatesSeeds) {
  DpdpDataset dataset(StandardDatasetConfig(3, 60.0));
  const Instance inst = dataset.SampleInstance("t", 15, 5, 0, 2, 4);
  const MethodSummary s =
      RunDrlMethod(inst, nn::Matrix(), "DQN", /*episodes=*/2,
                   /*num_seeds=*/3, /*seed_base=*/7);
  EXPECT_EQ(s.nuv.size(), 3u);
  EXPECT_EQ(s.tc.size(), 3u);
  EXPECT_GT(s.tc_mean(), 0.0);
}

// ---------------------------------------------------------------- Heatmap --

TEST(Heatmap, RendersOneLinePerRow) {
  nn::Matrix m(3, 144);
  m(0, 0) = 5.0;
  m(2, 143) = 10.0;
  const std::string out = RenderHeatmap(m, 72);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find('@'), std::string::npos);  // Max cell hits top ramp.
}

TEST(Heatmap, EmptyMatrix) {
  EXPECT_EQ(RenderHeatmap(nn::Matrix()), "(empty)\n");
}

TEST(Heatmap, SummaryReportsPeaksAndHotFactories) {
  nn::Matrix m(4, 144);
  // All demand at factory 2, 11:00 (interval 66).
  m(2, 66) = 100.0;
  const std::string s = SummarizeStdMatrix(m);
  EXPECT_NE(s.find("total demand volume: 100"), std::string::npos);
  EXPECT_NE(s.find("2: 100"), std::string::npos);
  EXPECT_NE(s.find("10:00-12:00 window: 1"), std::string::npos);
}

}  // namespace
}  // namespace dpdp
