// Pure-unit suite for the serving fabric's failure-handling state: the
// shared BackoffDelayMs schedule (util/retry) and the per-shard
// CircuitBreaker (serve/circuit_breaker). No threads, no clocks — every
// transition is driven by synthetic monotonic timestamps, so each test is
// a deterministic replay of one call sequence.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "serve/circuit_breaker.h"
#include "util/retry.h"

namespace dpdp::serve {
namespace {

constexpr int64_t kMs = 1'000'000;  // ns per ms.

RetryPolicy Backoff(int initial_ms, double mult, int max_ms) {
  RetryPolicy policy;
  policy.initial_backoff_ms = initial_ms;
  policy.backoff_multiplier = mult;
  policy.max_backoff_ms = max_ms;
  return policy;
}

BreakerConfig Config(int threshold, int initial_ms, double mult, int max_ms) {
  BreakerConfig config;
  config.failure_threshold = threshold;
  config.backoff = Backoff(initial_ms, mult, max_ms);
  return config;
}

// ---------------------------------------------------------------------------
// BackoffDelayMs: the one capped-exponential schedule both layers share
// ---------------------------------------------------------------------------

TEST(BackoffDelayMsTest, GeometricThenCapped) {
  const RetryPolicy policy = Backoff(100, 2.0, 800);
  EXPECT_EQ(BackoffDelayMs(policy, 0), 100);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 200);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 400);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 800);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 800);   // Capped, not overflowing.
  EXPECT_EQ(BackoffDelayMs(policy, 60), 800);  // Huge attempt: still capped.
}

TEST(BackoffDelayMsTest, DegenerateInputsYieldZero) {
  EXPECT_EQ(BackoffDelayMs(Backoff(0, 2.0, 100), 3), 0);
  EXPECT_EQ(BackoffDelayMs(Backoff(-5, 2.0, 100), 0), 0);
  EXPECT_EQ(BackoffDelayMs(Backoff(100, 2.0, 800), -1), 0);
}

TEST(BackoffDelayMsTest, CapBelowInitialClampsImmediately) {
  const RetryPolicy policy = Backoff(500, 3.0, 200);
  EXPECT_EQ(BackoffDelayMs(policy, 0), 200);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 200);
}

// ---------------------------------------------------------------------------
// CircuitBreaker: closed -> open -> half-open transitions
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(Config(3, 100, 2.0, 800));
  int64_t now = 0;
  breaker.RecordFailure(now += kMs);
  breaker.RecordFailure(now += kMs);
  EXPECT_EQ(breaker.StateAt(now), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(Config(3, 100, 2.0, 800));
  int64_t now = 0;
  breaker.RecordFailure(now += kMs);
  breaker.RecordFailure(now += kMs);
  breaker.RecordSuccess(now += kMs);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // Two more failures: still under threshold because the streak restarted.
  breaker.RecordFailure(now += kMs);
  breaker.RecordFailure(now += kMs);
  EXPECT_EQ(breaker.StateAt(now), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndHalfOpensAfterBackoff) {
  CircuitBreaker breaker(Config(3, 100, 2.0, 800));
  int64_t now = 10 * kMs;
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);  // Third consecutive failure trips it.
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.current_backoff_ms(), 100);  // Period 0 of the schedule.
  EXPECT_EQ(breaker.StateAt(now), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(now + 99 * kMs), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(now + 100 * kMs), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, FailuresWhileOpenAreNoOps) {
  CircuitBreaker breaker(Config(1, 100, 2.0, 800));
  int64_t now = 0;
  breaker.RecordFailure(now);  // Threshold 1: trips immediately.
  ASSERT_EQ(breaker.StateAt(now), BreakerState::kOpen);
  // Failures during the open period neither extend it nor re-trip.
  breaker.RecordFailure(now + 10 * kMs);
  breaker.RecordFailure(now + 50 * kMs);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.current_backoff_ms(), 100);
  EXPECT_EQ(breaker.StateAt(now + 100 * kMs), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensWithLongerCappedBackoff) {
  CircuitBreaker breaker(Config(1, 100, 2.0, 350));
  int64_t now = 0;
  const std::vector<int> expected_backoffs = {100, 200, 350, 350, 350};
  for (const int backoff_ms : expected_backoffs) {
    breaker.RecordFailure(now);  // Trip (first) / failed probe (rest).
    EXPECT_EQ(breaker.current_backoff_ms(), backoff_ms);
    now += static_cast<int64_t>(backoff_ms) * kMs;
    EXPECT_EQ(breaker.StateAt(now), BreakerState::kHalfOpen);
  }
  EXPECT_EQ(breaker.trips(), 1u);  // One closed->open trip; rest were probes.
}

TEST(CircuitBreakerTest, HalfOpenSuccessClosesAndResetsTheSchedule) {
  CircuitBreaker breaker(Config(1, 100, 2.0, 800));
  int64_t now = 0;
  breaker.RecordFailure(now);                       // Open, 100 ms.
  now += 100 * kMs;
  breaker.RecordFailure(now);                       // Probe fails: 200 ms.
  now += 200 * kMs;
  ASSERT_EQ(breaker.StateAt(now), BreakerState::kHalfOpen);
  breaker.RecordSuccess(now);                       // Probe succeeds.
  EXPECT_EQ(breaker.StateAt(now), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // A later trip starts the schedule over at period 0 — recovery earns a
  // fresh backoff, it does not inherit the old escalation.
  breaker.RecordFailure(now += kMs);
  EXPECT_EQ(breaker.current_backoff_ms(), 100);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, IdenticalCallSequencesProduceIdenticalTraces) {
  // Determinism contract: the breaker owns no clock and no RNG, so two
  // instances fed the same (event, timestamp) sequence agree everywhere.
  const BreakerConfig config = Config(2, 50, 3.0, 1000);
  CircuitBreaker a(config), b(config);
  const std::vector<std::pair<bool, int64_t>> events = {
      {false, 1 * kMs}, {false, 2 * kMs},  {true, 3 * kMs},
      {false, 60 * kMs}, {false, 61 * kMs}, {true, 500 * kMs},
      {false, 600 * kMs},
  };
  for (const auto& [ok, t] : events) {
    if (ok) {
      a.RecordSuccess(t);
      b.RecordSuccess(t);
    } else {
      a.RecordFailure(t);
      b.RecordFailure(t);
    }
    EXPECT_EQ(a.StateAt(t), b.StateAt(t));
    EXPECT_EQ(a.consecutive_failures(), b.consecutive_failures());
    EXPECT_EQ(a.current_backoff_ms(), b.current_backoff_ms());
    EXPECT_EQ(a.trips(), b.trips());
  }
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  // The names feed logs and the breaker_state gauge docs.
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace dpdp::serve
