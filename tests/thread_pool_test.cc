#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace dpdp {
namespace {

TEST(ThreadPoolTest, StartsAndStopsAcrossSizes) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // Non-positive requests clamp to one worker instead of misbehaving.
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No explicit wait: the destructor must run everything already queued.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);

  std::future<std::vector<int>> g =
      pool.Submit([] { return std::vector<int>{1, 2, 3}; });
  EXPECT_EQ(g.get(), (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several indices throw; the contract is that the *lowest* throwing
  // index wins, so the surfaced error is deterministic.
  try {
    pool.ParallelFor(100, [](int i) {
      if (i % 10 == 3) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // A task that submits (and waits on) another task would classically
  // deadlock a 1-thread pool; the inline-when-on-worker rule prevents it.
  ThreadPool pool(1);
  std::future<int> f = pool.Submit([&pool] {
    EXPECT_TRUE(ThreadPool::InWorkerThread());
    return pool.Submit([] { return 21; }).get() * 2;
  });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    // Nested loops run serially on the calling worker, so this must not
    // deadlock no matter how many tasks are already in flight.
    pool.ParallelFor(8, [&total](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, MainThreadIsNotAWorker) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([] { return ThreadPool::InWorkerThread(); }).get());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, StressManySmallTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 10000;
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, ConfiguredThreadCountReadsEnv) {
  ASSERT_EQ(setenv("DPDP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ConfiguredThreadCount(), 3);
  // Non-positive values fall back to hardware detection (>= 1).
  ASSERT_EQ(setenv("DPDP_THREADS", "0", 1), 0);
  EXPECT_GE(ConfiguredThreadCount(), 1);
  ASSERT_EQ(unsetenv("DPDP_THREADS"), 0);
  EXPECT_GE(ConfiguredThreadCount(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsSingletonAndUsable) {
  ThreadPool* pool = GlobalThreadPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool, GlobalThreadPool());
  EXPECT_GE(pool->num_threads(), 1);
  EXPECT_EQ(pool->Submit([] { return 5; }).get(), 5);
}

}  // namespace
}  // namespace dpdp
