#include <gtest/gtest.h>

#include "model/instance.h"
#include "model/order.h"
#include "model/vehicle.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

// -------------------------------------------------------- TimeInterval ----

TEST(TimeInterval, MapsMinutesToTenMinuteBuckets) {
  EXPECT_EQ(TimeIntervalIndex(0.0, 144), 0);
  EXPECT_EQ(TimeIntervalIndex(9.99, 144), 0);
  EXPECT_EQ(TimeIntervalIndex(10.0, 144), 1);  // Left-closed, right-open.
  EXPECT_EQ(TimeIntervalIndex(719.0, 144), 71);
  EXPECT_EQ(TimeIntervalIndex(1439.99, 144), 143);
}

TEST(TimeInterval, ClampsOutOfRange) {
  EXPECT_EQ(TimeIntervalIndex(-5.0, 144), 0);
  EXPECT_EQ(TimeIntervalIndex(2000.0, 144), 143);
}

TEST(TimeInterval, CustomDiscretization) {
  EXPECT_EQ(TimeIntervalIndex(30.0, 24, 1440.0), 0);
  EXPECT_EQ(TimeIntervalIndex(60.0, 24, 1440.0), 1);
  EXPECT_EQ(TimeIntervalIndex(719.0, 2, 1440.0), 0);
  EXPECT_EQ(TimeIntervalIndex(721.0, 2, 1440.0), 1);
}

// --------------------------------------------------------------- Order ----

TEST(Order, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(ValidateOrder(MakeOrder(0, 1, 2, 5.0, 10.0, 100.0), 5).ok());
}

TEST(Order, ValidateRejectsBadNodes) {
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, -1, 2, 5.0, 0.0, 1.0), 5).ok());
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 1, 7, 5.0, 0.0, 1.0), 5).ok());
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 2, 2, 5.0, 0.0, 1.0), 5).ok());
}

TEST(Order, ValidateRejectsBadQuantityAndWindow) {
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 1, 2, 0.0, 0.0, 1.0), 5).ok());
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 1, 2, -2.0, 0.0, 1.0), 5).ok());
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 1, 2, 1.0, 10.0, 10.0), 5).ok());
  EXPECT_FALSE(ValidateOrder(MakeOrder(0, 1, 2, 1.0, 10.0, 5.0), 5).ok());
}

TEST(Order, CanonicalizeSortsAndRenumbers) {
  std::vector<Order> orders{MakeOrder(7, 1, 2, 1.0, 300.0, 400.0),
                            MakeOrder(3, 2, 3, 1.0, 100.0, 200.0),
                            MakeOrder(9, 3, 4, 1.0, 200.0, 300.0)};
  CanonicalizeOrders(&orders);
  ASSERT_EQ(orders.size(), 3u);
  EXPECT_EQ(orders[0].id, 0);
  EXPECT_DOUBLE_EQ(orders[0].create_time_min, 100.0);
  EXPECT_EQ(orders[2].id, 2);
  EXPECT_DOUBLE_EQ(orders[2].create_time_min, 300.0);
}

TEST(Order, CanonicalizeIsStableOnTies) {
  std::vector<Order> orders{MakeOrder(1, 1, 2, 1.0, 100.0, 200.0),
                            MakeOrder(2, 2, 3, 1.0, 100.0, 200.0)};
  CanonicalizeOrders(&orders);
  EXPECT_EQ(orders[0].pickup_node, 1);  // Original relative order kept.
  EXPECT_EQ(orders[1].pickup_node, 2);
}

TEST(Order, DebugStringMentionsFields) {
  const std::string s = MakeOrder(5, 1, 2, 7.5, 10.0, 90.0).DebugString();
  EXPECT_NE(s.find("id=5"), std::string::npos);
  EXPECT_NE(s.find("q=7.5"), std::string::npos);
}

// ---------------------------------------------------------------- Stop ----

TEST(Stop, EqualityAndDebugString) {
  const Stop a{1, 2, StopType::kPickup};
  const Stop b{1, 2, StopType::kPickup};
  const Stop c{1, 2, StopType::kDelivery};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.DebugString(), "P(o2@n1)");
  EXPECT_EQ(c.DebugString(), "D(o2@n1)");
}

// ------------------------------------------------------------ Instance ----

TEST(Instance, ValidateAcceptsWellFormed) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  EXPECT_TRUE(ValidateInstance(inst).ok());
  EXPECT_EQ(inst.num_vehicles(), 2);
  EXPECT_EQ(inst.num_orders(), 1);
}

TEST(Instance, ValidateRejectsNonCanonicalIds) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  inst.orders[0].id = 3;
  EXPECT_FALSE(ValidateInstance(inst).ok());
}

TEST(Instance, ValidateRejectsUnsortedOrders) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0),
                                    MakeOrder(1, 2, 3, 5.0, 50.0, 200.0)});
  std::swap(inst.orders[0].create_time_min, inst.orders[1].create_time_min);
  EXPECT_FALSE(ValidateInstance(inst).ok());
}

TEST(Instance, ValidateRejectsOversizedOrder) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 500.0, 10.0, 200.0)});
  const Status s = ValidateInstance(inst);
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
}

TEST(Instance, ValidateRejectsFactoryAsDepot) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  inst.vehicle_depots[0] = 1;  // Node 1 is a factory.
  EXPECT_FALSE(ValidateInstance(inst).ok());
}

TEST(Instance, ValidateRejectsEmptyFleet) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  inst.vehicle_depots.clear();
  EXPECT_FALSE(ValidateInstance(inst).ok());
}

TEST(Instance, ValidateRejectsBadConfig) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 10.0, 200.0)});
  inst.vehicle_config.speed_kmph = 0.0;
  EXPECT_FALSE(ValidateInstance(inst).ok());
}

}  // namespace
}  // namespace dpdp
