#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <sstream>

#include "baselines/greedy_baselines.h"
#include "rl/actor_critic.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "rl/trainer.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

/// A day of 8 orders where packing everything onto few vehicles is clearly
/// optimal (generous windows, shared corridors).
Instance TrainingInstance() {
  std::vector<Order> orders;
  for (int i = 0; i < 8; ++i) {
    const int pickup = 1 + (i % 2);       // F1 or F2.
    const int delivery = pickup == 1 ? 2 : 1;
    const double t = 40.0 * i;
    orders.push_back(MakeOrder(i, pickup, delivery, 10.0, t, t + 300.0));
  }
  return MakeTestInstance(orders, /*num_vehicles=*/4);
}

AgentConfig FastConfig(bool graph, uint64_t seed) {
  AgentConfig c = graph ? MakeStDdgnConfig(seed) : MakeDdqnConfig(seed);
  c.hidden_dim = 16;
  c.epsilon_decay_episodes = 15;
  c.updates_per_episode = 4;
  return c;
}

TEST(DqnAgent, UntrainedAgentIsValidDispatcher) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  DqnFleetAgent agent(FastConfig(false, 1), "DDQN");
  const EpisodeResult r = sim.RunEpisode(&agent);
  EXPECT_TRUE(r.all_served());
  EXPECT_GE(r.nuv, 1.0);
}

TEST(DqnAgent, TrainingImprovesOverUntrained) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);

  DqnFleetAgent untrained(FastConfig(false, 5), "DDQN");
  const double tc_untrained = sim.RunEpisode(&untrained).total_cost;

  DqnFleetAgent agent(FastConfig(false, 5), "DDQN");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 30;
  RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  const double tc_trained = sim.RunEpisode(&agent).total_cost;

  EXPECT_LE(tc_trained, tc_untrained + 1e-9);
  // The optimum here is one vehicle shuttling F1 <-> F2; training should
  // get within striking distance of the greedy baseline.
  MinIncrementalLengthDispatcher baseline;
  const double tc_baseline = sim.RunEpisode(&baseline).total_cost;
  EXPECT_LE(tc_trained, 2.0 * tc_baseline);
}

TEST(DqnAgent, GraphVariantTrains) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  DqnFleetAgent agent(FastConfig(true, 7), "ST-DDGN");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 20;
  const TrainingCurve curve = RunEpisodes(&sim, &agent, options);
  EXPECT_EQ(curve.nuv.size(), 20u);
  EXPECT_EQ(agent.episodes_trained(), 20);
  // Late-training NUV should not exceed early-training NUV on average.
  EXPECT_LE(TrainingCurve::TailMean(curve.nuv, 5),
            TrainingCurve::TailMean(std::vector<double>(
                curve.nuv.begin(), curve.nuv.begin() + 5), 5) + 1e-9);
}

TEST(DqnAgent, EpsilonDecaysLinearly) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  AgentConfig config = FastConfig(false, 9);
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.1;
  config.epsilon_decay_episodes = 10;
  DqnFleetAgent agent(config, "DDQN");
  agent.set_training(true);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  TrainOptions options;
  options.episodes = 5;
  RunEpisodes(&sim, &agent, options);
  EXPECT_NEAR(agent.epsilon(), 0.55, 1e-9);
  options.episodes = 10;
  RunEpisodes(&sim, &agent, options);
  EXPECT_NEAR(agent.epsilon(), 0.1, 1e-9);  // Clamped at end value.
}

TEST(DqnAgent, EvalModeIsDeterministic) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  DqnFleetAgent agent(FastConfig(false, 11), "DDQN");
  const EpisodeResult a = sim.RunEpisode(&agent);
  const EpisodeResult b = sim.RunEpisode(&agent);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

TEST(DqnAgent, SaveLoadReproducesPolicy) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  DqnFleetAgent agent(FastConfig(true, 13), "ST-DDGN");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 5;
  RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  const double tc = sim.RunEpisode(&agent).total_cost;

  std::stringstream buffer;
  agent.Save(&buffer);
  DqnFleetAgent restored(FastConfig(true, 999), "ST-DDGN");
  ASSERT_TRUE(restored.Load(&buffer));
  EXPECT_DOUBLE_EQ(sim.RunEpisode(&restored).total_cost, tc);
}

TEST(DqnAgent, QValuesMarkInfeasibleMinusInfinity) {
  // One order too heavy for a loaded vehicle forces infeasibility paths.
  const Instance inst = TrainingInstance();
  SimulatorConfig sc;
  Simulator sim(&inst, sc);

  class Probe : public Dispatcher {
   public:
    explicit Probe(DqnFleetAgent* agent) : agent_(agent) {}
    const char* name() const override { return "probe"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      const std::vector<double> q = agent_->QValues(ctx);
      EXPECT_EQ(q.size(), ctx.options.size());
      for (size_t v = 0; v < q.size(); ++v) {
        if (!ctx.options[v].feasible) {
          EXPECT_TRUE(std::isinf(q[v]) && q[v] < 0);
        } else {
          EXPECT_TRUE(std::isfinite(q[v]));
        }
      }
      for (const VehicleOption& o : ctx.options) {
        if (o.feasible) return o.vehicle;
      }
      return -1;
    }
    DqnFleetAgent* agent_;
  };
  DqnFleetAgent agent(FastConfig(false, 15), "DDQN");
  Probe probe(&agent);
  (void)sim.RunEpisode(&probe);
}

TEST(DqnAgent, LiteralRewardFlagChangesRewards) {
  // Smoke test: the literal Eq.(6) variant still trains and dispatches.
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  AgentConfig config = FastConfig(false, 17);
  config.literal_used_flag_cost = true;
  DqnFleetAgent agent(config, "DDQN-literal");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 10;
  RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  EXPECT_TRUE(sim.RunEpisode(&agent).all_served());
}

TEST(DqnAgent, BestWeightsSnapshotRestores) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  AgentConfig config = FastConfig(false, 31);
  config.track_best_weights = true;
  config.best_weights_max_epsilon = 1.0;  // Every episode is a candidate.
  DqnFleetAgent agent(config, "DDQN");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 12;
  const TrainingCurve curve = RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  agent.FinalizeTraining();
  const double tc_restored = sim.RunEpisode(&agent).total_cost;
  // The greedy policy from restored weights should not be dramatically
  // worse than the best training episode (training episodes include
  // exploration noise, so exact equality is not expected).
  const double best_training =
      *std::min_element(curve.total_cost.begin(), curve.total_cost.end());
  EXPECT_LE(tc_restored, 2.0 * best_training);
}

TEST(DqnAgent, FinalizeTrainingWithoutSnapshotIsNoop) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  AgentConfig config = FastConfig(false, 33);
  config.track_best_weights = false;
  DqnFleetAgent agent(config, "DDQN");
  const double before = sim.RunEpisode(&agent).total_cost;
  agent.FinalizeTraining();  // No snapshot exists: must not change weights.
  EXPECT_DOUBLE_EQ(sim.RunEpisode(&agent).total_cost, before);
}

// ---------------------------------------------------------- ActorCritic --

TEST(ActorCritic, UntrainedAgentIsValidDispatcher) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  ActorCriticAgent agent(FastConfig(false, 19), "AC");
  const EpisodeResult r = sim.RunEpisode(&agent);
  EXPECT_TRUE(r.all_served());
}

TEST(ActorCritic, PolicySumsToOneOverFeasible) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  ActorCriticAgent agent(FastConfig(false, 21), "AC");

  class Probe : public Dispatcher {
   public:
    explicit Probe(ActorCriticAgent* agent) : agent_(agent) {}
    const char* name() const override { return "probe"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      const std::vector<double> pi = agent_->Policy(ctx);
      double sum = 0.0;
      for (size_t v = 0; v < pi.size(); ++v) {
        if (!ctx.options[v].feasible) EXPECT_DOUBLE_EQ(pi[v], 0.0);
        sum += pi[v];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
      for (const VehicleOption& o : ctx.options) {
        if (o.feasible) return o.vehicle;
      }
      return -1;
    }
    ActorCriticAgent* agent_;
  };
  Probe probe(&agent);
  (void)sim.RunEpisode(&probe);
}

TEST(ActorCritic, TrainingRunsAndTracksEpisodes) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  ActorCriticAgent agent(FastConfig(false, 23), "AC");
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 15;
  const TrainingCurve curve = RunEpisodes(&sim, &agent, options);
  EXPECT_EQ(agent.episodes_trained(), 15);
  EXPECT_EQ(curve.total_cost.size(), 15u);
  // Losses are finite after training.
  EXPECT_TRUE(std::isfinite(agent.last_policy_loss()));
  EXPECT_TRUE(std::isfinite(agent.last_value_loss()));
}

TEST(ActorCritic, GraphVariantDispatchesAndTrains) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  AgentConfig config = FastConfig(true, 41);  // Graph flags on.
  ActorCriticAgent agent(config, "Graph-AC");
  EXPECT_TRUE(sim.RunEpisode(&agent).all_served());
  agent.set_training(true);
  TrainOptions options;
  options.episodes = 8;
  RunEpisodes(&sim, &agent, options);
  agent.set_training(false);
  EXPECT_TRUE(sim.RunEpisode(&agent).all_served());
  EXPECT_EQ(agent.episodes_trained(), 8);
}

// -------------------------------------------------------------- Trainer --

TEST(Trainer, RecordsCapacityDiffWhenDemandGiven) {
  const Instance inst = TrainingInstance();
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  TrainOptions options;
  options.episodes = 3;
  options.demand_for_diff = nn::Matrix(4, 144, 1.0);
  const TrainingCurve curve = RunEpisodes(&sim, &baseline, options);
  EXPECT_EQ(curve.capacity_diff.size(), 3u);
  EXPECT_GT(curve.capacity_diff[0], 0.0);
  // Deterministic baseline: identical every episode.
  EXPECT_DOUBLE_EQ(curve.capacity_diff[0], curve.capacity_diff[2]);
}

TEST(Trainer, TailMeanHandlesShortSeries) {
  EXPECT_DOUBLE_EQ(TrainingCurve::TailMean({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(TrainingCurve::TailMean({2.0, 4.0}, 5), 3.0);
  EXPECT_DOUBLE_EQ(TrainingCurve::TailMean({1.0, 2.0, 3.0, 4.0}, 2), 3.5);
}

}  // namespace
}  // namespace dpdp
