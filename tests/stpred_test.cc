#include <gtest/gtest.h>

#include <cmath>

#include "routing/route_planner.h"
#include "stpred/divergence.h"
#include "stpred/predictor.h"
#include "stpred/st_score.h"
#include "stpred/std_matrix.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

// ----------------------------------------------------------- STD matrix ---

TEST(StdMatrix, AccumulatesByFactoryAndInterval) {
  const auto net = testing::MakeLineNetwork();
  // F1 = factory ordinal 0, F2 = ordinal 1.
  std::vector<Order> orders{
      MakeOrder(0, 1, 2, 5.0, 3.0, 100.0),     // F1, interval 0.
      MakeOrder(1, 1, 3, 7.0, 8.0, 100.0),     // F1, interval 0.
      MakeOrder(2, 2, 1, 2.0, 15.0, 100.0),    // F2, interval 1.
      MakeOrder(3, 1, 2, 4.0, 1435.0, 2000.0)  // F1, last interval.
  };
  const nn::Matrix e = BuildStdMatrix(*net, orders, 144, kMinutesPerDay);
  EXPECT_EQ(e.rows(), 4);
  EXPECT_EQ(e.cols(), 144);
  EXPECT_DOUBLE_EQ(e(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(e(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(e(0, 143), 4.0);
  EXPECT_DOUBLE_EQ(e.SumAll(), 18.0);
}

TEST(StdMatrix, DepotOriginOrdersIgnored) {
  const auto net = testing::MakeLineNetwork();
  std::vector<Order> orders{MakeOrder(0, 0, 2, 5.0, 3.0, 100.0)};
  const nn::Matrix e = BuildStdMatrix(*net, orders, 144, kMinutesPerDay);
  EXPECT_DOUBLE_EQ(e.SumAll(), 0.0);
}

TEST(StdMatrix, CapacityVisitAccumulation) {
  const auto net = testing::MakeLineNetwork();
  nn::Matrix cap(4, 144);
  AddCapacityVisit(*net, 1, 5.0, 80.0, 144, kMinutesPerDay, &cap);
  AddCapacityVisit(*net, 1, 7.0, 20.0, 144, kMinutesPerDay, &cap);
  AddCapacityVisit(*net, 0, 5.0, 50.0, 144, kMinutesPerDay, &cap);  // Depot.
  EXPECT_DOUBLE_EQ(cap(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(cap.SumAll(), 100.0);
}

TEST(StdMatrix, DistributionDiffIsFrobenius) {
  nn::Matrix a(2, 2);
  nn::Matrix b(2, 2);
  a(0, 0) = 3.0;
  b(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(DistributionDiff(a, b), 5.0);
}

// ------------------------------------------------------------ Predictors --

TEST(Predictor, AverageOfHistory) {
  nn::Matrix d1(2, 3, 1.0);
  nn::Matrix d2(2, 3, 3.0);
  const auto p = AverageStdPredictor().Predict({d1, d2});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().AllClose(nn::Matrix(2, 3, 2.0)));
}

TEST(Predictor, AverageWindowUsesRecentDaysOnly) {
  nn::Matrix d1(1, 1, 10.0);
  nn::Matrix d2(1, 1, 2.0);
  nn::Matrix d3(1, 1, 4.0);
  const auto p = AverageStdPredictor(/*window=*/2).Predict({d1, d2, d3});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value()(0, 0), 3.0);
}

TEST(Predictor, RejectsEmptyOrMismatchedHistory) {
  EXPECT_FALSE(AverageStdPredictor().Predict({}).ok());
  EXPECT_FALSE(
      AverageStdPredictor().Predict({nn::Matrix(1, 2), nn::Matrix(2, 1)})
          .ok());
}

TEST(Predictor, EwmaWeightsRecentDaysMore) {
  nn::Matrix d1(1, 1, 0.0);
  nn::Matrix d2(1, 1, 10.0);
  const auto p = EwmaStdPredictor(0.5).Predict({d1, d2});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value()(0, 0), 5.0);
  const auto p2 = EwmaStdPredictor(0.9).Predict({d1, d2});
  EXPECT_DOUBLE_EQ(p2.value()(0, 0), 9.0);
}

TEST(Predictor, EwmaRejectsBadAlpha) {
  EXPECT_FALSE(EwmaStdPredictor(0.0).Predict({nn::Matrix(1, 1)}).ok());
  EXPECT_FALSE(EwmaStdPredictor(1.5).Predict({nn::Matrix(1, 1)}).ok());
}

// ------------------------------------------------------------ Divergence --

TEST(Divergence, NormalizeHandlesZeroAndNegative) {
  const std::vector<double> p = NormalizeDistribution({0.0, 0.0});
  EXPECT_NEAR(p[0], 0.5, 1e-9);
  const std::vector<double> q = NormalizeDistribution({-5.0, 1.0});
  EXPECT_LT(q[0], q[1]);
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
}

TEST(Divergence, JsZeroForIdenticalVectors) {
  EXPECT_NEAR(JsDivergence({1, 2, 3}, {1, 2, 3}), 0.0, 1e-9);
  // Scale invariance (both are normalized).
  EXPECT_NEAR(JsDivergence({1, 2, 3}, {2, 4, 6}), 0.0, 1e-9);
}

TEST(Divergence, JsIsSymmetricAndBounded) {
  const std::vector<double> a{10, 0, 0};
  const std::vector<double> b{0, 0, 10};
  EXPECT_NEAR(JsDivergence(a, b), JsDivergence(b, a), 1e-12);
  EXPECT_LE(JsDivergence(a, b), std::log(2.0) + 1e-9);
  EXPECT_GT(JsDivergence(a, b), 0.5);  // Nearly disjoint supports.
}

TEST(Divergence, SymmetricKlIsSymmetric) {
  const std::vector<double> a{5, 3, 1};
  const std::vector<double> b{1, 3, 5};
  EXPECT_NEAR(SymmetricKlDivergence(a, b), SymmetricKlDivergence(b, a),
              1e-12);
  EXPECT_GT(SymmetricKlDivergence(a, b), 0.0);
}

TEST(Divergence, KlOfIdenticalIsZero) {
  const std::vector<double> p = NormalizeDistribution({1, 2, 3});
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(Divergence, EmptyVectorsGiveZero) {
  EXPECT_DOUBLE_EQ(JsDivergence({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SymmetricKlDivergence({}, {}), 0.0);
}

TEST(Divergence, DispatchMatchesDirectCalls) {
  const std::vector<double> a{3, 1};
  const std::vector<double> b{1, 3};
  EXPECT_DOUBLE_EQ(Divergence(DivergenceKind::kJensenShannon, a, b),
                   JsDivergence(a, b));
  EXPECT_DOUBLE_EQ(Divergence(DivergenceKind::kSymmetricKl, a, b),
                   SymmetricKlDivergence(a, b));
}

// -------------------------------------------------------------- ST Score --

class StScoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = MakeTestInstance({MakeOrder(0, 1, 2, 30.0, 0.0, 500.0),
                              MakeOrder(1, 2, 3, 20.0, 0.0, 500.0)});
    planner_ = std::make_unique<RoutePlanner>(&inst_);
    const PlanAnchor anchor{0, 0.0, {}};
    suffix_ = {{1, 0, StopType::kPickup},
               {2, 0, StopType::kDelivery},
               {2, 1, StopType::kPickup},
               {3, 1, StopType::kDelivery}};
    auto r = planner_->CheckSuffix(anchor, suffix_, 0);
    DPDP_CHECK(r.ok());
    schedule_ = std::move(r).value();
  }

  Instance inst_;
  std::unique_ptr<RoutePlanner> planner_;
  std::vector<Stop> suffix_;
  SuffixSchedule schedule_;
};

TEST_F(StScoreTest, VectorsFollowRouteVisits) {
  nn::Matrix demand(4, 144, 1.0);
  demand(0, 1) = 9.0;  // F1 in interval 1 (arrival at minute 10).
  std::vector<double> capacity;
  std::vector<double> dem;
  BuildStVectors(*inst_.network, suffix_, schedule_, demand, 144,
                 kMinutesPerDay, &capacity, &dem);
  ASSERT_EQ(capacity.size(), 4u);
  ASSERT_EQ(dem.size(), 4u);
  EXPECT_DOUBLE_EQ(capacity[0], 100.0);
  EXPECT_DOUBLE_EQ(capacity[1], 70.0);
  EXPECT_DOUBLE_EQ(dem[0], 9.0);
  EXPECT_DOUBLE_EQ(dem[1], 1.0);
}

TEST_F(StScoreTest, ScoreZeroWhenCapacityTracksDemand) {
  // Use a route visiting four *distinct* factories so each visit maps to
  // its own STD cell, then make demand proportional to the capacity
  // profile -> JS divergence ~ 0.
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 30.0, 0.0, 500.0),
                                    MakeOrder(1, 3, 4, 20.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  const std::vector<Stop> suffix{{1, 0, StopType::kPickup},
                                 {2, 0, StopType::kDelivery},
                                 {3, 1, StopType::kPickup},
                                 {4, 1, StopType::kDelivery}};
  const auto sched = planner.CheckSuffix(PlanAnchor{0, 0.0, {}}, suffix, 0);
  ASSERT_TRUE(sched.ok());
  nn::Matrix demand(4, 144, 0.0);
  for (size_t s = 0; s < suffix.size(); ++s) {
    const int ordinal = inst.network->FactoryOrdinal(suffix[s].node);
    const int interval = TimeIntervalIndex(sched.value().stops[s].arrival,
                                           144, kMinutesPerDay);
    demand(ordinal, interval) = sched.value().residual_capacity[s];
  }
  EXPECT_NEAR(ComputeStScore(*inst.network, suffix, sched.value(), demand,
                             144, kMinutesPerDay),
              0.0, 1e-6);
}

TEST_F(StScoreTest, MismatchedDemandScoresHigher) {
  nn::Matrix aligned(4, 144, 1.0);
  nn::Matrix skewed(4, 144, 0.0);
  // All predicted demand bunched at the last stop where the vehicle has
  // the least spare story -> larger divergence than uniform demand.
  const int ordinal = inst_.network->FactoryOrdinal(suffix_[1].node);
  const int interval =
      TimeIntervalIndex(schedule_.stops[1].arrival, 144, kMinutesPerDay);
  skewed(ordinal, interval) = 100.0;
  const double s_uniform = ComputeStScore(
      *inst_.network, suffix_, schedule_, aligned, 144, kMinutesPerDay);
  const double s_skewed = ComputeStScore(
      *inst_.network, suffix_, schedule_, skewed, 144, kMinutesPerDay);
  EXPECT_GT(s_skewed, s_uniform);
}

TEST_F(StScoreTest, EmptyRouteScoresZero) {
  nn::Matrix demand(4, 144, 1.0);
  EXPECT_DOUBLE_EQ(ComputeStScore(*inst_.network, {}, SuffixSchedule{},
                                  demand, 144, kMinutesPerDay),
                   0.0);
}

TEST_F(StScoreTest, KlVariantDiffersFromJs) {
  nn::Matrix demand(4, 144, 0.0);
  demand(0, 1) = 50.0;
  demand(1, 2) = 1.0;
  const double js =
      ComputeStScore(*inst_.network, suffix_, schedule_, demand, 144,
                     kMinutesPerDay, DivergenceKind::kJensenShannon);
  const double kl =
      ComputeStScore(*inst_.network, suffix_, schedule_, demand, 144,
                     kMinutesPerDay, DivergenceKind::kSymmetricKl);
  EXPECT_GT(js, 0.0);
  EXPECT_GT(kl, js);  // Symmetric KL upper-bounds JS.
}

}  // namespace
}  // namespace dpdp
