// Randomized stress suite for the serve-layer admission queue
// (serve::RequestQueue), targeting the edge cases a steady-state load test
// never visits: capacity-0 drain mode, close-while-popping, max_wait_us
// expiry with a single straggler request, and concurrent close/push races.
// All randomness is seeded and drawn from forked Rng streams (one per
// producer thread), so a failing schedule is replayable by seed. Runs under
// TSan in CI together with the other concurrency suites.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/request_queue.h"
#include "sim/dispatcher.h"
#include "util/rng.h"

namespace dpdp::serve {
namespace {

using std::chrono::steady_clock;

double SecondsSince(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

DecisionRequest MakeRequest(const DispatchContext* ctx) {
  DecisionRequest r;
  r.context = ctx;
  r.enqueue_time = steady_clock::now();
  return r;
}

// ---------------------------------------------------------------------------
// max_wait_us expiry with a single straggler
// ---------------------------------------------------------------------------

TEST(RequestQueueStressTest, SingleStragglerFlushesAtMaxWaitNotMaxBatch) {
  // One lone request must not wait for a batch that will never fill: the
  // pop holds for ~max_wait_us past the enqueue time, then flushes the
  // singleton. Lower bound is loose (the pop starts after the enqueue) and
  // the upper bound only guards against waiting for max_batch peers.
  RequestQueue queue(8);
  const DispatchContext ctx;
  ASSERT_EQ(queue.TryPush(MakeRequest(&ctx)), PushResult::kAdmitted);
  const auto start = steady_clock::now();
  std::vector<DecisionRequest> batch;
  const int n = queue.PopBatch(&batch, /*max_batch=*/8,
                               /*max_wait_us=*/30'000);
  const double waited = SecondsSince(start);
  EXPECT_EQ(n, 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].context, &ctx);
  EXPECT_GE(waited, 0.020);  // Held for the straggler window...
  EXPECT_LT(waited, 5.0);    // ...but flushed, not stuck on max_batch.
}

TEST(RequestQueueStressTest, LateArrivalCompletesBatchBeforeDeadline) {
  // The deadline belongs to the OLDEST request; a second arrival that
  // fills max_batch releases the batch immediately, long before the (here
  // deliberately huge) wait window expires.
  RequestQueue queue(8);
  const DispatchContext first_ctx, second_ctx;
  ASSERT_EQ(queue.TryPush(MakeRequest(&first_ctx)), PushResult::kAdmitted);
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(queue.TryPush(MakeRequest(&second_ctx)), PushResult::kAdmitted);
  });
  const auto start = steady_clock::now();
  std::vector<DecisionRequest> batch;
  const int n = queue.PopBatch(&batch, /*max_batch=*/2,
                               /*max_wait_us=*/10'000'000);
  const double waited = SecondsSince(start);
  late.join();
  EXPECT_EQ(n, 2);
  EXPECT_LT(waited, 5.0) << "flush waited out the deadline despite a full "
                            "batch";
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].context, &first_ctx);  // FIFO order preserved.
  EXPECT_EQ(batch[1].context, &second_ctx);
}

// ---------------------------------------------------------------------------
// Capacity-0 drain mode
// ---------------------------------------------------------------------------

TEST(RequestQueueStressTest, ZeroCapacityRejectsEveryPushEvenConcurrently) {
  // capacity == 0 is the drain-mode configuration: admission control sheds
  // everything. No push may ever slip through, no matter the interleaving.
  RequestQueue queue(0);
  constexpr int kThreads = 4;
  constexpr int kAttemptsEach = 200;
  const DispatchContext ctx;
  std::atomic<int> admitted{0};
  std::vector<std::thread> pushers;
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&] {
      for (int i = 0; i < kAttemptsEach; ++i) {
        const PushResult result = queue.TryPush(MakeRequest(&ctx));
        EXPECT_EQ(result, PushResult::kFull);
        if (result == PushResult::kAdmitted) admitted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pushers) t.join();
  EXPECT_EQ(admitted.load(), 0);
  EXPECT_EQ(queue.size(), 0u);
  // A consumer on a drained-by-construction queue exits on close with 0,
  // exactly like a closed-and-drained normal queue.
  queue.Close();
  std::vector<DecisionRequest> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 8, 1000), 0);
}

// ---------------------------------------------------------------------------
// Close-while-popping
// ---------------------------------------------------------------------------

TEST(RequestQueueStressTest, CloseWakesBlockedConsumerOnEmptyQueue) {
  RequestQueue queue(8);
  std::atomic<int> popped{-1};
  std::thread consumer([&] {
    std::vector<DecisionRequest> batch;
    // Blocks on the empty queue; only Close can release it.
    popped.store(queue.PopBatch(&batch, 4, /*max_wait_us=*/10'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto close_time = steady_clock::now();
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 0);
  EXPECT_LT(SecondsSince(close_time), 5.0);
  // Closed queue: further pushes fail, further pops return 0 immediately.
  const DispatchContext ctx;
  EXPECT_EQ(queue.TryPush(MakeRequest(&ctx)), PushResult::kClosed);
  std::vector<DecisionRequest> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 4, 10'000'000), 0);
}

TEST(RequestQueueStressTest, CloseFlushesPartialBatchWithoutWaitingOut) {
  // A consumer holding a partial batch open for stragglers must flush it
  // on Close instead of sleeping out the (huge) wait window — otherwise
  // shutdown would strand admitted requests for max_wait_us.
  RequestQueue queue(8);
  const DispatchContext a, b;
  ASSERT_EQ(queue.TryPush(MakeRequest(&a)), PushResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(MakeRequest(&b)), PushResult::kAdmitted);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    queue.Close();
  });
  const auto start = steady_clock::now();
  std::vector<DecisionRequest> batch;
  const int n = queue.PopBatch(&batch, /*max_batch=*/8,
                               /*max_wait_us=*/10'000'000);
  const double waited = SecondsSince(start);
  closer.join();
  EXPECT_EQ(n, 2);  // Close never drops admitted requests.
  EXPECT_LT(waited, 5.0);
}

// ---------------------------------------------------------------------------
// Randomized concurrent close/push races
// ---------------------------------------------------------------------------

/// One randomized round: kPushers producer threads (each with its own
/// forked Rng stream driving jittered push schedules), one consumer
/// draining batches of random size, and a closer that slams the queue shut
/// somewhere in the middle. The conservation invariant: every admitted
/// request is popped exactly once (identified by its distinct context
/// pointer), nothing is popped twice, nothing admitted after close.
void RandomizedRace(uint64_t seed, int capacity) {
  constexpr int kPushers = 4;
  constexpr int kOpsEach = 150;
  const Rng base(seed);

  RequestQueue queue(capacity);
  // Distinct addresses so each request is uniquely identifiable.
  std::vector<DispatchContext> contexts(kPushers * kOpsEach);
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};

  std::vector<std::thread> pushers;
  for (int t = 0; t < kPushers; ++t) {
    pushers.emplace_back([&, t] {
      Rng stream = base.Fork(static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsEach; ++i) {
        if (stream.UniformInt(4) == 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(stream.UniformInt(120)));
        }
        if (queue.TryPush(MakeRequest(&contexts[t * kOpsEach + i])) ==
            PushResult::kAdmitted) {
          admitted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }

  std::set<const DispatchContext*> popped;
  std::atomic<int> duplicate_pops{0};
  std::thread consumer([&] {
    Rng stream = base.Fork(1000);
    std::vector<DecisionRequest> batch;
    for (;;) {
      const int max_batch = 1 + stream.UniformInt(8);
      if (queue.PopBatch(&batch, max_batch,
                         /*max_wait_us=*/stream.UniformInt(300)) == 0) {
        return;  // Closed and drained.
      }
      for (const DecisionRequest& r : batch) {
        if (!popped.insert(r.context).second) duplicate_pops.fetch_add(1);
      }
    }
  });

  std::thread closer([&] {
    Rng stream = base.Fork(2000);
    std::this_thread::sleep_for(
        std::chrono::microseconds(500 + stream.UniformInt(4000)));
    queue.Close();
  });

  for (std::thread& t : pushers) t.join();
  closer.join();
  consumer.join();

  EXPECT_EQ(admitted.load() + rejected.load(), kPushers * kOpsEach);
  EXPECT_EQ(duplicate_pops.load(), 0) << "seed " << seed;
  EXPECT_EQ(popped.size(), static_cast<size_t>(admitted.load()))
      << "seed " << seed << ": admitted requests lost or duplicated";
  EXPECT_EQ(queue.size(), 0u);
  // The race always closes mid-stream with pushers still running, so at
  // least one push must have hit the closed/full rejection path.
  EXPECT_GT(rejected.load(), 0) << "seed " << seed;
}

// ---------------------------------------------------------------------------
// kFull vs kClosed, Requeue, Reopen (the failover building blocks)
// ---------------------------------------------------------------------------

TEST(RequestQueueStressTest, FullAndClosedAreDistinctRejections) {
  // The router's failover depends on telling transient overload (shed
  // here) apart from a dead consumer (reroute elsewhere): kFull at
  // capacity, kClosed after Close — never conflated.
  RequestQueue queue(1);
  const DispatchContext a, b;
  ASSERT_EQ(queue.TryPush(MakeRequest(&a)), PushResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(MakeRequest(&b)), PushResult::kFull);
  queue.Close();
  // Closed wins over full: the consumer is gone, reroute — don't shed.
  EXPECT_EQ(queue.TryPush(MakeRequest(&b)), PushResult::kClosed);
}

TEST(RequestQueueStressTest, RequeuePutsBatchBackInFrontInOrder) {
  // The crash path pops a batch, then puts it back: the requeued requests
  // must come out first and in their original FIFO order, ahead of
  // anything that arrived while the batch was in flight.
  RequestQueue queue(8);
  std::vector<DispatchContext> ctx(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.TryPush(MakeRequest(&ctx[i])), PushResult::kAdmitted);
  }
  std::vector<DecisionRequest> batch;
  ASSERT_EQ(queue.PopBatch(&batch, 2, 0), 2);
  ASSERT_EQ(queue.TryPush(MakeRequest(&ctx[3])), PushResult::kAdmitted);
  queue.Requeue(&batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(queue.size(), 4u);
  std::vector<DecisionRequest> drained;
  ASSERT_EQ(queue.PopBatch(&drained, 8, 0), 4);
  EXPECT_EQ(drained[0].context, &ctx[0]);
  EXPECT_EQ(drained[1].context, &ctx[1]);
  EXPECT_EQ(drained[2].context, &ctx[2]);
  EXPECT_EQ(drained[3].context, &ctx[3]);
}

TEST(RequestQueueStressTest, RequeueIgnoresCapacityAndClosedFlag) {
  // Requeued work was already admitted once; neither the capacity bound
  // nor a concurrent Close may drop it.
  RequestQueue queue(1);
  const DispatchContext a;
  ASSERT_EQ(queue.TryPush(MakeRequest(&a)), PushResult::kAdmitted);
  std::vector<DecisionRequest> batch;
  ASSERT_EQ(queue.PopBatch(&batch, 1, 0), 1);
  queue.Close();
  queue.Requeue(&batch);  // Past capacity-1 bookkeeping AND the closed flag.
  EXPECT_EQ(queue.size(), 1u);
  std::vector<DecisionRequest> drained;
  EXPECT_EQ(queue.PopBatch(&drained, 8, 0), 1);
  EXPECT_EQ(drained[0].context, &a);
}

TEST(RequestQueueStressTest, ReopenRestoresAdmissionAfterDrain) {
  // The supervised-restart sequence: Close, drain, Reopen, and the queue
  // serves a fresh consumer as if nothing happened.
  RequestQueue queue(4);
  const DispatchContext a, b;
  ASSERT_EQ(queue.TryPush(MakeRequest(&a)), PushResult::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(MakeRequest(&b)), PushResult::kClosed);
  std::vector<DecisionRequest> drained;
  while (queue.PopBatch(&drained, 4, 0) > 0) {
  }
  EXPECT_TRUE(queue.closed());
  queue.Reopen();
  EXPECT_FALSE(queue.closed());
  ASSERT_EQ(queue.TryPush(MakeRequest(&b)), PushResult::kAdmitted);
  std::vector<DecisionRequest> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 4, 0), 1);
  EXPECT_EQ(batch[0].context, &b);
}

TEST(RequestQueueStressTest, RandomizedClosePushRacesConserveRequests) {
  // Several seeds x capacities: tight queues exercise the full-rejection
  // path, roomy ones the close-rejection path. Each (seed, capacity) pair
  // is a deterministic schedule family — failures name their seed.
  for (const uint64_t seed : {20260807ull, 99ull, 4242ull}) {
    for (const int capacity : {2, 32}) {
      RandomizedRace(seed, capacity);
    }
  }
}

}  // namespace
}  // namespace dpdp::serve
