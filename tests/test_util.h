#ifndef DPDP_TESTS_TEST_UTIL_H_
#define DPDP_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "model/instance.h"
#include "model/order.h"
#include "net/road_network.h"

namespace dpdp::testing {

/// A tiny hand-checkable world: one depot at the origin and four factories
/// on a 10 km line / square, Euclidean distances (road factor 1.0).
///
///   depot(0) at (0, 0)
///   F1(1) at (10, 0), F2(2) at (20, 0), F3(3) at (10, 10), F4(4) at (0, 10)
inline std::shared_ptr<const RoadNetwork> MakeLineNetwork() {
  std::vector<NodeInfo> nodes(5);
  nodes[0] = {0, NodeKind::kDepot, 0.0, 0.0, "depot"};
  nodes[1] = {1, NodeKind::kFactory, 10.0, 0.0, "F1"};
  nodes[2] = {2, NodeKind::kFactory, 20.0, 0.0, "F2"};
  nodes[3] = {3, NodeKind::kFactory, 10.0, 10.0, "F3"};
  nodes[4] = {4, NodeKind::kFactory, 0.0, 10.0, "F4"};
  return std::make_shared<RoadNetwork>(
      RoadNetwork::FromCoordinates(std::move(nodes), /*road_factor=*/1.0));
}

/// Vehicle config with round numbers: capacity 100, mu 300, delta 2,
/// 60 km/h (1 km/min), 0 service time — schedules are then trivially
/// arithmetic in tests.
inline VehicleConfig MakeTestVehicleConfig() {
  VehicleConfig cfg;
  cfg.capacity = 100.0;
  cfg.fixed_cost = 300.0;
  cfg.cost_per_km = 2.0;
  cfg.speed_kmph = 60.0;
  cfg.service_time_min = 0.0;
  return cfg;
}

inline Order MakeOrder(int id, int pickup, int delivery, double qty,
                       double t_create, double t_latest) {
  Order o;
  o.id = id;
  o.pickup_node = pickup;
  o.delivery_node = delivery;
  o.quantity = qty;
  o.create_time_min = t_create;
  o.latest_time_min = t_latest;
  return o;
}

/// An instance on the line network with the given orders and `num_vehicles`
/// vehicles at the depot.
inline Instance MakeTestInstance(std::vector<Order> orders,
                                 int num_vehicles = 2) {
  Instance inst;
  inst.name = "test";
  inst.network = MakeLineNetwork();
  inst.vehicle_config = MakeTestVehicleConfig();
  inst.orders = std::move(orders);
  CanonicalizeOrders(&inst.orders);
  inst.vehicle_depots.assign(num_vehicles, 0);
  inst.num_time_intervals = 144;
  inst.horizon_minutes = kMinutesPerDay;
  return inst;
}

}  // namespace dpdp::testing

#endif  // DPDP_TESTS_TEST_UTIL_H_
