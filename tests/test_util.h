#ifndef DPDP_TESTS_TEST_UTIL_H_
#define DPDP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "model/instance.h"
#include "model/order.h"
#include "model/vehicle.h"
#include "net/road_network.h"
#include "sim/dispatcher.h"

namespace dpdp::testing {

/// A tiny hand-checkable world: one depot at the origin and four factories
/// on a 10 km line / square, Euclidean distances (road factor 1.0).
///
///   depot(0) at (0, 0)
///   F1(1) at (10, 0), F2(2) at (20, 0), F3(3) at (10, 10), F4(4) at (0, 10)
inline std::shared_ptr<const RoadNetwork> MakeLineNetwork() {
  std::vector<NodeInfo> nodes(5);
  nodes[0] = {0, NodeKind::kDepot, 0.0, 0.0, "depot"};
  nodes[1] = {1, NodeKind::kFactory, 10.0, 0.0, "F1"};
  nodes[2] = {2, NodeKind::kFactory, 20.0, 0.0, "F2"};
  nodes[3] = {3, NodeKind::kFactory, 10.0, 10.0, "F3"};
  nodes[4] = {4, NodeKind::kFactory, 0.0, 10.0, "F4"};
  return std::make_shared<RoadNetwork>(
      RoadNetwork::FromCoordinates(std::move(nodes), /*road_factor=*/1.0));
}

/// Vehicle config with round numbers: capacity 100, mu 300, delta 2,
/// 60 km/h (1 km/min), 0 service time — schedules are then trivially
/// arithmetic in tests.
inline VehicleConfig MakeTestVehicleConfig() {
  VehicleConfig cfg;
  cfg.capacity = 100.0;
  cfg.fixed_cost = 300.0;
  cfg.cost_per_km = 2.0;
  cfg.speed_kmph = 60.0;
  cfg.service_time_min = 0.0;
  return cfg;
}

inline Order MakeOrder(int id, int pickup, int delivery, double qty,
                       double t_create, double t_latest) {
  Order o;
  o.id = id;
  o.pickup_node = pickup;
  o.delivery_node = delivery;
  o.quantity = qty;
  o.create_time_min = t_create;
  o.latest_time_min = t_latest;
  return o;
}

/// An instance on the line network with the given orders and `num_vehicles`
/// vehicles at the depot.
inline Instance MakeTestInstance(std::vector<Order> orders,
                                 int num_vehicles = 2) {
  Instance inst;
  inst.name = "test";
  inst.network = MakeLineNetwork();
  inst.vehicle_config = MakeTestVehicleConfig();
  inst.orders = std::move(orders);
  CanonicalizeOrders(&inst.orders);
  inst.vehicle_depots.assign(num_vehicles, 0);
  inst.num_time_intervals = 144;
  inst.horizon_minutes = kMinutesPerDay;
  return inst;
}

/// Brute-force feasibility oracle: replays `route` (the executed stop
/// sequence of `vehicle`, as recorded in EpisodeResult::routes) under an
/// earliest-feasible schedule and independently re-checks every constraint
/// of Sec. III — deliberately NOT reusing RoutePlanner::CheckSuffix, so
/// planner and simulator bugs cannot cancel out.
///
/// Replay semantics: the vehicle departs its depot at time 0, drives each
/// leg at config speed, waits at pickups until the order exists, and
/// spends service_time_min per stop. Serving everything as early as
/// possible is a sound relaxation for deadline checking: arriving earlier
/// never violates a delivery deadline, and pickups cannot start before
/// create_time regardless. If this replay breaks a deadline, no actual
/// execution of the same stop sequence could have met it ("no feasible
/// schedule exists" — the simulator may interleave decisions differently,
/// but it never reorders a vehicle's committed stops).
///
/// Checked: stop/order cross-references, LIFO stack discipline (every
/// delivery unloads the top of the stack; the stack is empty at the end,
/// i.e. the vehicle returns to its depot empty), capacity (onboard load
/// never exceeds Q), pickup-before-delivery with each order served at most
/// once, and delivery deadlines (service must start by latest_time_min).
inline ::testing::AssertionResult CheckRouteFeasible(
    const Instance& inst, int vehicle, const std::vector<Stop>& route) {
  const RoadNetwork& net = *inst.network;
  if (vehicle < 0 || vehicle >= static_cast<int>(inst.vehicle_depots.size())) {
    return ::testing::AssertionFailure()
           << "vehicle index " << vehicle << " out of range";
  }
  // Heterogeneous-fleet aware: this vehicle's own class config (the shared
  // config when the instance has no profiles).
  const VehicleConfig& cfg = inst.vehicle_config_of(vehicle);
  const int depot = inst.vehicle_depots[vehicle];
  constexpr double kTol = 1e-9;

  std::vector<int> lifo_stack;  // Onboard order ids, bottom first.
  std::vector<int> picked(inst.num_orders(), 0);
  std::vector<int> delivered(inst.num_orders(), 0);
  double load = 0.0;
  double time = 0.0;
  int node = depot;

  for (size_t i = 0; i < route.size(); ++i) {
    const Stop& stop = route[i];
    if (stop.order_id < 0 || stop.order_id >= inst.num_orders()) {
      return ::testing::AssertionFailure()
             << "vehicle " << vehicle << " stop " << i << ": order id "
             << stop.order_id << " out of range";
    }
    const Order& order = inst.order(stop.order_id);
    const int expected_node = stop.type == StopType::kPickup
                                  ? order.pickup_node
                                  : order.delivery_node;
    if (stop.node != expected_node) {
      return ::testing::AssertionFailure()
             << "vehicle " << vehicle << " stop " << i << " ("
             << stop.DebugString() << "): node " << stop.node
             << " does not match the order's "
             << (stop.type == StopType::kPickup ? "pickup" : "delivery")
             << " node " << expected_node;
    }

    time += net.TravelTimeMinutes(node, stop.node, cfg.speed_kmph);
    node = stop.node;
    double service_start = time;

    if (stop.type == StopType::kPickup) {
      if (picked[order.id]++ > 0) {
        return ::testing::AssertionFailure()
               << "vehicle " << vehicle << " picks up order " << order.id
               << " more than once";
      }
      // Pickups wait until the order exists.
      service_start = std::max(service_start, order.create_time_min);
      load += order.quantity;
      if (load > cfg.capacity + kTol) {
        return ::testing::AssertionFailure()
               << "vehicle " << vehicle << " stop " << i
               << ": load " << load << " exceeds capacity " << cfg.capacity
               << " after picking up order " << order.id;
      }
      lifo_stack.push_back(order.id);
    } else {
      if (delivered[order.id]++ > 0) {
        return ::testing::AssertionFailure()
               << "vehicle " << vehicle << " delivers order " << order.id
               << " more than once";
      }
      if (lifo_stack.empty() || lifo_stack.back() != order.id) {
        return ::testing::AssertionFailure()
               << "vehicle " << vehicle << " stop " << i
               << ": delivery of order " << order.id
               << " violates LIFO (stack top is "
               << (lifo_stack.empty() ? -1 : lifo_stack.back()) << ")";
      }
      if (service_start > order.latest_time_min + kTol) {
        return ::testing::AssertionFailure()
               << "vehicle " << vehicle << " stop " << i << ": order "
               << order.id << " delivered at " << service_start
               << " min, after its deadline " << order.latest_time_min
               << " (no feasible schedule exists for this stop sequence)";
      }
      lifo_stack.pop_back();
      load -= order.quantity;
    }
    // Docking-constrained nodes charge their surcharge on every service.
    time = service_start + cfg.service_time_min +
           inst.service_surcharge_at(stop.node);
  }

  if (!lifo_stack.empty()) {
    return ::testing::AssertionFailure()
           << "vehicle " << vehicle << " returns to its depot with "
           << lifo_stack.size() << " undelivered onboard order(s), first id "
           << lifo_stack.front();
  }
  // The return leg to the depot always exists and has no time window, so
  // nothing further to check; load == 0 follows from the empty stack.
  return ::testing::AssertionSuccess();
}

/// Oracle over a whole recorded episode (requires
/// SimulatorConfig::record_plan): every route feasible, and the OA / RP
/// outputs consistent — each served order appears exactly once, as a
/// pickup+delivery pair in the route of its assigned vehicle; unserved
/// orders appear nowhere.
inline ::testing::AssertionResult CheckEpisodeFeasible(
    const Instance& inst, const EpisodeResult& result) {
  if (result.routes.size() != inst.vehicle_depots.size()) {
    return ::testing::AssertionFailure()
           << "routes has " << result.routes.size() << " entries, expected "
           << inst.vehicle_depots.size();
  }
  if (result.order_assignment.size() != static_cast<size_t>(inst.num_orders())) {
    return ::testing::AssertionFailure()
           << "order_assignment has " << result.order_assignment.size()
           << " entries, expected " << inst.num_orders();
  }
  for (size_t v = 0; v < result.routes.size(); ++v) {
    const ::testing::AssertionResult ok =
        CheckRouteFeasible(inst, static_cast<int>(v), result.routes[v]);
    if (!ok) return ok;
  }
  for (int o = 0; o < inst.num_orders(); ++o) {
    const int assigned = result.order_assignment[o];
    for (size_t v = 0; v < result.routes.size(); ++v) {
      const int count = static_cast<int>(std::count_if(
          result.routes[v].begin(), result.routes[v].end(),
          [&](const Stop& s) { return s.order_id == o; }));
      const int expected = assigned == static_cast<int>(v) ? 2 : 0;
      if (count != expected) {
        return ::testing::AssertionFailure()
               << "order " << o << " (assigned to vehicle " << assigned
               << ") appears in " << count << " stop(s) of vehicle " << v
               << ", expected " << expected;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace dpdp::testing

#endif  // DPDP_TESTS_TEST_UTIL_H_
