// Tests for the observability layer (src/obs/ + util/log.h): exact
// concurrent metric sums, Chrome-trace output shape, logger filtering,
// and the determinism contract — telemetry is pure observation, so
// enabling it must not perturb simulation results.

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/greedy_baselines.h"
#include "exp/harness.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "util/log.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpdp {
namespace {

// ----------------------------------------------------------- metrics ----

TEST(Counter, ConcurrentIncrementsSumExactly) {
  obs::Counter counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, AddWithArgument) {
  obs::Counter counter("test.add_n");
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 12u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge gauge("test.gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.75);
}

TEST(Gauge, ConcurrentAddSumsExactly) {
  obs::Gauge gauge("test.gauge_conc");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Each add is +1.0, exactly representable: the CAS loop must lose none.
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.0 * kThreads * kPerThread);
}

TEST(Histogram, BucketsAndOverflow) {
  obs::Histogram h("test.hist", {1.0, 2.0, 5.0});
  h.Record(0.5);   // bucket 0 (<= 1)
  h.Record(1.0);   // bucket 0 (le semantics)
  h.Record(1.5);   // bucket 1
  h.Record(10.0);  // overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 13.0);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);  // Overflow slot.
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  obs::MetricSnapshot snap;
  snap.kind = obs::MetricSnapshot::Kind::kHistogram;
  snap.bounds = {1.0, 2.0, 5.0};
  snap.buckets = {2, 2, 0, 0};  // 2 in (0,1], 2 in (1,2].
  snap.count = 4;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 1.0), 2.0);

  // Overflow samples clamp to the last finite bound.
  snap.buckets = {0, 0, 0, 3};
  snap.count = 3;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.99), 5.0);

  // Empty histograms and non-histogram snapshots report 0.
  snap.buckets = {0, 0, 0, 0};
  snap.count = 0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.5), 0.0);
  obs::MetricSnapshot counter;
  counter.kind = obs::MetricSnapshot::Kind::kCounter;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(counter, 0.5), 0.0);
}

// Regression tests for the HistogramQuantile edge cases that used to be
// ill-defined: cold histograms, p0/p100, mass concentrated in one bucket,
// boundless histograms, and overflow-dominated distributions. The load
// generator reports per-shard percentiles straight from these snapshots,
// so a cold shard (zero samples) must yield a well-defined 0, not UB.
TEST(Histogram, QuantileEdgeCases) {
  obs::MetricSnapshot snap;
  snap.kind = obs::MetricSnapshot::Kind::kHistogram;
  snap.bounds = {1.0, 2.0, 5.0, 10.0};

  // Cold shard: no samples at all — every quantile is 0.
  snap.buckets = {0, 0, 0, 0, 0};
  snap.count = 0;
  snap.sum = 0.0;
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, q), 0.0) << "q=" << q;
  }

  // p0 is the lower edge of the first NON-EMPTY bucket (not of bucket 0),
  // p100 the upper edge of the last non-empty one (trailing empties and
  // an empty overflow bucket must not drag it to the final bound).
  snap.buckets = {0, 4, 0, 0, 0};  // All mass in (1, 2].
  snap.count = 4;
  snap.sum = 6.0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 1.0), 2.0);

  // Single-bucket mass: every quantile interpolates inside that bucket,
  // monotonically in q.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.5), 1.5);
  double prev = -1.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double v = obs::HistogramQuantile(snap, q);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 2.0);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }

  // q outside [0, 1] clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, -0.5),
                   obs::HistogramQuantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 1.5),
                   obs::HistogramQuantile(snap, 1.0));

  // A boundless histogram (only the overflow bucket) has no positional
  // information: the sample mean is the estimate for every q.
  obs::MetricSnapshot boundless;
  boundless.kind = obs::MetricSnapshot::Kind::kHistogram;
  boundless.bounds = {};
  boundless.buckets = {5};
  boundless.count = 5;
  boundless.sum = 35.0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(boundless, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(boundless, 1.0), 7.0);

  // Overflow-dominated mass: the clamp uses the mean when it exceeds the
  // last bound (plain clamping would systematically under-report), and
  // the last bound otherwise.
  snap.buckets = {0, 0, 0, 0, 3};
  snap.count = 3;
  snap.sum = 3000.0;  // Mean 1000 >> last bound 10.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.99), 1000.0);
  snap.sum = 9.0;  // Mean 3 < last bound 10: clamp to the bound.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(snap, 0.99), 10.0);
}

TEST(Histogram, ConcurrentRecordsSumExactly) {
  obs::Histogram h("test.hist_conc", obs::LatencyBucketsSeconds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.Count(), expected);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, expected);
}

TEST(MetricsRegistry, SameNameReturnsSamePointer) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x");
  obs::Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
  obs::Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  obs::Histogram* h2 = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(3);
  registry.GetGauge("a.gauge")->Set(1.5);
  registry.GetHistogram("c.hist", {1.0})->Record(0.5);
  const std::vector<obs::MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
  EXPECT_DOUBLE_EQ(snap[1].value, 3.0);
  EXPECT_EQ(snap[2].count, 1u);
}

TEST(MetricsRegistry, CsvAndJsonExport) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(2);
  registry.GetHistogram("lat", {1.0, 2.0})->Record(1.5);
  const std::vector<obs::MetricSnapshot> snap = registry.Snapshot();

  const std::string csv = obs::SnapshotToCsv(snap);
  EXPECT_NE(csv.find("name,kind,value,count,sum,buckets"), std::string::npos);
  EXPECT_NE(csv.find("requests,counter,2"), std::string::npos);
  EXPECT_NE(csv.find("le1:0;le2:1;leinf:0"), std::string::npos);

  const std::string json = obs::SnapshotToJson(snap);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(MetricsRegistry, WriteMetricsFilesHonorsDir) {
  const std::string dir = ::testing::TempDir() + "/dpdp_obs_metrics";
  obs::MetricsRegistry::Global().GetCounter("test.write_files")->Add();
  ASSERT_TRUE(obs::WriteMetricsFiles(dir).ok());
  std::ifstream csv(dir + "/metrics_snapshot.csv");
  ASSERT_TRUE(csv.good());
  std::stringstream contents;
  contents << csv.rdbuf();
  EXPECT_NE(contents.str().find("test.write_files"), std::string::npos);
  std::ifstream json(dir + "/metrics_snapshot.json");
  EXPECT_TRUE(json.good());
}

// ------------------------------------------------------------- tracer ----

TEST(Trace, DisabledSpansRecordNothing) {
  obs::SetTraceEnabled(false);
  obs::DiscardTrace();
  {
    DPDP_TRACE_SPAN("test.disabled");
  }
  EXPECT_EQ(obs::BufferedSpanCount(), 0u);
}

TEST(Trace, WritesWellFormedChromeTraceJson) {
  obs::SetTraceEnabled(true);
  obs::DiscardTrace();
  {
    DPDP_TRACE_SPAN("test.outer");
    DPDP_TRACE_SPAN("test.inner");
  }
  std::thread worker([] { DPDP_TRACE_SPAN("test.worker"); });
  worker.join();
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::BufferedSpanCount(), 3u);

  const std::string path = ::testing::TempDir() + "/dpdp_obs_trace.json";
  ASSERT_TRUE(obs::WriteTraceFile(path).ok());
  EXPECT_EQ(obs::BufferedSpanCount(), 0u);  // Consumed by the write.

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string trace = buffer.str();
  // Golden shape of the Chrome trace-event format: an object with a
  // traceEvents array of complete ("ph":"X") events.
  EXPECT_EQ(trace.front(), '{');
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.worker\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy that catches
  // truncation or comma bugs without a JSON parser dependency.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '['),
            std::count(trace.begin(), trace.end(), ']'));
}

TEST(Trace, MonotonicClockNeverGoesBackwards) {
  int64_t prev = MonotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = MonotonicNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

// ------------------------------------------------------------- logger ----

class ScopedLogCapture {
 public:
  ScopedLogCapture() {
    saved_level_ = GetLogLevel();
    SetLogSink([this](LogLevel level, const char* /*file*/, int /*line*/,
                      const std::string& message) {
      lines_.push_back(std::string(LogLevelName(level)) + ": " + message);
    });
  }
  ~ScopedLogCapture() {
    SetLogSink(nullptr);
    SetLogLevel(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  LogLevel saved_level_;
  std::vector<std::string> lines_;
};

TEST(Log, LevelFiltering) {
  ScopedLogCapture capture;
  SetLogLevel(LogLevel::kWarn);
  DPDP_LOG(DEBUG) << "dropped-debug";
  DPDP_LOG(INFO) << "dropped-info";
  DPDP_LOG(WARN) << "kept-warn " << 42;
  DPDP_LOG(ERROR) << "kept-error";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0], "WARN: kept-warn 42");
  EXPECT_EQ(capture.lines()[1], "ERROR: kept-error");
}

TEST(Log, OffSilencesEverythingButRawLog) {
  ScopedLogCapture capture;
  SetLogLevel(LogLevel::kOff);
  DPDP_LOG(ERROR) << "dropped";
  internal::RawLog(LogLevel::kError, __FILE__, __LINE__, "check-failure");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0], "ERROR: check-failure");
}

TEST(Log, MacroIsASingleStatement) {
  ScopedLogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  // Braceless if/else must bind correctly around the for-macro.
  if (false)
    DPDP_LOG(INFO) << "never";
  else
    DPDP_LOG(INFO) << "taken";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0], "INFO: taken");
}

// -------------------------------------------------- determinism guard ----

Instance SmallWorld() {
  using dpdp::testing::MakeOrder;
  std::vector<Order> orders;
  orders.push_back(MakeOrder(0, 1, 2, 40.0, 0.0, 300.0));
  orders.push_back(MakeOrder(1, 3, 4, 30.0, 10.0, 400.0));
  orders.push_back(MakeOrder(2, 2, 1, 20.0, 20.0, 500.0));
  orders.push_back(MakeOrder(3, 4, 3, 25.0, 30.0, 600.0));
  return dpdp::testing::MakeTestInstance(std::move(orders), 2);
}

TEST(ObsDeterminism, TelemetryDoesNotPerturbEpisodes) {
  const Instance inst = SmallWorld();
  MinIncrementalLengthDispatcher baseline;

  obs::SetTraceEnabled(false);
  Simulator sim_off(&inst, SimulatorConfig{});
  const EpisodeResult off = sim_off.RunEpisode(&baseline);

  obs::SetTraceEnabled(true);
  Simulator sim_on(&inst, SimulatorConfig{});
  const EpisodeResult on = sim_on.RunEpisode(&baseline);
  obs::SetTraceEnabled(false);
  obs::DiscardTrace();

  // Bit-identical, not approximately equal: telemetry is pure observation.
  EXPECT_EQ(off.nuv, on.nuv);
  EXPECT_EQ(off.total_cost, on.total_cost);
  EXPECT_EQ(off.total_travel_length, on.total_travel_length);
  EXPECT_EQ(off.num_decisions, on.num_decisions);
  EXPECT_GT(on.num_decisions, 0);
}

TEST(ObsDeterminism, ThreadCountGoldenHoldsWithObsEnabled) {
  // The repo-wide determinism contract (1-vs-N-thread bit-identical
  // results) must survive metrics + tracing being switched on.
  const Instance inst = SmallWorld();
  const nn::Matrix predicted(inst.network->num_factories(),
                             inst.num_time_intervals, 1.0);
  obs::SetTraceEnabled(true);
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const MethodSummary a =
      RunDrlMethod(inst, predicted, "DQN", /*episodes=*/2, /*num_seeds=*/2,
                   /*seed_base=*/11, &serial);
  const MethodSummary b =
      RunDrlMethod(inst, predicted, "DQN", /*episodes=*/2, /*num_seeds=*/2,
                   /*seed_base=*/11, &parallel);
  obs::SetTraceEnabled(false);
  obs::DiscardTrace();

  ASSERT_EQ(a.nuv.size(), 2u);
  ASSERT_EQ(b.nuv.size(), 2u);
  for (size_t s = 0; s < a.nuv.size(); ++s) {
    EXPECT_EQ(a.nuv[s], b.nuv[s]) << "seed " << s;
    EXPECT_EQ(a.tc[s], b.tc[s]) << "seed " << s;
  }
  // The rollup aggregates the same episodes either way.
  EXPECT_EQ(a.metrics.episodes, b.metrics.episodes);
  EXPECT_EQ(a.metrics.decisions, b.metrics.decisions);
  EXPECT_EQ(a.metrics.degraded_decisions, b.metrics.degraded_decisions);
}

TEST(ObsDeterminism, RegistryCountersReconcileWithEpisodeResult) {
  // Acceptance cross-check: the global sim.decisions counter and the
  // decision-latency histogram advance by exactly the per-episode
  // num_decisions total, and sim.degraded_decisions by the degraded total.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* decisions = registry.GetCounter("sim.decisions");
  obs::Counter* degraded = registry.GetCounter("sim.degraded_decisions");
  obs::Histogram* latency = registry.GetHistogram(
      "sim.decision_latency_s", obs::LatencyBucketsSeconds());

  const uint64_t decisions_before = decisions->Value();
  const uint64_t degraded_before = degraded->Value();
  const uint64_t latency_before = latency->Count();

  const Instance inst = SmallWorld();
  MinIncrementalLengthDispatcher baseline;
  const MethodSummary summary = RunBaseline(inst, &baseline);

  EXPECT_EQ(decisions->Value() - decisions_before,
            static_cast<uint64_t>(summary.metrics.decisions));
  EXPECT_EQ(latency->Count() - latency_before,
            static_cast<uint64_t>(summary.metrics.decisions));
  EXPECT_EQ(degraded->Value() - degraded_before,
            static_cast<uint64_t>(summary.metrics.degraded_decisions));
  EXPECT_GT(summary.metrics.decisions, 0);
}

}  // namespace
}  // namespace dpdp
