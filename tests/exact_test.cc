#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "datagen/dataset.h"
#include "exact/bnb_solver.h"
#include "exp/harness.h"
#include "routing/route_planner.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

TEST(ExactSolver, SingleOrderOptimalCost) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 400.0)}, 2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  EXPECT_TRUE(sol.optimal);
  EXPECT_DOUBLE_EQ(sol.nuv, 1.0);
  // depot -> F1 -> F2 -> depot = 10 + 10 + 20 km.
  EXPECT_DOUBLE_EQ(sol.total_travel_length, 40.0);
  EXPECT_DOUBLE_EQ(sol.total_cost, 300.0 + 80.0);
  ASSERT_EQ(sol.routes.size(), 1u);
  EXPECT_EQ(sol.routes[0].size(), 2u);
}

TEST(ExactSolver, PrefersHitchhikingOverSecondVehicle) {
  // Two identical F1 -> F2 orders: one vehicle nests them (LIFO) for zero
  // extra distance, saving the 300 fixed cost.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 400.0),
                        MakeOrder(1, 1, 2, 10.0, 0.0, 400.0)},
                       2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  EXPECT_DOUBLE_EQ(sol.nuv, 1.0);
  EXPECT_DOUBLE_EQ(sol.total_travel_length, 40.0);
}

TEST(ExactSolver, TightWindowsForceSecondVehicle) {
  // Orders in opposite corners with deadlines that one vehicle cannot
  // chain.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 25.0),
                        MakeOrder(1, 4, 3, 10.0, 0.0, 25.0)},
                       2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  EXPECT_DOUBLE_EQ(sol.nuv, 2.0);
}

TEST(ExactSolver, RespectsCapacity) {
  // Two 60-unit orders cannot share the truck at once; nesting violates
  // capacity so the solver must serialize or split.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 60.0, 0.0, 2000.0),
                        MakeOrder(1, 1, 2, 60.0, 0.0, 2000.0)},
                       2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  // One vehicle serving sequentially: 10 + 10 + 10 + 10 + 20 = 60 km
  // beats two vehicles (40 km each + extra 300 fixed).
  EXPECT_DOUBLE_EQ(sol.nuv, 1.0);
  EXPECT_DOUBLE_EQ(sol.total_travel_length, 60.0);
}

TEST(ExactSolver, InfeasibleInstanceReportsNotFound) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 5.0)}, 2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  EXPECT_FALSE(sol.found);
}

TEST(ExactSolver, EmptyInstanceTriviallyOptimal) {
  Instance inst = MakeTestInstance({}, 2);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  EXPECT_TRUE(sol.found);
  EXPECT_TRUE(sol.optimal);
  EXPECT_DOUBLE_EQ(sol.total_cost, 0.0);
}

TEST(ExactSolver, SolutionRoutesAreFeasible) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 30.0, 0.0, 300.0),
                        MakeOrder(1, 3, 4, 20.0, 30.0, 300.0),
                        MakeOrder(2, 2, 3, 15.0, 60.0, 400.0)},
                       3);
  BranchAndBoundSolver solver(&inst, {});
  const ExactSolution sol = solver.Solve();
  ASSERT_TRUE(sol.found);
  ASSERT_EQ(sol.routes.size(), sol.route_depots.size());
  // Re-validate every route with the route planner (time windows checked
  // with departure at time 0 from the route's depot).
  RoutePlanner planner(&inst);
  int orders_covered = 0;
  for (size_t r = 0; r < sol.routes.size(); ++r) {
    const PlanAnchor anchor{sol.route_depots[r], 0.0, {}};
    const auto check =
        planner.CheckSuffix(anchor, sol.routes[r], sol.route_depots[r]);
    EXPECT_TRUE(check.ok()) << check.status();
    for (const Stop& s : sol.routes[r]) {
      orders_covered += (s.type == StopType::kPickup);
    }
  }
  EXPECT_EQ(orders_covered, inst.num_orders());
}

TEST(ExactSolver, NodeLimitTerminatesSearch) {
  // A 27-factory campus gives the search a genuinely large space (the
  // tiny line network above is closed instantly by the lower bound).
  DpdpDataset dataset(StandardDatasetConfig(5, 400.0));
  const Instance inst = dataset.SampleInstance("limit", 14, 5, 0, 0, 3);
  ExactSolverConfig config;
  config.node_limit = 5000;
  BranchAndBoundSolver solver(&inst, config);
  const ExactSolution sol = solver.Solve();
  EXPECT_LE(sol.nodes_explored, config.node_limit + 16384);
  EXPECT_FALSE(sol.optimal);  // Aborted before exhausting the space.
}

// ---------------------- optimality property sweep -------------------------

class ExactPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactPropertyTest, ExactNeverWorseThanGreedyHeuristics) {
  Rng rng(GetParam());
  std::vector<Order> orders;
  const int n = rng.UniformInt(2, 5);
  for (int i = 0; i < n; ++i) {
    int pickup = rng.UniformInt(1, 4);
    int delivery = rng.UniformInt(1, 4);
    while (delivery == pickup) delivery = rng.UniformInt(1, 4);
    const double t = rng.Uniform(0.0, 300.0);
    orders.push_back(MakeOrder(i, pickup, delivery, rng.Uniform(5.0, 40.0),
                               t, t + rng.Uniform(120.0, 500.0)));
  }
  const Instance inst = MakeTestInstance(orders, 3);

  ExactSolverConfig config;
  config.time_limit_seconds = 20.0;
  BranchAndBoundSolver solver(&inst, config);
  const ExactSolution sol = solver.Solve();

  MinIncrementalLengthDispatcher b1;
  Simulator sim(&inst);
  const EpisodeResult greedy = sim.RunEpisode(&b1);

  if (!greedy.all_served()) return;  // Window too tight for the heuristic.
  ASSERT_TRUE(sol.found);
  ASSERT_TRUE(sol.optimal);
  // The exact optimum (with full future knowledge) can never lose to an
  // online greedy heuristic.
  EXPECT_LE(sol.total_cost, greedy.total_cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomTinyInstances, ExactPropertyTest,
                         ::testing::Range<uint64_t>(200, 215));

}  // namespace
}  // namespace dpdp
