#include <gtest/gtest.h>

#include <cmath>

#include "datagen/campus.h"
#include "datagen/dataset.h"
#include "datagen/demand_model.h"
#include "datagen/order_gen.h"
#include "exp/harness.h"
#include "model/instance.h"
#include "stpred/std_matrix.h"

namespace dpdp {
namespace {

// ---------------------------------------------------------------- Campus --

TEST(Campus, GeneratesRequestedTopology) {
  CampusConfig config;
  config.num_factories = 27;
  config.num_depots = 2;
  const auto net = GenerateCampus(config);
  EXPECT_EQ(net->num_nodes(), 29);
  EXPECT_EQ(net->num_factories(), 27);
  EXPECT_EQ(net->num_depots(), 2);
}

TEST(Campus, ReproducibleForSameSeed) {
  CampusConfig config;
  const auto a = GenerateCampus(config);
  const auto b = GenerateCampus(config);
  for (int i = 0; i < a->num_nodes(); ++i) {
    for (int j = 0; j < a->num_nodes(); ++j) {
      EXPECT_DOUBLE_EQ(a->Distance(i, j), b->Distance(i, j));
    }
  }
}

TEST(Campus, DifferentSeedsDiffer) {
  CampusConfig a_cfg;
  a_cfg.seed = 1;
  CampusConfig b_cfg;
  b_cfg.seed = 2;
  const auto a = GenerateCampus(a_cfg);
  const auto b = GenerateCampus(b_cfg);
  double diff = 0.0;
  for (int i = 0; i < a->num_nodes(); ++i) {
    for (int j = 0; j < a->num_nodes(); ++j) {
      diff += std::abs(a->Distance(i, j) - b->Distance(i, j));
    }
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Campus, CoordinatesInsideExtentAndDistancesMetric) {
  CampusConfig config;
  const auto net = GenerateCampus(config);
  for (int i = 0; i < net->num_nodes(); ++i) {
    EXPECT_GE(net->node(i).x, 0.0);
    EXPECT_LE(net->node(i).x, config.extent_km);
    EXPECT_GE(net->node(i).y, 0.0);
    EXPECT_LE(net->node(i).y, config.extent_km);
  }
  // Triangle inequality holds for scaled Euclidean distances.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      for (int k = 0; k < 5; ++k) {
        EXPECT_LE(net->Distance(i, j),
                  net->Distance(i, k) + net->Distance(k, j) + 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------- DemandModel --

class DemandModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampusConfig config;
    net_ = GenerateCampus(config);
    model_ = std::make_unique<DemandModel>(*net_, 144, 99);
  }
  std::shared_ptr<const RoadNetwork> net_;
  std::unique_ptr<DemandModel> model_;
};

TEST_F(DemandModelTest, RatesNonNegative) {
  for (int i = 0; i < model_->num_factories(); i += 5) {
    for (int j = 0; j < 144; j += 7) {
      EXPECT_GE(model_->Rate(i, j, 3), 0.0);
    }
  }
  EXPECT_GT(model_->TotalRate(0), 0.0);
}

TEST_F(DemandModelTest, DemandPeaksInWorkingHours) {
  // Aggregate demand at 11:00 and 15:30 must exceed demand at 03:00
  // (paper Fig. 2: peaks 10-12 and 14-17).
  auto total_at = [&](double minute) {
    const int interval = static_cast<int>(minute / 10.0);
    double s = 0.0;
    for (int i = 0; i < model_->num_factories(); ++i) {
      s += model_->Rate(i, interval, 0);
    }
    return s;
  };
  EXPECT_GT(total_at(11 * 60.0), 5.0 * total_at(3 * 60.0));
  EXPECT_GT(total_at(15.5 * 60.0), 5.0 * total_at(3 * 60.0));
}

TEST_F(DemandModelTest, SpatialSkewExists) {
  // Some factories should dominate: max weight well above median weight.
  std::vector<double> weights;
  for (int i = 0; i < model_->num_factories(); ++i) {
    weights.push_back(model_->FactoryWeight(i));
  }
  std::sort(weights.begin(), weights.end());
  EXPECT_GT(weights.back(), 2.0 * weights[weights.size() / 2]);
}

TEST_F(DemandModelTest, NearbyDaysMoreSimilarThanDistantDays) {
  // Correlate per-factory day factors via rates: day 10 vs 11 should be
  // closer than day 10 vs 40 on average (AR(1) structure).
  auto day_vector = [&](int day) {
    std::vector<double> v;
    for (int i = 0; i < model_->num_factories(); ++i) {
      v.push_back(model_->Rate(i, 66, day));  // 11:00 interval.
    }
    return v;
  };
  auto l1 = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
    return s;
  };
  const auto d10 = day_vector(10);
  double near = 0.0;
  double far = 0.0;
  for (int off = 1; off <= 3; ++off) near += l1(d10, day_vector(10 + off));
  for (int off = 28; off <= 30; ++off) far += l1(d10, day_vector(10 + off));
  EXPECT_LT(near, far);
}

TEST_F(DemandModelTest, DeterministicAcrossInstances) {
  DemandModel other(*net_, 144, 99);
  EXPECT_DOUBLE_EQ(model_->Rate(3, 70, 5), other.Rate(3, 70, 5));
  EXPECT_DOUBLE_EQ(model_->TotalRate(12), other.TotalRate(12));
}

// -------------------------------------------------------------- OrderGen --

TEST(OrderGen, ProducesValidCanonicalOrders) {
  CampusConfig cc;
  const auto net = GenerateCampus(cc);
  DemandModel model(*net, 144, 5);
  OrderGenConfig config;
  config.mean_orders_per_day = 200.0;
  const std::vector<Order> orders =
      GenerateDayOrders(*net, model, config, 0, 144, kMinutesPerDay, 11);
  ASSERT_GT(orders.size(), 50u);
  double prev = -1.0;
  for (const Order& o : orders) {
    EXPECT_TRUE(ValidateOrder(o, net->num_nodes()).ok()) << o.DebugString();
    EXPECT_GE(o.create_time_min, prev);
    prev = o.create_time_min;
    EXPECT_GE(o.quantity, 1.0);
    EXPECT_LE(o.quantity, config.max_quantity);
    // Both endpoints are factories.
    EXPECT_GE(net->FactoryOrdinal(o.pickup_node), 0);
    EXPECT_GE(net->FactoryOrdinal(o.delivery_node), 0);
  }
}

TEST(OrderGen, CountScalesWithMean) {
  CampusConfig cc;
  const auto net = GenerateCampus(cc);
  DemandModel model(*net, 144, 5);
  OrderGenConfig small;
  small.mean_orders_per_day = 100.0;
  OrderGenConfig large;
  large.mean_orders_per_day = 600.0;
  const auto few =
      GenerateDayOrders(*net, model, small, 0, 144, kMinutesPerDay, 1);
  const auto many =
      GenerateDayOrders(*net, model, large, 0, 144, kMinutesPerDay, 1);
  EXPECT_NEAR(static_cast<double>(few.size()), 100.0, 35.0);
  EXPECT_NEAR(static_cast<double>(many.size()), 600.0, 90.0);
}

TEST(OrderGen, WindowsAreServiceable) {
  CampusConfig cc;
  const auto net = GenerateCampus(cc);
  DemandModel model(*net, 144, 5);
  OrderGenConfig config;
  for (const Order& o :
       GenerateDayOrders(*net, model, config, 2, 144, kMinutesPerDay, 3)) {
    const double direct = net->TravelTimeMinutes(
        o.pickup_node, o.delivery_node, config.speed_kmph);
    // Window leaves at least the direct drive plus service margins.
    EXPECT_GE(o.latest_time_min - o.create_time_min,
              direct + 2.0 * config.service_time_min - 1e-9);
  }
}

// --------------------------------------------------------------- Dataset --

TEST(Dataset, DayCachingIsStable) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const std::vector<Order>& a = dataset.Day(4);
  const std::vector<Order>& b = dataset.Day(4);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].create_time_min, b[0].create_time_min);
}

TEST(Dataset, StdMatrixMatchesDayOrders) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const nn::Matrix direct = BuildStdMatrix(
      *dataset.network(), dataset.Day(2), 144, kMinutesPerDay);
  EXPECT_TRUE(dataset.StdMatrixOfDay(2).AllClose(direct));
}

TEST(Dataset, HistoryReturnsPrecedingDays) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const auto history = dataset.History(5, 3);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_TRUE(history[2].AllClose(dataset.StdMatrixOfDay(4)));
  EXPECT_TRUE(history[0].AllClose(dataset.StdMatrixOfDay(2)));
}

TEST(Dataset, SampledInstanceIsValidAndSized) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const Instance inst = dataset.SampleInstance("s", 50, 10, 0, 4, 77);
  EXPECT_EQ(inst.num_orders(), 50);
  EXPECT_EQ(inst.num_vehicles(), 10);
  EXPECT_TRUE(ValidateInstance(inst).ok());
}

TEST(Dataset, SamplingIsSeedDeterministic) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const Instance a = dataset.SampleInstance("a", 30, 5, 0, 4, 5);
  const Instance b = dataset.SampleInstance("b", 30, 5, 0, 4, 5);
  const Instance c = dataset.SampleInstance("c", 30, 5, 0, 4, 6);
  ASSERT_EQ(a.num_orders(), b.num_orders());
  double same = 0.0;
  for (int i = 0; i < a.num_orders(); ++i) {
    EXPECT_DOUBLE_EQ(a.orders[i].create_time_min,
                     b.orders[i].create_time_min);
    same += (a.orders[i].create_time_min == c.orders[i].create_time_min);
  }
  EXPECT_LT(same, a.num_orders());  // Different seed -> different sample.
}

TEST(Dataset, FullDayInstanceUsesAllOrders) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const Instance inst = dataset.FullDayInstance("d", 6, 20);
  EXPECT_EQ(inst.num_orders(),
            static_cast<int>(dataset.Day(6).size()));
  EXPECT_TRUE(ValidateInstance(inst).ok());
}

TEST(Dataset, VehiclesSpreadAcrossDepots) {
  DpdpDataset dataset(StandardDatasetConfig(3, 120.0));
  const Instance inst = dataset.SampleInstance("s", 20, 4, 0, 1, 1);
  std::set<int> depots(inst.vehicle_depots.begin(),
                       inst.vehicle_depots.end());
  EXPECT_EQ(depots.size(), 2u);
}

}  // namespace
}  // namespace dpdp
