#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "routing/local_search.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

Stop P(const Instance& inst, int order) {
  return {inst.order(order).pickup_node, order, StopType::kPickup};
}
Stop D(const Instance& inst, int order) {
  return {inst.order(order).delivery_node, order, StopType::kDelivery};
}

TEST(LocalSearch, ImprovesDeliberatelyBadOrdering) {
  // Orders F1->F2 and F1->F2 again. A bad plan serves them as two separate
  // loops; reinsertion should nest them (saving a whole loop).
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 2000.0),
                        MakeOrder(1, 1, 2, 10.0, 0.0, 2000.0)});
  RoutePlanner planner(&inst);
  const PlanAnchor anchor{0, 0.0, {}};
  const std::vector<Stop> bad{P(inst, 0), D(inst, 0), P(inst, 1),
                              D(inst, 1)};
  // Bad: depot->F1->F2->F1->F2->depot = 10+10+10+10+20 = 60 km.
  const LocalSearchResult r =
      ImproveSuffixByReinsertion(planner, anchor, bad, 0);
  EXPECT_DOUBLE_EQ(r.initial_length, 60.0);
  // Nested: depot->F1->F1->F2->F2->depot = 40 km.
  EXPECT_DOUBLE_EQ(r.final_length, 40.0);
  EXPECT_GT(r.moves_applied, 0);
  EXPECT_DOUBLE_EQ(r.improvement(), 20.0);
  // The improved suffix re-validates.
  EXPECT_TRUE(planner.CheckSuffix(anchor, r.suffix, 0).ok());
}

TEST(LocalSearch, LeavesOptimalRouteAlone) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 2000.0)});
  RoutePlanner planner(&inst);
  const PlanAnchor anchor{0, 0.0, {}};
  const std::vector<Stop> route{P(inst, 0), D(inst, 0)};
  const LocalSearchResult r =
      ImproveSuffixByReinsertion(planner, anchor, route, 0);
  EXPECT_EQ(r.moves_applied, 0);
  EXPECT_DOUBLE_EQ(r.improvement(), 0.0);
  EXPECT_EQ(r.suffix.size(), 2u);
}

TEST(LocalSearch, DoesNotMoveOnboardOrders) {
  // Order 0 is onboard at the anchor (pickup committed); only its delivery
  // is in the suffix and must stay.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 2000.0),
                        MakeOrder(1, 3, 4, 10.0, 0.0, 2000.0)});
  RoutePlanner planner(&inst);
  const PlanAnchor anchor{1, 20.0, {0}};
  const std::vector<Stop> suffix{D(inst, 0), P(inst, 1), D(inst, 1)};
  const LocalSearchResult r =
      ImproveSuffixByReinsertion(planner, anchor, suffix, 0);
  // Delivery of order 0 must still appear exactly once.
  int deliveries_of_0 = 0;
  for (const Stop& s : r.suffix) {
    deliveries_of_0 +=
        (s.order_id == 0 && s.type == StopType::kDelivery) ? 1 : 0;
  }
  EXPECT_EQ(deliveries_of_0, 1);
  EXPECT_TRUE(planner.CheckSuffix(anchor, r.suffix, 0).ok());
}

TEST(LocalSearch, NeverIncreasesLength) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Order> orders;
    const int n = rng.UniformInt(2, 6);
    for (int i = 0; i < n; ++i) {
      int pickup = rng.UniformInt(1, 4);
      int delivery = rng.UniformInt(1, 4);
      while (delivery == pickup) delivery = rng.UniformInt(1, 4);
      orders.push_back(MakeOrder(i, pickup, delivery,
                                 rng.Uniform(5.0, 30.0), 0.0, 2000.0));
    }
    const Instance inst = MakeTestInstance(orders, 1);
    RoutePlanner planner(&inst);
    const PlanAnchor anchor{0, 0.0, {}};
    // Greedy-construct a route, then improve it.
    std::vector<Stop> route;
    for (int i = 0; i < n; ++i) {
      auto ins = planner.BestInsertion(anchor, route, 0, inst.order(i));
      if (ins.ok()) route = std::move(ins).value().suffix;
    }
    if (route.empty()) continue;
    const LocalSearchResult r =
        ImproveSuffixByReinsertion(planner, anchor, route, 0);
    EXPECT_LE(r.final_length, r.initial_length + 1e-9);
    EXPECT_TRUE(planner.CheckSuffix(anchor, r.suffix, 0).ok());
  }
}

TEST(LocalSearch, SimulatorIntegrationSavesDistance) {
  // Orders interleave so a greedy insertion order leaves slack for
  // improvement; with local search enabled the total cost can only drop.
  std::vector<Order> orders;
  Rng rng(5);
  for (int i = 0; i < 14; ++i) {
    int pickup = rng.UniformInt(1, 4);
    int delivery = rng.UniformInt(1, 4);
    while (delivery == pickup) delivery = rng.UniformInt(1, 4);
    const double t = 15.0 * i;
    orders.push_back(MakeOrder(i, pickup, delivery, 8.0, t, t + 400.0));
  }
  const Instance inst = MakeTestInstance(orders, 3);

  MinIncrementalLengthDispatcher b1;
  SimulatorConfig plain;
  Simulator sim_plain(&inst, plain);
  const EpisodeResult without = sim_plain.RunEpisode(&b1);

  SimulatorConfig with_ls;
  with_ls.local_search_passes = 3;
  Simulator sim_ls(&inst, with_ls);
  const EpisodeResult with = sim_ls.RunEpisode(&b1);

  EXPECT_TRUE(with.all_served());
  EXPECT_GE(with.local_search_km_saved, 0.0);
  EXPECT_DOUBLE_EQ(without.local_search_km_saved, 0.0);
}

}  // namespace
}  // namespace dpdp
