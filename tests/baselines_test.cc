#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

/// Hand-builds a DispatchContext with the given options.
DispatchContext MakeContext(std::vector<VehicleOption> options) {
  DispatchContext ctx;
  for (size_t i = 0; i < options.size(); ++i) {
    options[i].vehicle = static_cast<int>(i);
    if (options[i].feasible) ++ctx.num_feasible;
  }
  ctx.options = std::move(options);
  return ctx;
}

VehicleOption Opt(bool feasible, double incremental, double total,
                  int orders) {
  VehicleOption o;
  o.feasible = feasible;
  o.incremental_length = incremental;
  o.new_length = total;
  o.num_assigned_orders = orders;
  o.used = orders > 0;
  return o;
}

TEST(Baseline1, PicksSmallestIncrementalLength) {
  MinIncrementalLengthDispatcher d;
  auto ctx = MakeContext({Opt(true, 12.0, 50.0, 2), Opt(true, 5.0, 90.0, 1),
                          Opt(true, 8.0, 10.0, 0)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

TEST(Baseline1, SkipsInfeasibleEvenIfCheapest) {
  MinIncrementalLengthDispatcher d;
  auto ctx = MakeContext({Opt(false, 1.0, 5.0, 0), Opt(true, 9.0, 50.0, 1)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

TEST(Baseline1, TieBreaksByLowestIndex) {
  MinIncrementalLengthDispatcher d;
  auto ctx = MakeContext({Opt(true, 7.0, 30.0, 1), Opt(true, 7.0, 20.0, 2)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 0);
}

TEST(Baseline2, PicksSmallestTotalLength) {
  MinTotalLengthDispatcher d;
  auto ctx = MakeContext({Opt(true, 1.0, 80.0, 3), Opt(true, 40.0, 40.0, 0),
                          Opt(true, 10.0, 60.0, 1)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

TEST(Baseline3, PicksMostLoadedVehicle) {
  MaxAcceptedOrdersDispatcher d;
  auto ctx = MakeContext({Opt(true, 1.0, 10.0, 2), Opt(true, 9.0, 99.0, 5),
                          Opt(true, 2.0, 20.0, 4)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

TEST(Baseline3, TieBreaksByCheapestInsertion) {
  MaxAcceptedOrdersDispatcher d;
  auto ctx = MakeContext({Opt(true, 9.0, 10.0, 3), Opt(true, 2.0, 99.0, 3)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

TEST(Baseline3, IgnoresInfeasibleHeavyVehicle) {
  MaxAcceptedOrdersDispatcher d;
  auto ctx = MakeContext({Opt(false, 1.0, 10.0, 9), Opt(true, 5.0, 50.0, 1)});
  EXPECT_EQ(d.ChooseVehicle(ctx), 1);
}

// End-to-end character test: on a day where orders trickle in, baseline 2
// burns more vehicles than baseline 3 (the paper's Fig. 6/7 pattern).
TEST(Baselines, Fig6CharacterOnSyntheticDay) {
  std::vector<Order> orders;
  for (int i = 0; i < 12; ++i) {
    const int pickup = 1 + (i % 4);
    const int delivery = 1 + ((i + 1) % 4);
    const double t = 20.0 * i;
    orders.push_back(
        MakeOrder(i, pickup, delivery, 10.0, t, t + 150.0));
  }
  const Instance inst = MakeTestInstance(orders, /*num_vehicles=*/8);

  auto run = [&](Dispatcher* d) {
    Simulator sim(&inst);
    return sim.RunEpisode(d);
  };
  MinIncrementalLengthDispatcher b1;
  MinTotalLengthDispatcher b2;
  MaxAcceptedOrdersDispatcher b3;
  const EpisodeResult r1 = run(&b1);
  const EpisodeResult r2 = run(&b2);
  const EpisodeResult r3 = run(&b3);

  EXPECT_TRUE(r1.all_served());
  EXPECT_TRUE(r2.all_served());
  EXPECT_TRUE(r3.all_served());
  // Baseline 2 spreads across fresh vehicles; baseline 3 packs them.
  EXPECT_GE(r2.nuv, r3.nuv);
  // Baseline 1 never pays more total cost than baseline 2 here.
  EXPECT_LE(r1.total_cost, r2.total_cost + 1e-9);
}

}  // namespace
}  // namespace dpdp
