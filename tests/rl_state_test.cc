#include <gtest/gtest.h>

#include "rl/config.h"
#include "rl/replay.h"
#include "rl/state.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

DispatchContext MakeContext(const Instance* inst) {
  DispatchContext ctx;
  ctx.instance = inst;
  ctx.order = &inst->orders[0];
  ctx.now = 125.0;
  ctx.time_interval = 12;
  VehicleOption feasible;
  feasible.vehicle = 0;
  feasible.feasible = true;
  feasible.used = true;
  feasible.current_length = 25.0;
  feasible.new_length = 35.0;
  feasible.incremental_length = 10.0;
  feasible.st_score = 0.4;
  feasible.position = {3.0, 4.0};
  VehicleOption infeasible;
  infeasible.vehicle = 1;
  infeasible.feasible = false;
  infeasible.position = {1.0, 1.0};
  ctx.options = {feasible, infeasible};
  ctx.num_feasible = 1;
  return ctx;
}

TEST(FleetState, FeaturesNormalizedPerConfig) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 125.0, 400.0)});
  AgentConfig config;
  config.length_norm_km = 50.0;
  config.use_st_score = true;
  const DispatchContext ctx = MakeContext(&inst);
  const FleetState s = BuildFleetState(ctx, config);
  ASSERT_EQ(s.num_vehicles(), 2);
  EXPECT_DOUBLE_EQ(s.features(0, 0), 0.5);   // d / 50.
  EXPECT_DOUBLE_EQ(s.features(0, 1), 0.7);   // d' / 50.
  EXPECT_DOUBLE_EQ(s.features(0, 2), 0.4);   // ST Score.
  EXPECT_DOUBLE_EQ(s.features(0, 3), 1.0);   // Used flag.
  EXPECT_DOUBLE_EQ(s.features(0, 4), 12.0 / 144.0);
  EXPECT_DOUBLE_EQ(s.features(0, 5), 1.0);   // Delta d / 10.
  EXPECT_DOUBLE_EQ(s.positions(0, 0), 3.0);
}

TEST(FleetState, InfeasibleRowsCarrySentinels) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 125.0, 400.0)});
  const FleetState s = BuildFleetState(MakeContext(&inst), AgentConfig{});
  EXPECT_EQ(s.feasible[1], 0);
  for (int c = 0; c < kStateFeatures; ++c) {
    EXPECT_DOUBLE_EQ(s.features(1, c), -1.0);
  }
  EXPECT_EQ(s.NumFeasible(), 1);
  EXPECT_EQ(s.FeasibleIndices(), std::vector<int>{0});
  EXPECT_EQ(s.FeasibleFeatures().rows(), 1);
}

TEST(FleetState, StScoreZeroedWhenDisabled) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 5.0, 125.0, 400.0)});
  AgentConfig config;
  config.use_st_score = false;
  const FleetState s = BuildFleetState(MakeContext(&inst), config);
  EXPECT_DOUBLE_EQ(s.features(0, 2), 0.0);
}

// ------------------------------------------------------------- Adjacency --

TEST(Adjacency, SelfLoopsAlwaysPresent) {
  nn::Matrix pos(3, 2);
  const nn::Matrix adj = BuildNeighborAdjacency(pos, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(adj(i, i), 1.0);
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_DOUBLE_EQ(adj(i, j), 0.0);
    }
  }
}

TEST(Adjacency, PicksNearestNeighborsByEuclideanDistance) {
  // Vehicles on a line at x = 0, 1, 5, 6.
  nn::Matrix pos(4, 2);
  pos(1, 0) = 1.0;
  pos(2, 0) = 5.0;
  pos(3, 0) = 6.0;
  const nn::Matrix adj = BuildNeighborAdjacency(pos, 1);
  EXPECT_DOUBLE_EQ(adj(0, 1), 1.0);  // 0's nearest is 1.
  EXPECT_DOUBLE_EQ(adj(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(adj(2, 3), 1.0);  // 2's nearest is 3.
  EXPECT_DOUBLE_EQ(adj(3, 2), 1.0);
}

TEST(Adjacency, NeighborCountCapped) {
  Rng rng(5);
  nn::Matrix pos(10, 2);
  for (int i = 0; i < 10; ++i) {
    pos(i, 0) = rng.Uniform();
    pos(i, 1) = rng.Uniform();
  }
  const nn::Matrix adj = BuildNeighborAdjacency(pos, 3);
  for (int i = 0; i < 10; ++i) {
    double row = 0.0;
    for (int j = 0; j < 10; ++j) row += adj(i, j);
    EXPECT_DOUBLE_EQ(row, 4.0);  // Self + 3 neighbors.
  }
}

TEST(Adjacency, MoreNeighborsThanVehiclesIsFullyConnected) {
  nn::Matrix pos(3, 2);
  pos(1, 0) = 1.0;
  pos(2, 0) = 2.0;
  const nn::Matrix adj = BuildNeighborAdjacency(pos, 10);
  EXPECT_DOUBLE_EQ(adj.SumAll(), 9.0);
}

TEST(SubFleetInputs, GathersRowsAndBuildsAdjacency) {
  Rng rng(3);
  FleetState state;
  state.features = nn::Matrix(4, kStateFeatures);
  state.positions = nn::Matrix(4, 2);
  state.feasible = {1, 0, 1, 1};
  for (int v = 0; v < 4; ++v) {
    for (int c = 0; c < kStateFeatures; ++c) {
      state.features(v, c) = v * 10.0 + c;
    }
    state.positions(v, 0) = v * 1.0;
  }
  const std::vector<int> idx = state.FeasibleIndices();
  ASSERT_EQ(idx, (std::vector<int>{0, 2, 3}));

  const SubFleetInputs no_graph =
      BuildSubFleetInputs(state, idx, /*use_graph=*/false, 2);
  EXPECT_EQ(no_graph.features.rows(), 3);
  EXPECT_TRUE(no_graph.adjacency.empty());
  EXPECT_DOUBLE_EQ(no_graph.features(1, 0), 20.0);  // Row of vehicle 2.

  const SubFleetInputs graph =
      BuildSubFleetInputs(state, idx, /*use_graph=*/true, 1);
  EXPECT_EQ(graph.adjacency.rows(), 3);
  // Vehicle 2 (sub-row 1) is nearest to vehicle 3 (sub-row 2).
  EXPECT_DOUBLE_EQ(graph.adjacency(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(graph.adjacency(1, 1), 1.0);  // Self loop.
}

// ---------------------------------------------------------------- Replay --

FleetState RandomState(Rng* rng, int k) {
  FleetState s;
  s.features = nn::Matrix(k, kStateFeatures);
  s.positions = nn::Matrix(k, 2);
  s.feasible.assign(k, 0);
  for (int v = 0; v < k; ++v) {
    s.feasible[v] = rng->Bernoulli(0.7) ? 1 : 0;
    for (int c = 0; c < kStateFeatures; ++c) {
      s.features(v, c) = rng->Uniform();
    }
    s.positions(v, 0) = rng->Uniform();
    s.positions(v, 1) = rng->Uniform();
  }
  return s;
}

TEST(Replay, StoredStateRoundTrips) {
  Rng rng(9);
  const FleetState s = RandomState(&rng, 7);
  const FleetState back =
      StoredFleetState::FromFleetState(s).ToFleetState();
  EXPECT_EQ(back.feasible, s.feasible);
  EXPECT_TRUE(back.features.AllClose(s.features, 1e-6));  // Float storage.
  EXPECT_TRUE(back.positions.AllClose(s.positions, 1e-6));
}

TEST(Replay, RingBufferEvictsOldest) {
  ReplayBuffer buffer(3);
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.state = StoredFleetState::FromFleetState(RandomState(&rng, 2));
    t.action = i;
    buffer.Add(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 3);
  std::set<int> actions;
  for (int i = 0; i < buffer.size(); ++i) actions.insert(buffer.at(i).action);
  EXPECT_EQ(actions, (std::set<int>{2, 3, 4}));
}

TEST(Replay, SampleReturnsStoredPointers) {
  ReplayBuffer buffer(10);
  Rng rng(2);
  for (int i = 0; i < 4; ++i) {
    Transition t;
    t.state = StoredFleetState::FromFleetState(RandomState(&rng, 2));
    t.action = i;
    buffer.Add(std::move(t));
  }
  const auto batch = buffer.Sample(16, &rng);
  EXPECT_EQ(batch.size(), 16u);
  for (const Transition* t : batch) {
    EXPECT_GE(t->action, 0);
    EXPECT_LT(t->action, 4);
  }
}

TEST(Replay, EmptyStoredStateFlag) {
  StoredFleetState empty;
  EXPECT_TRUE(empty.empty());
  Rng rng(3);
  EXPECT_FALSE(
      StoredFleetState::FromFleetState(RandomState(&rng, 1)).empty());
}

}  // namespace
}  // namespace dpdp
