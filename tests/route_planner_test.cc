#include <gtest/gtest.h>

#include <vector>

#include "routing/route_planner.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

// The line network with 1 km/min speed and zero service time makes all
// schedule arithmetic exact: depot(0,0), F1(10,0), F2(20,0), F3(10,10),
// F4(0,10).

class RoutePlannerTest : public ::testing::Test {
 protected:
  PlanAnchor DepotAnchor(double time = 0.0) const {
    return PlanAnchor{0, time, {}};
  }

  Stop P(int order, const Instance& inst) const {
    return {inst.order(order).pickup_node, order, StopType::kPickup};
  }
  Stop D(int order, const Instance& inst) const {
    return {inst.order(order).delivery_node, order, StopType::kDelivery};
  }
};

TEST_F(RoutePlannerTest, SimplePickupDeliverySchedule) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 100.0)});
  RoutePlanner planner(&inst);
  const auto r = planner.CheckSuffix(DepotAnchor(),
                                     {P(0, inst), D(0, inst)}, 0);
  ASSERT_TRUE(r.ok());
  const SuffixSchedule& s = r.value();
  ASSERT_EQ(s.stops.size(), 2u);
  EXPECT_DOUBLE_EQ(s.stops[0].arrival, 10.0);        // depot -> F1: 10 km.
  EXPECT_DOUBLE_EQ(s.stops[0].service_start, 10.0);  // t_c = 0, no wait.
  EXPECT_DOUBLE_EQ(s.stops[1].arrival, 20.0);        // F1 -> F2: 10 km.
  EXPECT_DOUBLE_EQ(s.length, 10.0 + 10.0 + 20.0);    // ... + F2 -> depot.
  EXPECT_DOUBLE_EQ(s.completion_time, 40.0);
}

TEST_F(RoutePlannerTest, PickupWaitsForOrderCreation) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 50.0, 200.0)});
  RoutePlanner planner(&inst);
  const auto r = planner.CheckSuffix(DepotAnchor(0.0),
                                     {P(0, inst), D(0, inst)}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().stops[0].arrival, 10.0);
  EXPECT_DOUBLE_EQ(r.value().stops[0].service_start, 50.0);  // Waited.
  EXPECT_DOUBLE_EQ(r.value().stops[1].arrival, 60.0);
}

TEST_F(RoutePlannerTest, LateDeliveryIsInfeasible) {
  // Delivery needs 20 minutes driving; deadline at 15.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 15.0)});
  RoutePlanner planner(&inst);
  const auto r = planner.CheckSuffix(DepotAnchor(),
                                     {P(0, inst), D(0, inst)}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST_F(RoutePlannerTest, LifoRejectsFifoInterleaving) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0),
                        MakeOrder(1, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  // P0 P1 D0 D1 delivers the bottom of the stack first: LIFO violation.
  const auto fifo = planner.CheckSuffix(
      DepotAnchor(), {P(0, inst), P(1, inst), D(0, inst), D(1, inst)}, 0);
  EXPECT_FALSE(fifo.ok());
  // P0 P1 D1 D0 nests correctly.
  const auto lifo = planner.CheckSuffix(
      DepotAnchor(), {P(0, inst), P(1, inst), D(1, inst), D(0, inst)}, 0);
  EXPECT_TRUE(lifo.ok());
}

TEST_F(RoutePlannerTest, CapacityViolationDetected) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 60.0, 0.0, 500.0),
                        MakeOrder(1, 1, 2, 60.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  // Both onboard at once: 120 > 100.
  const auto r = planner.CheckSuffix(
      DepotAnchor(), {P(0, inst), P(1, inst), D(1, inst), D(0, inst)}, 0);
  EXPECT_FALSE(r.ok());
  // Sequential service fits.
  const auto seq = planner.CheckSuffix(
      DepotAnchor(), {P(0, inst), D(0, inst), P(1, inst), D(1, inst)}, 0);
  EXPECT_TRUE(seq.ok());
}

TEST_F(RoutePlannerTest, LeftoverCargoIsInfeasible) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  const auto r = planner.CheckSuffix(DepotAnchor(), {P(0, inst)}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST_F(RoutePlannerTest, AnchorOnboardMustBeDelivered) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  // Vehicle at F1 carrying order 0: delivering it is feasible...
  PlanAnchor anchor{1, 30.0, {0}};
  const auto ok = planner.CheckSuffix(anchor, {D(0, inst)}, 0);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().stops[0].arrival, 40.0);
  // ...but an empty suffix leaves it onboard.
  EXPECT_FALSE(planner.CheckSuffix(anchor, {}, 0).ok());
}

TEST_F(RoutePlannerTest, ResidualCapacityProfile) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 30.0, 0.0, 500.0),
                        MakeOrder(1, 2, 3, 20.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  const auto r = planner.CheckSuffix(
      DepotAnchor(),
      {P(0, inst), D(0, inst), P(1, inst), D(1, inst)}, 0);
  ASSERT_TRUE(r.ok());
  // Residual capacity on *arrival*: before any load, after dropping 30, ...
  const std::vector<double>& rc = r.value().residual_capacity;
  ASSERT_EQ(rc.size(), 4u);
  EXPECT_DOUBLE_EQ(rc[0], 100.0);
  EXPECT_DOUBLE_EQ(rc[1], 70.0);
  EXPECT_DOUBLE_EQ(rc[2], 100.0);
  EXPECT_DOUBLE_EQ(rc[3], 80.0);
}

TEST_F(RoutePlannerTest, SuffixLengthIncludesReturnLeg) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  EXPECT_DOUBLE_EQ(planner.SuffixLength(DepotAnchor(), {}, 0), 0.0);
  EXPECT_DOUBLE_EQ(
      planner.SuffixLength(DepotAnchor(), {P(0, inst), D(0, inst)}, 0),
      40.0);
  // Idle at F2: return leg only.
  EXPECT_DOUBLE_EQ(planner.SuffixLength(PlanAnchor{2, 0.0, {}}, {}, 0),
                   20.0);
}

TEST_F(RoutePlannerTest, BestInsertionIntoEmptyRoute) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  const auto r =
      planner.BestInsertion(DepotAnchor(), {}, 0, inst.order(0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().pickup_pos, 0);
  EXPECT_EQ(r.value().delivery_pos, 1);
  EXPECT_EQ(r.value().suffix.size(), 2u);
  EXPECT_DOUBLE_EQ(r.value().incremental_length, 40.0);
  EXPECT_EQ(planner.last_candidates_evaluated(), 1);
}

TEST_F(RoutePlannerTest, BestInsertionPrefersHitchhiking) {
  // Existing route serves F1 -> F2. A second F1 -> F2 order should nest
  // inside it (zero extra distance) rather than append a second loop.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0),
                        MakeOrder(1, 1, 2, 10.0, 0.0, 500.0)});
  RoutePlanner planner(&inst);
  const std::vector<Stop> existing{P(0, inst), D(0, inst)};
  const auto r =
      planner.BestInsertion(DepotAnchor(), existing, 0, inst.order(1));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().incremental_length, 0.0, 1e-9);
  EXPECT_EQ(r.value().suffix.size(), 4u);
}

TEST_F(RoutePlannerTest, BestInsertionRespectsDeadlinePressure) {
  // Order 1 has a tight deadline; inserting its delivery after order 0's
  // detour would be late, so the planner must route it first.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 3, 4, 10.0, 0.0, 1000.0),
                        MakeOrder(1, 1, 2, 10.0, 0.0, 25.0)});
  RoutePlanner planner(&inst);
  const std::vector<Stop> existing{P(0, inst), D(0, inst)};
  const auto r =
      planner.BestInsertion(DepotAnchor(), existing, 0, inst.order(1));
  ASSERT_TRUE(r.ok());
  // Pickup and delivery of order 1 must come before order 0's stops.
  EXPECT_EQ(r.value().pickup_pos, 0);
  EXPECT_EQ(r.value().delivery_pos, 1);
}

TEST_F(RoutePlannerTest, BestInsertionInfeasibleWhenNoPlacementWorks) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 5.0)});
  RoutePlanner planner(&inst);
  const auto r =
      planner.BestInsertion(DepotAnchor(), {}, 0, inst.order(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST_F(RoutePlannerTest, CandidateCountIsQuadratic) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 1.0, 0.0, 5000.0),
                        MakeOrder(1, 1, 2, 1.0, 0.0, 5000.0),
                        MakeOrder(2, 3, 4, 1.0, 0.0, 5000.0)});
  RoutePlanner planner(&inst);
  const std::vector<Stop> existing{P(0, inst), D(0, inst), P(1, inst),
                                   D(1, inst)};
  (void)planner.BestInsertion(DepotAnchor(), existing, 0, inst.order(2));
  // n = 4 old stops: (n+1)(n+2)/2 = 15 candidate placements.
  EXPECT_EQ(planner.last_candidates_evaluated(), 15);
}

// --------------------------------------------------- Property sweeps ------

struct SweepParam {
  uint64_t seed;
  int num_existing_orders;
};

class InsertionPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InsertionPropertyTest, BestInsertionInvariants) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);

  // Random orders among the four factories with generous windows.
  std::vector<Order> orders;
  const int total = param.num_existing_orders + 1;
  for (int i = 0; i < total; ++i) {
    int pickup = rng.UniformInt(1, 4);
    int delivery = rng.UniformInt(1, 4);
    while (delivery == pickup) delivery = rng.UniformInt(1, 4);
    orders.push_back(MakeOrder(i, pickup, delivery,
                               rng.Uniform(5.0, 40.0), rng.Uniform(0, 200),
                               rng.Uniform(400, 1200)));
  }
  Instance inst = MakeTestInstance(orders, 1);

  // Build an existing route by repeated best insertion.
  RoutePlanner planner(&inst);
  const PlanAnchor anchor{0, 0.0, {}};
  std::vector<Stop> route;
  for (int i = 0; i < param.num_existing_orders; ++i) {
    auto r = planner.BestInsertion(anchor, route, 0, inst.order(i));
    if (!r.ok()) continue;  // Skip orders that cannot fit.
    route = std::move(r).value().suffix;
  }

  const Order& new_order = inst.order(total - 1);
  const double old_length = planner.SuffixLength(anchor, route, 0);
  auto r = planner.BestInsertion(anchor, route, 0, new_order);
  if (!r.ok()) return;  // Infeasibility is a legal outcome.
  const Insertion& ins = r.value();

  // Invariant 1: the returned suffix re-validates.
  const auto recheck = planner.CheckSuffix(anchor, ins.suffix, 0);
  ASSERT_TRUE(recheck.ok());
  EXPECT_NEAR(recheck.value().length, ins.schedule.length, 1e-9);

  // Invariant 2: exactly two stops added, pickup before delivery.
  EXPECT_EQ(ins.suffix.size(), route.size() + 2);
  EXPECT_LT(ins.pickup_pos, ins.delivery_pos);
  EXPECT_EQ(ins.suffix[ins.pickup_pos].order_id, new_order.id);
  EXPECT_EQ(ins.suffix[ins.delivery_pos].order_id, new_order.id);

  // Invariant 3: with metric (Euclidean) distances a detour cannot shorten
  // the route.
  EXPECT_GE(ins.incremental_length, -1e-9);
  EXPECT_NEAR(ins.incremental_length, ins.schedule.length - old_length,
              1e-9);

  // Invariant 4: schedule times are monotone along the route.
  for (size_t s = 0; s < ins.schedule.stops.size(); ++s) {
    const StopSchedule& st = ins.schedule.stops[s];
    EXPECT_LE(st.arrival, st.service_start + 1e-9);
    EXPECT_LE(st.service_start, st.departure + 1e-9);
    if (s > 0) {
      EXPECT_LE(ins.schedule.stops[s - 1].departure, st.arrival + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, InsertionPropertyTest,
    ::testing::Values(SweepParam{1, 0}, SweepParam{2, 1}, SweepParam{3, 2},
                      SweepParam{4, 3}, SweepParam{5, 4}, SweepParam{6, 5},
                      SweepParam{7, 6}, SweepParam{8, 8}, SweepParam{9, 10},
                      SweepParam{10, 12}, SweepParam{11, 3},
                      SweepParam{12, 5}, SweepParam{13, 7},
                      SweepParam{14, 9}, SweepParam{15, 11}));

}  // namespace
}  // namespace dpdp
