#include <gtest/gtest.h>

#include "rl/config.h"
#include "rl/q_network.h"
#include "rl/state.h"
#include "util/rng.h"

namespace dpdp {
namespace {

nn::Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  nn::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}

nn::Matrix RingAdjacency(int n) {
  nn::Matrix adj(n, n);
  for (int i = 0; i < n; ++i) {
    adj(i, i) = 1.0;
    adj(i, (i + 1) % n) = 1.0;
  }
  return adj;
}

AgentConfig SmallConfig(bool graph) {
  AgentConfig c;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.attention_levels = 2;
  c.use_graph = graph;
  c.seed = 3;
  return c;
}

/// Scores one item through a fresh one-item DecisionBatch and copies the Q
/// column out (the reference stays valid only until the next evaluation).
std::vector<double> EvalOne(FleetQNetwork* net, const nn::Matrix& features,
                            const nn::Matrix& adjacency = nn::Matrix()) {
  DecisionBatch batch;
  batch.Add(features, adjacency);
  const nn::Matrix& q = net->EvaluateBatch(batch);
  std::vector<double> out(static_cast<size_t>(q.rows()));
  for (int i = 0; i < q.rows(); ++i) out[i] = q(i, 0);
  return out;
}

/// One-hot (or arbitrary) dq vector as the (rows x 1) column BackwardBatch
/// expects.
nn::Matrix DqColumn(const std::vector<double>& dq) {
  nn::Matrix col(static_cast<int>(dq.size()), 1);
  for (size_t i = 0; i < dq.size(); ++i) {
    col(static_cast<int>(i), 0) = dq[i];
  }
  return col;
}

TEST(MlpQNetwork, OneQPerVehicle) {
  Rng rng(1);
  MlpQNetwork net(SmallConfig(false), &rng);
  const auto q = EvalOne(&net, RandomMatrix(5, kStateFeatures, &rng));
  EXPECT_EQ(q.size(), 5u);
}

TEST(MlpQNetwork, RowsAreIndependent) {
  // Shared per-vehicle weights: permuting input rows permutes outputs.
  Rng rng(2);
  MlpQNetwork net(SmallConfig(false), &rng);
  nn::Matrix x = RandomMatrix(3, kStateFeatures, &rng);
  const auto q1 = EvalOne(&net, x);
  nn::Matrix swapped = x;
  for (int c = 0; c < kStateFeatures; ++c) {
    std::swap(swapped(0, c), swapped(2, c));
  }
  const auto q2 = EvalOne(&net, swapped);
  EXPECT_NEAR(q1[0], q2[2], 1e-12);
  EXPECT_NEAR(q1[2], q2[0], 1e-12);
  EXPECT_NEAR(q1[1], q2[1], 1e-12);
}

TEST(GraphQNetwork, OutputDependsOnNeighbors) {
  Rng rng(3);
  GraphQNetwork net(SmallConfig(true), &rng);
  nn::Matrix x = RandomMatrix(4, kStateFeatures, &rng);
  const nn::Matrix adj = RingAdjacency(4);
  const auto q1 = EvalOne(&net, x, adj);
  // Perturb vehicle 1 (a neighbor of vehicle 0 in the ring).
  for (int c = 0; c < kStateFeatures; ++c) x(1, c) += 1.0;
  const auto q2 = EvalOne(&net, x, adj);
  EXPECT_NE(q1[0], q2[0]);  // Relational: neighbor's state matters.
}

TEST(GraphQNetwork, NonNeighborsDoNotInfluence) {
  Rng rng(4);
  GraphQNetwork net(SmallConfig(true), &rng);
  nn::Matrix x = RandomMatrix(4, kStateFeatures, &rng);
  // Ring adjacency: i attends {i, i+1}, so with 2 stacked levels vehicle
  // 0's receptive field is {0, 1, 2}. Vehicle 3 is outside it.
  const nn::Matrix adj = RingAdjacency(4);
  const auto q1 = EvalOne(&net, x, adj);
  for (int c = 0; c < kStateFeatures; ++c) x(3, c) += 5.0;
  const auto q2 = EvalOne(&net, x, adj);
  EXPECT_NEAR(q1[0], q2[0], 1e-12);
  EXPECT_NE(q1[2], q2[2]);  // 2 attends 3 directly.
}

TEST(GraphQNetwork, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  AgentConfig config = SmallConfig(true);
  GraphQNetwork net(config, &rng);
  const nn::Matrix x = RandomMatrix(4, kStateFeatures, &rng, 0.5);
  const nn::Matrix adj = RingAdjacency(4);

  // Loss = q[1] (single-action gradient as used in DQN training).
  const int target_row = 1;
  auto loss = [&] { return EvalOne(&net, x, adj)[target_row]; };

  // The batch fed to the forward pass that precedes BackwardBatch must
  // outlive the backward: the attention levels reference its adjacency
  // mask and row spans instead of copying them.
  DecisionBatch batch;
  batch.Add(x, adj);
  (void)net.EvaluateBatch(batch);
  net.BackwardBatch(DqColumn({0.0, 1.0, 0.0, 0.0}));

  const double eps = 1e-6;
  int checked = 0;
  for (nn::Parameter* p : net.Params()) {
    for (int r = 0; r < p->value.rows() && checked < 400; ++r) {
      for (int c = 0; c < p->value.cols() && checked < 400; ++c) {
        const double saved = p->value(r, c);
        p->value(r, c) = saved + eps;
        const double lp = loss();
        p->value(r, c) = saved - eps;
        const double lm = loss();
        p->value(r, c) = saved;
        EXPECT_NEAR(p->grad(r, c), (lp - lm) / (2.0 * eps), 2e-5);
        ++checked;
      }
    }
    // Reset accumulated grads between parameters is unnecessary: we
    // compare against the single accumulated backward pass.
  }
  EXPECT_GT(checked, 100);
}

TEST(MlpQNetwork, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  MlpQNetwork net(SmallConfig(false), &rng);
  const nn::Matrix x = RandomMatrix(3, kStateFeatures, &rng, 0.5);
  auto loss = [&] { return EvalOne(&net, x)[2]; };
  (void)loss();
  net.BackwardBatch(DqColumn({0.0, 0.0, 1.0}));
  const double eps = 1e-6;
  for (nn::Parameter* p : net.Params()) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double saved = p->value(r, c);
        p->value(r, c) = saved + eps;
        const double lp = loss();
        p->value(r, c) = saved - eps;
        const double lm = loss();
        p->value(r, c) = saved;
        EXPECT_NEAR(p->grad(r, c), (lp - lm) / (2.0 * eps), 1e-5);
      }
    }
  }
}

TEST(MlpQNetwork, EvaluateBatchBitEqualToOneItemBatches) {
  // The batched pass stacks items into one matrix; with shared per-vehicle
  // weights and one-dot-per-element GEMM kernels, every Q must come out
  // bit-identical to evaluating each item through its own one-item batch
  // (which is what a single local agent's decision path does).
  Rng rng(20);
  MlpQNetwork net(SmallConfig(false), &rng);
  std::vector<nn::Matrix> items;
  DecisionBatch batch;
  for (int m : {3, 1, 5, 4}) {
    items.push_back(RandomMatrix(m, kStateFeatures, &rng));
    batch.Add(items.back());
  }
  const nn::Matrix q = net.EvaluateBatch(batch);  // Copy: net reuses buffers.
  ASSERT_EQ(q.rows(), batch.total_rows());
  ASSERT_EQ(q.cols(), 1);
  for (size_t i = 0; i < items.size(); ++i) {
    const std::vector<double> qi = EvalOne(&net, items[i]);
    const int off = batch.offset(static_cast<int>(i));
    ASSERT_EQ(static_cast<int>(qi.size()), items[i].rows());
    for (size_t r = 0; r < qi.size(); ++r) {
      EXPECT_EQ(q(off + static_cast<int>(r), 0), qi[r])
          << "item " << i << " row " << r;
    }
  }
}

TEST(GraphQNetwork, EvaluateBatchBitEqualToOneItemBatches) {
  // Relational variant: the block-diagonal mask plus per-row attention
  // spans must keep each item's softmax walk identical to the single-item
  // walk, so batching changes no bits.
  Rng rng(21);
  GraphQNetwork net(SmallConfig(true), &rng);
  std::vector<nn::Matrix> items;
  std::vector<nn::Matrix> adjs;
  DecisionBatch batch;
  for (int m : {4, 1, 6, 3}) {
    items.push_back(RandomMatrix(m, kStateFeatures, &rng));
    adjs.push_back(RingAdjacency(m));
    batch.Add(items.back(), adjs.back());
  }
  const nn::Matrix q = net.EvaluateBatch(batch);  // Copy: net reuses buffers.
  ASSERT_EQ(q.rows(), batch.total_rows());
  for (size_t i = 0; i < items.size(); ++i) {
    const std::vector<double> qi = EvalOne(&net, items[i], adjs[i]);
    const int off = batch.offset(static_cast<int>(i));
    for (size_t r = 0; r < qi.size(); ++r) {
      EXPECT_EQ(q(off + static_cast<int>(r), 0), qi[r])
          << "item " << i << " row " << r;
    }
  }
}

TEST(DecisionBatch, ClearRetainsCapacityAndResetsShape) {
  Rng rng(22);
  DecisionBatch batch;
  batch.Add(RandomMatrix(3, kStateFeatures, &rng), RingAdjacency(3));
  batch.Add(RandomMatrix(2, kStateFeatures, &rng), RingAdjacency(2));
  EXPECT_EQ(batch.num_items(), 2);
  EXPECT_EQ(batch.total_rows(), 5);
  EXPECT_EQ(batch.offset(1), 3);
  EXPECT_EQ(batch.rows(1), 2);
  EXPECT_EQ(batch.row_spans().size(), 5u);
  EXPECT_EQ(batch.row_spans()[3], (std::pair<int, int>{3, 5}));
  const nn::Matrix& adj = batch.adjacency();
  EXPECT_EQ(adj.rows(), 5);
  EXPECT_DOUBLE_EQ(adj(0, 3), 0.0);  // Cross-block entries stay zero.
  EXPECT_DOUBLE_EQ(adj(3, 3), 1.0);
  batch.Clear();
  EXPECT_EQ(batch.num_items(), 0);
  EXPECT_EQ(batch.total_rows(), 0);
  EXPECT_TRUE(batch.row_spans().empty());
}

TEST(MakeQNetwork, SelectsVariantByConfig) {
  Rng rng(7);
  auto mlp = MakeQNetwork(SmallConfig(false), &rng);
  auto graph = MakeQNetwork(SmallConfig(true), &rng);
  EXPECT_NE(dynamic_cast<MlpQNetwork*>(mlp.get()), nullptr);
  EXPECT_NE(dynamic_cast<GraphQNetwork*>(graph.get()), nullptr);
}

TEST(GraphQNetwork, ParameterCountMatchesArchitecture) {
  Rng rng(8);
  AgentConfig c = SmallConfig(true);
  GraphQNetwork net(c, &rng);
  // Encoder: 2 Linear layers -> 4 params. Attention x2 levels: 4 Linear
  // each -> 16. Head: 2 Linear -> 4. Total 24.
  EXPECT_EQ(net.Params().size(), 24u);
}

TEST(GraphQNetwork, SingleVehicleFleetWorks) {
  Rng rng(9);
  GraphQNetwork net(SmallConfig(true), &rng);
  const auto q = EvalOne(&net, RandomMatrix(1, kStateFeatures, &rng),
                         nn::Matrix(1, 1, 1.0));
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace dpdp
