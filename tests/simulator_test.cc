#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

std::vector<Order> SmallDay() {
  return {MakeOrder(0, 1, 2, 10.0, 10.0, 400.0),
          MakeOrder(1, 3, 4, 20.0, 30.0, 400.0),
          MakeOrder(2, 2, 3, 15.0, 60.0, 500.0),
          MakeOrder(3, 1, 4, 5.0, 90.0, 600.0)};
}

TEST(Simulator, ServesAllOrdersWithBaseline) {
  const Instance inst = MakeTestInstance(SmallDay(), /*num_vehicles=*/3);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_EQ(r.num_orders, 4);
  EXPECT_EQ(r.num_served, 4);
  EXPECT_EQ(r.num_unserved, 0);
  EXPECT_TRUE(r.all_served());
  EXPECT_GE(r.nuv, 1.0);
  EXPECT_LE(r.nuv, 3.0);
}

TEST(Simulator, TotalCostFormula) {
  const Instance inst = MakeTestInstance(SmallDay(), 3);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_NEAR(r.total_cost,
              inst.vehicle_config.fixed_cost * r.nuv +
                  inst.vehicle_config.cost_per_km * r.total_travel_length,
              1e-9);
  EXPECT_GT(r.total_travel_length, 0.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Instance inst = MakeTestInstance(SmallDay(), 3);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult a = sim.RunEpisode(&baseline);
  const EpisodeResult b = sim.RunEpisode(&baseline);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.nuv, b.nuv);
  EXPECT_DOUBLE_EQ(a.total_travel_length, b.total_travel_length);
}

TEST(Simulator, SingleOrderCostIsExact) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 400.0)}, 1);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_DOUBLE_EQ(r.nuv, 1.0);
  EXPECT_DOUBLE_EQ(r.total_travel_length, 40.0);  // 10 + 10 + 20 back.
  EXPECT_DOUBLE_EQ(r.total_cost, 300.0 + 2.0 * 40.0);
}

TEST(Simulator, ImpossibleOrderCountsUnserved) {
  // Deadline earlier than any possible arrival.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 12.0),
                        MakeOrder(1, 1, 2, 10.0, 20.0, 400.0)},
                       2);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_EQ(r.num_unserved, 1);
  EXPECT_EQ(r.num_served, 1);
  EXPECT_FALSE(r.all_served());
}

TEST(Simulator, NoInterferenceWithCommittedStop) {
  // Order 0 sends the vehicle depot -> F1 -> F2. Order 1 (created while
  // the vehicle drives toward F1) picks up at F3. The committed leg to F1
  // must not change: the vehicle's final route still visits F1 first.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 400.0),
                        MakeOrder(1, 3, 4, 10.0, 5.0, 400.0)},
                       1);
  SimulatorConfig config;
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_EQ(r.num_served, 2);
}

TEST(Simulator, CapacityDistributionMatchesVisits) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 400.0)}, 1);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  (void)sim.RunEpisode(&baseline);
  const nn::Matrix cap = sim.LastCapacityDistribution();
  EXPECT_EQ(cap.rows(), 4);
  EXPECT_EQ(cap.cols(), 144);
  // Visit 1: F1 (ordinal 0) at minute 10, residual 100. Visit 2: F2
  // (ordinal 1) at minute 20, residual 90.
  EXPECT_DOUBLE_EQ(cap(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(cap(1, 2), 90.0);
  EXPECT_DOUBLE_EQ(cap.SumAll(), 190.0);
}

TEST(Simulator, StScoreExposedWhenStdProvided) {
  const Instance inst = MakeTestInstance(SmallDay(), 2);

  class Recorder : public Dispatcher {
   public:
    const char* name() const override { return "recorder"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      for (const VehicleOption& opt : ctx.options) {
        if (opt.feasible) {
          last_st_score = opt.st_score;
          return opt.vehicle;
        }
      }
      return -1;
    }
    double last_st_score = -1.0;
  };

  // Without a predicted STD, scores are 0.
  {
    Simulator sim(&inst);
    Recorder rec;
    (void)sim.RunEpisode(&rec);
    EXPECT_DOUBLE_EQ(rec.last_st_score, 0.0);
  }
  // With a skewed STD, scores are positive.
  {
    SimulatorConfig config;
    config.predicted_std = nn::Matrix(4, 144, 0.0);
    config.predicted_std(0, 0) = 100.0;
    Simulator sim(&inst, config);
    Recorder rec;
    (void)sim.RunEpisode(&rec);
    EXPECT_GT(rec.last_st_score, 0.0);
  }
}

TEST(Simulator, ContextReportsFeasibilityAndInterval) {
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 125.0, 500.0)}, 2);

  class Checker : public Dispatcher {
   public:
    const char* name() const override { return "checker"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      EXPECT_EQ(ctx.time_interval, 12);  // Minute 125 -> interval 12.
      EXPECT_EQ(ctx.options.size(), 2u);
      EXPECT_EQ(ctx.num_feasible, 2);
      for (const VehicleOption& opt : ctx.options) {
        EXPECT_TRUE(opt.feasible);
        EXPECT_FALSE(opt.used);
        EXPECT_DOUBLE_EQ(opt.current_length, 0.0);
        EXPECT_DOUBLE_EQ(opt.new_length, 40.0);
        EXPECT_DOUBLE_EQ(opt.incremental_length, 40.0);
      }
      return 0;
    }
  };
  Simulator sim(&inst);
  Checker checker;
  (void)sim.RunEpisode(&checker);
}

TEST(Simulator, FleetResetBetweenEpisodes) {
  const Instance inst = MakeTestInstance(SmallDay(), 3);
  Simulator sim(&inst);
  MaxAcceptedOrdersDispatcher baseline;
  const EpisodeResult a = sim.RunEpisode(&baseline);
  // Second run must not inherit used vehicles or routes.
  const EpisodeResult b = sim.RunEpisode(&baseline);
  EXPECT_DOUBLE_EQ(a.nuv, b.nuv);
  EXPECT_DOUBLE_EQ(a.total_travel_length, b.total_travel_length);
}

TEST(Simulator, RecordsOrderAssignmentAndRoutes) {
  const Instance inst = MakeTestInstance(SmallDay(), 3);
  SimulatorConfig config;
  config.record_plan = true;
  Simulator sim(&inst, config);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  ASSERT_EQ(r.order_assignment.size(), 4u);
  ASSERT_EQ(r.routes.size(), 3u);
  // Every served order appears exactly once as pickup and once as
  // delivery in its assigned vehicle's route (OA consistent with RP).
  for (int o = 0; o < r.num_orders; ++o) {
    const int v = r.order_assignment[o];
    ASSERT_GE(v, 0);
    int pickups = 0;
    int deliveries = 0;
    for (const Stop& s : r.routes[v]) {
      if (s.order_id != o) continue;
      pickups += (s.type == StopType::kPickup);
      deliveries += (s.type == StopType::kDelivery);
    }
    EXPECT_EQ(pickups, 1) << "order " << o;
    EXPECT_EQ(deliveries, 1) << "order " << o;
  }
  // Unused vehicles have empty routes.
  for (size_t v = 0; v < r.routes.size(); ++v) {
    if (r.routes[v].empty()) continue;
    bool assigned = false;
    for (int o = 0; o < r.num_orders; ++o) {
      assigned |= (r.order_assignment[o] == static_cast<int>(v));
    }
    EXPECT_TRUE(assigned);
  }
  // The independent brute-force oracle agrees that every executed route
  // satisfies LIFO, capacity and time-window constraints.
  EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(inst, r));
}

TEST(Simulator, PlanNotRecordedByDefault) {
  const Instance inst = MakeTestInstance(SmallDay(), 3);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);
  EXPECT_TRUE(r.order_assignment.empty());
  EXPECT_TRUE(r.routes.empty());
}

// ------------------------- randomized consistency sweep -------------------

class SimulatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorPropertyTest, MetricsConsistentOnRandomInstances) {
  Rng rng(GetParam());
  std::vector<Order> orders;
  const int n = rng.UniformInt(3, 12);
  for (int i = 0; i < n; ++i) {
    int pickup = rng.UniformInt(1, 4);
    int delivery = rng.UniformInt(1, 4);
    while (delivery == pickup) delivery = rng.UniformInt(1, 4);
    const double t = rng.Uniform(0.0, 600.0);
    orders.push_back(MakeOrder(i, pickup, delivery, rng.Uniform(1.0, 50.0),
                               t, t + rng.Uniform(60.0, 400.0)));
  }
  const Instance inst = MakeTestInstance(orders, rng.UniformInt(1, 4));
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher baseline;
  const EpisodeResult r = sim.RunEpisode(&baseline);

  EXPECT_EQ(r.num_served + r.num_unserved, r.num_orders);
  EXPECT_LE(r.nuv, inst.num_vehicles());
  EXPECT_NEAR(r.total_cost,
              300.0 * r.nuv + 2.0 * r.total_travel_length, 1e-9);
  if (r.num_served > 0) {
    EXPECT_GT(r.nuv, 0.0);
    EXPECT_GT(r.total_travel_length, 0.0);
  }
  // Travel length can never be less than the incremental lengths summed
  // (greedy insertions relocate nothing).
  EXPECT_GE(r.total_travel_length + 1e-6, r.sum_incremental_length);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SimulatorPropertyTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace dpdp
