// Fault-tolerance suite for the serving fabric: the seeded ChaosPolicy
// schedule, per-request deadlines (expired-at-push, expiry-while-queued,
// and the accounting reconciliation against local-agent degraded counts),
// closed-queue shed/reroute accounting, the ShardSupervisor recovery loop
// (crash -> breaker-gated restart -> partition restored), checkpoint
// quarantine, and a randomized kill/restart soak asserting the fabric's
// one absolute: no client promise is ever lost. Runs under TSan in CI.
//
// Determinism discipline: chaos is a pure function of (seed, shard, tick),
// so the tests that need a specific fault (one crash, then a clean runway)
// SEARCH the seed space for a schedule with exactly that shape instead of
// sleeping and hoping — the found seed replays identically on every run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/greedy_baselines.h"
#include "obs/metrics.h"
#include "rl/checkpoint.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "serve/chaos.h"
#include "serve/circuit_breaker.h"
#include "serve/dispatch_service.h"
#include "serve/model_server.h"
#include "serve/service_dispatcher.h"
#include "serve/shard_router.h"
#include "serve/shard_supervisor.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

namespace fs = std::filesystem;
using dpdp::testing::MakeOrder;
using dpdp::testing::MakeTestInstance;

// ---------------------------------------------------------------------------
// Shared fixtures (mirrors serve_test.cc / sharded_serve_test.cc)
// ---------------------------------------------------------------------------

/// A day with enough demand to exercise many decisions on the line network.
std::vector<Order> BusyOrders(int n) {
  std::vector<Order> orders;
  for (int i = 0; i < n; ++i) {
    const int pickup = 1 + (i % 2);    // F1 / F2
    const int delivery = 3 + (i % 2);  // F3 / F4
    orders.push_back(MakeOrder(i, pickup, delivery, 5.0 + (i % 3),
                               10.0 * i, 600.0 + 10.0 * i));
  }
  return orders;
}

/// A hand-built decision context (no simulator) for request-level tests.
/// Vehicle v's incremental length is 3 + v, so the greedy fallback picks 0.
struct FixedContext {
  explicit FixedContext(const Instance* inst, int num_vehicles = 4) {
    context.instance = inst;
    context.order = &inst->orders[0];
    context.now = 100.0;
    context.time_interval = 10;
    context.options.resize(num_vehicles);
    for (int v = 0; v < num_vehicles; ++v) {
      VehicleOption& opt = context.options[v];
      opt.vehicle = v;
      opt.feasible = true;
      opt.used = (v % 2) != 0;
      opt.num_assigned_orders = v;
      opt.current_length = 5.0 + v;
      opt.new_length = 8.0 + 2.0 * v;
      opt.incremental_length = 3.0 + v;
      opt.st_score = 0.0;
      opt.position = {static_cast<double>(v), 0.0};
    }
    context.num_feasible = num_vehicles;
  }
  DispatchContext context;
};

/// Plan equality EXCLUDING num_degraded_decisions: the deadline
/// reconciliation compares a served episode (fallback applied inside the
/// service, so the simulator never sees a degraded choice) against a local
/// episode where the simulator itself degraded every decision — same
/// plans, different bookkeeping, and the bookkeeping is asserted
/// separately.
void ExpectSamePlan(const EpisodeResult& a, const EpisodeResult& b) {
  EXPECT_EQ(a.num_orders, b.num_orders);
  EXPECT_EQ(a.num_served, b.num_served);
  EXPECT_EQ(a.num_unserved, b.num_unserved);
  EXPECT_EQ(a.num_decisions, b.num_decisions);
  EXPECT_EQ(a.nuv, b.nuv);
  EXPECT_EQ(a.total_travel_length, b.total_travel_length);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.sum_incremental_length, b.sum_incremental_length);
  EXPECT_EQ(a.order_assignment, b.order_assignment);
}

/// The decision a local evaluation-mode agent with `config` makes on `ctx`.
int LocalChoice(const AgentConfig& config, const DispatchContext& ctx) {
  DqnFleetAgent agent(config, "expected");
  return agent.ChooseVehicle(ctx);
}

/// Unique scratch directory under the system temp dir.
fs::path MakeScratchDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dpdp_chaos_test_" + tag + "_" +
       std::to_string(static_cast<uint64_t>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Current value of a registry counter (0 when it does not exist yet).
double RegistryCounter(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name &&
        snap.kind == obs::MetricSnapshot::Kind::kCounter) {
      return snap.value;
    }
  }
  return 0.0;
}

/// Current value of a registry gauge (-1 when it does not exist yet).
double RegistryGauge(const std::string& name) {
  for (const obs::MetricSnapshot& snap :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (snap.name == name && snap.kind == obs::MetricSnapshot::Kind::kGauge) {
      return snap.value;
    }
  }
  return -1.0;
}

/// Scans chaos seeds for a schedule that fires exactly `wanted` at
/// (shard 0, tick 0) and nothing anywhere else in the shards x ticks
/// window — one deterministic fault with a clean runway after it.
uint64_t FindSeedWithLoneFault(ChaosConfig config, ChaosAction wanted,
                               int shards, int ticks) {
  for (uint64_t seed = 1; seed < 500000; ++seed) {
    config.seed = seed;
    const ChaosPolicy policy(config);
    if (policy.ActionAt(0, 0) != wanted) continue;
    bool lone = true;
    for (int s = 0; s < shards && lone; ++s) {
      for (int t = (s == 0) ? 1 : 0; t < ticks && lone; ++t) {
        if (policy.ActionAt(s, t) != ChaosAction::kNone) lone = false;
      }
    }
    if (lone) return seed;
  }
  ADD_FAILURE() << "no lone-fault chaos seed in scan range";
  return 0;
}

/// A campus name the router's hash partition homes on `shard`.
std::string CampusOnShard(const ShardRouter& router, int shard) {
  for (int i = 0; i < 10000; ++i) {
    std::string name = "campus-" + std::to_string(i);
    if (router.ShardOfCampus(name) == shard) return name;
  }
  ADD_FAILURE() << "no campus name hashes to shard " << shard;
  return "";
}

/// Waits until `predicate` holds or `timeout` elapses; returns the verdict.
template <typename Predicate>
bool WaitFor(Predicate predicate, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ChaosPolicy: the seeded fault schedule
// ---------------------------------------------------------------------------

TEST(ChaosPolicyTest, DefaultConfigIsInert) {
  const ChaosConfig config;
  EXPECT_FALSE(config.any());
  const ChaosPolicy policy(config);
  for (int shard = -1; shard < 4; ++shard) {
    for (uint64_t tick = 0; tick < 64; ++tick) {
      EXPECT_EQ(policy.ActionAt(shard, tick), ChaosAction::kNone);
    }
  }
  for (uint64_t publish = 0; publish < 64; ++publish) {
    EXPECT_FALSE(policy.CorruptPublishAt(publish));
  }
}

TEST(ChaosPolicyTest, ScheduleIsAPureFunctionOfSeedShardTick) {
  ChaosConfig config;
  config.seed = 7;
  config.stall_prob = 0.5;
  const ChaosPolicy a(config), b(config);
  config.seed = 8;
  const ChaosPolicy other(config);

  int differs = 0;
  for (int shard = 0; shard < 4; ++shard) {
    for (uint64_t tick = 0; tick < 64; ++tick) {
      // Same config: bit-identical schedule — replayable chaos.
      EXPECT_EQ(a.ActionAt(shard, tick), b.ActionAt(shard, tick));
      if (a.ActionAt(shard, tick) != other.ActionAt(shard, tick)) ++differs;
    }
  }
  // A different seed is a different schedule (256 cells at p=0.5: if these
  // all agreed the seed would not be feeding the draw at all).
  EXPECT_GT(differs, 0);
}

TEST(ChaosPolicyTest, FaultKindsDrawFromIndependentSubStreams) {
  // Enabling the slowdown stream must not move a single stall cell: each
  // kind draws from its own sub-stream (the DisruptionConfig contract).
  ChaosConfig stall_only;
  stall_only.seed = 21;
  stall_only.stall_prob = 0.3;
  ChaosConfig stall_and_slow = stall_only;
  stall_and_slow.slow_prob = 0.6;
  const ChaosPolicy a(stall_only), b(stall_and_slow);

  int slowdowns = 0;
  for (int shard = 0; shard < 4; ++shard) {
    for (uint64_t tick = 0; tick < 64; ++tick) {
      const bool a_stalls = a.ActionAt(shard, tick) == ChaosAction::kStall;
      const bool b_stalls = b.ActionAt(shard, tick) == ChaosAction::kStall;
      EXPECT_EQ(a_stalls, b_stalls) << "shard " << shard << " tick " << tick;
      if (b.ActionAt(shard, tick) == ChaosAction::kEvalSlowdown) ++slowdowns;
    }
  }
  EXPECT_GT(slowdowns, 0);  // The new stream actually fires somewhere.
}

TEST(ChaosPolicyTest, SeverityPrefersCrashOverStallOverSlowdown) {
  ChaosConfig config;
  config.seed = 5;
  config.crash_prob = 1.0;
  config.stall_prob = 1.0;
  config.slow_prob = 1.0;
  EXPECT_EQ(ChaosPolicy(config).ActionAt(0, 0), ChaosAction::kCrash);
  config.crash_prob = 0.0;
  EXPECT_EQ(ChaosPolicy(config).ActionAt(0, 0), ChaosAction::kStall);
  config.stall_prob = 0.0;
  EXPECT_EQ(ChaosPolicy(config).ActionAt(0, 0), ChaosAction::kEvalSlowdown);
  config.slow_prob = 0.0;
  EXPECT_EQ(ChaosPolicy(config).ActionAt(0, 0), ChaosAction::kNone);
}

TEST(ChaosPolicyTest, CorruptPublishStreamIsDeterministicAndIndependent) {
  ChaosConfig config;
  config.seed = 11;
  config.corrupt_publish_prob = 0.5;
  ChaosConfig with_faults = config;
  with_faults.crash_prob = 0.9;
  with_faults.stall_prob = 0.9;
  const ChaosPolicy a(config), b(with_faults);
  int corrupt = 0;
  for (uint64_t publish = 0; publish < 64; ++publish) {
    // Publish corruption lives outside the per-shard streams entirely.
    EXPECT_EQ(a.CorruptPublishAt(publish), b.CorruptPublishAt(publish));
    if (a.CorruptPublishAt(publish)) ++corrupt;
  }
  EXPECT_GT(corrupt, 0);
  EXPECT_LT(corrupt, 64);
}

TEST(ChaosPolicyTest, ConfigFromEnvParsesEveryKnob) {
  ::setenv("DPDP_SERVE_CHAOS_SEED", "42", 1);
  ::setenv("DPDP_SERVE_CHAOS_STALL_PROB", "0.25", 1);
  ::setenv("DPDP_SERVE_CHAOS_STALL_US", "1234", 1);
  ::setenv("DPDP_SERVE_CHAOS_SLOW_PROB", "0.125", 1);
  ::setenv("DPDP_SERVE_CHAOS_SLOW_US", "77", 1);
  ::setenv("DPDP_SERVE_CHAOS_CRASH_PROB", "0.0625", 1);
  ::setenv("DPDP_SERVE_CHAOS_CORRUPT_PROB", "0.5", 1);
  const ChaosConfig config = ChaosConfigFromEnv();
  ::unsetenv("DPDP_SERVE_CHAOS_SEED");
  ::unsetenv("DPDP_SERVE_CHAOS_STALL_PROB");
  ::unsetenv("DPDP_SERVE_CHAOS_STALL_US");
  ::unsetenv("DPDP_SERVE_CHAOS_SLOW_PROB");
  ::unsetenv("DPDP_SERVE_CHAOS_SLOW_US");
  ::unsetenv("DPDP_SERVE_CHAOS_CRASH_PROB");
  ::unsetenv("DPDP_SERVE_CHAOS_CORRUPT_PROB");

  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.stall_prob, 0.25);
  EXPECT_EQ(config.stall_us, 1234);
  EXPECT_DOUBLE_EQ(config.slow_prob, 0.125);
  EXPECT_EQ(config.slow_us, 77);
  EXPECT_DOUBLE_EQ(config.crash_prob, 0.0625);
  EXPECT_DOUBLE_EQ(config.corrupt_publish_prob, 0.5);
  EXPECT_TRUE(config.any());
  EXPECT_FALSE(ChaosConfigFromEnv().any());  // Clean env: chaos off.
}

// ---------------------------------------------------------------------------
// Deadlines: expired-at-push, expiry-while-queued, accounting
// ---------------------------------------------------------------------------

TEST(DeadlineTest, AlreadyExpiredAtPushAnswersOnTheCallerThread) {
  const AgentConfig config = MakeStDdqnConfig(31);
  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  const FixedContext fixed(&inst);
  ModelServer models(config);
  DispatchService service(ServeConfig{}, &models);

  const double before = RegistryCounter("serve.deadline_exceeded");
  std::future<ServeReply> fut = service.SubmitWithDeadline(
      fixed.context,
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  // Answered synchronously inside SubmitWithDeadline: a dead-on-arrival
  // request never occupies a queue slot or waits on the loop.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ServeReply reply = fut.get();
  service.Stop();

  EXPECT_TRUE(reply.deadline_exceeded);
  EXPECT_FALSE(reply.shed);
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.vehicle, 0);  // Greedy fallback on FixedContext.
  EXPECT_EQ(service.deadline_exceeded(), 1u);
  EXPECT_EQ(service.requests(), 1u);
  EXPECT_EQ(service.sheds(), 0u);
  EXPECT_EQ(RegistryCounter("serve.deadline_exceeded") - before, 1.0);
}

TEST(DeadlineTest, ExpiryWhileQueuedDegradesToGreedyFallback) {
  const AgentConfig config = MakeStDdqnConfig(31);
  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  const FixedContext fixed(&inst);
  ModelServer models(config);

  // A 1 us deadline against a 20 ms batching window: the request is
  // admitted alive and ages out in the queue, so the service loop's triage
  // (not the push path) must answer it with the fallback.
  ServeConfig serve_config;
  serve_config.deadline_us = 1;
  serve_config.max_wait_us = 20000;
  DispatchService service(serve_config, &models);
  const ServeReply reply = service.Submit(fixed.context).get();

  EXPECT_TRUE(reply.deadline_exceeded);
  EXPECT_FALSE(reply.shed);
  EXPECT_EQ(reply.vehicle, 0);
  EXPECT_EQ(service.deadline_exceeded(), 1u);
  EXPECT_EQ(service.requests(), 1u);
  EXPECT_EQ(service.batches(), 0u);  // An all-expired pop evaluates nothing.
  service.Stop();

  // Control: a generous deadline on the same service shape is answered by
  // the model, proving the knob (not the refactor) produced the fallback.
  ServeConfig roomy = serve_config;
  roomy.deadline_us = 10000000;
  roomy.max_wait_us = 200;
  DispatchService relaxed(roomy, &models);
  const ServeReply model_reply = relaxed.Submit(fixed.context).get();
  relaxed.Stop();
  EXPECT_FALSE(model_reply.deadline_exceeded);
  EXPECT_EQ(model_reply.vehicle, LocalChoice(config, fixed.context));
}

/// Deadline-vs-degraded reconciliation: a served episode in which EVERY
/// request blows its deadline must (a) produce exactly the plans of a
/// local agent whose every decision blew the simulator's decision-time
/// budget (both fall back to Baseline 1's greedy rule), and (b) count
/// every one of them — serve.deadline_exceeded on the service side equals
/// num_degraded_decisions on the local side, with zero sheds mixed in.
void RunDeadlineReconciliation(const AgentConfig& config) {
  const Instance inst = MakeTestInstance(BusyOrders(8), 3);
  SimulatorConfig sim_config;
  sim_config.record_plan = true;

  // Local ground truth: an over-budget agent degrades every decision.
  SimulatorConfig degraded_config = sim_config;
  degraded_config.decision_time_budget_s = 1e-12;
  DqnFleetAgent agent(config, "over-budget");
  Simulator local_sim(&inst, degraded_config);
  const EpisodeResult local = local_sim.RunEpisode(&agent);
  ASSERT_GT(local.num_decisions, 0);
  ASSERT_EQ(local.num_degraded_decisions, local.num_decisions);

  // Served: every request expires in the queue before evaluation.
  ModelServer models(config);
  ServeConfig serve_config;
  serve_config.deadline_us = 1;
  serve_config.max_wait_us = 2000;
  DispatchService service(serve_config, &models);
  ServiceDispatcher dispatcher(&service, "deadline-client");
  Simulator served_sim(&inst, sim_config);
  const EpisodeResult served = served_sim.RunEpisode(&dispatcher);
  service.Stop();

  // Same plans; the degradation ledger just lives on different sides (the
  // service answered with the fallback, so the simulator saw only valid
  // choices and degraded nothing itself).
  ExpectSamePlan(local, served);
  EXPECT_EQ(served.num_degraded_decisions, 0);
  EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(inst, served));

  EXPECT_EQ(dispatcher.deadline_exceeded(), local.num_degraded_decisions);
  EXPECT_EQ(service.deadline_exceeded(),
            static_cast<uint64_t>(local.num_degraded_decisions));
  EXPECT_EQ(service.requests(),
            static_cast<uint64_t>(served.num_decisions));
  EXPECT_EQ(dispatcher.sheds(), 0);       // Deadline-exceeded is NOT shed:
  EXPECT_EQ(service.sheds(), 0u);         // the two ledgers never blur.
  EXPECT_EQ(service.batches(), 0u);
}

TEST(DeadlineTest, ReconciliationMatchesLocalDegradedCountsMlp) {
  RunDeadlineReconciliation(MakeStDdqnConfig(33));
}

TEST(DeadlineTest, ReconciliationMatchesLocalDegradedCountsGraph) {
  RunDeadlineReconciliation(MakeStDdgnConfig(33));
}

// ---------------------------------------------------------------------------
// Closed-queue semantics: distinct accounting, router re-route
// ---------------------------------------------------------------------------

TEST(ClosedQueueTest, StoppedServiceShedsWithClosedAccounting) {
  const AgentConfig config = MakeStDdqnConfig(35);
  const Instance inst = MakeTestInstance(BusyOrders(2), 4);
  const FixedContext fixed(&inst);
  ModelServer models(config);
  DispatchService service(ServeConfig{}, &models);
  service.Stop();

  const double before = RegistryCounter("serve.shed_closed");
  const ServeReply reply = service.Submit(fixed.context).get();
  EXPECT_TRUE(reply.shed);
  EXPECT_EQ(reply.vehicle, 0);
  EXPECT_EQ(service.requests(), 1u);
  EXPECT_EQ(service.sheds(), 1u);
  // kClosed is a distinct rejection: it shows up in shed_closed on top of
  // the plain shed counter, so dashboards can tell "overloaded" (kFull)
  // from "down" (kClosed) at a glance.
  EXPECT_EQ(service.sheds_closed(), 1u);
  EXPECT_EQ(RegistryCounter("serve.shed_closed") - before, 1.0);
}

TEST(ClosedQueueTest, RouterHopsPastAClosedShardInsteadOfShedding) {
  const AgentConfig config = MakeStDdqnConfig(35);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  ShardRouter router(serve_config, &models);

  Instance inst = MakeTestInstance(BusyOrders(2), 4);
  inst.name = CampusOnShard(router, 0);
  const FixedContext fixed(&inst);
  const int expected = LocalChoice(config, fixed.context);

  // Shard 0 goes down hard (queue closed). Its campus's next request must
  // hop to shard 1 and be answered by the MODEL there — a closed queue is
  // a re-route, not a shed.
  router.shard(0).Stop();
  const ServeReply reply = router.Submit(fixed.context).get();
  EXPECT_FALSE(reply.shed);
  EXPECT_EQ(reply.vehicle, expected);
  EXPECT_EQ(reply.shard, 1);

  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.shards[1].requests, 1u);  // Counted where admitted...
  EXPECT_EQ(stats.shards[0].requests, 0u);  // ...not on the dead shard...
  EXPECT_EQ(stats.shards[0].rerouted, 1u);  // ...whose ledger says why.
  EXPECT_EQ(stats.total.requests, 1u);
  EXPECT_EQ(stats.total.sheds, 0u);
  router.Stop();
}

TEST(ClosedQueueTest, WholeFabricClosedStillAnswersEveryPromise) {
  const AgentConfig config = MakeStDdqnConfig(35);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  ShardRouter router(serve_config, &models);

  Instance inst = MakeTestInstance(BusyOrders(2), 4);
  inst.name = CampusOnShard(router, 0);
  const FixedContext fixed(&inst);

  router.Stop();  // Every queue closed: the fabric is shutting down.
  const ServeReply reply = router.Submit(fixed.context).get();
  EXPECT_TRUE(reply.shed);
  EXPECT_EQ(reply.vehicle, 0);

  // The all-closed path books the request AND the closed-shed against the
  // home shard, so the rollup still balances during teardown.
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.shards[0].requests, 1u);
  EXPECT_EQ(stats.shards[0].sheds_closed, 1u);
  EXPECT_EQ(stats.total.requests, 1u);
  EXPECT_EQ(stats.total.sheds, 1u);
}

// ---------------------------------------------------------------------------
// ShardSupervisor: crash -> failover -> restart -> partition restored
// ---------------------------------------------------------------------------

TEST(ShardSupervisorTest, CrashIsRestartedAndThePartitionRestored) {
  ChaosConfig chaos;
  chaos.crash_prob = 0.05;
  chaos.seed =
      FindSeedWithLoneFault(chaos, ChaosAction::kCrash, /*shards=*/2,
                            /*ticks=*/20);
  ASSERT_NE(chaos.seed, 0u);

  const AgentConfig config = MakeStDdqnConfig(37);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.chaos = chaos;
  ShardRouter router(serve_config, &models);
  ShardSupervisor supervisor(SupervisorConfig{}, &router);  // Manual scans.

  Instance inst = MakeTestInstance(BusyOrders(2), 4);
  inst.name = CampusOnShard(router, 0);
  const FixedContext fixed(&inst);
  const int expected = LocalChoice(config, fixed.context);

  const double crashes_before = RegistryCounter("serve.chaos.crashes");
  std::future<ServeReply> orphan = router.Submit(fixed.context);
  // The schedule crashes shard 0 at its tick 0 — the batch holding our
  // request is requeued and the loop dies with the queue still open.
  ASSERT_TRUE(WaitFor([&] { return router.shard(0).crashed(); },
                      std::chrono::seconds(30)));
  EXPECT_EQ(router.shard(0).queue_size(), 1u);
  EXPECT_EQ(orphan.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(RegistryCounter("serve.chaos.crashes") - crashes_before, 1.0);

  // One scan does the whole recovery: classify dead, trip the partition
  // over, restart (breaker closed: first crash is under the threshold),
  // reroute the orphan to the stand-in, restore the original map.
  supervisor.ScanOnce(MonotonicNanos());
  EXPECT_EQ(router.shard(0).restarts(), 1u);
  EXPECT_FALSE(router.shard(0).crashed());
  EXPECT_FALSE(router.IsTripped(0));
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(supervisor.breaker(0).trips(), 0u);
  EXPECT_EQ(RegistryGauge("serve.shard0.health"), 0.0);

  // The orphaned promise resolves with the MODEL's answer, served by the
  // stand-in shard — rerouted, never lost, never downgraded to a shed.
  const ServeReply rescued = orphan.get();
  EXPECT_EQ(rescued.vehicle, expected);
  EXPECT_FALSE(rescued.shed);
  EXPECT_EQ(rescued.shard, 1);
  EXPECT_EQ(router.shard(0).rerouted(), 1u);  // Charged to the HOME shard.

  // Partition restored: the campus's next request runs on shard 0 again
  // (its tick 1 is clean by seed construction).
  const ServeReply resumed = router.Submit(fixed.context).get();
  EXPECT_EQ(resumed.shard, 0);
  EXPECT_EQ(resumed.vehicle, expected);
  router.Stop();
}

TEST(ShardSupervisorTest, CrashLoopHoldsRestartUntilTheBackoffElapses) {
  ChaosConfig chaos;
  chaos.crash_prob = 0.05;
  chaos.seed =
      FindSeedWithLoneFault(chaos, ChaosAction::kCrash, /*shards=*/2,
                            /*ticks=*/20);
  ASSERT_NE(chaos.seed, 0u);

  const AgentConfig config = MakeStDdqnConfig(39);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.chaos = chaos;
  ShardRouter router(serve_config, &models);

  // Threshold 1: the very first crash trips the breaker, modeling a shard
  // already known to be crash-looping — restarts must wait out the backoff.
  SupervisorConfig sup_config;
  sup_config.breaker.failure_threshold = 1;
  sup_config.breaker.backoff.initial_backoff_ms = 50;
  ShardSupervisor supervisor(sup_config, &router);

  Instance inst = MakeTestInstance(BusyOrders(2), 4);
  inst.name = CampusOnShard(router, 0);
  const FixedContext fixed(&inst);
  const int expected = LocalChoice(config, fixed.context);

  std::future<ServeReply> orphan = router.Submit(fixed.context);
  ASSERT_TRUE(WaitFor([&] { return router.shard(0).crashed(); },
                      std::chrono::seconds(30)));

  // Scan inside the open window: failover happens, restart does NOT — the
  // breaker holds the shard down. The orphan stays queued (still open).
  const int64_t t0 = MonotonicNanos();
  supervisor.ScanOnce(t0);
  EXPECT_EQ(supervisor.health(0), ShardHealth::kDead);
  EXPECT_TRUE(router.IsTripped(0));
  EXPECT_TRUE(router.shard(0).crashed());
  EXPECT_EQ(router.shard(0).restarts(), 0u);
  EXPECT_EQ(supervisor.breaker(0).trips(), 1u);
  EXPECT_EQ(RegistryGauge("serve.shard0.breaker_state"), 1.0);  // Open.
  EXPECT_EQ(RegistryGauge("serve.shard0.health"), 2.0);         // Dead.

  // Meanwhile the tripped partition is served by the stand-in — failover
  // availability does not wait for the backoff.
  const ServeReply diverted = router.Submit(fixed.context).get();
  EXPECT_EQ(diverted.shard, 1);
  EXPECT_EQ(diverted.vehicle, expected);
  EXPECT_GE(router.shard(0).rerouted(), 1u);

  // A scan past the open window: half-open, and the restart IS the probe.
  supervisor.ScanOnce(t0 + 60 * 1000000);
  EXPECT_EQ(router.shard(0).restarts(), 1u);
  EXPECT_FALSE(router.IsTripped(0));
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy);
  const ServeReply rescued = orphan.get();
  EXPECT_EQ(rescued.vehicle, expected);
  EXPECT_FALSE(rescued.shed);
  router.Stop();
}

TEST(ShardSupervisorTest, StuckShardTripsBreakerThenRecovers) {
  ChaosConfig chaos;
  chaos.stall_prob = 0.25;
  chaos.stall_us = 400000;  // One 400 ms wedge at (shard 0, tick 0).
  chaos.seed = FindSeedWithLoneFault(chaos, ChaosAction::kStall,
                                     /*shards=*/2, /*ticks=*/8);
  ASSERT_NE(chaos.seed, 0u);

  const AgentConfig config = MakeStDdqnConfig(41);
  ModelServer models(config);
  ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.max_batch = 1;  // The second request stays queued.
  serve_config.shard.max_wait_us = 100;
  serve_config.shard.chaos = chaos;
  ShardRouter router(serve_config, &models);

  SupervisorConfig sup_config;
  sup_config.stuck_after_ms = 50;
  sup_config.breaker.failure_threshold = 1;
  sup_config.breaker.backoff.initial_backoff_ms = 30;
  ShardSupervisor supervisor(sup_config, &router);

  Instance inst = MakeTestInstance(BusyOrders(2), 4);
  inst.name = CampusOnShard(router, 0);
  const FixedContext fixed(&inst);
  const int expected = LocalChoice(config, fixed.context);

  // First request is popped at tick 0 and wedges the loop for 400 ms; the
  // second waits behind it — a stale heartbeat WITH queued work.
  std::future<ServeReply> wedged = router.Submit(fixed.context);
  std::future<ServeReply> waiting = router.Submit(fixed.context);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  supervisor.ScanOnce(MonotonicNanos());
  EXPECT_EQ(supervisor.health(0), ShardHealth::kStuck);
  EXPECT_TRUE(router.IsTripped(0));
  EXPECT_FALSE(router.shard(0).crashed());  // Stuck, not dead: no restart.
  EXPECT_EQ(router.shard(0).restarts(), 0u);
  EXPECT_EQ(RegistryGauge("serve.shard0.health"), 1.0);

  // While tripped, the campus's new traffic runs on the stand-in.
  const ServeReply diverted = router.Submit(fixed.context).get();
  EXPECT_EQ(diverted.shard, 1);
  EXPECT_EQ(diverted.vehicle, expected);
  EXPECT_GE(router.shard(0).rerouted(), 1u);

  // A stall is transient by nature: the wedged batch and the queued one
  // both complete once the sleep ends — late, but with model answers.
  const ServeReply first = wedged.get();
  const ServeReply second = waiting.get();
  EXPECT_EQ(first.vehicle, expected);
  EXPECT_EQ(second.vehicle, expected);
  EXPECT_FALSE(first.shed);
  EXPECT_FALSE(second.shed);

  // Healthy scan past the breaker's open window (synthetic future time —
  // an idle loop's heartbeat age is irrelevant when its queue is empty):
  // half-open probe succeeds, breaker closes, partition restored.
  supervisor.ScanOnce(MonotonicNanos() + int64_t{10} * 1000000000);
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy);
  EXPECT_FALSE(router.IsTripped(0));
  EXPECT_EQ(RegistryGauge("serve.shard0.breaker_state"), 0.0);

  const ServeReply resumed = router.Submit(fixed.context).get();
  EXPECT_EQ(resumed.shard, 0);
  EXPECT_EQ(resumed.vehicle, expected);
  router.Stop();
}

// ---------------------------------------------------------------------------
// ModelServer: checkpoint quarantine
// ---------------------------------------------------------------------------

TEST(ModelServerQuarantineTest, PersistentCrcFailureIsRenamedToBad) {
  const fs::path dir = MakeScratchDir("quarantine");
  const AgentConfig config = MakeStDdqnConfig(43);
  DqnFleetAgent agent(config, "producer");
  ASSERT_TRUE(SaveCheckpoint((dir / "good.ckpt").string(), 4, agent, 4).ok());
  {
    // Torn file: valid prefix, truncated body — fails its CRC every probe.
    std::ifstream in(dir / "good.ckpt", std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream torn(dir / "torn.ckpt", std::ios::binary);
    torn.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  const double rejected_before = RegistryCounter("serve.ckpt_rejected");
  ModelServer models(config);
  // Probes 1 and 2: the torn file is retried (it could be a writer race
  // that resolves) and left in place.
  EXPECT_EQ(models.PollOnce(dir.string()), 1);  // good.ckpt loads fine.
  EXPECT_EQ(models.current_seq(), 4u);
  EXPECT_TRUE(fs::exists(dir / "torn.ckpt"));
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  EXPECT_TRUE(fs::exists(dir / "torn.ckpt"));
  EXPECT_EQ(RegistryCounter("serve.ckpt_rejected") - rejected_before, 0.0);

  // Probe 3 hits the limit: the file is quarantined out of the watcher's
  // glob as *.bad and counted exactly once.
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  EXPECT_FALSE(fs::exists(dir / "torn.ckpt"));
  EXPECT_TRUE(fs::exists(dir / "torn.ckpt.bad"));
  EXPECT_EQ(RegistryCounter("serve.ckpt_rejected") - rejected_before, 1.0);
  // Renamed away, not skip-listed: the in-memory list is only the
  // read-only-directory fallback.
  EXPECT_FALSE(models.IsQuarantined((dir / "torn.ckpt").string()));

  // Later polls neither re-count nor resurrect it.
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  EXPECT_EQ(RegistryCounter("serve.ckpt_rejected") - rejected_before, 1.0);
  EXPECT_EQ(models.current_seq(), 4u);
  fs::remove_all(dir);
}

TEST(ModelServerQuarantineTest, ReplacedFileGetsAFreshProbeStreak) {
  const fs::path dir = MakeScratchDir("replaced");
  const AgentConfig config = MakeStDdqnConfig(45);
  DqnFleetAgent agent(config, "producer");
  {
    std::ofstream junk(dir / "model.ckpt", std::ios::binary);
    junk << "garbage bytes, not a checkpoint";
  }

  const double rejected_before = RegistryCounter("serve.ckpt_rejected");
  ModelServer models(config);
  // Two strikes against the garbage content...
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  EXPECT_EQ(models.PollOnce(dir.string()), 0);
  // ...then the trainer overwrites the path with a real checkpoint. The
  // size/mtime fingerprint changes, so the streak resets instead of the
  // third poll quarantining a now-valid file.
  ASSERT_TRUE(
      SaveCheckpoint((dir / "model.ckpt").string(), 9, agent, 9).ok());
  EXPECT_EQ(models.PollOnce(dir.string()), 1);
  EXPECT_EQ(models.current_seq(), 9u);
  EXPECT_TRUE(fs::exists(dir / "model.ckpt"));
  EXPECT_EQ(RegistryCounter("serve.ckpt_rejected") - rejected_before, 0.0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Randomized kill/restart soak: zero lost replies, exact rollups
// ---------------------------------------------------------------------------

TEST(ChaosSoakTest, RandomizedKillRestartLosesNoReplies) {
  const AgentConfig config = MakeStDdqnConfig(47);
  ModelServer models(config);

  ShardedServeConfig serve_config;
  serve_config.num_shards = 3;
  serve_config.shard.max_batch = 4;
  serve_config.shard.max_wait_us = 200;
  serve_config.shard.queue_capacity = 64;
  serve_config.shard.chaos.seed = 4242;
  serve_config.shard.chaos.crash_prob = 0.15;
  serve_config.shard.chaos.stall_prob = 0.10;
  serve_config.shard.chaos.stall_us = 2000;
  serve_config.shard.chaos.slow_prob = 0.10;
  serve_config.shard.chaos.slow_us = 500;
  ShardRouter router(serve_config, &models);

  SupervisorConfig sup_config;
  sup_config.watchdog_period_ms = 2;
  sup_config.stuck_after_ms = 100;
  sup_config.breaker.failure_threshold = 2;
  sup_config.breaker.backoff.initial_backoff_ms = 5;
  sup_config.breaker.backoff.max_backoff_ms = 40;
  ShardSupervisor supervisor(sup_config, &router);
  supervisor.Start();

  const std::vector<std::string> agg_names = {
      "serve.requests",      "serve.shed",     "serve.shed_closed",
      "serve.batches",       "serve.degraded", "serve.deadline_exceeded",
      "serve.batched_items", "serve.rerouted", "serve.restarts"};
  std::vector<double> agg_before, shard_before;
  for (const std::string& name : agg_names) {
    agg_before.push_back(RegistryCounter(name));
    double sum = 0.0;
    for (int k = 0; k < serve_config.num_shards; ++k) {
      sum += RegistryCounter("serve.shard" + std::to_string(k) +
                             name.substr(5));
    }
    shard_before.push_back(sum);
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 40;
  std::vector<Instance> campuses;
  campuses.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    Instance inst = MakeTestInstance(BusyOrders(2), 4);
    inst.name = "campus-" + std::to_string(c);
    campuses.push_back(std::move(inst));
  }
  std::vector<std::unique_ptr<FixedContext>> contexts;
  for (int c = 0; c < kClients; ++c) {
    contexts.push_back(std::make_unique<FixedContext>(&campuses[c]));
  }
  const int expected = LocalChoice(config, contexts[0]->context);

  std::atomic<long> unanswered{0};
  std::atomic<long> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::future<ServeReply> fut = router.Submit(contexts[c]->context);
        if (fut.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++unanswered;  // A lost promise: the one absolute failure.
          continue;
        }
        const ServeReply reply = fut.get();
        // Shed replies (and there should be none in this shape — queues
        // are deep and nothing closes mid-soak) carry the greedy fallback;
        // everything else must be the model's answer, whichever shard
        // computed it and however many hops the request took.
        const int want =
            (reply.shed || reply.deadline_exceeded) ? 0 : expected;
        if (reply.vehicle != want) ++wrong;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  supervisor.Stop();  // Always before the router (restart/teardown race).
  router.Stop();

  EXPECT_EQ(unanswered.load(), 0) << "a client promise was lost";
  EXPECT_EQ(wrong.load(), 0) << "a reply matched neither the model nor "
                                "the greedy fallback";

  // The chaos schedule at this seed kills shards repeatedly; every kill
  // must have been supervised back up with its orphans rerouted.
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.total.requests,
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GE(stats.total.restarts, 1u);
  EXPECT_GE(stats.total.rerouted, 1u);

  // Exact rollups even under chaos: for every counter family the
  // aggregate's delta equals the per-shard deltas' sum — reroutes, sheds
  // and restarts included. This is the accounting discipline (count once,
  // always in pairs) surviving arbitrary failover interleavings.
  for (size_t i = 0; i < agg_names.size(); ++i) {
    double shard_sum = 0.0;
    for (int k = 0; k < serve_config.num_shards; ++k) {
      shard_sum += RegistryCounter("serve.shard" + std::to_string(k) +
                                   agg_names[i].substr(5));
    }
    EXPECT_EQ(RegistryCounter(agg_names[i]) - agg_before[i],
              shard_sum - shard_before[i])
        << agg_names[i] << " rollup diverged from its per-shard sum";
  }
}

}  // namespace
}  // namespace dpdp::serve
