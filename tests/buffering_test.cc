#include <gtest/gtest.h>

#include <cmath>

#include "baselines/greedy_baselines.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

std::vector<Order> Stream() {
  return {MakeOrder(0, 1, 2, 10.0, 5.0, 400.0),
          MakeOrder(1, 3, 4, 10.0, 12.0, 400.0),
          MakeOrder(2, 2, 3, 10.0, 47.0, 500.0),
          MakeOrder(3, 1, 4, 10.0, 95.0, 600.0)};
}

TEST(Buffering, ImmediateServiceHasZeroResponse) {
  const Instance inst = MakeTestInstance(Stream(), 3);
  Simulator sim(&inst);
  MinIncrementalLengthDispatcher b1;
  const EpisodeResult r = sim.RunEpisode(&b1);
  EXPECT_DOUBLE_EQ(r.mean_response_min, 0.0);
}

TEST(Buffering, WindowDelaysDecisionsToBoundary) {
  const Instance inst = MakeTestInstance(Stream(), 3);
  SimulatorConfig config;
  config.buffer_window_min = 30.0;
  Simulator sim(&inst, config);

  class TimeSpy : public Dispatcher {
   public:
    const char* name() const override { return "spy"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      decision_times.push_back(ctx.now);
      for (const VehicleOption& o : ctx.options) {
        if (o.feasible) return o.vehicle;
      }
      return -1;
    }
    std::vector<double> decision_times;
  };
  TimeSpy spy;
  const EpisodeResult r = sim.RunEpisode(&spy);
  // Orders at 5 and 12 flush at 30; order at 47 flushes at 60; 95 at 120.
  ASSERT_EQ(spy.decision_times.size(), 4u);
  EXPECT_DOUBLE_EQ(spy.decision_times[0], 30.0);
  EXPECT_DOUBLE_EQ(spy.decision_times[1], 30.0);
  EXPECT_DOUBLE_EQ(spy.decision_times[2], 60.0);
  EXPECT_DOUBLE_EQ(spy.decision_times[3], 120.0);
  // Mean response = mean(25, 18, 13, 25).
  EXPECT_NEAR(r.mean_response_min, (25.0 + 18.0 + 13.0 + 25.0) / 4.0, 1e-9);
}

TEST(Buffering, TightDeadlineBecomesUnservableUnderBuffering) {
  // Deadline at minute 40; with a 30-minute buffer the decision happens at
  // 30, leaving 10 minutes — not enough for the 20-minute drive.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 2.0, 40.0)}, 1);
  MinIncrementalLengthDispatcher b1;

  Simulator immediate(&inst);
  EXPECT_TRUE(immediate.RunEpisode(&b1).all_served());

  SimulatorConfig config;
  config.buffer_window_min = 30.0;
  Simulator buffered(&inst, config);
  EXPECT_FALSE(buffered.RunEpisode(&b1).all_served());
}

TEST(Buffering, CostsComparableToImmediateOnSlackWindows) {
  // With generous deadlines, buffering shouldn't change costs drastically
  // (the paper's finding: no obvious cost reduction, longer response).
  const Instance inst = MakeTestInstance(Stream(), 3);
  MinIncrementalLengthDispatcher b1;

  Simulator immediate(&inst);
  const EpisodeResult a = immediate.RunEpisode(&b1);

  SimulatorConfig config;
  config.buffer_window_min = 10.0;
  Simulator buffered(&inst, config);
  const EpisodeResult b = buffered.RunEpisode(&b1);

  EXPECT_TRUE(a.all_served());
  EXPECT_TRUE(b.all_served());
  EXPECT_LT(std::abs(a.total_cost - b.total_cost), 0.8 * a.total_cost);
  EXPECT_GT(b.mean_response_min, 0.0);
}

// ----------------------- constraint embedding ablation --------------------

TEST(ConstraintEmbedding, DisabledVariantStillDispatchesFeasibly) {
  const Instance inst = MakeTestInstance(Stream(), 3);
  AgentConfig config = MakeStDdgnConfig(9);
  config.use_constraint_embedding = false;
  DqnFleetAgent agent(config, "ST-DDGN-masked");
  Simulator sim(&inst);
  const EpisodeResult r = sim.RunEpisode(&agent);
  EXPECT_TRUE(r.all_served());
}

TEST(ConstraintEmbedding, DisabledVariantTrains) {
  const Instance inst = MakeTestInstance(Stream(), 3);
  AgentConfig config = MakeDdqnConfig(9);
  config.use_constraint_embedding = false;
  config.epsilon_decay_episodes = 5;
  DqnFleetAgent agent(config, "DDQN-masked");
  agent.set_training(true);
  Simulator sim(&inst);
  for (int e = 0; e < 8; ++e) (void)sim.RunEpisode(&agent);
  agent.set_training(false);
  EXPECT_TRUE(sim.RunEpisode(&agent).all_served());
  EXPECT_EQ(agent.episodes_trained(), 8);
}

TEST(ConstraintEmbedding, QValuesOfInfeasibleVehiclesStayMinusInf) {
  // Even when the network scores the whole fleet, infeasible vehicles must
  // never be selectable.
  const Instance inst =
      MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 25.0),
                        MakeOrder(1, 4, 3, 10.0, 0.0, 40.0)},
                       2);
  AgentConfig config = MakeStDdgnConfig(3);
  config.use_constraint_embedding = false;

  class Probe : public Dispatcher {
   public:
    explicit Probe(DqnFleetAgent* agent) : agent_(agent) {}
    const char* name() const override { return "probe"; }
    int ChooseVehicle(const DispatchContext& ctx) override {
      const std::vector<double> q = agent_->QValues(ctx);
      for (size_t v = 0; v < q.size(); ++v) {
        if (!ctx.options[v].feasible) {
          EXPECT_TRUE(std::isinf(q[v]) && q[v] < 0.0);
        }
      }
      return agent_->ChooseVehicle(ctx);
    }
    DqnFleetAgent* agent_;
  };
  DqnFleetAgent agent(config, "masked");
  Probe probe(&agent);
  Simulator sim(&inst);
  const EpisodeResult r = sim.RunEpisode(&probe);
  EXPECT_GE(r.num_served, 1);
}

}  // namespace
}  // namespace dpdp
