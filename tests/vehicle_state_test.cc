#include <gtest/gtest.h>

#include <cmath>

#include "sim/vehicle_state.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using testing::MakeOrder;
using testing::MakeTestInstance;

// Line network, 1 km/min, zero service time unless stated otherwise.

class VehicleStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0),
                              MakeOrder(1, 3, 4, 10.0, 0.0, 500.0)});
  }

  Stop P(int order) const {
    return {inst_.order(order).pickup_node, order, StopType::kPickup};
  }
  Stop D(int order) const {
    return {inst_.order(order).delivery_node, order, StopType::kDelivery};
  }

  Instance inst_;
};

TEST_F(VehicleStateTest, FreshVehicleIdleAtDepot) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(100.0);
  EXPECT_FALSE(v.used());
  EXPECT_EQ(v.FirstFreeIndex(), 0);
  EXPECT_TRUE(v.FreeSuffix().empty());
  const PlanAnchor anchor = v.MakeAnchor();
  EXPECT_EQ(anchor.node, 0);
  EXPECT_DOUBLE_EQ(anchor.time, 100.0);
  EXPECT_TRUE(anchor.onboard.empty());
  EXPECT_EQ(v.Position().first, 0.0);
  EXPECT_DOUBLE_EQ(v.FinishRoute(), 0.0);  // Never used: no cost.
}

TEST_F(VehicleStateTest, DepartsImmediatelyOnAssignment) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, /*serves_order=*/true);
  EXPECT_TRUE(v.used());
  EXPECT_EQ(v.num_assigned_orders(), 1);
  // En route to F1: the first stop is locked, suffix starts after it.
  EXPECT_EQ(v.FirstFreeIndex(), 1);
  ASSERT_EQ(v.FreeSuffix().size(), 1u);
  EXPECT_TRUE(v.FreeSuffix()[0] == D(0));
}

TEST_F(VehicleStateTest, PositionInterpolatesWhileDriving) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  v.AdvanceTo(5.0);  // Halfway along depot(0,0) -> F1(10,0).
  const auto pos = v.Position();
  EXPECT_NEAR(pos.first, 5.0, 1e-9);
  EXPECT_NEAR(pos.second, 0.0, 1e-9);
}

TEST_F(VehicleStateTest, AnchorWhileDrivingIsPostStop) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  v.AdvanceTo(5.0);  // Driving to the pickup.
  const PlanAnchor anchor = v.MakeAnchor();
  EXPECT_EQ(anchor.node, 1);            // The locked stop's node.
  EXPECT_DOUBLE_EQ(anchor.time, 10.0);  // Arrival + zero service.
  ASSERT_EQ(anchor.onboard.size(), 1u);  // Pickup applied in the anchor.
  EXPECT_EQ(anchor.onboard[0], 0);
}

TEST_F(VehicleStateTest, EventsApplyLoadAndVisits) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  v.AdvanceTo(25.0);  // Past both stops (arrivals at 10 and 20).
  ASSERT_EQ(v.visits().size(), 2u);
  EXPECT_EQ(v.visits()[0].node, 1);
  EXPECT_DOUBLE_EQ(v.visits()[0].arrival, 10.0);
  EXPECT_DOUBLE_EQ(v.visits()[0].residual_capacity, 100.0);
  EXPECT_EQ(v.visits()[1].node, 2);
  EXPECT_DOUBLE_EQ(v.visits()[1].residual_capacity, 90.0);  // Carrying 10.
  EXPECT_EQ(v.FirstFreeIndex(), 2);  // Idle at F2.
}

TEST_F(VehicleStateTest, IdleVehicleAnchorsAtLastStop) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  v.AdvanceTo(300.0);
  const PlanAnchor anchor = v.MakeAnchor();
  EXPECT_EQ(anchor.node, 2);              // Waits at F2.
  EXPECT_DOUBLE_EQ(anchor.time, 300.0);   // Ready now, not at 20.
  EXPECT_TRUE(anchor.onboard.empty());
}

TEST_F(VehicleStateTest, CommittedLengthGrowsPerDepartedArc) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  EXPECT_DOUBLE_EQ(v.committed_length(), 10.0);  // Departed depot -> F1.
  v.AdvanceTo(10.0);  // Arrive F1, serve, depart to F2.
  EXPECT_DOUBLE_EQ(v.committed_length(), 20.0);
  v.AdvanceTo(25.0);
  EXPECT_DOUBLE_EQ(v.committed_length(), 20.0);  // Idle: no new arcs.
}

TEST_F(VehicleStateTest, FinishRouteAddsReturnLeg) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  const double total = v.FinishRoute();
  EXPECT_DOUBLE_EQ(total, 10.0 + 10.0 + 20.0);  // Incl. F2 -> depot.
  // Finishing twice is idempotent.
  EXPECT_DOUBLE_EQ(v.FinishRoute(), total);
}

TEST_F(VehicleStateTest, ReplanningKeepsCommittedPrefix) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({P(0), D(0)}, true);
  v.AdvanceTo(5.0);  // Driving toward P(0): it is locked.
  // Insert order 1 into the free suffix (after P(0)).
  v.ApplyNewSuffix({P(1), D(1), D(0)}, true);
  ASSERT_EQ(v.stops().size(), 4u);
  EXPECT_TRUE(v.stops()[0] == P(0));  // Prefix untouched.
  EXPECT_TRUE(v.stops()[1] == P(1));
  EXPECT_EQ(v.num_assigned_orders(), 2);
  // Drain: the route must execute in the new order.
  const double total = v.FinishRoute();
  // depot->F1(10) + F1->F3(10) + F3->F4(10) + F4->F2 (sqrt(500)) +
  // F2->depot(20).
  EXPECT_NEAR(total, 10.0 + 10.0 + 10.0 + std::sqrt(500.0) + 20.0, 1e-9);
}

TEST_F(VehicleStateTest, PickupWaitsForCreationTime) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 60.0, 500.0)});
  VehicleState v(0, 0, &inst);
  v.AdvanceTo(60.0);
  v.ApplyNewSuffix({{1, 0, StopType::kPickup}, {2, 0, StopType::kDelivery}},
                   true);
  v.AdvanceTo(70.0);  // Arrived at F1 at 70 and can serve immediately.
  ASSERT_EQ(v.visits().size(), 1u);
  EXPECT_DOUBLE_EQ(v.visits()[0].arrival, 70.0);
  const double total = v.FinishRoute();
  EXPECT_DOUBLE_EQ(total, 40.0);
}

TEST_F(VehicleStateTest, ServiceTimeDelaysDeparture) {
  Instance inst = MakeTestInstance({MakeOrder(0, 1, 2, 10.0, 0.0, 500.0)});
  inst.vehicle_config.service_time_min = 5.0;
  VehicleState v(0, 0, &inst);
  v.AdvanceTo(0.0);
  v.ApplyNewSuffix({{1, 0, StopType::kPickup}, {2, 0, StopType::kDelivery}},
                   true);
  v.AdvanceTo(12.0);  // Arrived at 10, serving until 15.
  // Anchor is post-pickup: service end 15 at F1... but the pickup is the
  // stop being served, so the anchor reflects its completion.
  const PlanAnchor anchor = v.MakeAnchor();
  EXPECT_EQ(anchor.node, 1);
  EXPECT_DOUBLE_EQ(anchor.time, 15.0);
  v.AdvanceTo(16.0);  // Departed toward F2 at 15.
  EXPECT_NEAR(v.Position().first, 11.0, 1e-9);
}

TEST_F(VehicleStateTest, AdvanceIsMonotoneNoop) {
  VehicleState v(0, 0, &inst_);
  v.AdvanceTo(50.0);
  v.AdvanceTo(50.0);
  EXPECT_DOUBLE_EQ(v.clock(), 50.0);
}

}  // namespace
}  // namespace dpdp
