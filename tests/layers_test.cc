#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace dpdp::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}

/// Scalar "probe" loss L(y) = sum(probe .* y) so dL/dy = probe.
double ProbeLoss(const Matrix& y, const Matrix& probe) {
  return y.Hadamard(probe).SumAll();
}

/// Verifies every parameter gradient of `forward_loss` (which must run the
/// layer forward and return the probe loss, with grads accumulated by a
/// preceding Backward call) against central finite differences.
void CheckParameterGradients(const std::vector<Parameter*>& params,
                             const std::function<double()>& forward_loss,
                             double tol = 1e-5) {
  const double eps = 1e-6;
  for (Parameter* p : params) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double saved = p->value(r, c);
        p->value(r, c) = saved + eps;
        const double lp = forward_loss();
        p->value(r, c) = saved - eps;
        const double lm = forward_loss();
        p->value(r, c) = saved;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(p->grad(r, c), numeric, tol)
            << "param(" << r << "," << c << ")";
      }
    }
  }
}

// ------------------------------------------------------------- Linear ----

TEST(Linear, ForwardMatchesManualAffine) {
  Rng rng(1);
  Linear lin(2, 2, &rng);
  // Overwrite weights with known values via gradient-free access.
  std::vector<Parameter*> params = lin.Params();
  params[0]->value = Matrix::FromRows({{1, 2}, {3, 4}});  // W (in x out).
  params[1]->value = Matrix::FromRows({{10, 20}});        // b.
  const Matrix y = lin.Forward(Matrix::FromRows({{1, 1}}));
  EXPECT_TRUE(y.AllClose(Matrix::FromRows({{14, 26}})));
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear lin(4, 3, &rng);
  const Matrix x = RandomMatrix(5, 4, &rng);
  const Matrix probe = RandomMatrix(5, 3, &rng);

  const Matrix y = lin.Forward(x);
  const Matrix dx = lin.Backward(probe);
  auto loss = [&] { return ProbeLoss(lin.Forward(x), probe); };
  CheckParameterGradients(lin.Params(), loss);

  // Input gradient check.
  Matrix x_var = x;
  const double eps = 1e-6;
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      x_var(r, c) = x(r, c) + eps;
      const double lp = ProbeLoss(lin.Forward(x_var), probe);
      x_var(r, c) = x(r, c) - eps;
      const double lm = ProbeLoss(lin.Forward(x_var), probe);
      x_var(r, c) = x(r, c);
      EXPECT_NEAR(dx(r, c), (lp - lm) / (2.0 * eps), 1e-5);
    }
  }
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(3);
  Linear lin(2, 1, &rng);
  const Matrix x = Matrix::FromRows({{1.0, 2.0}});
  const Matrix dy = Matrix::FromRows({{1.0}});
  lin.Forward(x);
  lin.Backward(dy);
  const Matrix grad_once = lin.Params()[0]->grad;
  lin.Forward(x);
  lin.Backward(dy);
  EXPECT_TRUE(lin.Params()[0]->grad.AllClose(grad_once.Scale(2.0)));
}

// --------------------------------------------------------- Activations ----

TEST(ReLU, ForwardClampsAndBackwardMasks) {
  ReLU relu;
  const Matrix y = relu.Forward(Matrix::FromRows({{-1.0, 0.0, 2.0}}));
  EXPECT_TRUE(y.AllClose(Matrix::FromRows({{0.0, 0.0, 2.0}})));
  const Matrix dx = relu.Backward(Matrix::FromRows({{5.0, 5.0, 5.0}}));
  EXPECT_TRUE(dx.AllClose(Matrix::FromRows({{0.0, 0.0, 5.0}})));
}

TEST(Tanh, ForwardAndGradient) {
  Tanh tanh_layer;
  const Matrix y = tanh_layer.Forward(Matrix::FromRows({{0.5}}));
  EXPECT_NEAR(y(0, 0), std::tanh(0.5), 1e-12);
  const Matrix dx = tanh_layer.Backward(Matrix::FromRows({{1.0}}));
  EXPECT_NEAR(dx(0, 0), 1.0 - std::tanh(0.5) * std::tanh(0.5), 1e-12);
}

// ----------------------------------------------------------------- Mlp ----

TEST(Mlp, ShapesAndDims) {
  Rng rng(4);
  Mlp mlp({5, 16, 8, 1}, Activation::kReLU, &rng);
  EXPECT_EQ(mlp.in_dim(), 5);
  EXPECT_EQ(mlp.out_dim(), 1);
  const Matrix y = mlp.Forward(RandomMatrix(7, 5, &rng));
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 1);
}

TEST(Mlp, GradientsMatchFiniteDifferencesReLU) {
  Rng rng(5);
  Mlp mlp({3, 8, 2}, Activation::kReLU, &rng);
  const Matrix x = RandomMatrix(4, 3, &rng);
  const Matrix probe = RandomMatrix(4, 2, &rng);
  mlp.Forward(x);
  mlp.Backward(probe);
  auto loss = [&] { return ProbeLoss(mlp.Forward(x), probe); };
  CheckParameterGradients(mlp.Params(), loss);
}

TEST(Mlp, GradientsMatchFiniteDifferencesTanh) {
  Rng rng(6);
  Mlp mlp({3, 6, 6, 1}, Activation::kTanh, &rng);
  const Matrix x = RandomMatrix(2, 3, &rng);
  const Matrix probe = RandomMatrix(2, 1, &rng);
  mlp.Forward(x);
  mlp.Backward(probe);
  auto loss = [&] { return ProbeLoss(mlp.Forward(x), probe); };
  CheckParameterGradients(mlp.Params(), loss);
}

// --------------------------------------------------- Workspace overloads ----

void ExpectBitEqual(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) ASSERT_EQ(got(r, c), want(r, c));
  }
}

TEST(Linear, WorkspaceOverloadBitEqualToValueOverload) {
  // The value overloads are thin copies over the Workspace path, so both
  // must produce identical bits for Forward and Backward.
  Rng rng(20);
  Linear a(4, 3, &rng);
  Linear b(4, 3, &rng);
  CopyParameters(a.Params(), b.Params());
  const Matrix x = RandomMatrix(6, 4, &rng);
  const Matrix dy = RandomMatrix(6, 3, &rng);
  Workspace ws;
  const Matrix& y_ws = a.Forward(x, ws);
  const Matrix y_val = b.Forward(x);
  ExpectBitEqual(y_ws, y_val);
  const Matrix& dx_ws = a.Backward(dy, ws);
  const Matrix dx_val = b.Backward(dy);
  ExpectBitEqual(dx_ws, dx_val);
  ExpectBitEqual(a.Params()[0]->grad, b.Params()[0]->grad);
  ExpectBitEqual(a.Params()[1]->grad, b.Params()[1]->grad);
}

TEST(Mlp, WorkspaceOverloadBitEqualToValueOverload) {
  Rng rng(21);
  Mlp a({3, 8, 8, 2}, Activation::kReLU, &rng);
  Mlp b({3, 8, 8, 2}, Activation::kReLU, &rng);
  CopyParameters(a.Params(), b.Params());
  const Matrix x = RandomMatrix(5, 3, &rng);
  const Matrix dy = RandomMatrix(5, 2, &rng);
  Workspace ws;
  const Matrix& y_ws = a.Forward(x, ws);
  const Matrix y_val = b.Forward(x);
  ExpectBitEqual(y_ws, y_val);
  const Matrix& dx_ws = a.Backward(dy, ws);
  const Matrix dx_val = b.Backward(dy);
  ExpectBitEqual(dx_ws, dx_val);
}

TEST(Mlp, WorkspaceReuseAcrossBatchSizesIsStable) {
  // One Mlp + one Workspace driven across shrinking/growing batches: the
  // layer-owned buffers are resized without zeroing, so results must still
  // match a fresh evaluation at every size.
  Rng rng(22);
  Mlp net({4, 8, 1}, Activation::kReLU, &rng);
  Mlp fresh({4, 8, 1}, Activation::kReLU, &rng);
  CopyParameters(net.Params(), fresh.Params());
  Workspace ws;
  for (int batch : {7, 2, 9, 1, 5}) {
    const Matrix x = RandomMatrix(batch, 4, &rng);
    ExpectBitEqual(net.Forward(x, ws), fresh.Forward(x));
  }
}

// ---------------------------------------------------- Parameter helpers ----

TEST(Parameters, CopyAndSoftUpdate) {
  Rng rng(7);
  Mlp a({2, 4, 1}, Activation::kReLU, &rng);
  Mlp b({2, 4, 1}, Activation::kReLU, &rng);
  CopyParameters(a.Params(), b.Params());
  const Matrix x = RandomMatrix(3, 2, &rng);
  EXPECT_TRUE(a.Forward(x).AllClose(b.Forward(x)));

  // Perturb a, then soft-update halfway.
  a.Params()[0]->value.AddScaled(Matrix(2, 4, 1.0), 1.0);
  const double before = b.Params()[0]->value(0, 0);
  const double target = a.Params()[0]->value(0, 0);
  SoftUpdateParameters(a.Params(), b.Params(), 0.5);
  EXPECT_NEAR(b.Params()[0]->value(0, 0), 0.5 * (before + target), 1e-12);
}

TEST(Parameters, SaveLoadRoundTrip) {
  Rng rng(8);
  Mlp a({3, 5, 2}, Activation::kReLU, &rng);
  Mlp b({3, 5, 2}, Activation::kReLU, &rng);
  std::stringstream buffer;
  SaveParameters(a.Params(), &buffer);
  ASSERT_TRUE(LoadParameters(&buffer, b.Params()));
  const Matrix x = RandomMatrix(2, 3, &rng);
  EXPECT_TRUE(a.Forward(x).AllClose(b.Forward(x)));
}

TEST(Parameters, LoadRejectsShapeMismatch) {
  Rng rng(9);
  Mlp a({3, 5, 2}, Activation::kReLU, &rng);
  Mlp b({3, 4, 2}, Activation::kReLU, &rng);
  std::stringstream buffer;
  SaveParameters(a.Params(), &buffer);
  EXPECT_FALSE(LoadParameters(&buffer, b.Params()));
}

TEST(Parameters, LoadRejectsTruncatedStream) {
  Rng rng(10);
  Mlp a({3, 5, 2}, Activation::kReLU, &rng);
  std::stringstream buffer;
  SaveParameters(a.Params(), &buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_FALSE(LoadParameters(&truncated, a.Params()));
}

// ------------------------------------------------------------ Optimizers --

TEST(Optimizers, SgdDescendsQuadratic) {
  // Minimize 0.5 * (w - 3)^2 by hand-computed gradient.
  Parameter w(Matrix::FromRows({{0.0}}));
  Sgd sgd({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad(0, 0) = w.value(0, 0) - 3.0;
    sgd.Step();
  }
  EXPECT_NEAR(w.value(0, 0), 3.0, 1e-6);
}

TEST(Optimizers, AdamDescendsQuadratic) {
  Parameter w(Matrix::FromRows({{-5.0}}));
  Adam adam({&w}, 0.1);
  for (int i = 0; i < 500; ++i) {
    w.grad(0, 0) = w.value(0, 0) - 3.0;
    adam.Step();
  }
  EXPECT_NEAR(w.value(0, 0), 3.0, 1e-3);
}

TEST(Optimizers, StepZeroesGradients) {
  Parameter w(Matrix::FromRows({{1.0}}));
  Adam adam({&w}, 0.01);
  w.grad(0, 0) = 1.0;
  adam.Step();
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
}

TEST(Optimizers, GradClipBoundsUpdateMagnitude) {
  Parameter w(Matrix::FromRows({{0.0}}));
  Sgd sgd({&w}, 1.0, /*clip_norm=*/1.0);
  w.grad(0, 0) = 100.0;
  sgd.Step();
  EXPECT_NEAR(w.value(0, 0), -1.0, 1e-12);  // Clipped to norm 1.
}

// ------------------------------------------------------------------ Loss --

TEST(Loss, MseValueAndGrad) {
  EXPECT_DOUBLE_EQ(MseLoss(5.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(MseLossGrad(5.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(MseLossGrad(1.0, 3.0), -2.0);
}

TEST(Loss, HuberQuadraticInsideLinearOutside) {
  EXPECT_DOUBLE_EQ(HuberLoss(1.5, 1.0, 1.0), 0.125);
  EXPECT_DOUBLE_EQ(HuberLossGrad(1.5, 1.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(HuberLoss(4.0, 1.0, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(HuberLossGrad(4.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(HuberLossGrad(-4.0, 1.0, 1.0), -1.0);
}

TEST(Loss, HuberContinuousAtThreshold) {
  const double delta = 1.0;
  EXPECT_NEAR(HuberLoss(2.0 - 1e-9, 1.0, delta),
              HuberLoss(2.0 + 1e-9, 1.0, delta), 1e-8);
}

}  // namespace
}  // namespace dpdp::nn
