// Scenario-engine suite: DSL parse/reject, scenario purity (same config +
// seed => bitwise-identical streams), layer independence (enabling a layer
// never shifts a baseline draw), heterogeneous-fleet feasibility via the
// brute-force oracle, and the 1-vs-4-thread matrix determinism golden.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

#include "core/dpdp.h"
#include "tests/test_util.h"

namespace dpdp {
namespace {

using scenario::BuiltinScenario;
using scenario::BuiltinScenarioNames;
using scenario::ParseScenario;
using scenario::Scenario;

// ---------------------------------------------------------------------------
// DSL parse / reject.

TEST(ScenarioParse, FullConfigRoundTrips) {
  const std::string text = R"(
# A kitchen-sink config exercising every key.
name = stress_day
seed = 42
demand.rate_scale = 1.5
demand.surge = 540 780 2.5        # lunch rush, all factories
demand.surge = 600 660 3 4        # plus a focused spike at factory 4
demand.burst_prob = 0.1
demand.burst_orders = 6
demand.burst_duration = 25
travel.base_scale = 1.1
travel.wave_amplitude = 0.3
travel.wave_period = 720
travel.wave_phase = 510
fleet.class = minivan 2 60 180 1.5 50 8
fleet.class = truck 1 220 520 3.2 30 14
topology.campuses = 2
topology.spacing_km = 25
topology.extra_depots = 1
topology.docked_stations = 5
topology.dock_surcharge = 4
)";
  const Result<Scenario> parsed = ParseScenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Scenario& s = parsed.value();
  EXPECT_EQ(s.name, "stress_day");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.demand.rate_scale, 1.5);
  ASSERT_EQ(s.demand.surges.size(), 2u);
  EXPECT_DOUBLE_EQ(s.demand.surges[0].factor, 2.5);
  EXPECT_EQ(s.demand.surges[0].factory, -1);
  EXPECT_EQ(s.demand.surges[1].factory, 4);
  EXPECT_EQ(s.demand.burst_orders, 6);
  EXPECT_DOUBLE_EQ(s.travel.wave_amplitude, 0.3);
  ASSERT_EQ(s.fleet.classes.size(), 2u);
  EXPECT_EQ(s.fleet.classes[0].name, "minivan");
  EXPECT_DOUBLE_EQ(s.fleet.classes[1].config.capacity, 220.0);
  EXPECT_EQ(s.topology.num_campuses, 2);
  EXPECT_EQ(s.topology.docked_stations, 5);
  EXPECT_TRUE(s.active());
}

TEST(ScenarioParse, EmptyConfigIsInactiveBaseline) {
  const Result<Scenario> parsed = ParseScenario("# nothing but comments\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, "baseline");
  EXPECT_FALSE(parsed.value().active());
}

TEST(ScenarioParse, RejectsMalformedConfigs) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"bogus_key = 1", "unknown key"},
      {"demand.rate_scale", "missing ="},
      {"demand.rate_scale = ", "empty value"},
      {"demand.rate_scale = fast", "non-numeric"},
      {"demand.rate_scale = 1000", "out of range"},
      {"demand.rate_scale = -0.5", "negative"},
      {"demand.surge = 540 780", "too few surge tokens"},
      {"demand.surge = 780 540 2", "end before start"},
      {"demand.surge = 540 780 0.5", "factor < 1"},
      {"demand.burst_prob = 1.5", "probability > 1"},
      {"travel.base_scale = 0", "zero scale"},
      {"travel.wave_amplitude = 1.0", "amplitude not < 1"},
      {"travel.wave_period = -10", "negative period"},
      {"fleet.class = van 1 100", "too few class tokens"},
      {"fleet.class = van 0 100 300 2 40 10", "zero weight"},
      {"fleet.class = van 1 -5 300 2 40 10", "negative capacity"},
      {"topology.campuses = 0", "campuses < 1"},
      {"topology.campuses = 100", "campuses > 64"},
      {"topology.extra_depots = -1", "negative depots"},
      {"topology.dock_surcharge = 500", "surcharge > 120"},
      {"seed = -3", "negative seed"},
  };
  for (const auto& c : cases) {
    const Result<Scenario> parsed = ParseScenario(c.text);
    EXPECT_FALSE(parsed.ok()) << "should reject (" << c.why
                              << "): " << c.text;
  }
}

TEST(ScenarioParse, RejectionNamesTheLine) {
  const Result<Scenario> parsed =
      ParseScenario("name = ok\n\ndemand.rate_scale = banana\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("line 3"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ScenarioParse, BuiltinsAllValidAndUnknownRejected) {
  for (const std::string& name : BuiltinScenarioNames()) {
    const Result<Scenario> s = BuiltinScenario(name);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ(s.value().name, name);
    EXPECT_EQ(s.value().active(), name != "baseline") << name;
  }
  EXPECT_FALSE(BuiltinScenario("no_such_scenario").ok());
}

TEST(ScenarioParse, LoadScenarioFileNamesUnnamedAfterPath) {
  const std::string path = "scenario_test_tmp.cfg";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "demand.rate_scale = 1.25\n";
  }
  const Result<Scenario> loaded = scenario::LoadScenarioFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name, path);
  EXPECT_DOUBLE_EQ(loaded.value().demand.rate_scale, 1.25);
  std::remove(path.c_str());
  EXPECT_FALSE(scenario::LoadScenarioFile("does_not_exist.cfg").ok());
}

// ---------------------------------------------------------------------------
// Strict env parsing (accepting paths; rejects abort by design and are
// exercised interactively, not in-process).

TEST(StrictEnv, ParsesAndFallsBack) {
  ::setenv("DPDP_TEST_STRICT_INT", "42", 1);
  EXPECT_EQ(EnvIntStrict("DPDP_TEST_STRICT_INT", 7, 0, 100), 42);
  ::unsetenv("DPDP_TEST_STRICT_INT");
  EXPECT_EQ(EnvIntStrict("DPDP_TEST_STRICT_INT", 7, 0, 100), 7);
  ::setenv("DPDP_TEST_STRICT_INT", "", 1);
  EXPECT_EQ(EnvIntStrict("DPDP_TEST_STRICT_INT", 7, 0, 100), 7);
  ::unsetenv("DPDP_TEST_STRICT_INT");

  ::setenv("DPDP_TEST_STRICT_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDoubleStrict("DPDP_TEST_STRICT_DBL", 1.0, 0.0, 10.0),
                   2.5);
  ::unsetenv("DPDP_TEST_STRICT_DBL");

  ::setenv("DPDP_TEST_STRICT_BOOL", "off", 1);
  EXPECT_FALSE(EnvBoolStrict("DPDP_TEST_STRICT_BOOL", true));
  ::setenv("DPDP_TEST_STRICT_BOOL", "YES", 1);
  EXPECT_TRUE(EnvBoolStrict("DPDP_TEST_STRICT_BOOL", false));
  ::unsetenv("DPDP_TEST_STRICT_BOOL");

  ::setenv("DPDP_TEST_STRICT_U64", "18446744073709551615", 1);
  EXPECT_EQ(EnvU64Strict("DPDP_TEST_STRICT_U64", 0),
            18446744073709551615ull);
  ::unsetenv("DPDP_TEST_STRICT_U64");
}

// ---------------------------------------------------------------------------
// Purity and layer independence of the demand layers.

/// The order's identity for multiset comparison (ids are re-canonicalized,
/// so compare content, not ids).
using OrderKey = std::tuple<int, int, double, double, double>;

std::vector<OrderKey> Keys(const std::vector<Order>& orders) {
  std::vector<OrderKey> keys;
  keys.reserve(orders.size());
  for (const Order& o : orders) {
    keys.emplace_back(o.pickup_node, o.delivery_node, o.quantity,
                      o.create_time_min, o.latest_time_min);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct DayWorld {
  std::shared_ptr<const RoadNetwork> network;
  std::unique_ptr<DemandModel> demand;
};

DayWorld MakeDayWorld() {
  DayWorld w;
  w.network = GenerateCampus(CampusConfig{});
  w.demand = std::make_unique<DemandModel>(*w.network, 48, /*seed=*/11);
  return w;
}

OrderGenConfig SmallOrderConfig() {
  OrderGenConfig config;
  config.mean_orders_per_day = 120.0;
  return config;
}

TEST(ScenarioLayers, SameConfigAndSeedBitwiseIdentical) {
  const DayWorld w = MakeDayWorld();
  OrderGenConfig config = SmallOrderConfig();
  config.demand = BuiltinScenario("adversarial").value().demand;
  config.scenario_seed = 99;
  const std::vector<Order> a =
      GenerateDayOrders(*w.network, *w.demand, config, /*day=*/3, 48, 1440.0,
                        /*seed=*/17);
  const std::vector<Order> b =
      GenerateDayOrders(*w.network, *w.demand, config, /*day=*/3, 48, 1440.0,
                        /*seed=*/17);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pickup_node, b[i].pickup_node);
    EXPECT_EQ(a[i].delivery_node, b[i].delivery_node);
    EXPECT_EQ(a[i].quantity, b[i].quantity);          // Bitwise.
    EXPECT_EQ(a[i].create_time_min, b[i].create_time_min);
    EXPECT_EQ(a[i].latest_time_min, b[i].latest_time_min);
  }
}

TEST(ScenarioLayers, SurgeAddsWithoutTouchingBaseline) {
  const DayWorld w = MakeDayWorld();
  const OrderGenConfig base_config = SmallOrderConfig();
  const std::vector<Order> baseline = GenerateDayOrders(
      *w.network, *w.demand, base_config, /*day=*/5, 48, 1440.0, /*seed=*/17);

  OrderGenConfig surged_config = base_config;
  surged_config.demand.surges.push_back({540.0, 780.0, 2.5, -1});
  surged_config.scenario_seed = 7;
  const std::vector<Order> surged =
      GenerateDayOrders(*w.network, *w.demand, surged_config, /*day=*/5, 48,
                        1440.0, /*seed=*/17);

  // Every baseline order survives, bit for bit; the surge only ADDS.
  const std::vector<OrderKey> base_keys = Keys(baseline);
  const std::vector<OrderKey> surged_keys = Keys(surged);
  EXPECT_GT(surged.size(), baseline.size());
  EXPECT_TRUE(std::includes(surged_keys.begin(), surged_keys.end(),
                            base_keys.begin(), base_keys.end()));

  // Extra orders land inside (or overlapping) the surge window's intervals.
  // The surge stream is seeded by the scenario seed: a different seed draws
  // different extras but the same baseline.
  surged_config.scenario_seed = 8;
  const std::vector<Order> reseeded =
      GenerateDayOrders(*w.network, *w.demand, surged_config, /*day=*/5, 48,
                        1440.0, /*seed=*/17);
  const std::vector<OrderKey> reseeded_keys = Keys(reseeded);
  EXPECT_TRUE(std::includes(reseeded_keys.begin(), reseeded_keys.end(),
                            base_keys.begin(), base_keys.end()));
  EXPECT_NE(reseeded_keys, surged_keys);
}

TEST(ScenarioLayers, ThinningSelectsASubset) {
  const DayWorld w = MakeDayWorld();
  const OrderGenConfig base_config = SmallOrderConfig();
  const std::vector<Order> baseline = GenerateDayOrders(
      *w.network, *w.demand, base_config, /*day=*/2, 48, 1440.0, /*seed=*/17);

  OrderGenConfig thinned_config = base_config;
  thinned_config.demand.rate_scale = 0.5;
  thinned_config.scenario_seed = 7;
  const std::vector<Order> thinned =
      GenerateDayOrders(*w.network, *w.demand, thinned_config, /*day=*/2, 48,
                        1440.0, /*seed=*/17);

  const std::vector<OrderKey> base_keys = Keys(baseline);
  const std::vector<OrderKey> thin_keys = Keys(thinned);
  EXPECT_LT(thinned.size(), baseline.size());
  EXPECT_GT(thinned.size(), 0u);
  EXPECT_TRUE(std::includes(base_keys.begin(), base_keys.end(),
                            thin_keys.begin(), thin_keys.end()));
}

TEST(ScenarioLayers, BurstsAddOnTopOfIntactBaseline) {
  const DayWorld w = MakeDayWorld();
  const OrderGenConfig base_config = SmallOrderConfig();
  const std::vector<Order> baseline = GenerateDayOrders(
      *w.network, *w.demand, base_config, /*day=*/9, 48, 1440.0, /*seed=*/17);

  OrderGenConfig bursty_config = base_config;
  bursty_config.demand.burst_prob = 0.25;
  bursty_config.demand.burst_orders = 5;
  const std::vector<Order> bursty =
      GenerateDayOrders(*w.network, *w.demand, bursty_config, /*day=*/9, 48,
                        1440.0, /*seed=*/17);

  const std::vector<OrderKey> base_keys = Keys(baseline);
  const std::vector<OrderKey> bursty_keys = Keys(bursty);
  EXPECT_GT(bursty.size(), baseline.size());
  EXPECT_TRUE(std::includes(bursty_keys.begin(), bursty_keys.end(),
                            base_keys.begin(), base_keys.end()));
  // Every injected order respects the horizon.
  for (const Order& o : bursty) {
    EXPECT_LT(o.create_time_min, 1440.0);
    EXPECT_GE(o.create_time_min, 0.0);
  }
}

TEST(ScenarioLayers, TravelWaveIsAPureFunction) {
  scenario::TravelLayer wave;
  wave.wave_amplitude = 0.4;
  wave.wave_period_min = 720.0;
  wave.wave_phase_min = 510.0;
  // Crest exactly at the phase, trough half a period later.
  EXPECT_DOUBLE_EQ(wave.ScaleAt(510.0), 1.4);
  EXPECT_DOUBLE_EQ(wave.ScaleAt(510.0 + 360.0), 0.6);
  EXPECT_DOUBLE_EQ(wave.ScaleAt(510.0 + 720.0), 1.4);
  // Composes with the base scale; pathological configs hit the floor, not
  // zero or negative time.
  wave.base_scale = 0.01;
  EXPECT_GT(wave.ScaleAt(510.0 + 360.0), 0.0);
  EXPECT_GE(wave.ScaleAt(510.0 + 360.0), 0.05);
}

// ---------------------------------------------------------------------------
// Fleet layer.

TEST(ScenarioFleet, LargestRemainderApportionmentAndDeterminism) {
  const scenario::FleetLayer layer =
      BuiltinScenario("hetero_fleet").value().fleet;  // Weights 2 : 2 : 1.
  const std::vector<VehicleConfig> profiles = layer.BuildProfiles(10, 3);
  ASSERT_EQ(profiles.size(), 10u);
  int minivans = 0, vans = 0, trucks = 0;
  for (const VehicleConfig& p : profiles) {
    if (p.capacity == 60.0) ++minivans;
    if (p.capacity == 100.0) ++vans;
    if (p.capacity == 220.0) ++trucks;
  }
  EXPECT_EQ(minivans, 4);
  EXPECT_EQ(vans, 4);
  EXPECT_EQ(trucks, 2);

  // Pure function of (layer, n, seed).
  const std::vector<VehicleConfig> again = layer.BuildProfiles(10, 3);
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].capacity, again[i].capacity);
    EXPECT_EQ(profiles[i].speed_kmph, again[i].speed_kmph);
  }

  // Every positive-weight class is represented once the fleet is large
  // enough, even the lightest.
  const std::vector<VehicleConfig> small = layer.BuildProfiles(5, 3);
  int small_trucks = 0;
  for (const VehicleConfig& p : small) {
    if (p.capacity == 220.0) ++small_trucks;
  }
  EXPECT_EQ(small_trucks, 1);
}

// ---------------------------------------------------------------------------
// Worlds: topology, docking, heterogeneous feasibility.

ScenarioMatrixConfig SmallMatrixConfig() {
  ScenarioMatrixConfig config;
  config.mean_orders_per_day = 60.0;
  config.num_orders = 8;
  config.num_vehicles = 4;
  config.day_hi = 1;
  config.episodes = 2;
  return config;
}

TEST(ScenarioWorlds, MultiCampusKeepsCampusZeroBitIdentical) {
  const ScenarioMatrixConfig config = SmallMatrixConfig();
  const ScenarioWorld base =
      BuildScenarioWorld(BuiltinScenario("baseline").value(), config);
  const ScenarioWorld twin =
      BuildScenarioWorld(BuiltinScenario("twin_campus").value(), config);

  const RoadNetwork& base_net = *base.instance.network;
  const RoadNetwork& twin_net = *twin.instance.network;
  EXPECT_EQ(twin_net.num_nodes(), 2 * base_net.num_nodes());
  EXPECT_EQ(twin_net.num_factories(), 2 * base_net.num_factories());
  // Campus 0 of the twin world is node-for-node the single-campus world.
  for (int n = 0; n < base_net.num_nodes(); ++n) {
    EXPECT_EQ(base_net.node(n).x, twin_net.node(n).x) << n;
    EXPECT_EQ(base_net.node(n).y, twin_net.node(n).y) << n;
    EXPECT_EQ(base_net.node(n).kind, twin_net.node(n).kind) << n;
  }
}

TEST(ScenarioWorlds, DockingChargesExactlyTheConfiguredStations) {
  const ScenarioMatrixConfig config = SmallMatrixConfig();
  const Scenario docked = BuiltinScenario("docked").value();
  const ScenarioWorld world = BuildScenarioWorld(docked, config);
  const std::vector<double>& surcharge =
      world.instance.node_service_surcharge_min;
  ASSERT_EQ(surcharge.size(),
            static_cast<size_t>(world.instance.network->num_nodes()));
  int charged = 0;
  for (int n = 0; n < world.instance.network->num_nodes(); ++n) {
    if (surcharge[n] > 0.0) {
      ++charged;
      EXPECT_EQ(world.instance.network->node(n).kind, NodeKind::kFactory);
      EXPECT_DOUBLE_EQ(surcharge[n], docked.topology.dock_surcharge_min);
    }
  }
  EXPECT_EQ(charged, docked.topology.docked_stations);

  // Purity: the same scenario builds the same world, stations included.
  const ScenarioWorld again = BuildScenarioWorld(docked, config);
  EXPECT_EQ(again.instance.node_service_surcharge_min, surcharge);
}

TEST(ScenarioWorlds, HeterogeneousFleetEpisodeIsFeasible) {
  const ScenarioMatrixConfig config = SmallMatrixConfig();
  ScenarioWorld world =
      BuildScenarioWorld(BuiltinScenario("hetero_fleet").value(), config);
  ASSERT_EQ(world.instance.vehicle_profiles.size(),
            static_cast<size_t>(config.num_vehicles));
  world.sim_config.record_plan = true;

  Simulator sim(&world.instance, world.sim_config);
  MinIncrementalLengthDispatcher b1;
  const EpisodeResult result = sim.RunEpisode(&b1);
  EXPECT_GT(result.num_served, 0);
  // The oracle replays every route under each vehicle's OWN class config
  // (capacity, speed, service time) — a planner that ignored per-vehicle
  // configs would produce overloads or missed deadlines here.
  EXPECT_TRUE(dpdp::testing::CheckEpisodeFeasible(world.instance, result));
}

TEST(ScenarioWorlds, AdversarialEpisodeIsFeasibleWithAllLayersOn) {
  const ScenarioMatrixConfig config = SmallMatrixConfig();
  ScenarioWorld world =
      BuildScenarioWorld(BuiltinScenario("adversarial").value(), config);
  world.sim_config.record_plan = true;
  EXPECT_TRUE(world.sim_config.travel.active());

  Simulator sim(&world.instance, world.sim_config);
  MaxAcceptedOrdersDispatcher b3;
  const EpisodeResult result = sim.RunEpisode(&b3);
  EXPECT_GT(result.num_decisions, 0);
  // NOTE: the oracle replays at base travel times, which the active travel
  // wave only slows down or speeds up uniformly per leg; the schedule check
  // uses the planner-independent earliest replay, so only run it when the
  // wave is off. Here we assert plan-structure invariants instead.
  for (size_t v = 0; v < result.routes.size(); ++v) {
    double load = 0.0;
    const VehicleConfig& cfg =
        world.instance.vehicle_config_of(static_cast<int>(v));
    for (const Stop& stop : result.routes[v]) {
      const Order& order = world.instance.order(stop.order_id);
      load += stop.type == StopType::kPickup ? order.quantity
                                             : -order.quantity;
      EXPECT_LE(load, cfg.capacity + 1e-9);
    }
    EXPECT_NEAR(load, 0.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// The matrix harness: worker-count invariance golden.

TEST(ScenarioMatrix, BitIdenticalAcrossThreadCounts) {
  ScenarioMatrixConfig config = SmallMatrixConfig();
  config.scenarios = {BuiltinScenario("baseline").value(),
                      BuiltinScenario("surge_noon").value(),
                      BuiltinScenario("adversarial").value()};
  config.methods = {"B1", "B3"};

  ThreadPool pool1(1);
  const ScenarioMatrixResult serial = RunScenarioMatrix(config, &pool1);
  ThreadPool pool4(4);
  const ScenarioMatrixResult parallel = RunScenarioMatrix(config, &pool4);

  ASSERT_EQ(serial.cells.size(), 6u);
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (size_t i = 0; i < serial.cells.size(); ++i) {
    const ScenarioCell& a = serial.cells[i];
    const ScenarioCell& b = parallel.cells[i];
    EXPECT_EQ(a.scenario, b.scenario) << i;
    EXPECT_EQ(a.method, b.method) << i;
    EXPECT_EQ(a.num_served, b.num_served) << i;
    EXPECT_EQ(a.nuv, b.nuv) << i;              // Bitwise.
    EXPECT_EQ(a.total_cost, b.total_cost) << i;
    EXPECT_EQ(a.reward, b.reward) << i;
    EXPECT_EQ(a.decisions, b.decisions) << i;
    EXPECT_EQ(a.degraded, b.degraded) << i;
    EXPECT_GT(a.decisions, 0) << i;
  }
  // The scenario.* rollup counted both sweeps.
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_GE(registry.GetCounter("scenario.cells")->Value(), 12u);
  EXPECT_GE(registry.GetCounter("scenario.worlds")->Value(), 6u);
}

TEST(ScenarioMatrix, CsvAndTableCoverEveryCell) {
  ScenarioMatrixConfig config = SmallMatrixConfig();
  config.scenarios = {BuiltinScenario("baseline").value(),
                      BuiltinScenario("docked").value()};
  config.methods = {"B1", "B2"};
  ThreadPool pool(2);
  const ScenarioMatrixResult result = RunScenarioMatrix(config, &pool);

  const std::string csv = result.ToCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);  // Header + 4.
  EXPECT_NE(csv.find("baseline,B1"), std::string::npos);
  EXPECT_NE(csv.find("docked,B2"), std::string::npos);
  const std::string table = result.FormatTable();
  EXPECT_NE(table.find("docked"), std::string::npos);
  EXPECT_NE(table.find("B2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Default-config guard: an inactive scenario must leave the existing
// datagen streams untouched (the repo-wide determinism goldens pin the
// sim side; this pins the datagen side explicitly).

TEST(ScenarioDefaults, InactiveScenarioMatchesPlainConfig) {
  const DayWorld w = MakeDayWorld();
  const OrderGenConfig plain = SmallOrderConfig();
  OrderGenConfig with_default_layer = SmallOrderConfig();
  with_default_layer.demand = scenario::DemandLayer{};
  with_default_layer.scenario_seed = 1234567;  // Unused while inactive.
  const std::vector<Order> a = GenerateDayOrders(
      *w.network, *w.demand, plain, /*day=*/1, 48, 1440.0, /*seed=*/17);
  const std::vector<Order> b =
      GenerateDayOrders(*w.network, *w.demand, with_default_layer, /*day=*/1,
                        48, 1440.0, /*seed=*/17);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pickup_node, b[i].pickup_node);
    EXPECT_EQ(a[i].quantity, b[i].quantity);
    EXPECT_EQ(a[i].create_time_min, b[i].create_time_min);
    EXPECT_EQ(a[i].latest_time_min, b[i].latest_time_min);
  }
}

}  // namespace
}  // namespace dpdp
