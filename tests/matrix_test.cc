#include <gtest/gtest.h>

#include <cmath>

#include "nn/matrix.h"

namespace dpdp::nn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m.SumAll(), 0.0);
}

TEST(Matrix, FromRowsAndIdentity) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
}

TEST(Matrix, MatMulAgainstHandResult) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = a.MatMul(b);
  EXPECT_TRUE(c.AllClose(Matrix::FromRows({{58, 64}, {139, 154}})));
}

TEST(Matrix, MatMulTransposedMatchesExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{1, 0, 1}, {2, 1, 0}, {0, 3, 2},
                                     {1, 1, 1}});
  EXPECT_TRUE(a.MatMulTransposed(b).AllClose(a.MatMul(b.Transpose())));
}

TEST(Matrix, TransposedMatMulMatchesExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{1, 0}, {2, 1}});
  EXPECT_TRUE(a.TransposedMatMul(b).AllClose(a.Transpose().MatMul(b)));
}

TEST(Matrix, ElementwiseOps) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  EXPECT_TRUE(a.Add(b).AllClose(Matrix::FromRows({{11, 22}, {33, 44}})));
  EXPECT_TRUE(b.Sub(a).AllClose(Matrix::FromRows({{9, 18}, {27, 36}})));
  EXPECT_TRUE(
      a.Hadamard(b).AllClose(Matrix::FromRows({{10, 40}, {90, 160}})));
  EXPECT_TRUE(a.Scale(2.0).AllClose(Matrix::FromRows({{2, 4}, {6, 8}})));
}

TEST(Matrix, AddScaledAndInPlace) {
  Matrix a = Matrix::FromRows({{1, 1}});
  a.AddScaled(Matrix::FromRows({{2, 4}}), 0.5);
  EXPECT_TRUE(a.AllClose(Matrix::FromRows({{2, 3}})));
  a.AddInPlace(Matrix::FromRows({{1, 1}}));
  EXPECT_TRUE(a.AllClose(Matrix::FromRows({{3, 4}})));
}

TEST(Matrix, RowBroadcastAndSumRows) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix row = Matrix::FromRows({{10, 20}});
  EXPECT_TRUE(a.AddRowBroadcast(row).AllClose(
      Matrix::FromRows({{11, 22}, {13, 24}})));
  EXPECT_TRUE(a.SumRows().AllClose(Matrix::FromRows({{4, 6}})));
}

TEST(Matrix, RowAccessors) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(a.Row(1).AllClose(Matrix::FromRows({{3, 4}})));
  a.SetRow(0, Matrix::FromRows({{9, 9}}));
  EXPECT_DOUBLE_EQ(a(0, 0), 9.0);
}

TEST(Matrix, SoftmaxRowsSumToOneAndOrder) {
  const Matrix logits = Matrix::FromRows({{1.0, 2.0, 3.0}, {0.0, 0.0, 0.0}});
  const Matrix p = logits.SoftmaxRows();
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 1));
  EXPECT_GT(p(0, 1), p(0, 0));
  EXPECT_NEAR(p(1, 0), 1.0 / 3.0, 1e-12);
}

TEST(Matrix, SoftmaxNumericallyStableForLargeLogits) {
  const Matrix logits = Matrix::FromRows({{1000.0, 1001.0}});
  const Matrix p = logits.SoftmaxRows();
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_GT(p(0, 1), p(0, 0));
}

TEST(Matrix, Norms) {
  const Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  const Matrix b = Matrix::FromRows({{0, 0}});
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAll(), 4.0);
}

TEST(Matrix, ResizeKeepsBackingStoreAndSkipsZeroing) {
  Matrix m(4, 4, 7.0);
  const double* before = m.data();
  m.Resize(2, 4);  // Shrink: no reallocation, prefix preserved (same cols).
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 4);
  for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(0, c), 7.0);
  m.Resize(4, 4);  // Grow back within capacity: still no reallocation.
  EXPECT_EQ(m.data(), before);
  EXPECT_EQ(m.size(), 16);
}

TEST(Matrix, ReserveFrontLoadsAllocationWithoutChangingShape) {
  Matrix m(2, 2, 1.0);
  m.Reserve(50, 50);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
  const double* reserved = m.data();
  m.Resize(50, 50);  // Must not reallocate after the Reserve.
  EXPECT_EQ(m.data(), reserved);
}

TEST(Matrix, ShrinkingResizeBoundsWholeMatrixOps) {
  // After a shrinking Resize the backing store still holds stale elements
  // past size(); whole-matrix reductions must ignore them.
  Matrix m(3, 2, 5.0);
  m.Resize(1, 2);
  EXPECT_DOUBLE_EQ(m.SumAll(), 10.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), std::sqrt(50.0));
  m.Fill(0.0);
  m.Resize(3, 2);
  // Re-grown region is unspecified; only shape is guaranteed.
  EXPECT_EQ(m.size(), 6);
}

TEST(Matrix, AllCloseShapeMismatchIsFalse) {
  EXPECT_FALSE(Matrix(1, 2).AllClose(Matrix(2, 1)));
}

TEST(Matrix, DebugStringTruncates) {
  const Matrix m(20, 20, 1.0);
  const std::string s = m.DebugString(2, 2);
  EXPECT_NE(s.find("Matrix(20x20)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace dpdp::nn
