#include "scenario/scenario.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/road_network.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"

namespace dpdp::scenario {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Floor for the composed travel multiplier: a config cannot make travel
/// instant (or negative) no matter how the wave and base scale interact.
constexpr double kMinTravelScale = 0.05;

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitWs(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

Status LineError(int line_no, const std::string& line,
                 const std::string& why) {
  return Status::InvalidArgument("scenario config line " +
                                 std::to_string(line_no) + " (\"" + line +
                                 "\"): " + why);
}

/// Structural validation shared by the parser and the built-ins.
Status ValidateScenario(const Scenario& s) {
  const DemandLayer& d = s.demand;
  if (d.rate_scale < 0.0 || d.rate_scale > 100.0) {
    return Status::InvalidArgument("demand.rate_scale out of [0, 100]");
  }
  for (const SurgeWindow& w : d.surges) {
    if (w.start_min < 0.0 || w.end_min <= w.start_min) {
      return Status::InvalidArgument("surge window must have end > start >= 0");
    }
    if (w.factor < 1.0 || w.factor > 100.0) {
      return Status::InvalidArgument("surge factor out of [1, 100]");
    }
    if (w.factory < -1) {
      return Status::InvalidArgument("surge factory must be >= -1");
    }
  }
  if (d.burst_prob < 0.0 || d.burst_prob > 1.0) {
    return Status::InvalidArgument("demand.burst_prob out of [0, 1]");
  }
  if (d.burst_orders < 0 || d.burst_orders > 10000) {
    return Status::InvalidArgument("demand.burst_orders out of [0, 10000]");
  }
  if (d.burst_duration_min <= 0.0) {
    return Status::InvalidArgument("demand.burst_duration must be positive");
  }
  const TravelLayer& t = s.travel;
  if (t.base_scale <= 0.0 || t.base_scale > 10.0) {
    return Status::InvalidArgument("travel.base_scale out of (0, 10]");
  }
  if (t.wave_amplitude < 0.0 || t.wave_amplitude >= 1.0) {
    return Status::InvalidArgument("travel.wave_amplitude out of [0, 1)");
  }
  if (t.wave_period_min <= 0.0) {
    return Status::InvalidArgument("travel.wave_period must be positive");
  }
  for (const FleetClass& c : s.fleet.classes) {
    if (c.weight <= 0.0) {
      return Status::InvalidArgument("fleet class weight must be positive");
    }
    const VehicleConfig& v = c.config;
    if (v.capacity <= 0.0 || v.fixed_cost < 0.0 || v.cost_per_km < 0.0 ||
        v.speed_kmph <= 0.0 || v.service_time_min < 0.0) {
      return Status::InvalidArgument("invalid fleet class \"" + c.name +
                                     "\"");
    }
  }
  const TopologyLayer& topo = s.topology;
  if (topo.num_campuses < 1 || topo.num_campuses > 64) {
    return Status::InvalidArgument("topology.campuses out of [1, 64]");
  }
  if (topo.campus_spacing_km <= 0.0) {
    return Status::InvalidArgument("topology.spacing_km must be positive");
  }
  if (topo.extra_depots < 0 || topo.extra_depots > 16) {
    return Status::InvalidArgument("topology.extra_depots out of [0, 16]");
  }
  if (topo.docked_stations < 0) {
    return Status::InvalidArgument("topology.docked_stations must be >= 0");
  }
  if (topo.dock_surcharge_min < 0.0 || topo.dock_surcharge_min > 120.0) {
    return Status::InvalidArgument("topology.dock_surcharge out of [0, 120]");
  }
  return Status::OK();
}

}  // namespace

double TravelLayer::ScaleAt(double minute) const {
  double scale = base_scale;
  if (wave_amplitude != 0.0 && wave_period_min > 0.0) {
    const double phase =
        2.0 * kPi * (minute - wave_phase_min) / wave_period_min;
    // Crest at wave_phase_min (and every period after).
    scale *= 1.0 + wave_amplitude * std::cos(phase);
  }
  return std::max(scale, kMinTravelScale);
}

std::vector<VehicleConfig> FleetLayer::BuildProfiles(int num_vehicles,
                                                     uint64_t seed) const {
  std::vector<VehicleConfig> out;
  if (classes.empty() || num_vehicles <= 0) return out;
  double total_weight = 0.0;
  for (const FleetClass& c : classes) total_weight += c.weight;
  DPDP_CHECK(total_weight > 0.0);

  // Largest-remainder apportionment: floor the exact shares, then hand the
  // leftover seats to the largest fractional parts (ties to lower index).
  const int n = static_cast<int>(classes.size());
  std::vector<int> count(n, 0);
  std::vector<std::pair<double, int>> fraction;
  fraction.reserve(n);
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    const double exact = classes[i].weight / total_weight * num_vehicles;
    count[i] = static_cast<int>(std::floor(exact));
    assigned += count[i];
    fraction.emplace_back(exact - count[i], i);
  }
  std::stable_sort(fraction.begin(), fraction.end(),
                   [](const std::pair<double, int>& a,
                      const std::pair<double, int>& b) {
                     return a.first > b.first;
                   });
  for (int k = 0; k < num_vehicles - assigned; ++k) {
    ++count[fraction[k % n].second];
  }

  out.reserve(num_vehicles);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < count[i]; ++j) out.push_back(classes[i].config);
  }
  // Decorrelate class membership from vehicle index / depot assignment.
  Rng rng(Rng::DeriveSeed(seed, kStreamFleet));
  rng.Shuffle(&out);
  return out;
}

Result<Scenario> ParseScenario(const std::string& text) {
  Scenario s;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, raw, "expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return LineError(line_no, raw, "empty key or value");
    }

    if (key == "name") {
      s.name = value;
    } else if (key == "seed") {
      if (!ParseU64(value, &s.seed)) {
        return LineError(line_no, raw, "seed must be an unsigned integer");
      }
    } else if (key == "demand.rate_scale") {
      if (!ParseDouble(value, &s.demand.rate_scale)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "demand.burst_prob") {
      if (!ParseDouble(value, &s.demand.burst_prob)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "demand.burst_orders") {
      if (!ParseInt(value, &s.demand.burst_orders)) {
        return LineError(line_no, raw, "expected an integer");
      }
    } else if (key == "demand.burst_duration") {
      if (!ParseDouble(value, &s.demand.burst_duration_min)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "demand.surge") {
      const std::vector<std::string> toks = SplitWs(value);
      if (toks.size() != 3 && toks.size() != 4) {
        return LineError(line_no, raw,
                         "expected <start_min> <end_min> <factor> [factory]");
      }
      SurgeWindow w;
      if (!ParseDouble(toks[0], &w.start_min) ||
          !ParseDouble(toks[1], &w.end_min) ||
          !ParseDouble(toks[2], &w.factor) ||
          (toks.size() == 4 && !ParseInt(toks[3], &w.factory))) {
        return LineError(line_no, raw, "malformed surge window");
      }
      s.demand.surges.push_back(w);
    } else if (key == "travel.base_scale") {
      if (!ParseDouble(value, &s.travel.base_scale)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "travel.wave_amplitude") {
      if (!ParseDouble(value, &s.travel.wave_amplitude)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "travel.wave_period") {
      if (!ParseDouble(value, &s.travel.wave_period_min)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "travel.wave_phase") {
      if (!ParseDouble(value, &s.travel.wave_phase_min)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "fleet.class") {
      const std::vector<std::string> toks = SplitWs(value);
      if (toks.size() != 7) {
        return LineError(line_no, raw,
                         "expected <name> <weight> <capacity> <fixed_cost> "
                         "<cost_per_km> <speed_kmph> <service_time_min>");
      }
      FleetClass c;
      c.name = toks[0];
      if (!ParseDouble(toks[1], &c.weight) ||
          !ParseDouble(toks[2], &c.config.capacity) ||
          !ParseDouble(toks[3], &c.config.fixed_cost) ||
          !ParseDouble(toks[4], &c.config.cost_per_km) ||
          !ParseDouble(toks[5], &c.config.speed_kmph) ||
          !ParseDouble(toks[6], &c.config.service_time_min)) {
        return LineError(line_no, raw, "malformed fleet class");
      }
      s.fleet.classes.push_back(std::move(c));
    } else if (key == "topology.campuses") {
      if (!ParseInt(value, &s.topology.num_campuses)) {
        return LineError(line_no, raw, "expected an integer");
      }
    } else if (key == "topology.spacing_km") {
      if (!ParseDouble(value, &s.topology.campus_spacing_km)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else if (key == "topology.extra_depots") {
      if (!ParseInt(value, &s.topology.extra_depots)) {
        return LineError(line_no, raw, "expected an integer");
      }
    } else if (key == "topology.docked_stations") {
      if (!ParseInt(value, &s.topology.docked_stations)) {
        return LineError(line_no, raw, "expected an integer");
      }
    } else if (key == "topology.dock_surcharge") {
      if (!ParseDouble(value, &s.topology.dock_surcharge_min)) {
        return LineError(line_no, raw, "expected a number");
      }
    } else {
      return LineError(line_no, raw, "unknown key \"" + key + "\"");
    }
  }
  DPDP_RETURN_IF_ERROR(ValidateScenario(s));
  return s;
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open scenario config " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<Scenario> parsed = ParseScenario(buf.str());
  if (parsed.ok() && parsed.value().name == "baseline") {
    // A file without an explicit name is named after itself.
    Scenario s = std::move(parsed).value();
    s.name = path;
    return s;
  }
  return parsed;
}

const std::vector<std::string>& BuiltinScenarioNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "baseline",      "surge_noon", "bursty", "traffic_waves",
      "hetero_fleet",  "twin_campus", "docked", "adversarial"};
  return *names;
}

Result<Scenario> BuiltinScenario(const std::string& name) {
  Scenario s;
  s.name = name;
  if (name == "baseline") {
    return s;
  }
  if (name == "surge_noon") {
    s.demand.surges.push_back({540.0, 780.0, 2.5, -1});
    return s;
  }
  if (name == "bursty") {
    s.demand.burst_prob = 0.08;
    s.demand.burst_orders = 6;
    s.demand.burst_duration_min = 20.0;
    return s;
  }
  if (name == "traffic_waves") {
    s.travel.wave_amplitude = 0.35;
    s.travel.wave_period_min = 720.0;
    s.travel.wave_phase_min = 510.0;  // Morning-rush crest at 08:30.
    return s;
  }
  if (name == "hetero_fleet") {
    FleetClass minivan;
    minivan.name = "minivan";
    minivan.weight = 2.0;
    minivan.config = {60.0, 180.0, 1.5, 50.0, 8.0};
    FleetClass van;
    van.name = "van";
    van.weight = 2.0;
    van.config = {100.0, 300.0, 2.0, 40.0, 10.0};
    FleetClass truck;
    truck.name = "truck";
    truck.weight = 1.0;
    truck.config = {220.0, 520.0, 3.2, 30.0, 14.0};
    s.fleet.classes = {minivan, van, truck};
    return s;
  }
  if (name == "twin_campus") {
    s.topology.num_campuses = 2;
    s.topology.campus_spacing_km = 25.0;
    return s;
  }
  if (name == "docked") {
    s.topology.docked_stations = 8;
    s.topology.dock_surcharge_min = 4.0;
    return s;
  }
  if (name == "adversarial") {
    s.demand.rate_scale = 1.2;
    s.demand.surges.push_back({540.0, 780.0, 2.0, -1});
    s.demand.burst_prob = 0.05;
    s.demand.burst_orders = 5;
    s.demand.burst_duration_min = 20.0;
    s.travel.wave_amplitude = 0.3;
    s.travel.wave_period_min = 720.0;
    s.travel.wave_phase_min = 510.0;
    FleetClass small;
    small.name = "minivan";
    small.weight = 1.0;
    small.config = {60.0, 180.0, 1.5, 50.0, 8.0};
    FleetClass van;
    van.name = "van";
    van.weight = 2.0;
    van.config = {100.0, 300.0, 2.0, 40.0, 10.0};
    s.fleet.classes = {small, van};
    s.topology.docked_stations = 6;
    s.topology.dock_surcharge_min = 3.0;
    return s;
  }
  return Status::InvalidArgument("unknown built-in scenario \"" + name +
                                 "\"");
}

Scenario ScenarioFromEnv() {
  Scenario s;
  const std::string selector = EnvStr("DPDP_SCENARIO", "");
  if (!selector.empty()) {
    Result<Scenario> chosen = BuiltinScenario(selector);
    if (!chosen.ok()) chosen = LoadScenarioFile(selector);
    DPDP_CHECK_OK(chosen.status());
    s = std::move(chosen).value();
  }
  s.seed = EnvU64Strict("DPDP_SCENARIO_SEED", s.seed);
  s.demand.rate_scale = EnvDoubleStrict("DPDP_SCENARIO_RATE_SCALE",
                                        s.demand.rate_scale, 0.0, 100.0);
  s.travel.wave_amplitude = EnvDoubleStrict(
      "DPDP_SCENARIO_WAVE_AMPLITUDE", s.travel.wave_amplitude, 0.0, 0.999);
  s.demand.burst_prob = EnvDoubleStrict("DPDP_SCENARIO_BURST_PROB",
                                        s.demand.burst_prob, 0.0, 1.0);
  s.topology.num_campuses =
      EnvIntStrict("DPDP_SCENARIO_CAMPUSES", s.topology.num_campuses, 1, 64);
  return s;
}

void ApplyFleetLayer(const FleetLayer& layer, uint64_t seed,
                     Instance* instance) {
  if (!layer.active()) return;
  instance->vehicle_profiles =
      layer.BuildProfiles(instance->num_vehicles(), seed);
}

void ApplyDockingLayer(const TopologyLayer& layer, uint64_t seed,
                       Instance* instance) {
  if (layer.docked_stations <= 0 || layer.dock_surcharge_min <= 0.0) return;
  const RoadNetwork& network = *instance->network;
  std::vector<int> candidates = network.factory_ids();
  Rng rng(Rng::DeriveSeed(seed, kStreamDocking));
  rng.Shuffle(&candidates);
  const int picks = std::min(layer.docked_stations,
                             static_cast<int>(candidates.size()));
  instance->node_service_surcharge_min.assign(network.num_nodes(), 0.0);
  for (int i = 0; i < picks; ++i) {
    instance->node_service_surcharge_min[candidates[i]] =
        layer.dock_surcharge_min;
  }
}

}  // namespace dpdp::scenario
