#ifndef DPDP_SCENARIO_SCENARIO_H_
#define DPDP_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.h"
#include "model/vehicle.h"
#include "util/result.h"

namespace dpdp::scenario {

/// A demand surge window: inside [start_min, end_min) the order arrival
/// rate is multiplied by `factor`. Surges are ADDITIVE layers — the
/// baseline order stream is generated unchanged from its own sub-streams
/// and the surge contributes (factor - 1) x baseline EXTRA orders from a
/// separate sub-stream, so enabling a surge can never shift a baseline
/// draw (the layer-independence contract, tested in scenario_test).
struct SurgeWindow {
  double start_min = 0.0;
  double end_min = 0.0;
  double factor = 1.0;  ///< >= 1; extra rate is (factor - 1) x baseline.
  int factory = -1;     ///< Restrict to one pickup factory; -1 = all.
};

/// Demand layers: baseline Poisson scaling, surge windows, random bursts.
struct DemandLayer {
  /// Global multiplier on the baseline rate. Values < 1 thin the baseline
  /// stream with an independent Bernoulli sub-stream (baseline draws
  /// themselves are unchanged); values > 1 add extra orders at
  /// (rate_scale - 1) x baseline from the surge sub-stream.
  double rate_scale = 1.0;
  std::vector<SurgeWindow> surges;
  /// Per-interval probability of an order burst (flash-sale model from the
  /// On-Demand-Delivery-from-Stores line of work).
  double burst_prob = 0.0;
  int burst_orders = 0;            ///< Orders injected per burst.
  double burst_duration_min = 15.0;

  bool active() const {
    return rate_scale != 1.0 || !surges.empty() ||
           (burst_prob > 0.0 && burst_orders > 0);
  }
};

/// Travel-time layer: a deterministic time-of-day wave multiplied onto
/// every travel time at the vehicle clock. Composes multiplicatively with
/// the PR-2 disruption inflation (whose sub-streams it never touches —
/// the wave is a pure function of the departure minute, consuming no
/// randomness).
struct TravelLayer {
  double base_scale = 1.0;       ///< Static multiplier on all travel times.
  double wave_amplitude = 0.0;   ///< 0 disables the wave; typical 0.1-0.5.
  double wave_period_min = 1440.0;
  double wave_phase_min = 0.0;   ///< Minute of the first wave crest.

  bool active() const { return base_scale != 1.0 || wave_amplitude != 0.0; }

  /// Multiplier at `minute`: base_scale * (1 + A*sin(...)), clamped to a
  /// sane floor so pathological configs cannot make time run backwards.
  double ScaleAt(double minute) const;
};

/// One vehicle class of a heterogeneous fleet.
struct FleetClass {
  std::string name;
  double weight = 1.0;  ///< Relative share of the fleet.
  VehicleConfig config;
};

/// Fleet layer: mixed vehicle classes. Empty = homogeneous (default).
struct FleetLayer {
  std::vector<FleetClass> classes;

  bool active() const { return !classes.empty(); }

  /// Deterministically assigns `num_vehicles` vehicles to classes:
  /// largest-remainder apportionment by weight (every class with positive
  /// weight gets representation as the fleet grows), then a seeded shuffle
  /// so class membership is not correlated with depot assignment. Pure
  /// function of (layer, num_vehicles, seed).
  std::vector<VehicleConfig> BuildProfiles(int num_vehicles,
                                           uint64_t seed) const;
};

/// Topology layer: multi-campus placement and docking-constrained
/// stations. Campus 0 is always generated with the exact pre-scenario
/// stream, so the default topology is bit-for-bit the original world.
struct TopologyLayer {
  int num_campuses = 1;
  double campus_spacing_km = 20.0;  ///< Grid spacing between campuses.
  int extra_depots = 0;             ///< Additional depots per campus.
  /// Number of factory nodes that are docking-constrained: every service
  /// at such a node pays `dock_surcharge_min` extra minutes (the vehicle
  /// waits for a dock). Chosen deterministically from the scenario seed.
  int docked_stations = 0;
  double dock_surcharge_min = 0.0;

  bool active() const {
    return num_campuses > 1 || extra_depots > 0 ||
           (docked_stations > 0 && dock_surcharge_min > 0.0);
  }
};

/// A complete scenario: the pure-function spec for a world. Every stream
/// any layer consumes is forked from (scenario seed, layer tag, episode),
/// so two runs of the same (config, seed) produce bitwise-identical
/// worlds, and the default-constructed Scenario reproduces the
/// pre-scenario repo behaviour exactly.
struct Scenario {
  std::string name = "baseline";
  uint64_t seed = 0;  ///< Mixed into every layer's sub-streams.
  DemandLayer demand;
  TravelLayer travel;
  FleetLayer fleet;
  TopologyLayer topology;

  bool active() const {
    return demand.active() || travel.active() || fleet.active() ||
           topology.active();
  }
};

/// Parses the line-based scenario config DSL. Format: one `key = value`
/// per line, `#` comments, blank lines ignored. Keys:
///   name, seed
///   demand.rate_scale, demand.burst_prob, demand.burst_orders,
///   demand.burst_duration
///   demand.surge = <start_min> <end_min> <factor> [factory]   (repeatable)
///   travel.base_scale, travel.wave_amplitude, travel.wave_period,
///   travel.wave_phase
///   fleet.class = <name> <weight> <capacity> <fixed_cost> <cost_per_km>
///                 <speed_kmph> <service_time_min>               (repeatable)
///   topology.campuses, topology.spacing_km, topology.extra_depots,
///   topology.docked_stations, topology.dock_surcharge
/// Unknown keys, malformed values, and out-of-range numbers are rejected
/// with a message naming the line.
Result<Scenario> ParseScenario(const std::string& text);

/// Reads and parses a scenario config file.
Result<Scenario> LoadScenarioFile(const std::string& path);

/// Names of the built-in scenarios (usable as DPDP_SCENARIO values).
const std::vector<std::string>& BuiltinScenarioNames();

/// Returns the named built-in scenario, or InvalidArgument.
Result<Scenario> BuiltinScenario(const std::string& name);

/// Builds the scenario from the environment. DPDP_SCENARIO selects a
/// built-in by name or a config file by path (default: the inactive
/// baseline). Strict overrides (see util/env.h) applied on top:
///   DPDP_SCENARIO_SEED            u64
///   DPDP_SCENARIO_RATE_SCALE      [0, 100]
///   DPDP_SCENARIO_WAVE_AMPLITUDE  [0, 1]
///   DPDP_SCENARIO_BURST_PROB     [0, 1]
///   DPDP_SCENARIO_CAMPUSES        [1, 64]
Scenario ScenarioFromEnv();

/// Applies the fleet layer to a built instance (sizes vehicle_profiles
/// from the instance's fleet). No-op when the layer is inactive.
void ApplyFleetLayer(const FleetLayer& layer, uint64_t seed,
                     Instance* instance);

/// Applies the docking part of the topology layer: picks
/// `docked_stations` factory nodes by seeded sample and charges
/// `dock_surcharge_min` at each. No-op when inactive.
void ApplyDockingLayer(const TopologyLayer& layer, uint64_t seed,
                       Instance* instance);

/// Stream tags for Rng::Fork — shared by every consumer of scenario
/// randomness so layers can never collide on a sub-stream.
enum StreamTag : uint64_t {
  kStreamBaselineCount = 0,  ///< Baseline per-interval order counts.
  kStreamBaselineAttrs = 1,  ///< Baseline order attributes.
  kStreamThinning = 2,       ///< rate_scale < 1 Bernoulli keep/drop.
  kStreamSurge = 3,          ///< Surge/extra-rate order generation.
  kStreamBurst = 4,          ///< Burst occurrence + burst orders.
  kStreamFleet = 5,          ///< Fleet class shuffle.
  kStreamDocking = 6,        ///< Docked-station sample.
};

}  // namespace dpdp::scenario

#endif  // DPDP_SCENARIO_SCENARIO_H_
