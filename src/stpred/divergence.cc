#include "stpred/divergence.h"

#include <cmath>

#include "util/status.h"

namespace dpdp {

std::vector<double> NormalizeDistribution(const std::vector<double>& v,
                                          double eps) {
  DPDP_CHECK(eps > 0.0);
  std::vector<double> out(v.size());
  double total = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = (v[i] > 0.0 ? v[i] : 0.0) + eps;
    total += out[i];
  }
  for (double& x : out) x /= total;
  return out;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  DPDP_CHECK(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    DPDP_CHECK(q[i] > 0.0);
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

double JsDivergence(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  const std::vector<double> p = NormalizeDistribution(a);
  const std::vector<double> q = NormalizeDistribution(b);
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

double SymmetricKlDivergence(const std::vector<double>& a,
                             const std::vector<double>& b) {
  DPDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  const std::vector<double> p = NormalizeDistribution(a);
  const std::vector<double> q = NormalizeDistribution(b);
  return 0.5 * (KlDivergence(p, q) + KlDivergence(q, p));
}

double Divergence(DivergenceKind kind, const std::vector<double>& a,
                  const std::vector<double>& b) {
  switch (kind) {
    case DivergenceKind::kJensenShannon:
      return JsDivergence(a, b);
    case DivergenceKind::kSymmetricKl:
      return SymmetricKlDivergence(a, b);
  }
  return 0.0;
}

}  // namespace dpdp
