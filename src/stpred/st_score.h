#ifndef DPDP_STPRED_ST_SCORE_H_
#define DPDP_STPRED_ST_SCORE_H_

#include <vector>

#include "model/order.h"
#include "model/vehicle.h"
#include "net/road_network.h"
#include "nn/matrix.h"
#include "routing/route_planner.h"
#include "stpred/divergence.h"

namespace dpdp {

/// Computes the ST Score (Definition 5) of a planned route suffix:
/// the divergence between the route's spatial-temporal *capacity* vector
/// (residual capacity on arrival at each factory stop, Definition 3) and
/// its spatial-temporal *demand* vector (the predicted STD matrix sampled
/// at each stop's (factory, arrival-interval) coordinate, Definition 4).
///
/// Smaller scores mean the vehicle's spare capacity travels through the
/// demand hot spots — a higher chance of "hitchhiking" future orders.
///
/// Depot stops carry no demand and are skipped. A route visiting no
/// factory yields score 0.
double ComputeStScore(const RoadNetwork& network,
                      const std::vector<Stop>& suffix,
                      const SuffixSchedule& schedule,
                      const nn::Matrix& predicted_std, int num_intervals,
                      double horizon_min = kMinutesPerDay,
                      DivergenceKind divergence = DivergenceKind::kJensenShannon);

/// Extracts the capacity and demand vectors without reducing them to a
/// score (for tests and the walkthrough example). Both outputs have one
/// entry per factory stop of the suffix, in visit order.
void BuildStVectors(const RoadNetwork& network,
                    const std::vector<Stop>& suffix,
                    const SuffixSchedule& schedule,
                    const nn::Matrix& predicted_std, int num_intervals,
                    double horizon_min, std::vector<double>* capacity,
                    std::vector<double>* demand);

}  // namespace dpdp

#endif  // DPDP_STPRED_ST_SCORE_H_
