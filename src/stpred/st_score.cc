#include "stpred/st_score.h"

namespace dpdp {

void BuildStVectors(const RoadNetwork& network,
                    const std::vector<Stop>& suffix,
                    const SuffixSchedule& schedule,
                    const nn::Matrix& predicted_std, int num_intervals,
                    double horizon_min, std::vector<double>* capacity,
                    std::vector<double>* demand) {
  DPDP_CHECK(capacity != nullptr && demand != nullptr);
  DPDP_CHECK(suffix.size() == schedule.stops.size());
  DPDP_CHECK(suffix.size() == schedule.residual_capacity.size());
  DPDP_CHECK(predicted_std.rows() == network.num_factories());
  DPDP_CHECK(predicted_std.cols() == num_intervals);
  capacity->clear();
  demand->clear();
  for (size_t s = 0; s < suffix.size(); ++s) {
    const int ordinal = network.FactoryOrdinal(suffix[s].node);
    if (ordinal < 0) continue;  // Depots have no delivery demand.
    const int interval = TimeIntervalIndex(schedule.stops[s].arrival,
                                           num_intervals, horizon_min);
    capacity->push_back(schedule.residual_capacity[s]);
    demand->push_back(predicted_std(ordinal, interval));
  }
}

double ComputeStScore(const RoadNetwork& network,
                      const std::vector<Stop>& suffix,
                      const SuffixSchedule& schedule,
                      const nn::Matrix& predicted_std, int num_intervals,
                      double horizon_min, DivergenceKind divergence) {
  std::vector<double> capacity;
  std::vector<double> demand;
  BuildStVectors(network, suffix, schedule, predicted_std, num_intervals,
                 horizon_min, &capacity, &demand);
  return Divergence(divergence, capacity, demand);
}

}  // namespace dpdp
