#ifndef DPDP_STPRED_STD_MATRIX_H_
#define DPDP_STPRED_STD_MATRIX_H_

#include <vector>

#include "model/order.h"
#include "net/road_network.h"
#include "nn/matrix.h"

namespace dpdp {

/// Builds the STD matrix of Definition 1: an (num_factories x T) matrix
/// whose (i, j) entry is the total cargo quantity of orders created at
/// factory F_i (the pickup node) within time interval TI_j.
nn::Matrix BuildStdMatrix(const RoadNetwork& network,
                          const std::vector<Order>& orders,
                          int num_intervals = kDefaultNumIntervals,
                          double horizon_min = kMinutesPerDay);

/// Spatial-temporal *capacity* distribution: the (num_factories x T) matrix
/// accumulating, for each (factory, interval) visit, how much residual
/// delivery capacity the fleet brought there (used by Fig. 9). Callers add
/// visits one at a time via AddCapacityVisit.
void AddCapacityVisit(const RoadNetwork& network, int node, double time_min,
                      double residual_capacity, int num_intervals,
                      double horizon_min, nn::Matrix* capacity_matrix);

/// Frobenius-norm difference between two equally-shaped distribution
/// matrices — the "Diff" metric of Fig. 9.
double DistributionDiff(const nn::Matrix& demand, const nn::Matrix& capacity);

}  // namespace dpdp

#endif  // DPDP_STPRED_STD_MATRIX_H_
