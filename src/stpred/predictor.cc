#include "stpred/predictor.h"

namespace dpdp {
namespace {

Status ValidateHistory(const std::vector<nn::Matrix>& history) {
  if (history.empty()) {
    return Status::InvalidArgument("predictor needs at least one day");
  }
  for (const nn::Matrix& m : history) {
    if (m.rows() != history[0].rows() || m.cols() != history[0].cols()) {
      return Status::InvalidArgument("history matrices differ in shape");
    }
  }
  return Status::OK();
}

}  // namespace

Result<nn::Matrix> AverageStdPredictor::Predict(
    const std::vector<nn::Matrix>& history) const {
  DPDP_RETURN_IF_ERROR(ValidateHistory(history));
  size_t start = 0;
  if (window_ > 0 && history.size() > static_cast<size_t>(window_)) {
    start = history.size() - static_cast<size_t>(window_);
  }
  nn::Matrix sum(history[0].rows(), history[0].cols());
  for (size_t d = start; d < history.size(); ++d) {
    sum.AddInPlace(history[d]);
  }
  return sum.Scale(1.0 / static_cast<double>(history.size() - start));
}

Result<nn::Matrix> EwmaStdPredictor::Predict(
    const std::vector<nn::Matrix>& history) const {
  DPDP_RETURN_IF_ERROR(ValidateHistory(history));
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    return Status::InvalidArgument("EWMA alpha must be in (0, 1]");
  }
  nn::Matrix acc = history[0];
  for (size_t d = 1; d < history.size(); ++d) {
    acc = acc.Scale(1.0 - alpha_);
    acc.AddScaled(history[d], alpha_);
  }
  return acc;
}

}  // namespace dpdp
