#include "stpred/std_matrix.h"

namespace dpdp {

nn::Matrix BuildStdMatrix(const RoadNetwork& network,
                          const std::vector<Order>& orders,
                          int num_intervals, double horizon_min) {
  nn::Matrix e(network.num_factories(), num_intervals);
  for (const Order& o : orders) {
    const int ordinal = network.FactoryOrdinal(o.pickup_node);
    if (ordinal < 0) continue;  // Orders originating at depots are skipped.
    const int interval =
        TimeIntervalIndex(o.create_time_min, num_intervals, horizon_min);
    e(ordinal, interval) += o.quantity;
  }
  return e;
}

void AddCapacityVisit(const RoadNetwork& network, int node, double time_min,
                      double residual_capacity, int num_intervals,
                      double horizon_min, nn::Matrix* capacity_matrix) {
  DPDP_CHECK(capacity_matrix != nullptr);
  DPDP_CHECK(capacity_matrix->rows() == network.num_factories());
  DPDP_CHECK(capacity_matrix->cols() == num_intervals);
  const int ordinal = network.FactoryOrdinal(node);
  if (ordinal < 0) return;  // Depot visits do not carry delivery capacity.
  const int interval = TimeIntervalIndex(time_min, num_intervals, horizon_min);
  (*capacity_matrix)(ordinal, interval) += residual_capacity;
}

double DistributionDiff(const nn::Matrix& demand, const nn::Matrix& capacity) {
  return demand.FrobeniusDistance(capacity);
}

}  // namespace dpdp
