#ifndef DPDP_STPRED_DIVERGENCE_H_
#define DPDP_STPRED_DIVERGENCE_H_

#include <vector>

namespace dpdp {

/// Divergence metric used by the ST Score (Definition 5). The paper adopts
/// Jensen-Shannon; symmetric KL is the supplementary-material alternative.
enum class DivergenceKind { kJensenShannon, kSymmetricKl };

/// Normalizes a non-negative vector into a probability distribution with
/// additive smoothing `eps` (guards empty/zero vectors: the result is then
/// uniform). Negative inputs are clamped to zero first.
std::vector<double> NormalizeDistribution(const std::vector<double>& v,
                                          double eps = 1e-9);

/// KL(p || q) over distributions of equal length (natural log). Both inputs
/// must already be smoothed/normalized; q entries must be positive.
double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q);

/// Jensen-Shannon divergence of two non-negative vectors of equal length.
/// Inputs are normalized internally; the result lies in [0, ln 2].
double JsDivergence(const std::vector<double>& a,
                    const std::vector<double>& b);

/// Symmetrized KL: 0.5 * (KL(p||q) + KL(q||p)), inputs normalized
/// internally with smoothing.
double SymmetricKlDivergence(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Dispatch on `kind`.
double Divergence(DivergenceKind kind, const std::vector<double>& a,
                  const std::vector<double>& b);

}  // namespace dpdp

#endif  // DPDP_STPRED_DIVERGENCE_H_
