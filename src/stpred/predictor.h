#ifndef DPDP_STPRED_PREDICTOR_H_
#define DPDP_STPRED_PREDICTOR_H_

#include <vector>

#include "nn/matrix.h"
#include "util/result.h"

namespace dpdp {

/// Predicts the next day's STD matrix from the STD matrices of past
/// consecutive days (most recent last). Equation (3) of the paper applies
/// an aggregate function G element-wise over the per-day history.
class StdPredictor {
 public:
  virtual ~StdPredictor() = default;

  /// `history` must be non-empty with identically shaped matrices.
  virtual Result<nn::Matrix> Predict(
      const std::vector<nn::Matrix>& history) const = 0;
};

/// The paper's production choice of G: the plain average over the last
/// `window` days (all of `history` when window <= 0).
class AverageStdPredictor : public StdPredictor {
 public:
  explicit AverageStdPredictor(int window = 0) : window_(window) {}

  Result<nn::Matrix> Predict(
      const std::vector<nn::Matrix>& history) const override;

 private:
  int window_;
};

/// Exponentially weighted moving average: weight alpha for the most recent
/// day, decaying by (1 - alpha) per day backwards. A drop-in "advanced"
/// predictor per the paper's remark that better G functions can be plugged
/// in directly.
class EwmaStdPredictor : public StdPredictor {
 public:
  explicit EwmaStdPredictor(double alpha = 0.5) : alpha_(alpha) {}

  Result<nn::Matrix> Predict(
      const std::vector<nn::Matrix>& history) const override;

 private:
  double alpha_;
};

}  // namespace dpdp

#endif  // DPDP_STPRED_PREDICTOR_H_
