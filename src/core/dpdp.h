#ifndef DPDP_CORE_DPDP_H_
#define DPDP_CORE_DPDP_H_

/// \file
/// Umbrella header: the public API of the DPDP / ST-DDGN library.
///
/// Quickstart (see examples/quickstart.cc for a runnable version):
///
///   dpdp::DpdpDataset dataset(dpdp::StandardDatasetConfig(7, 150.0));
///   dpdp::Instance inst =
///       dataset.SampleInstance("demo", 150, 50, 0, 9, 42);
///   dpdp::AverageStdPredictor predictor;
///   dpdp::nn::Matrix std_pred =
///       predictor.Predict(dataset.History(10, 4)).value();
///   dpdp::DrlOutcome out =
///       dpdp::TrainEvalOnInstance(inst, std_pred, "ST-DDGN", 1, 80);
///
/// Layering (each header is independently includable):
///   util/    Status / Result, RNG, stats, tables, thread pool
///   nn/      matrices, layers, attention, optimizers
///   net/     the campus road network
///   model/   orders, vehicles, instances
///   routing/ the insertion route planner (Algorithm 2)
///   stpred/  STD matrices, demand prediction, ST Score
///   datagen/ synthetic campus + order-stream generation
///   obs/     metrics registry + Chrome-trace span tracer
///   sim/     the dispatching simulator (Algorithm 1)
///   baselines/ greedy dispatch heuristics (Baselines 1-3)
///   rl/      DQN/DDQN/AC/DGN/ST-DDGN agents (Algorithm 3)
///   scenario/ config-driven scenario DSL (demand / travel / fleet /
///            topology layers, pure functions of (config, seed))
///   exact/   branch-and-bound optimal PDP solver
///   serve/   online dispatch fabric (micro-batching, sharding, hot-swap,
///            shedding, deadlines, chaos + supervised failover)
///   train/   Ape-X actor-learner training fabric (actors decide through
///            the serving path, sharded replay, hot-swapped learner)
///   exp/     experiment harness shared by the bench binaries

#include "baselines/greedy_baselines.h"
#include "datagen/campus.h"
#include "datagen/dataset.h"
#include "datagen/demand_model.h"
#include "datagen/order_gen.h"
#include "exact/bnb_solver.h"
#include "exp/harness.h"
#include "exp/scenario_matrix.h"
#include "model/instance.h"
#include "model/instance_io.h"
#include "model/order.h"
#include "model/vehicle.h"
#include "net/road_network.h"
#include "nn/matrix.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "rl/actor_critic.h"
#include "rl/checkpoint.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "rl/trainer.h"
#include "routing/local_search.h"
#include "routing/route_planner.h"
#include "scenario/scenario.h"
#include "serve/chaos.h"
#include "serve/circuit_breaker.h"
#include "serve/dispatch_service.h"
#include "serve/load_generator.h"
#include "serve/model_server.h"
#include "serve/service_dispatcher.h"
#include "serve/shard_router.h"
#include "serve/shard_supervisor.h"
#include "sim/dispatcher.h"
#include "sim/simulator.h"
#include "stpred/divergence.h"
#include "stpred/predictor.h"
#include "stpred/st_score.h"
#include "stpred/std_matrix.h"
#include "train/actor.h"
#include "train/apex.h"
#include "train/learner.h"
#include "train/replay_shard.h"
#include "util/env.h"
#include "util/log.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // DPDP_CORE_DPDP_H_
