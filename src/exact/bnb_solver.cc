#include "exact/bnb_solver.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace dpdp {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

struct BranchAndBoundSolver::SearchState {
  // --- Immutable within one Solve() call ---------------------------------
  WallTimer timer;
  int64_t nodes = 0;
  bool aborted = false;

  // --- Mutable DFS state ---------------------------------------------------
  uint32_t unserved = 0;            ///< Bitmask over order ids.
  std::vector<int> stack;           ///< Onboard order ids (LIFO).
  double load = 0.0;
  int node = -1;                    ///< Current vehicle position.
  double time = 0.0;
  double cost = 0.0;                ///< mu + delta cost accrued so far.
  double length = 0.0;
  int used_vehicles = 0;
  int current_depot = -1;           ///< Depot of the open vehicle.
  std::vector<int> open_depots;     ///< Remaining fresh-vehicle depots pool.
  std::vector<Stop> current_route;
  std::vector<std::vector<Stop>> closed_routes;

  // --- Incumbent ----------------------------------------------------------
  double best_cost = std::numeric_limits<double>::infinity();
  double best_length = 0.0;
  int best_nuv = 0;
  std::vector<std::vector<Stop>> best_routes;
  std::vector<int> route_depots;        ///< Depot per closed/current route.
  std::vector<int> best_route_depots;
};

BranchAndBoundSolver::BranchAndBoundSolver(const Instance* instance,
                                           ExactSolverConfig config)
    : instance_(instance), config_(config) {
  DPDP_CHECK(instance_ != nullptr);
  DPDP_CHECK_OK(ValidateInstance(*instance_));
  DPDP_CHECK(instance_->num_orders() <= 30);  // Bitmask width.
  // The bound and cost bookkeeping assume one shared VehicleConfig; reject
  // heterogeneous-fleet scenario instances rather than mis-price them.
  DPDP_CHECK(instance_->vehicle_profiles.empty());
  DPDP_CHECK(instance_->node_service_surcharge_min.empty());
  const RoadNetwork& net = *instance_->network;
  min_in_.assign(net.num_nodes(), 0.0);
  for (int j = 0; j < net.num_nodes(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < net.num_nodes(); ++i) {
      if (i != j) best = std::min(best, net.Distance(i, j));
    }
    min_in_[j] = best;
  }
}

double BranchAndBoundSolver::ArrivalLowerBound(
    uint32_t unserved_mask, const std::vector<int>& stack) const {
  // Every unserved order still requires an arrival at its pickup and its
  // delivery node; every onboard order requires an arrival at its delivery
  // node. Each arc traversal realizes exactly one arrival, so summing
  // cheapest-incoming-arc costs is admissible.
  double lb = 0.0;
  for (int o = 0; o < instance_->num_orders(); ++o) {
    if (unserved_mask & (1u << o)) {
      lb += min_in_[instance_->order(o).pickup_node];
      lb += min_in_[instance_->order(o).delivery_node];
    }
  }
  for (int o : stack) lb += min_in_[instance_->order(o).delivery_node];
  return lb * instance_->vehicle_config.cost_per_km;
}

void BranchAndBoundSolver::Dfs(SearchState* s) {
  if (s->aborted) return;
  if (++s->nodes % 16384 == 0) {
    if (s->nodes > config_.node_limit ||
        s->timer.ElapsedSeconds() > config_.time_limit_seconds) {
      s->aborted = true;
      return;
    }
  }

  const RoadNetwork& net = *instance_->network;
  const VehicleConfig& cfg = instance_->vehicle_config;

  // Bound: optimistic completion cost.
  if (s->cost + ArrivalLowerBound(s->unserved, s->stack) >=
      s->best_cost - kEps) {
    return;
  }

  // Goal test: everything delivered and nothing onboard -> close the
  // current vehicle and record the incumbent.
  if (s->unserved == 0 && s->stack.empty()) {
    const double back = net.Distance(s->node, s->current_depot);
    const double total_cost = s->cost + cfg.cost_per_km * back;
    if (total_cost < s->best_cost - kEps) {
      s->best_cost = total_cost;
      s->best_length = s->length + back;
      s->best_nuv = s->used_vehicles;
      s->best_routes = s->closed_routes;
      s->best_routes.push_back(s->current_route);
      s->best_route_depots = s->route_depots;
      s->best_route_depots.push_back(s->current_depot);
    }
    return;
  }

  // Move (b): deliver the top of the LIFO stack.
  if (!s->stack.empty()) {
    const Order& order = instance_->order(s->stack.back());
    const double dist = net.Distance(s->node, order.delivery_node);
    const double arrival =
        s->time + net.TravelTimeMinutes(s->node, order.delivery_node,
                                        cfg.speed_kmph);
    if (arrival <= order.latest_time_min + kEps) {
      const int save_node = s->node;
      const double save_time = s->time;
      s->stack.pop_back();
      s->load -= order.quantity;
      s->node = order.delivery_node;
      s->time = arrival + cfg.service_time_min;
      s->cost += cfg.cost_per_km * dist;
      s->length += dist;
      s->current_route.push_back(
          {order.delivery_node, order.id, StopType::kDelivery});

      Dfs(s);

      s->current_route.pop_back();
      s->length -= dist;
      s->cost -= cfg.cost_per_km * dist;
      s->time = save_time;
      s->node = save_node;
      s->load += order.quantity;
      s->stack.push_back(order.id);
    }
  }

  // Move (a): drive to the pickup of an unserved order that fits.
  for (int o = 0; o < instance_->num_orders(); ++o) {
    if (!(s->unserved & (1u << o))) continue;
    const Order& order = instance_->order(o);
    if (s->load + order.quantity > cfg.capacity + kEps) continue;
    // A vehicle must be open to pick up (handled by the caller: Solve()
    // opens vehicle 0; move (c) opens successors).
    const double dist = net.Distance(s->node, order.pickup_node);
    const double arrival =
        s->time +
        net.TravelTimeMinutes(s->node, order.pickup_node, cfg.speed_kmph);
    const double service_start = std::max(arrival, order.create_time_min);

    const int save_node = s->node;
    const double save_time = s->time;
    s->unserved &= ~(1u << o);
    s->stack.push_back(o);
    s->load += order.quantity;
    s->node = order.pickup_node;
    s->time = service_start + cfg.service_time_min;
    s->cost += cfg.cost_per_km * dist;
    s->length += dist;
    s->current_route.push_back({order.pickup_node, o, StopType::kPickup});

    Dfs(s);

    s->current_route.pop_back();
    s->length -= dist;
    s->cost -= cfg.cost_per_km * dist;
    s->time = save_time;
    s->node = save_node;
    s->load -= order.quantity;
    s->stack.pop_back();
    s->unserved |= (1u << o);
  }

  // Move (c): with an empty stack and work remaining, close this vehicle
  // (return leg) and open a fresh vehicle. Only one fresh vehicle per
  // distinct depot needs to be tried (same-depot vehicles are identical).
  if (s->stack.empty() && s->unserved != 0 && !s->current_route.empty() &&
      !s->open_depots.empty()) {
    const double back = net.Distance(s->node, s->current_depot);

    std::vector<int> tried;
    for (size_t d = 0; d < s->open_depots.size(); ++d) {
      const int depot = s->open_depots[d];
      if (std::find(tried.begin(), tried.end(), depot) != tried.end()) {
        continue;
      }
      tried.push_back(depot);

      const int save_node = s->node;
      const double save_time = s->time;
      std::vector<int> save_pool = s->open_depots;
      const int save_depot = s->current_depot;
      s->open_depots.erase(s->open_depots.begin() + d);
      s->closed_routes.push_back(s->current_route);
      s->route_depots.push_back(s->current_depot);
      std::vector<Stop> save_route = std::move(s->current_route);
      s->current_route.clear();
      ++s->used_vehicles;
      s->cost += cfg.cost_per_km * back + cfg.fixed_cost;
      s->length += back;
      s->node = depot;
      s->current_depot = depot;
      s->time = 0.0;

      Dfs(s);

      s->time = save_time;
      s->node = save_node;
      s->current_depot = save_depot;
      s->length -= back;
      s->cost -= cfg.cost_per_km * back + cfg.fixed_cost;
      --s->used_vehicles;
      s->current_route = std::move(save_route);
      s->closed_routes.pop_back();
      s->route_depots.pop_back();
      s->open_depots = std::move(save_pool);
    }
  }
}

ExactSolution BranchAndBoundSolver::Solve() {
  DPDP_TRACE_SPAN("bnb.solve");
  SearchState s;
  s.unserved = (instance_->num_orders() >= 31)
                   ? 0xFFFFFFFFu
                   : ((1u << instance_->num_orders()) - 1u);

  // Vehicle pool: remaining depots, one slot per configured vehicle. The
  // first vehicle opens immediately (its fixed cost is charged up front;
  // if the instance has zero orders the loop below never recurses).
  std::vector<int> pool = instance_->vehicle_depots;
  DPDP_CHECK(!pool.empty());

  ExactSolution out;
  if (instance_->num_orders() == 0) {
    out.found = true;
    out.optimal = true;
    return out;
  }

  // Try each distinct starting depot for vehicle 0.
  std::vector<int> tried;
  for (size_t d = 0; d < pool.size(); ++d) {
    const int depot = pool[d];
    if (std::find(tried.begin(), tried.end(), depot) != tried.end()) {
      continue;
    }
    tried.push_back(depot);
    s.open_depots = pool;
    s.open_depots.erase(s.open_depots.begin() + d);
    s.used_vehicles = 1;
    s.cost = instance_->vehicle_config.fixed_cost;
    s.node = depot;
    s.current_depot = depot;
    s.time = 0.0;
    Dfs(&s);
  }

  out.nodes_explored = s.nodes;
  out.wall_seconds = s.timer.ElapsedSeconds();
  static obs::Counter* nodes_expanded =
      obs::MetricsRegistry::Global().GetCounter("bnb.nodes_expanded");
  static obs::Counter* solves =
      obs::MetricsRegistry::Global().GetCounter("bnb.solves");
  nodes_expanded->Add(s.nodes);
  solves->Add();
  if (s.best_cost < std::numeric_limits<double>::infinity()) {
    out.found = true;
    out.optimal = !s.aborted;
    out.total_cost = s.best_cost;
    out.total_travel_length = s.best_length;
    out.nuv = s.best_nuv;
    out.routes = s.best_routes;
    out.route_depots = s.best_route_depots;
  }
  return out;
}

}  // namespace dpdp
