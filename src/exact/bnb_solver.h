#ifndef DPDP_EXACT_BNB_SOLVER_H_
#define DPDP_EXACT_BNB_SOLVER_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "model/vehicle.h"

namespace dpdp {

/// Limits for the exact search. The paper's MIP becomes intractable past
/// ~7 orders; the same blow-up happens here, so runs are bounded.
struct ExactSolverConfig {
  double time_limit_seconds = 60.0;
  int64_t node_limit = 200'000'000;
};

/// Result of the exact search.
struct ExactSolution {
  bool found = false;    ///< An incumbent (feasible full solution) exists.
  bool optimal = false;  ///< Search exhausted: the incumbent is optimal.
  double nuv = 0.0;
  double total_travel_length = 0.0;
  double total_cost = 0.0;
  std::vector<std::vector<Stop>> routes;  ///< Stops per used vehicle.
  std::vector<int> route_depots;          ///< Start/end depot per route.
  int64_t nodes_explored = 0;
  double wall_seconds = 0.0;
};

/// Exact depth-first branch-and-bound solver for the *static* PDP (all
/// orders known a priori) with the full constraint set: time windows, LIFO
/// loading, capacity and back-to-depot. Minimizes TC = mu*NUV + delta*TTL.
///
/// This is the repo's stand-in for the paper's three-index MIP solved with
/// Gurobi (Table I): both produce the provably optimal solution on tiny
/// instances and blow up combinatorially beyond ~7-8 orders.
///
/// Search structure: routes are built stop-by-stop, one vehicle at a time.
/// At each node the current vehicle may (a) drive to the pickup of any
/// unserved order that fits the residual capacity, (b) deliver the top of
/// its LIFO stack, or (c), with an empty stack, return to its depot and
/// hand over to a fresh vehicle. Pruning uses the incumbent cost against
/// cost-so-far plus an admissible arrival lower bound (every remaining
/// required stop costs at least its cheapest incoming arc). Homogeneous
/// vehicles at the same depot are de-duplicated by opening only one fresh
/// vehicle per depot.
class BranchAndBoundSolver {
 public:
  BranchAndBoundSolver(const Instance* instance, ExactSolverConfig config);

  ExactSolution Solve();

 private:
  struct SearchState;
  void Dfs(SearchState* s);
  double ArrivalLowerBound(uint32_t unserved_mask,
                           const std::vector<int>& stack) const;

  const Instance* instance_;
  ExactSolverConfig config_;
  std::vector<double> min_in_;  ///< Cheapest incoming arc per node.
};

}  // namespace dpdp

#endif  // DPDP_EXACT_BNB_SOLVER_H_
