#include "serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "rl/dqn_agent.h"
#include "sim/environment.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs every client's episode loop concurrently (one pool thread each)
/// and fills the aggregate report. `make_dispatcher` builds client i's
/// dispatcher inside the worker; `collect_latencies` pulls its samples out
/// afterwards.
template <typename MakeClient>
LoadReport RunClients(const std::vector<const Instance*>& instances,
                      const LoadOptions& options, MakeClient make_client) {
  const int n = static_cast<int>(instances.size());
  DPDP_CHECK(n > 0);
  LoadReport report;
  report.clients.resize(n);

  // A private pool with one thread per client: campus concurrency is part
  // of the workload's definition, not a tuning knob, so it must not be
  // capped by DPDP_THREADS (= 1 on single-core hosts).
  ThreadPool pool(n);
  WallTimer timer;
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (int i = 0; i < n; ++i) {
    done.push_back(pool.Submit([&, i] {
      make_client(i, &report.clients[i]);
    }));
  }
  for (std::future<void>& f : done) f.get();
  report.wall_seconds = timer.ElapsedSeconds();

  std::vector<double> all_latencies;
  for (const ClientOutcome& client : report.clients) {
    for (const EpisodeResult& episode : client.episodes) {
      report.total_decisions += episode.num_decisions;
    }
    all_latencies.insert(all_latencies.end(), client.latencies_s.begin(),
                         client.latencies_s.end());
  }
  report.decisions_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.total_decisions) / report.wall_seconds
          : 0.0;
  // Percentiles via the shared histogram-quantile estimator over the
  // standard latency buckets — the same math the telemetry plane applies
  // to the serve.* histograms, so a load report's p99 and a /metrics
  // scrape's p99 come from one definition.
  obs::Histogram histogram("load.latency_s", obs::LatencyBucketsSeconds());
  for (const double seconds : all_latencies) histogram.Record(seconds);
  obs::MetricSnapshot snapshot;
  snapshot.name = histogram.name();
  snapshot.kind = obs::MetricSnapshot::Kind::kHistogram;
  snapshot.count = histogram.Count();
  snapshot.sum = histogram.Sum();
  snapshot.bounds = histogram.bounds();
  snapshot.buckets = histogram.BucketCounts();
  report.p50_us = obs::HistogramQuantile(snapshot, 0.50) * 1e6;
  report.p95_us = obs::HistogramQuantile(snapshot, 0.95) * 1e6;
  report.p99_us = obs::HistogramQuantile(snapshot, 0.99) * 1e6;
  return report;
}

}  // namespace

double PercentileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::min(1.0, std::max(0.0, q));
  const int rank = static_cast<int>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max(0, rank - 1)];
}

LoadReport RunServedLoad(const std::vector<const Instance*>& instances,
                         DecisionService* service,
                         const LoadOptions& options) {
  DPDP_CHECK(service != nullptr);
  // Each client drives the Environment step API directly: Submit the
  // pending decision, block on the reply, Apply it. A degraded reply
  // (vehicle -1) goes straight into Apply, whose greedy fallback and
  // degradation accounting are exactly what a local agent's refusal gets.
  return RunClients(
      instances, options, [&](int i, ClientOutcome* out) {
        Environment env(instances[i], options.sim);
        for (int e = 0; e < options.episodes_per_client; ++e) {
          env.Reset();
          while (env.AdvanceToDecision()) {
            const auto start = std::chrono::steady_clock::now();
            ServeReply reply = service->Submit(env.ObserveDecision()).get();
            const double elapsed = SecondsSince(start);
            out->latencies_s.push_back(elapsed);
            if (reply.shed) ++out->sheds;
            if (reply.degraded) ++out->degraded;
            if (reply.deadline_exceeded) ++out->deadline_exceeded;
            env.Apply(reply.vehicle, elapsed);
          }
          out->episodes.push_back(env.result());
        }
      });
}

LoadReport RunLocalAgentsLoad(const std::vector<const Instance*>& instances,
                              const AgentConfig& agent_config,
                              const LoadOptions& options) {
  return RunClients(
      instances, options, [&](int i, ClientOutcome* out) {
        DqnFleetAgent agent(agent_config,
                            "local-campus-" + std::to_string(i));
        Environment env(instances[i], options.sim);
        for (int e = 0; e < options.episodes_per_client; ++e) {
          env.Reset();
          while (env.AdvanceToDecision()) {
            const auto start = std::chrono::steady_clock::now();
            const int vehicle = agent.Act(env.ObserveDecision());
            out->latencies_s.push_back(SecondsSince(start));
            const int executed =
                env.Apply(vehicle, out->latencies_s.back());
            agent.Observe(env.ObserveDecision(), executed);
          }
          agent.Learn(env.result());
          out->episodes.push_back(env.result());
        }
      });
}

}  // namespace dpdp::serve
