#include "serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "rl/dqn_agent.h"
#include "serve/service_dispatcher.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

/// Measures per-decision ChooseVehicle latency of a wrapped dispatcher
/// (the local-agent counterpart of ServiceDispatcher's built-in timing).
class TimingDispatcher : public Dispatcher {
 public:
  explicit TimingDispatcher(Dispatcher* inner) : inner_(inner) {}

  const char* name() const override { return inner_->name(); }

  int ChooseVehicle(const DispatchContext& context) override {
    const auto start = std::chrono::steady_clock::now();
    const int vehicle = inner_->ChooseVehicle(context);
    latencies_s_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    return vehicle;
  }

  void OnOrderAssigned(const DispatchContext& context, int vehicle) override {
    inner_->OnOrderAssigned(context, vehicle);
  }

  void OnEpisodeEnd(const EpisodeResult& result) override {
    inner_->OnEpisodeEnd(result);
  }

  std::vector<double>& latencies_s() { return latencies_s_; }

 private:
  Dispatcher* const inner_;
  std::vector<double> latencies_s_;
};

/// Runs every client's episode loop concurrently (one pool thread each)
/// and fills the aggregate report. `make_dispatcher` builds client i's
/// dispatcher inside the worker; `collect_latencies` pulls its samples out
/// afterwards.
template <typename MakeClient>
LoadReport RunClients(const std::vector<const Instance*>& instances,
                      const LoadOptions& options, MakeClient make_client) {
  const int n = static_cast<int>(instances.size());
  DPDP_CHECK(n > 0);
  LoadReport report;
  report.clients.resize(n);

  // A private pool with one thread per client: campus concurrency is part
  // of the workload's definition, not a tuning knob, so it must not be
  // capped by DPDP_THREADS (= 1 on single-core hosts).
  ThreadPool pool(n);
  WallTimer timer;
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (int i = 0; i < n; ++i) {
    done.push_back(pool.Submit([&, i] {
      make_client(i, &report.clients[i]);
    }));
  }
  for (std::future<void>& f : done) f.get();
  report.wall_seconds = timer.ElapsedSeconds();

  std::vector<double> all_latencies;
  for (const ClientOutcome& client : report.clients) {
    for (const EpisodeResult& episode : client.episodes) {
      report.total_decisions += episode.num_decisions;
    }
    all_latencies.insert(all_latencies.end(), client.latencies_s.begin(),
                         client.latencies_s.end());
  }
  report.decisions_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.total_decisions) / report.wall_seconds
          : 0.0;
  // Percentiles via the shared histogram-quantile estimator over the
  // standard latency buckets — the same math the telemetry plane applies
  // to the serve.* histograms, so a load report's p99 and a /metrics
  // scrape's p99 come from one definition.
  obs::Histogram histogram("load.latency_s", obs::LatencyBucketsSeconds());
  for (const double seconds : all_latencies) histogram.Record(seconds);
  obs::MetricSnapshot snapshot;
  snapshot.name = histogram.name();
  snapshot.kind = obs::MetricSnapshot::Kind::kHistogram;
  snapshot.count = histogram.Count();
  snapshot.sum = histogram.Sum();
  snapshot.bounds = histogram.bounds();
  snapshot.buckets = histogram.BucketCounts();
  report.p50_us = obs::HistogramQuantile(snapshot, 0.50) * 1e6;
  report.p95_us = obs::HistogramQuantile(snapshot, 0.95) * 1e6;
  report.p99_us = obs::HistogramQuantile(snapshot, 0.99) * 1e6;
  return report;
}

}  // namespace

double PercentileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::min(1.0, std::max(0.0, q));
  const int rank = static_cast<int>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max(0, rank - 1)];
}

LoadReport RunServedLoad(const std::vector<const Instance*>& instances,
                         DecisionService* service,
                         const LoadOptions& options) {
  DPDP_CHECK(service != nullptr);
  return RunClients(
      instances, options, [&](int i, ClientOutcome* out) {
        ServiceDispatcher dispatcher(
            service, "served-campus-" + std::to_string(i));
        Simulator sim(instances[i], options.sim);
        for (int e = 0; e < options.episodes_per_client; ++e) {
          out->episodes.push_back(sim.RunEpisode(&dispatcher));
        }
        out->latencies_s = dispatcher.latencies_s();
        out->sheds = dispatcher.sheds();
        out->degraded = dispatcher.degraded();
        out->deadline_exceeded = dispatcher.deadline_exceeded();
      });
}

LoadReport RunLocalAgentsLoad(const std::vector<const Instance*>& instances,
                              const AgentConfig& agent_config,
                              const LoadOptions& options) {
  return RunClients(
      instances, options, [&](int i, ClientOutcome* out) {
        DqnFleetAgent agent(agent_config,
                            "local-campus-" + std::to_string(i));
        TimingDispatcher timed(&agent);
        Simulator sim(instances[i], options.sim);
        for (int e = 0; e < options.episodes_per_client; ++e) {
          out->episodes.push_back(sim.RunEpisode(&timed));
        }
        out->latencies_s = std::move(timed.latencies_s());
      });
}

}  // namespace dpdp::serve
