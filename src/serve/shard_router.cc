#include "serve/shard_router.h"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/log.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

/// Submit -> admitted-elsewhere latency of rerouted requests (failover
/// overlay or closed-queue hops). Recorded only when a reroute actually
/// happens, so the home-shard fast path pays nothing.
obs::Histogram& RerouteLatency() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "serve.reroute_latency_s", obs::LatencyBucketsSeconds());
  return *histogram;
}

/// Router-side handle for the shared route-hop histogram (the same
/// serve.hop.route_s rows the single-service Submit records).
obs::Histogram& RouteHopLatency() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "serve.hop.route_s", obs::LatencyBucketsSeconds());
  return *histogram;
}

int64_t ToNanos(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kCampusHash:
      return "hash";
    case RouterPolicy::kRoundRobin:
      return "rr";
  }
  return "?";
}

ShardedServeConfig ShardedServeConfigFromEnv() {
  ShardedServeConfig config;
  config.num_shards = EnvInt("DPDP_SERVE_SHARDS", config.num_shards);
  const std::string policy = EnvStr("DPDP_SERVE_ROUTER", "hash");
  if (policy == "rr" || policy == "round_robin") {
    config.policy = RouterPolicy::kRoundRobin;
  } else {
    if (policy != "hash") {
      DPDP_LOG(WARN) << "unknown DPDP_SERVE_ROUTER '" << policy
                     << "', using hash";
    }
    config.policy = RouterPolicy::kCampusHash;
  }
  config.shard = ServeConfigFromEnv();
  return config;
}

uint64_t CampusHash(std::string_view campus_name) {
  // FNV-1a 64: tiny, allocation-free, and stable across platforms — the
  // campus -> shard partition is part of the fabric's observable contract.
  uint64_t h = 14695981039346656037ull;
  for (const char c : campus_name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

ShardRouter::ShardRouter(const ShardedServeConfig& config, ModelServer* models)
    : config_(config) {
  DPDP_CHECK(config_.num_shards >= 1);
  DPDP_CHECK(models != nullptr);
  shards_.reserve(config_.num_shards);
  for (int k = 0; k < config_.num_shards; ++k) {
    shards_.push_back(std::make_unique<DispatchService>(config_.shard, models,
                                                        ShardTag{k}));
  }
  tripped_.assign(config_.num_shards, false);
  obs::MetricsRegistry::Global()
      .GetGauge("serve.shards")
      ->Set(static_cast<double>(config_.num_shards));
}

ShardRouter::~ShardRouter() { Stop(); }

int ShardRouter::ShardOfCampus(std::string_view campus_name) const {
  return static_cast<int>(CampusHash(campus_name) %
                          static_cast<uint64_t>(shards_.size()));
}

int ShardRouter::ShardOf(const DispatchContext& context) {
  if (config_.policy == RouterPolicy::kRoundRobin) {
    return static_cast<int>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(shards_.size()));
  }
  DPDP_CHECK(context.instance != nullptr);
  return ShardOfCampus(context.instance->name);
}

std::shared_ptr<const ShardRouter::Overlay> ShardRouter::CurrentOverlay()
    const {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  return overlay_;
}

void ShardRouter::RebuildOverlayLocked() {
  bool any = false;
  for (const bool t : tripped_) any = any || t;
  if (!any) {
    overlay_ = nullptr;  // All healthy: back to the overlay-free fast path.
  } else {
    auto overlay = std::make_shared<Overlay>();
    const int n = num_shards();
    overlay->redirect.resize(n);
    for (int home = 0; home < n; ++home) {
      int target = home;
      if (tripped_[home]) {
        // The next untripped shard, scanning upward with wraparound; if
        // every shard is tripped, traffic stays home (and the closed-queue
        // hop in Submit does what it can).
        for (int i = 1; i < n; ++i) {
          const int candidate = (home + i) % n;
          if (!tripped_[candidate]) {
            target = candidate;
            break;
          }
        }
      }
      overlay->redirect[home] = target;
    }
    overlay_ = std::move(overlay);
  }
  overlay_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void ShardRouter::TripShard(int k) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  DPDP_CHECK(k >= 0 && k < num_shards());
  if (tripped_[k]) return;
  tripped_[k] = true;
  RebuildOverlayLocked();
  obs::RecordFlight(obs::FlightEventKind::kReroute, "serve.trip", k,
                    static_cast<uint64_t>(overlay_ ? overlay_->redirect[k]
                                                   : k));
}

void ShardRouter::RestoreShard(int k) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  DPDP_CHECK(k >= 0 && k < num_shards());
  if (!tripped_[k]) return;
  tripped_[k] = false;
  RebuildOverlayLocked();
  obs::RecordFlight(obs::FlightEventKind::kRestore, "serve.restore", k);
}

bool ShardRouter::IsTripped(int k) const {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  return tripped_[k];
}

int ShardRouter::RedirectOf(int home) const {
  const std::shared_ptr<const Overlay> overlay = CurrentOverlay();
  return overlay ? overlay->redirect[home] : home;
}

std::future<ServeReply> ShardRouter::Submit(const DispatchContext& context) {
  const int64_t route_start = obs::TraceEnabled() ? MonotonicNanos() : 0;
  const int home = ShardOf(context);
  const std::shared_ptr<const Overlay> overlay = CurrentOverlay();
  int target = overlay ? overlay->redirect[home] : home;
  DispatchService& home_shard = *shards_[home];
  DecisionRequest request = home_shard.MakeRequest(context);
  std::future<ServeReply> fut = request.reply.get_future();
  const int64_t enqueue_ns = ToNanos(request.enqueue_time);
  if (request.trace.active()) {
    // The routing hop (shard choice + overlay lookup) starts the request's
    // flow lane; admission hops below extend it.
    const int64_t now = MonotonicNanos();
    request.trace = obs::RecordHop("serve.hop.route", request.trace,
                                   route_start, now, obs::FlowPhase::kStart);
    RouteHopLatency().Record(static_cast<double>(now - route_start) / 1e9);
  }
  const int n = num_shards();
  for (int hop = 0; hop < n; ++hop) {
    DispatchService* shard = shards_[target].get();
    if (request.trace.active() && target != home) {
      // One reroute hop per diverted admission attempt, recorded before
      // Admit can move the request into the target's queue.
      const int64_t now = MonotonicNanos();
      request.trace = obs::RecordHop("serve.hop.reroute", request.trace, now,
                                     now, obs::FlowPhase::kStep);
    }
    const PushResult result = shard->Admit(&request);
    if (result == PushResult::kAdmitted) {
      if (target != home) {
        home_shard.CountReroute();
        RerouteLatency().Record(
            static_cast<double>(MonotonicNanos() - enqueue_ns) / 1e9);
      }
      return fut;
    }
    if (result == PushResult::kFull) {
      // Transient overload at the target: shed there (Admit counted the
      // request against it), exactly the single-shard policy.
      shard->AnswerShed(&request, /*closed_reject=*/false);
      return fut;
    }
    // kClosed: the target is down (crashed or restarting) and never saw
    // the request — hop to the next shard.
    target = (target + 1) % n;
  }
  // Every queue closed: the fabric is stopping. Count the request and the
  // shed against the home shard so the rollup still balances.
  home_shard.CountRequest();
  home_shard.AnswerShed(&request, /*closed_reject=*/true);
  return fut;
}

void ShardRouter::Stop() {
  for (std::unique_ptr<DispatchService>& shard : shards_) shard->Stop();
}

RouterStats ShardRouter::Stats() const {
  RouterStats stats;
  stats.shards.reserve(shards_.size());
  for (const std::unique_ptr<DispatchService>& shard : shards_) {
    ShardStats s;
    s.requests = shard->requests();
    s.sheds = shard->sheds();
    s.sheds_closed = shard->sheds_closed();
    s.batches = shard->batches();
    s.degraded = shard->degraded();
    s.deadline_exceeded = shard->deadline_exceeded();
    s.rerouted = shard->rerouted();
    s.restarts = shard->restarts();
    s.swaps_applied = shard->swaps_applied();
    stats.total.requests += s.requests;
    stats.total.sheds += s.sheds;
    stats.total.sheds_closed += s.sheds_closed;
    stats.total.batches += s.batches;
    stats.total.degraded += s.degraded;
    stats.total.deadline_exceeded += s.deadline_exceeded;
    stats.total.rerouted += s.rerouted;
    stats.total.restarts += s.restarts;
    stats.total.swaps_applied += s.swaps_applied;
    stats.shards.push_back(s);
  }
  return stats;
}

}  // namespace dpdp::serve
