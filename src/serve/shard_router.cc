#include "serve/shard_router.h"

#include <utility>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/log.h"

namespace dpdp::serve {

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kCampusHash:
      return "hash";
    case RouterPolicy::kRoundRobin:
      return "rr";
  }
  return "?";
}

ShardedServeConfig ShardedServeConfigFromEnv() {
  ShardedServeConfig config;
  config.num_shards = EnvInt("DPDP_SERVE_SHARDS", config.num_shards);
  const std::string policy = EnvStr("DPDP_SERVE_ROUTER", "hash");
  if (policy == "rr" || policy == "round_robin") {
    config.policy = RouterPolicy::kRoundRobin;
  } else {
    if (policy != "hash") {
      DPDP_LOG(WARN) << "unknown DPDP_SERVE_ROUTER '" << policy
                     << "', using hash";
    }
    config.policy = RouterPolicy::kCampusHash;
  }
  config.shard = ServeConfigFromEnv();
  return config;
}

uint64_t CampusHash(std::string_view campus_name) {
  // FNV-1a 64: tiny, allocation-free, and stable across platforms — the
  // campus -> shard partition is part of the fabric's observable contract.
  uint64_t h = 14695981039346656037ull;
  for (const char c : campus_name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

ShardRouter::ShardRouter(const ShardedServeConfig& config, ModelServer* models)
    : config_(config) {
  DPDP_CHECK(config_.num_shards >= 1);
  DPDP_CHECK(models != nullptr);
  shards_.reserve(config_.num_shards);
  for (int k = 0; k < config_.num_shards; ++k) {
    shards_.push_back(std::make_unique<DispatchService>(config_.shard, models,
                                                        ShardTag{k}));
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.shards")
      ->Set(static_cast<double>(config_.num_shards));
}

ShardRouter::~ShardRouter() { Stop(); }

int ShardRouter::ShardOfCampus(std::string_view campus_name) const {
  return static_cast<int>(CampusHash(campus_name) %
                          static_cast<uint64_t>(shards_.size()));
}

int ShardRouter::ShardOf(const DispatchContext& context) {
  if (config_.policy == RouterPolicy::kRoundRobin) {
    return static_cast<int>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(shards_.size()));
  }
  DPDP_CHECK(context.instance != nullptr);
  return ShardOfCampus(context.instance->name);
}

std::future<ServeReply> ShardRouter::Submit(const DispatchContext& context) {
  return shards_[ShardOf(context)]->Submit(context);
}

void ShardRouter::Stop() {
  for (std::unique_ptr<DispatchService>& shard : shards_) shard->Stop();
}

RouterStats ShardRouter::Stats() const {
  RouterStats stats;
  stats.shards.reserve(shards_.size());
  for (const std::unique_ptr<DispatchService>& shard : shards_) {
    ShardStats s;
    s.requests = shard->requests();
    s.sheds = shard->sheds();
    s.batches = shard->batches();
    s.degraded = shard->degraded();
    s.swaps_applied = shard->swaps_applied();
    stats.total.requests += s.requests;
    stats.total.sheds += s.sheds;
    stats.total.batches += s.batches;
    stats.total.degraded += s.degraded;
    stats.total.swaps_applied += s.swaps_applied;
    stats.shards.push_back(s);
  }
  return stats;
}

}  // namespace dpdp::serve
