#include "serve/shard_router.h"

#include <utility>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/log.h"

namespace dpdp::serve {

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kCampusHash:
      return "hash";
    case RouterPolicy::kRoundRobin:
      return "rr";
  }
  return "?";
}

ShardedServeConfig ShardedServeConfigFromEnv() {
  ShardedServeConfig config;
  config.num_shards = EnvInt("DPDP_SERVE_SHARDS", config.num_shards);
  const std::string policy = EnvStr("DPDP_SERVE_ROUTER", "hash");
  if (policy == "rr" || policy == "round_robin") {
    config.policy = RouterPolicy::kRoundRobin;
  } else {
    if (policy != "hash") {
      DPDP_LOG(WARN) << "unknown DPDP_SERVE_ROUTER '" << policy
                     << "', using hash";
    }
    config.policy = RouterPolicy::kCampusHash;
  }
  config.shard = ServeConfigFromEnv();
  return config;
}

uint64_t CampusHash(std::string_view campus_name) {
  // FNV-1a 64: tiny, allocation-free, and stable across platforms — the
  // campus -> shard partition is part of the fabric's observable contract.
  uint64_t h = 14695981039346656037ull;
  for (const char c : campus_name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

ShardRouter::ShardRouter(const ShardedServeConfig& config, ModelServer* models)
    : config_(config) {
  DPDP_CHECK(config_.num_shards >= 1);
  DPDP_CHECK(models != nullptr);
  shards_.reserve(config_.num_shards);
  for (int k = 0; k < config_.num_shards; ++k) {
    shards_.push_back(std::make_unique<DispatchService>(config_.shard, models,
                                                        ShardTag{k}));
  }
  tripped_.assign(config_.num_shards, false);
  obs::MetricsRegistry::Global()
      .GetGauge("serve.shards")
      ->Set(static_cast<double>(config_.num_shards));
}

ShardRouter::~ShardRouter() { Stop(); }

int ShardRouter::ShardOfCampus(std::string_view campus_name) const {
  return static_cast<int>(CampusHash(campus_name) %
                          static_cast<uint64_t>(shards_.size()));
}

int ShardRouter::ShardOf(const DispatchContext& context) {
  if (config_.policy == RouterPolicy::kRoundRobin) {
    return static_cast<int>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(shards_.size()));
  }
  DPDP_CHECK(context.instance != nullptr);
  return ShardOfCampus(context.instance->name);
}

std::shared_ptr<const ShardRouter::Overlay> ShardRouter::CurrentOverlay()
    const {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  return overlay_;
}

void ShardRouter::RebuildOverlayLocked() {
  bool any = false;
  for (const bool t : tripped_) any = any || t;
  if (!any) {
    overlay_ = nullptr;  // All healthy: back to the overlay-free fast path.
  } else {
    auto overlay = std::make_shared<Overlay>();
    const int n = num_shards();
    overlay->redirect.resize(n);
    for (int home = 0; home < n; ++home) {
      int target = home;
      if (tripped_[home]) {
        // The next untripped shard, scanning upward with wraparound; if
        // every shard is tripped, traffic stays home (and the closed-queue
        // hop in Submit does what it can).
        for (int i = 1; i < n; ++i) {
          const int candidate = (home + i) % n;
          if (!tripped_[candidate]) {
            target = candidate;
            break;
          }
        }
      }
      overlay->redirect[home] = target;
    }
    overlay_ = std::move(overlay);
  }
  overlay_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void ShardRouter::TripShard(int k) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  DPDP_CHECK(k >= 0 && k < num_shards());
  if (tripped_[k]) return;
  tripped_[k] = true;
  RebuildOverlayLocked();
}

void ShardRouter::RestoreShard(int k) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  DPDP_CHECK(k >= 0 && k < num_shards());
  if (!tripped_[k]) return;
  tripped_[k] = false;
  RebuildOverlayLocked();
}

bool ShardRouter::IsTripped(int k) const {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  return tripped_[k];
}

int ShardRouter::RedirectOf(int home) const {
  const std::shared_ptr<const Overlay> overlay = CurrentOverlay();
  return overlay ? overlay->redirect[home] : home;
}

std::future<ServeReply> ShardRouter::Submit(const DispatchContext& context) {
  const int home = ShardOf(context);
  const std::shared_ptr<const Overlay> overlay = CurrentOverlay();
  int target = overlay ? overlay->redirect[home] : home;
  DispatchService& home_shard = *shards_[home];
  DecisionRequest request = home_shard.MakeRequest(context);
  std::future<ServeReply> fut = request.reply.get_future();
  const int n = num_shards();
  for (int hop = 0; hop < n; ++hop) {
    DispatchService* shard = shards_[target].get();
    const PushResult result = shard->Admit(&request);
    if (result == PushResult::kAdmitted) {
      if (target != home) home_shard.CountReroute();
      return fut;
    }
    if (result == PushResult::kFull) {
      // Transient overload at the target: shed there (Admit counted the
      // request against it), exactly the single-shard policy.
      shard->AnswerShed(&request, /*closed_reject=*/false);
      return fut;
    }
    // kClosed: the target is down (crashed or restarting) and never saw
    // the request — hop to the next shard.
    target = (target + 1) % n;
  }
  // Every queue closed: the fabric is stopping. Count the request and the
  // shed against the home shard so the rollup still balances.
  home_shard.CountRequest();
  home_shard.AnswerShed(&request, /*closed_reject=*/true);
  return fut;
}

void ShardRouter::Stop() {
  for (std::unique_ptr<DispatchService>& shard : shards_) shard->Stop();
}

RouterStats ShardRouter::Stats() const {
  RouterStats stats;
  stats.shards.reserve(shards_.size());
  for (const std::unique_ptr<DispatchService>& shard : shards_) {
    ShardStats s;
    s.requests = shard->requests();
    s.sheds = shard->sheds();
    s.sheds_closed = shard->sheds_closed();
    s.batches = shard->batches();
    s.degraded = shard->degraded();
    s.deadline_exceeded = shard->deadline_exceeded();
    s.rerouted = shard->rerouted();
    s.restarts = shard->restarts();
    s.swaps_applied = shard->swaps_applied();
    stats.total.requests += s.requests;
    stats.total.sheds += s.sheds;
    stats.total.sheds_closed += s.sheds_closed;
    stats.total.batches += s.batches;
    stats.total.degraded += s.degraded;
    stats.total.deadline_exceeded += s.deadline_exceeded;
    stats.total.rerouted += s.rerouted;
    stats.total.restarts += s.restarts;
    stats.total.swaps_applied += s.swaps_applied;
    stats.shards.push_back(s);
  }
  return stats;
}

}  // namespace dpdp::serve
