#ifndef DPDP_SERVE_MODEL_SERVER_H_
#define DPDP_SERVE_MODEL_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/matrix.h"
#include "rl/config.h"
#include "util/status.h"

namespace dpdp::serve {

/// An immutable, refcount-retired policy snapshot. Once published it is
/// never written again: in-flight batches keep their shared_ptr and finish
/// on the weights they started with, and the old snapshot's storage is
/// freed when the last holder drops it — hot-swap without pausing.
struct ModelSnapshot {
  uint64_t seq = 0;       ///< Publication order; strictly increasing.
  int episodes_done = 0;  ///< Training progress recorded in the source.
  std::string source;     ///< Checkpoint path, or "init" for the seed.
  std::vector<nn::Matrix> weights;  ///< Params() order of MakeQNetwork.
};

/// Owns the current ModelSnapshot and the checkpoint-directory watcher
/// that refreshes it.
///
/// Construction publishes snapshot seq 0 with the deterministic weight
/// init of `config` — identical to a freshly constructed DqnFleetAgent
/// with the same config, so a service running on the init snapshot emits
/// exactly the decisions of local agents built from that config.
///
/// The watcher polls a directory of `*.ckpt` files and publishes any file
/// whose footer seq is strictly newer than the current snapshot's.
/// Staleness and integrity are judged by the checkpoint footer (seq +
/// CRC), never by mtime: a torn or partially renamed file fails its CRC
/// and is skipped, an old file re-appearing (copy, restore) has a smaller
/// seq and is skipped, and the `.tmp` staging files of an in-progress
/// atomic save are never considered at all.
class ModelServer {
 public:
  explicit ModelServer(const AgentConfig& config);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// The current snapshot; never null. Callers hold the shared_ptr for as
  /// long as they use the weights.
  std::shared_ptr<const ModelSnapshot> Current() const;

  /// Publishes `snapshot` if it is strictly newer than the current one.
  /// Returns true when it became current.
  bool Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Validates `path` (CRC + seq via ReadCheckpointInfo), restores it into
  /// a scratch agent, and publishes the extracted policy weights. A stale
  /// seq yields OK without publishing (the caller polled an old file, not
  /// an error).
  Status LoadCheckpointFile(const std::string& path);

  /// One watcher sweep over `model_dir`: every *.ckpt file is probed and
  /// the newest valid one (by footer seq) is loaded if it beats the
  /// current snapshot. Invalid files are counted and skipped. Returns the
  /// number of snapshots published (0 or 1).
  int PollOnce(const std::string& model_dir);

  /// Starts the background watcher over `model_dir` (empty: reads
  /// DPDP_SERVE_MODEL_DIR; still empty: no-op). Polls every `poll_ms`
  /// (<= 0: reads DPDP_SERVE_POLL_MS, default 50).
  void StartWatcher(const std::string& model_dir = "", int poll_ms = 0);

  /// Stops and joins the watcher thread. Safe to call repeatedly.
  void StopWatcher();

  const AgentConfig& config() const { return config_; }
  uint64_t current_seq() const { return Current()->seq; }

 private:
  const AgentConfig config_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;

  std::mutex watcher_mu_;  ///< Guards watcher lifecycle + stop flag.
  std::condition_variable watcher_cv_;
  std::thread watcher_;
  bool watcher_stop_ = false;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_MODEL_SERVER_H_
