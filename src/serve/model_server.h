#ifndef DPDP_SERVE_MODEL_SERVER_H_
#define DPDP_SERVE_MODEL_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/matrix.h"
#include "rl/config.h"
#include "util/status.h"

namespace dpdp::serve {

/// An immutable, refcount-retired policy snapshot. Once published it is
/// never written again: in-flight batches keep their shared_ptr and finish
/// on the weights they started with, and the old snapshot's storage is
/// freed when the last holder drops it — hot-swap without pausing.
struct ModelSnapshot {
  uint64_t seq = 0;       ///< Publication order; strictly increasing.
  int episodes_done = 0;  ///< Training progress recorded in the source.
  std::string source;     ///< Checkpoint path, or "init" for the seed.
  std::vector<nn::Matrix> weights;  ///< Params() order of MakeQNetwork.
};

/// Owns the current ModelSnapshot and the checkpoint-directory watcher
/// that refreshes it.
///
/// Construction publishes snapshot seq 0 with the deterministic weight
/// init of `config` — identical to a freshly constructed DqnFleetAgent
/// with the same config, so a service running on the init snapshot emits
/// exactly the decisions of local agents built from that config.
///
/// The watcher polls a directory of `*.ckpt` files and publishes any file
/// whose footer seq is strictly newer than the current snapshot's.
/// Staleness and integrity are judged by the checkpoint footer (seq +
/// CRC), never by mtime: a torn or partially renamed file fails its CRC
/// and is skipped, an old file re-appearing (copy, restore) has a smaller
/// seq and is skipped, and the `.tmp` staging files of an in-progress
/// atomic save are never considered at all.
///
/// Quarantine: a file that fails its probe is retried on later polls (it
/// may be a writer race that resolves), but only kQuarantineProbeLimit
/// times. A file still failing then is persistently corrupt, and
/// re-reading it every poll is wasted I/O forever — it is quarantined:
/// renamed to `<path>.bad` (out of the watcher's glob), or skip-listed in
/// memory when the rename fails (read-only directory). Either way it is
/// counted once in serve.ckpt_rejected. A quarantined path is probed
/// again only if its size or mtime changes (a writer replaced it).
class ModelServer {
 public:
  explicit ModelServer(const AgentConfig& config);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// The current snapshot; never null. Callers hold the shared_ptr for as
  /// long as they use the weights.
  std::shared_ptr<const ModelSnapshot> Current() const;

  /// Publishes `snapshot` if it is strictly newer than the current one.
  /// Returns true when it became current.
  bool Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Validates `path` (CRC + seq via ReadCheckpointInfo), restores it into
  /// a scratch agent, and publishes the extracted policy weights. A stale
  /// seq yields OK without publishing (the caller polled an old file, not
  /// an error).
  Status LoadCheckpointFile(const std::string& path);

  /// One watcher sweep over `model_dir`: every *.ckpt file is probed and
  /// the newest valid one (by footer seq) is loaded if it beats the
  /// current snapshot. Invalid files are counted and skipped. Returns the
  /// number of snapshots published (0 or 1).
  int PollOnce(const std::string& model_dir);

  /// Starts the background watcher over `model_dir` (empty: reads
  /// DPDP_SERVE_MODEL_DIR; still empty: no-op). Polls every `poll_ms`
  /// (<= 0: reads DPDP_SERVE_POLL_MS, default 50).
  void StartWatcher(const std::string& model_dir = "", int poll_ms = 0);

  /// Stops and joins the watcher thread. Safe to call repeatedly.
  void StopWatcher();

  const AgentConfig& config() const { return config_; }
  uint64_t current_seq() const { return Current()->seq; }

  /// Consecutive probe failures before a checkpoint file is quarantined.
  static constexpr int kQuarantineProbeLimit = 3;

  /// True while `path` is on the in-memory skip-list (rename-failed
  /// quarantine). Renamed-away files are not listed — they are gone.
  bool IsQuarantined(const std::string& path) const;

 private:
  /// Probe-failure history of one checkpoint path. size/mtime fingerprint
  /// the file content cheaply: any change resets the failure streak (the
  /// writer replaced the file; give the new content a fresh chance).
  struct ProbeFailures {
    int failures = 0;
    std::uintmax_t size = 0;
    int64_t mtime = 0;
    bool quarantined = false;  ///< Skip-listed (rename to .bad failed).
  };

  /// Returns true when `path` should be skipped without probing.
  bool ShouldSkipQuarantined(const std::string& path, std::uintmax_t size,
                             int64_t mtime);
  /// Records a failed probe; quarantines the path at the limit.
  void RecordProbeFailure(const std::string& path, std::uintmax_t size,
                          int64_t mtime);

  const AgentConfig config_;

  mutable std::mutex quarantine_mu_;
  std::map<std::string, ProbeFailures> probe_failures_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;

  std::mutex watcher_mu_;  ///< Guards watcher lifecycle + stop flag.
  std::condition_variable watcher_cv_;
  std::thread watcher_;
  bool watcher_stop_ = false;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_MODEL_SERVER_H_
