#ifndef DPDP_SERVE_SHARD_SUPERVISOR_H_
#define DPDP_SERVE_SHARD_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/circuit_breaker.h"
#include "serve/shard_router.h"

namespace dpdp::serve {

/// Watchdog cadence + health thresholds of the ShardSupervisor.
struct SupervisorConfig {
  /// Watchdog scan period. Detection latency for a dead/stuck shard is at
  /// most one period (plus the stuck threshold below).
  int watchdog_period_ms = 20;
  /// A shard whose service loop has not reached an iteration boundary for
  /// this long WHILE its queue is non-empty is declared stuck. An idle
  /// loop parked on an empty queue has an arbitrarily old heartbeat and is
  /// healthy — staleness only means trouble when there is work waiting.
  int stuck_after_ms = 200;
  /// Per-shard circuit breaker shape (failure threshold + open backoff).
  BreakerConfig breaker;
};

/// Fills a SupervisorConfig from DPDP_SERVE_WATCHDOG_MS /
/// DPDP_SERVE_STUCK_MS and the DPDP_SERVE_BREAKER_* family.
SupervisorConfig SupervisorConfigFromEnv();

/// Last-scan verdict for one shard. The numeric values are the
/// serve.shard<k>.health gauge encoding.
enum class ShardHealth {
  kHealthy = 0,
  kStuck = 1,  ///< Heartbeat stale with work queued (wedged or stalling).
  kDead = 2,   ///< Service loop crashed (crashed() flag).
};

const char* ShardHealthName(ShardHealth health);

/// The supervised recovery loop over a ShardRouter's shards.
///
/// Each watchdog scan classifies every shard from its health surface
/// (crashed() flag, heartbeat age, queue depth) and drives a per-shard
/// CircuitBreaker:
///
///   - DEAD (crashed loop): each NEW crash (edge, not the dead state
///     persisting) is a breaker failure. The shard is tripped in the
///     router (its partition fails over to a live stand-in) and a restart
///     is attempted, gated by the breaker — crashes under the threshold
///     restart immediately; a crash loop trips the breaker open and
///     further restarts wait out a capped exponential backoff, with the
///     half-open probe BEING the next restart attempt. A successful
///     restart drains the orphaned backlog, re-enqueues every orphan on a
///     live shard (original promise intact — zero lost replies) and
///     restores the original partition map; the breaker closes only once
///     the restarted shard scans healthy.
///   - STUCK (stale heartbeat, non-empty queue): failures accumulate in
///     the breaker; when it trips open the shard's partition is failed
///     over, but the loop is left alone — an in-process thread cannot be
///     killed, and a stall is by nature transient. When the shard scans
///     healthy again and the breaker re-closes (half-open probe), its
///     partition is restored.
///   - HEALTHY: breaker success; a tripped-but-recovered shard is restored
///     once its breaker closes.
///
/// Observability: serve.shard<k>.health and serve.shard<k>.breaker_state
/// gauges updated every scan, a "serve.failover" trace span around every
/// trip/restart/restore action, and serve.supervisor.scans counting scans.
///
/// ScanOnce(now_ns) is public and clock-injected: tests drive the whole
/// recovery loop deterministically with synthetic timestamps, no watchdog
/// thread involved. Start()/Stop() run the same scan off a real clock.
class ShardSupervisor {
 public:
  /// `router` must outlive the supervisor. Does NOT start the watchdog —
  /// call Start(), or drive ScanOnce() by hand.
  ShardSupervisor(const SupervisorConfig& config, ShardRouter* router);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Spawns the watchdog thread (idempotent).
  void Start();
  /// Stops and joins the watchdog (idempotent; destructor calls it).
  /// Stop the supervisor BEFORE stopping the router: a scan racing a
  /// router teardown would restart shards the owner is tearing down.
  void Stop();

  /// One watchdog scan at `now_ns` (monotonic nanos, any origin).
  void ScanOnce(int64_t now_ns);

  /// Last-scan health of shard `k` (kHealthy before the first scan).
  ShardHealth health(int k) const;
  /// The breaker guarding shard `k` (test/introspection surface).
  const CircuitBreaker& breaker(int k) const { return *breakers_[k]; }
  uint64_t scans() const { return scans_; }

  const SupervisorConfig& config() const { return config_; }

 private:
  void ScanOnceLocked(int64_t now_ns);
  /// Classifies shard `k` from its health surface.
  ShardHealth Probe(int k, int64_t now_ns) const;
  /// Trips `k`'s partition over to a stand-in (idempotent, spanned).
  void FailOver(int k);
  /// Joins the dead loop of `k`, reroutes its orphans, restores the map.
  /// Returns true when the shard is back up.
  bool RestartShard(int k);
  /// Re-enqueues restart-drained orphans on live shards, promises intact.
  void RerouteOrphans(int home, std::vector<DecisionRequest>* orphans);
  void WatchdogLoop();

  const SupervisorConfig config_;
  ShardRouter* const router_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<ShardHealth> health_;
  /// Gauges serve.shard<k>.health / serve.shard<k>.breaker_state.
  std::vector<obs::Gauge*> health_gauges_;
  std::vector<obs::Gauge*> breaker_gauges_;
  uint64_t scans_ = 0;

  /// Guards health_/breakers_/scans_ between the watchdog thread and
  /// accessor calls; ScanOnce runs under it.
  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread watchdog_;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_SHARD_SUPERVISOR_H_
