#ifndef DPDP_SERVE_DISPATCH_SERVICE_H_
#define DPDP_SERVE_DISPATCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "rl/config.h"
#include "serve/chaos.h"
#include "serve/model_server.h"
#include "serve/request_queue.h"
#include "sim/dispatcher.h"

namespace dpdp::serve {

/// Micro-batching policy + admission bound of a DispatchService.
struct ServeConfig {
  /// Flush a batch as soon as this many requests are pending.
  int max_batch = 16;
  /// ... or once the oldest pending request has waited this long. The
  /// latency floor a lone client pays for batching; keep it well under the
  /// per-decision planner cost or it shows up in p50.
  long max_wait_us = 500;
  /// Admission bound. Requests arriving with this many already queued are
  /// shed to the greedy-insertion fallback on the caller's thread. 0 sheds
  /// everything (drain mode).
  int queue_capacity = 256;
  /// Modeled synchronous downstream-commit latency per batch, in
  /// microseconds. A real dispatch fabric does not release decisions the
  /// moment the model scores them: the batch is committed to a downstream
  /// channel (courier comms, order store, message bus) and the replies are
  /// released on its ack. This knob models that ack as a timed wait between
  /// evaluation and reply release — it consumes no CPU, so it is exactly
  /// the kind of latency that sharding overlaps across service loops.
  /// 0 (the default) disables the stage entirely.
  long commit_us = 0;
  /// Per-request reply deadline in microseconds; 0 (the default) disables
  /// deadlines. A request whose deadline passes before the model answers
  /// it is answered with the greedy-insertion fallback instead (counted in
  /// serve.deadline_exceeded) — the client promise is never blocked on a
  /// slow or stalled evaluation. Wall-clock deadlines trade determinism
  /// for bounded latency, so they are off wherever bitwise goldens apply.
  long deadline_us = 0;
  /// Seeded fault injection (default: everything off). See serve/chaos.h.
  ChaosConfig chaos;
};

/// Fills a ServeConfig from DPDP_SERVE_MAX_BATCH / DPDP_SERVE_MAX_WAIT_US /
/// DPDP_SERVE_QUEUE_CAP / DPDP_SERVE_COMMIT_US / DPDP_SERVE_DEADLINE_US and
/// the DPDP_SERVE_CHAOS* family, with the struct defaults as fallbacks.
ServeConfig ServeConfigFromEnv();

/// Anything that answers decision requests asynchronously: the single
/// micro-batching DispatchService, or the ShardRouter fanning out over N
/// of them. Dispatch adapters and load generators target this interface so
/// a simulator neither knows nor cares whether its decisions crossed one
/// queue or a sharded fabric.
class DecisionService {
 public:
  virtual ~DecisionService() = default;

  /// Submits one decision request. `context` must stay alive until the
  /// returned future is fulfilled (ServiceDispatcher guarantees this by
  /// blocking inside ChooseVehicle). Thread-safe.
  virtual std::future<ServeReply> Submit(const DispatchContext& context) = 0;
};

/// Identity of a service inside a sharded fabric. A default-constructed
/// tag (index -1) means "not a shard": the service reports only the
/// aggregate serve.* metrics, exactly the pre-sharding behavior.
struct ShardTag {
  int index = -1;
};

/// The in-process dispatch service: many concurrent simulated campuses
/// submit decision requests; a single service loop coalesces them into
/// stacked DecisionBatch evaluations on the current ModelSnapshot.
///
/// Correctness invariant: because a stacked EvaluateBatch is bit-identical
/// to per-item evaluation (block-diagonal masks + one-chain-per-element
/// GEMM; see DESIGN.md "Compute kernel model"), a served decision equals
/// the decision a local agent with the same weights would make — however
/// requests happen to interleave into batches. Batching changes wall-clock
/// cost, never decisions.
///
/// Overload semantics: admission control degrades, it never stalls. A
/// request that cannot be admitted is answered immediately on the caller's
/// thread with the greedy-insertion fallback (Baseline 1's rule) and
/// flagged shed = true; the serve.shed counter tracks how often. With a
/// deadline configured, an admitted request that ages past it is answered
/// with the same fallback, flagged deadline_exceeded — so a stalled or
/// slow shard degrades service quality, never availability.
///
/// Failure model hooks (see DESIGN.md "Failure model"): the loop publishes
/// a heartbeat (last-iteration monotonic timestamp) and a tick count; a
/// seeded ChaosPolicy can stall the loop, slow evaluations, or crash the
/// loop outright (the batch in hand is requeued first — admitted work is
/// never lost). A crashed service reports crashed() == true and is brought
/// back via Restart(), which drains the orphaned backlog for the caller to
/// reroute and spawns a fresh loop whose net replica resyncs from the
/// ModelServer.
///
/// When constructed with a ShardTag (index >= 0), the service additionally
/// reports per-shard registry counters (serve.shard<k>.requests / shed /
/// batches / batched_items / degraded / deadline_exceeded / shed_closed /
/// rerouted / restarts), annotates each batch with a "serve.shard<k>"
/// trace span, and stamps replies with its shard index. The aggregate
/// serve.* metrics are shared by all shards, so the global registry's
/// serve.requests is by construction the cross-shard rollup:
/// aggregate == sum over shards of serve.shard<k>.requests.
class DispatchService : public DecisionService {
 public:
  /// The service evaluates on `models`'s config (MakeQNetwork-compatible
  /// weights). `models` must outlive the service.
  DispatchService(const ServeConfig& config, ModelServer* models,
                  ShardTag tag = {});
  ~DispatchService() override;

  DispatchService(const DispatchService&) = delete;
  DispatchService& operator=(const DispatchService&) = delete;

  std::future<ServeReply> Submit(const DispatchContext& context) override;

  /// Submit with an explicit reply-by deadline (overrides the config's
  /// deadline for this request). A deadline already in the past is
  /// answered immediately on the caller's thread with the greedy fallback,
  /// flagged deadline_exceeded — the "already expired at push" case.
  std::future<ServeReply> SubmitWithDeadline(
      const DispatchContext& context,
      std::chrono::steady_clock::time_point deadline);

  // --- Fabric-facing admission (used by ShardRouter / ShardSupervisor) ---

  /// Builds a request for `context` stamped with this service's deadline
  /// policy. The caller owns the promise until the request is admitted.
  DecisionRequest MakeRequest(const DispatchContext& context) const;

  /// Tries to enqueue an already-built request, preserving its promise.
  /// Counts the request against this shard unless the queue is closed
  /// (kClosed: this shard is down and never saw the request — the router
  /// reroutes it to a live shard instead). On failure the caller keeps the
  /// request and must answer or re-route it.
  PushResult Admit(DecisionRequest* request);

  /// Admit without counting: re-enqueue of a restart-drained orphan that
  /// was already counted at its original admission. A client request is
  /// one request no matter how many shards it bounces through.
  PushResult Readmit(DecisionRequest* request);

  /// Counts one request against this shard without enqueueing (the
  /// router's all-shards-down path, where the shed is attributed home).
  void CountRequest();

  /// Answers `request` on the caller's thread with the greedy-insertion
  /// fallback, flagged shed. `closed_reject` selects the closed-queue
  /// shed accounting (serve.shed_closed) on top of the plain shed counter.
  /// Does not count the request itself — pair with Admit/CountRequest.
  void AnswerShed(DecisionRequest* request, bool closed_reject);

  /// Counts one request of this shard's partition that the router diverted
  /// to another shard (failover accounting: rerouted is charged to the
  /// HOME shard whose traffic moved).
  void CountReroute();

  /// Stops the service: closes admission, drains every queued request
  /// (through the model, or — after a crash — through the shed path so no
  /// promise is ever abandoned), and joins the service loop. Idempotent;
  /// the destructor calls it.
  void Stop();

  /// Supervised restart after a crash: joins the dead loop, drains the
  /// orphaned backlog into `orphans` (already-admitted requests the
  /// supervisor reroutes to live shards), reopens admission, and spawns a
  /// fresh loop. The new loop's net replica resyncs from the ModelServer
  /// at its first batch, so a restarted shard serves the CURRENT snapshot
  /// no matter how stale its predecessor was. Returns false when the
  /// service is not crashed or already stopped.
  bool Restart(std::vector<DecisionRequest>* orphans);

  // Lifetime totals (this service instance, not the global registry).
  uint64_t requests() const { return requests_.load(); }
  uint64_t sheds() const { return sheds_.load(); }
  uint64_t sheds_closed() const { return sheds_closed_.load(); }
  uint64_t batches() const { return batches_.load(); }
  uint64_t degraded() const { return degraded_.load(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_.load(); }
  uint64_t rerouted() const { return rerouted_.load(); }
  uint64_t restarts() const { return restarts_.load(); }
  /// Snapshot swaps observed by the service loop (transitions after the
  /// initial weight sync).
  uint64_t swaps_applied() const { return swaps_applied_.load(); }
  /// Highest snapshot seq the service loop has synced its net to. The
  /// ModelServer publishes strictly increasing seqs and the loop re-syncs
  /// at batch boundaries, so this never regresses (a restart resets the
  /// replica, which then catches straight up to the current snapshot).
  uint64_t net_seq() const { return net_seq_.load(); }

  // --- Health surface (read by the ShardSupervisor's watchdog) ---

  /// Monotonic-nanos timestamp of the loop's last iteration boundary. A
  /// heartbeat that goes stale while queue_size() > 0 means the loop is
  /// wedged mid-batch (stall) — an idle loop parked on an empty queue is
  /// healthy no matter how old its heartbeat is.
  int64_t heartbeat_ns() const { return heartbeat_ns_.load(); }
  /// Service-loop batch iterations so far (the chaos tick space).
  uint64_t ticks() const { return ticks_.load(); }
  /// True after the loop died to an injected crash (until Restart).
  bool crashed() const { return crashed_.load(); }
  /// Admitted-but-unpopped requests.
  size_t queue_size() const { return queue_.size(); }

  /// Shard index (-1 when not part of a sharded fabric).
  int shard_index() const { return tag_.index; }
  const ServeConfig& config() const { return config_; }

 private:
  void Loop();
  /// Answers `request` with the greedy fallback, flagged deadline_exceeded.
  void AnswerDeadline(DecisionRequest* request);

  const ServeConfig config_;
  ModelServer* const models_;
  const ShardTag tag_;
  RequestQueue queue_;
  /// Present iff config_.chaos.any(): the seeded fault schedule shared by
  /// every incarnation of the loop (ticks keep counting across restarts).
  std::optional<ChaosPolicy> chaos_;

  /// Per-shard metric handles; null when tag_.index < 0. Owned by the
  /// global registry (stable for process lifetime).
  obs::Counter* shard_requests_ = nullptr;
  obs::Counter* shard_sheds_ = nullptr;
  obs::Counter* shard_sheds_closed_ = nullptr;
  obs::Counter* shard_batches_ = nullptr;
  obs::Counter* shard_batched_items_ = nullptr;
  obs::Counter* shard_degraded_ = nullptr;
  obs::Counter* shard_deadline_exceeded_ = nullptr;
  obs::Counter* shard_rerouted_ = nullptr;
  obs::Counter* shard_restarts_ = nullptr;
  obs::Gauge* shard_queue_depth_ = nullptr;
  /// Span name "serve.shard<k>"; stored so the const char* outlives spans.
  std::string shard_span_name_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> sheds_closed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> rerouted_{0};
  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> swaps_applied_{0};
  std::atomic<uint64_t> net_seq_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<int64_t> heartbeat_ns_{0};
  std::atomic<bool> crashed_{false};

  /// Guards loop-thread ownership across Stop/Restart (the supervisor and
  /// the owner may race teardown).
  std::mutex lifecycle_mu_;
  std::thread loop_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_DISPATCH_SERVICE_H_
