#ifndef DPDP_SERVE_DISPATCH_SERVICE_H_
#define DPDP_SERVE_DISPATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "rl/config.h"
#include "serve/model_server.h"
#include "serve/request_queue.h"
#include "sim/dispatcher.h"

namespace dpdp::serve {

/// Micro-batching policy + admission bound of a DispatchService.
struct ServeConfig {
  /// Flush a batch as soon as this many requests are pending.
  int max_batch = 16;
  /// ... or once the oldest pending request has waited this long. The
  /// latency floor a lone client pays for batching; keep it well under the
  /// per-decision planner cost or it shows up in p50.
  long max_wait_us = 500;
  /// Admission bound. Requests arriving with this many already queued are
  /// shed to the greedy-insertion fallback on the caller's thread. 0 sheds
  /// everything (drain mode).
  int queue_capacity = 256;
  /// Modeled synchronous downstream-commit latency per batch, in
  /// microseconds. A real dispatch fabric does not release decisions the
  /// moment the model scores them: the batch is committed to a downstream
  /// channel (courier comms, order store, message bus) and the replies are
  /// released on its ack. This knob models that ack as a timed wait between
  /// evaluation and reply release — it consumes no CPU, so it is exactly
  /// the kind of latency that sharding overlaps across service loops.
  /// 0 (the default) disables the stage entirely.
  long commit_us = 0;
};

/// Fills a ServeConfig from DPDP_SERVE_MAX_BATCH / DPDP_SERVE_MAX_WAIT_US /
/// DPDP_SERVE_QUEUE_CAP / DPDP_SERVE_COMMIT_US, with the struct defaults
/// as fallbacks.
ServeConfig ServeConfigFromEnv();

/// Anything that answers decision requests asynchronously: the single
/// micro-batching DispatchService, or the ShardRouter fanning out over N
/// of them. Dispatch adapters and load generators target this interface so
/// a simulator neither knows nor cares whether its decisions crossed one
/// queue or a sharded fabric.
class DecisionService {
 public:
  virtual ~DecisionService() = default;

  /// Submits one decision request. `context` must stay alive until the
  /// returned future is fulfilled (ServiceDispatcher guarantees this by
  /// blocking inside ChooseVehicle). Thread-safe.
  virtual std::future<ServeReply> Submit(const DispatchContext& context) = 0;
};

/// Identity of a service inside a sharded fabric. A default-constructed
/// tag (index -1) means "not a shard": the service reports only the
/// aggregate serve.* metrics, exactly the pre-sharding behavior.
struct ShardTag {
  int index = -1;
};

/// The in-process dispatch service: many concurrent simulated campuses
/// submit decision requests; a single service loop coalesces them into
/// stacked DecisionBatch evaluations on the current ModelSnapshot.
///
/// Correctness invariant: because a stacked EvaluateBatch is bit-identical
/// to per-item evaluation (block-diagonal masks + one-chain-per-element
/// GEMM; see DESIGN.md "Compute kernel model"), a served decision equals
/// the decision a local agent with the same weights would make — however
/// requests happen to interleave into batches. Batching changes wall-clock
/// cost, never decisions.
///
/// Overload semantics: admission control degrades, it never stalls. A
/// request that cannot be admitted is answered immediately on the caller's
/// thread with the greedy-insertion fallback (Baseline 1's rule) and
/// flagged shed = true; the serve.shed counter tracks how often.
///
/// When constructed with a ShardTag (index >= 0), the service additionally
/// reports per-shard registry counters (serve.shard<k>.requests / shed /
/// batches / batched_items / degraded), annotates each batch with a
/// "serve.shard<k>" trace span, and stamps replies with its shard index.
/// The aggregate serve.* metrics are shared by all shards, so the global
/// registry's serve.requests is by construction the cross-shard rollup:
/// aggregate == sum over shards of serve.shard<k>.requests.
class DispatchService : public DecisionService {
 public:
  /// The service evaluates on `models`'s config (MakeQNetwork-compatible
  /// weights). `models` must outlive the service.
  DispatchService(const ServeConfig& config, ModelServer* models,
                  ShardTag tag = {});
  ~DispatchService() override;

  DispatchService(const DispatchService&) = delete;
  DispatchService& operator=(const DispatchService&) = delete;

  std::future<ServeReply> Submit(const DispatchContext& context) override;

  /// Closes admission, drains every queued request through the model, and
  /// joins the service loop. Idempotent; the destructor calls it.
  void Stop();

  // Lifetime totals (this service instance, not the global registry).
  uint64_t requests() const { return requests_.load(); }
  uint64_t sheds() const { return sheds_.load(); }
  uint64_t batches() const { return batches_.load(); }
  uint64_t degraded() const { return degraded_.load(); }
  /// Snapshot swaps observed by the service loop (transitions after the
  /// initial weight sync).
  uint64_t swaps_applied() const { return swaps_applied_.load(); }
  /// Highest snapshot seq the service loop has synced its net to. The
  /// ModelServer publishes strictly increasing seqs and the loop re-syncs
  /// at batch boundaries, so this never regresses.
  uint64_t net_seq() const { return net_seq_.load(); }

  /// Shard index (-1 when not part of a sharded fabric).
  int shard_index() const { return tag_.index; }

 private:
  void Loop();

  const ServeConfig config_;
  ModelServer* const models_;
  const ShardTag tag_;
  RequestQueue queue_;

  /// Per-shard metric handles; null when tag_.index < 0. Owned by the
  /// global registry (stable for process lifetime).
  obs::Counter* shard_requests_ = nullptr;
  obs::Counter* shard_sheds_ = nullptr;
  obs::Counter* shard_batches_ = nullptr;
  obs::Counter* shard_batched_items_ = nullptr;
  obs::Counter* shard_degraded_ = nullptr;
  /// Span name "serve.shard<k>"; stored so the const char* outlives spans.
  std::string shard_span_name_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> swaps_applied_{0};
  std::atomic<uint64_t> net_seq_{0};

  std::thread loop_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_DISPATCH_SERVICE_H_
