#ifndef DPDP_SERVE_DISPATCH_SERVICE_H_
#define DPDP_SERVE_DISPATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>

#include "rl/config.h"
#include "serve/model_server.h"
#include "serve/request_queue.h"
#include "sim/dispatcher.h"

namespace dpdp::serve {

/// Micro-batching policy + admission bound of a DispatchService.
struct ServeConfig {
  /// Flush a batch as soon as this many requests are pending.
  int max_batch = 16;
  /// ... or once the oldest pending request has waited this long. The
  /// latency floor a lone client pays for batching; keep it well under the
  /// per-decision planner cost or it shows up in p50.
  long max_wait_us = 500;
  /// Admission bound. Requests arriving with this many already queued are
  /// shed to the greedy-insertion fallback on the caller's thread. 0 sheds
  /// everything (drain mode).
  int queue_capacity = 256;
};

/// Fills a ServeConfig from DPDP_SERVE_MAX_BATCH / DPDP_SERVE_MAX_WAIT_US /
/// DPDP_SERVE_QUEUE_CAP, with the struct defaults as fallbacks.
ServeConfig ServeConfigFromEnv();

/// The in-process dispatch service: many concurrent simulated campuses
/// submit decision requests; a single service loop coalesces them into
/// stacked DecisionBatch evaluations on the current ModelSnapshot.
///
/// Correctness invariant: because a stacked EvaluateBatch is bit-identical
/// to per-item evaluation (block-diagonal masks + one-chain-per-element
/// GEMM; see DESIGN.md "Compute kernel model"), a served decision equals
/// the decision a local agent with the same weights would make — however
/// requests happen to interleave into batches. Batching changes wall-clock
/// cost, never decisions.
///
/// Overload semantics: admission control degrades, it never stalls. A
/// request that cannot be admitted is answered immediately on the caller's
/// thread with the greedy-insertion fallback (Baseline 1's rule) and
/// flagged shed = true; the serve.shed counter tracks how often.
class DispatchService {
 public:
  /// The service evaluates on `models`'s config (MakeQNetwork-compatible
  /// weights). `models` must outlive the service.
  DispatchService(const ServeConfig& config, ModelServer* models);
  ~DispatchService();

  DispatchService(const DispatchService&) = delete;
  DispatchService& operator=(const DispatchService&) = delete;

  /// Submits one decision request. `context` must stay alive until the
  /// returned future is fulfilled (ServiceDispatcher guarantees this by
  /// blocking inside ChooseVehicle). Thread-safe.
  std::future<ServeReply> Submit(const DispatchContext& context);

  /// Closes admission, drains every queued request through the model, and
  /// joins the service loop. Idempotent; the destructor calls it.
  void Stop();

  // Lifetime totals (this service instance, not the global registry).
  uint64_t requests() const { return requests_.load(); }
  uint64_t sheds() const { return sheds_.load(); }
  uint64_t batches() const { return batches_.load(); }
  uint64_t degraded() const { return degraded_.load(); }
  /// Snapshot swaps observed by the service loop (transitions after the
  /// initial weight sync).
  uint64_t swaps_applied() const { return swaps_applied_.load(); }

 private:
  void Loop();

  const ServeConfig config_;
  ModelServer* const models_;
  RequestQueue queue_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> swaps_applied_{0};

  std::thread loop_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_DISPATCH_SERVICE_H_
