#ifndef DPDP_SERVE_SHARD_ROUTER_H_
#define DPDP_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/dispatch_service.h"
#include "serve/model_server.h"

namespace dpdp::serve {

/// How the router picks a shard for an incoming request.
enum class RouterPolicy {
  /// Stable hash of the campus name (Instance::name): every request of a
  /// campus lands on the same shard for the process lifetime, so a shard
  /// owns a fixed partition of the city. This is the production policy —
  /// it keeps per-campus request streams FIFO through one queue and makes
  /// per-shard load a pure function of the campus -> shard map.
  kCampusHash,
  /// Strict rotation over shards per request. Spreads load evenly even
  /// when the campus population is skewed; correct because batching is
  /// decision-invariant (any shard computes the same answer from the same
  /// snapshot seq), but a campus's requests then interleave across all
  /// queues. Mostly a stress/verification policy.
  kRoundRobin,
};

const char* RouterPolicyName(RouterPolicy policy);

/// Shape of a sharded fabric: how many shards, how requests are routed,
/// and the per-shard service policy.
struct ShardedServeConfig {
  /// Number of DispatchService shards (>= 1). 1 degenerates exactly to
  /// the single-service path: one queue, one loop, one net replica.
  int num_shards = 1;
  RouterPolicy policy = RouterPolicy::kCampusHash;
  /// Per-shard micro-batching policy + admission bound. Note the queue
  /// capacity is PER SHARD: a fabric of N shards admits up to
  /// N * shard.queue_capacity requests before shedding.
  ServeConfig shard;
};

/// Fills a ShardedServeConfig from DPDP_SERVE_SHARDS ("1"..) and
/// DPDP_SERVE_ROUTER ("hash" | "rr"), with the per-shard policy taken
/// from ServeConfigFromEnv().
ShardedServeConfig ShardedServeConfigFromEnv();

/// FNV-1a 64-bit hash of a campus name — the stable campus -> shard map
/// behind RouterPolicy::kCampusHash. Deliberately not std::hash (which is
/// implementation-defined): the partition must be identical across
/// platforms and processes so sharded runs are reproducible.
uint64_t CampusHash(std::string_view campus_name);

/// Per-shard counter rollup (instance totals, not the global registry).
struct ShardStats {
  uint64_t requests = 0;
  uint64_t sheds = 0;
  uint64_t sheds_closed = 0;
  uint64_t batches = 0;
  uint64_t degraded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t rerouted = 0;
  uint64_t restarts = 0;
  uint64_t swaps_applied = 0;
};

struct RouterStats {
  std::vector<ShardStats> shards;  ///< Index = shard index.
  ShardStats total;                ///< Element-wise sum over shards.
};

/// The sharded dispatch fabric: N DispatchService shards, each owning its
/// own RequestQueue, service loop and net replica, all synced from ONE
/// shared ModelServer (one checkpoint watcher, N snapshot subscribers).
/// Submit routes a request to its shard and returns the shard's future —
/// the router adds no queue, no thread and no lock of its own beyond a
/// relaxed round-robin cursor.
///
/// Correctness: a served decision is a pure function of (request context,
/// snapshot weights) — the batching invariant — so WHICH shard evaluates a
/// request never changes the answer, only the wall-clock cost. That is
/// what makes the 1-vs-N-shard golden test meaningful: same seed set, any
/// shard count, bitwise-identical per-campus episodes.
///
/// Admission control stays per shard: a hot shard sheds while cold shards
/// keep admitting (no global backpressure). Aggregate serve.* metrics are
/// shared by all shards; per-shard counters are published under
/// serve.shard<k>.* so the registry rollup satisfies
/// serve.requests == sum_k serve.shard<k>.requests whenever all traffic
/// flows through tagged shards.
///
/// Failover: the ShardSupervisor trips unhealthy shards, which installs a
/// versioned overlay diverting the tripped shard's partition to a live
/// stand-in (the batching invariant makes any stand-in correct — it
/// computes the same answers from the same snapshot). Rerouted requests
/// are counted against the HOME shard's serve.shard<k>.rerouted, so the
/// counter reads "how much of k's partition ran elsewhere". With no shard
/// tripped there is no overlay at all and routing is bit-for-bit the
/// pre-failover path.
class ShardRouter : public DecisionService {
 public:
  /// `models` must outlive the router. Spawns config.num_shards service
  /// loops immediately.
  ShardRouter(const ShardedServeConfig& config, ModelServer* models);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes to ShardOf(context) — or, when a failover overlay is active,
  /// to the live shard standing in for it — and submits there.
  /// Thread-safe. A request bounced by a closed queue (the shard crashed
  /// between the overlay read and the push) hops to the next live shard,
  /// so a reply is lost only if EVERY shard is closed — i.e. the whole
  /// fabric is stopping, and even then it is answered as a closed-shed,
  /// never dropped.
  std::future<ServeReply> Submit(const DispatchContext& context) override;

  // --- Failover overlay (driven by the ShardSupervisor) ---

  /// Diverts shard `k`'s partition to the next live (untripped) shard via
  /// a fresh overlay epoch. Campus-stickiness is preserved PER EPOCH: all
  /// of k's campuses move together to one stand-in shard, so each campus's
  /// request stream stays FIFO through a single queue between overlay
  /// flips. Idempotent.
  void TripShard(int k);

  /// Removes shard `k` from the tripped set, restoring its partition in a
  /// fresh overlay epoch (the all-healthy overlay is the identity map,
  /// dropped entirely — the chaos-off fast path stays overlay-free).
  /// Idempotent.
  void RestoreShard(int k);

  bool IsTripped(int k) const;
  /// Overlay generation; bumps on every TripShard/RestoreShard change.
  uint64_t overlay_epoch() const { return overlay_epoch_.load(); }
  /// Where `home`'s traffic currently lands (identity when no overlay).
  int RedirectOf(int home) const;

  /// The shard the next submission of `context` goes to. For kCampusHash
  /// this is a pure function of the campus name; for kRoundRobin it
  /// advances the rotation cursor (so calling it consumes the slot).
  int ShardOf(const DispatchContext& context);

  /// The kCampusHash partition map, usable without a context.
  int ShardOfCampus(std::string_view campus_name) const;

  /// Stops every shard: closes admission, drains queued requests, joins
  /// the loops. Idempotent; the destructor calls it.
  void Stop();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedServeConfig& config() const { return config_; }
  DispatchService& shard(int k) { return *shards_[k]; }
  const DispatchService& shard(int k) const { return *shards_[k]; }

  /// Point-in-time rollup of every shard's instance counters.
  RouterStats Stats() const;

 private:
  /// Immutable redirect table: overlay->redirect[home] is the shard that
  /// serves home's partition this epoch. Swapped whole under overlay_mu_;
  /// readers grab the shared_ptr and route lock-free from then on. A null
  /// overlay_ means "identity" — the common all-healthy case pays one
  /// atomic shared_ptr load and no table walk.
  struct Overlay {
    std::vector<int> redirect;
  };

  std::shared_ptr<const Overlay> CurrentOverlay() const;
  /// Rebuilds the overlay from tripped_ (callers hold overlay_mu_).
  void RebuildOverlayLocked();

  const ShardedServeConfig config_;
  std::vector<std::unique_ptr<DispatchService>> shards_;
  std::atomic<uint64_t> round_robin_{0};

  mutable std::mutex overlay_mu_;
  std::vector<bool> tripped_;            ///< Guarded by overlay_mu_.
  std::shared_ptr<const Overlay> overlay_;  ///< Guarded by overlay_mu_.
  std::atomic<uint64_t> overlay_epoch_{0};
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_SHARD_ROUTER_H_
