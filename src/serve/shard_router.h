#ifndef DPDP_SERVE_SHARD_ROUTER_H_
#define DPDP_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/dispatch_service.h"
#include "serve/model_server.h"

namespace dpdp::serve {

/// How the router picks a shard for an incoming request.
enum class RouterPolicy {
  /// Stable hash of the campus name (Instance::name): every request of a
  /// campus lands on the same shard for the process lifetime, so a shard
  /// owns a fixed partition of the city. This is the production policy —
  /// it keeps per-campus request streams FIFO through one queue and makes
  /// per-shard load a pure function of the campus -> shard map.
  kCampusHash,
  /// Strict rotation over shards per request. Spreads load evenly even
  /// when the campus population is skewed; correct because batching is
  /// decision-invariant (any shard computes the same answer from the same
  /// snapshot seq), but a campus's requests then interleave across all
  /// queues. Mostly a stress/verification policy.
  kRoundRobin,
};

const char* RouterPolicyName(RouterPolicy policy);

/// Shape of a sharded fabric: how many shards, how requests are routed,
/// and the per-shard service policy.
struct ShardedServeConfig {
  /// Number of DispatchService shards (>= 1). 1 degenerates exactly to
  /// the single-service path: one queue, one loop, one net replica.
  int num_shards = 1;
  RouterPolicy policy = RouterPolicy::kCampusHash;
  /// Per-shard micro-batching policy + admission bound. Note the queue
  /// capacity is PER SHARD: a fabric of N shards admits up to
  /// N * shard.queue_capacity requests before shedding.
  ServeConfig shard;
};

/// Fills a ShardedServeConfig from DPDP_SERVE_SHARDS ("1"..) and
/// DPDP_SERVE_ROUTER ("hash" | "rr"), with the per-shard policy taken
/// from ServeConfigFromEnv().
ShardedServeConfig ShardedServeConfigFromEnv();

/// FNV-1a 64-bit hash of a campus name — the stable campus -> shard map
/// behind RouterPolicy::kCampusHash. Deliberately not std::hash (which is
/// implementation-defined): the partition must be identical across
/// platforms and processes so sharded runs are reproducible.
uint64_t CampusHash(std::string_view campus_name);

/// Per-shard counter rollup (instance totals, not the global registry).
struct ShardStats {
  uint64_t requests = 0;
  uint64_t sheds = 0;
  uint64_t batches = 0;
  uint64_t degraded = 0;
  uint64_t swaps_applied = 0;
};

struct RouterStats {
  std::vector<ShardStats> shards;  ///< Index = shard index.
  ShardStats total;                ///< Element-wise sum over shards.
};

/// The sharded dispatch fabric: N DispatchService shards, each owning its
/// own RequestQueue, service loop and net replica, all synced from ONE
/// shared ModelServer (one checkpoint watcher, N snapshot subscribers).
/// Submit routes a request to its shard and returns the shard's future —
/// the router adds no queue, no thread and no lock of its own beyond a
/// relaxed round-robin cursor.
///
/// Correctness: a served decision is a pure function of (request context,
/// snapshot weights) — the batching invariant — so WHICH shard evaluates a
/// request never changes the answer, only the wall-clock cost. That is
/// what makes the 1-vs-N-shard golden test meaningful: same seed set, any
/// shard count, bitwise-identical per-campus episodes.
///
/// Admission control stays per shard: a hot shard sheds while cold shards
/// keep admitting (no global backpressure). Aggregate serve.* metrics are
/// shared by all shards; per-shard counters are published under
/// serve.shard<k>.* so the registry rollup satisfies
/// serve.requests == sum_k serve.shard<k>.requests whenever all traffic
/// flows through tagged shards.
class ShardRouter : public DecisionService {
 public:
  /// `models` must outlive the router. Spawns config.num_shards service
  /// loops immediately.
  ShardRouter(const ShardedServeConfig& config, ModelServer* models);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes to ShardOf(context) and submits there. Thread-safe.
  std::future<ServeReply> Submit(const DispatchContext& context) override;

  /// The shard the next submission of `context` goes to. For kCampusHash
  /// this is a pure function of the campus name; for kRoundRobin it
  /// advances the rotation cursor (so calling it consumes the slot).
  int ShardOf(const DispatchContext& context);

  /// The kCampusHash partition map, usable without a context.
  int ShardOfCampus(std::string_view campus_name) const;

  /// Stops every shard: closes admission, drains queued requests, joins
  /// the loops. Idempotent; the destructor calls it.
  void Stop();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedServeConfig& config() const { return config_; }
  DispatchService& shard(int k) { return *shards_[k]; }
  const DispatchService& shard(int k) const { return *shards_[k]; }

  /// Point-in-time rollup of every shard's instance counters.
  RouterStats Stats() const;

 private:
  const ShardedServeConfig config_;
  std::vector<std::unique_ptr<DispatchService>> shards_;
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_SHARD_ROUTER_H_
