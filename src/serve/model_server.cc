#include "serve/model_server.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/checkpoint.h"
#include "rl/dqn_agent.h"
#include "util/env.h"
#include "util/log.h"

namespace dpdp::serve {
namespace {

struct ModelMetrics {
  obs::Counter* swaps =
      obs::MetricsRegistry::Global().GetCounter("serve.model_swaps");
  obs::Counter* stale_skips =
      obs::MetricsRegistry::Global().GetCounter("serve.model_stale_skips");
  obs::Counter* invalid_skips =
      obs::MetricsRegistry::Global().GetCounter("serve.model_invalid_skips");
  obs::Counter* polls =
      obs::MetricsRegistry::Global().GetCounter("serve.model_polls");
  obs::Counter* ckpt_rejected =
      obs::MetricsRegistry::Global().GetCounter("serve.ckpt_rejected");
  obs::Gauge* seq = obs::MetricsRegistry::Global().GetGauge("serve.model_seq");
};

ModelMetrics& Metrics() {
  static ModelMetrics* metrics = new ModelMetrics;
  return *metrics;
}

}  // namespace

ModelServer::ModelServer(const AgentConfig& config) : config_(config) {
  // Seed snapshot: the deterministic init a local agent with this config
  // would start from. Exported through a scratch agent so this stays in
  // lockstep with DqnFleetAgent's net construction (Fork order included).
  DqnFleetAgent seed_agent(config_, "serve-init");
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->seq = 0;
  snapshot->episodes_done = 0;
  snapshot->source = "init";
  snapshot->weights = seed_agent.ExportPolicyWeights();
  snapshot_ = std::move(snapshot);
  Metrics().seq->Set(0.0);
}

ModelServer::~ModelServer() { StopWatcher(); }

std::shared_ptr<const ModelSnapshot> ModelServer::Current() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool ModelServer::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  DPDP_CHECK(snapshot != nullptr);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot->seq <= snapshot_->seq) {
      Metrics().stale_skips->Add();
      return false;
    }
    snapshot_ = std::move(snapshot);
    Metrics().seq->Set(static_cast<double>(snapshot_->seq));
    obs::RecordFlight(obs::FlightEventKind::kPublish, "serve.publish", -1,
                      snapshot_->seq);
  }
  Metrics().swaps->Add();
  return true;
}

Status ModelServer::LoadCheckpointFile(const std::string& path) {
  DPDP_TRACE_SPAN("serve.model_load");
  Result<CheckpointInfo> info = ReadCheckpointInfo(path);
  if (!info.ok()) return info.status();
  if (info.value().seq <= current_seq()) {
    Metrics().stale_skips->Add();
    return Status::OK();  // Stale is a polling outcome, not an error.
  }
  // Full restore into a scratch agent (the payload CRC was already
  // validated; this catches architecture mismatches) and weight export.
  DqnFleetAgent scratch(config_, "serve-loader");
  Result<int> episodes = LoadCheckpoint(path, &scratch);
  if (!episodes.ok()) return episodes.status();
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->seq = info.value().seq;
  snapshot->episodes_done = episodes.value();
  snapshot->source = path;
  snapshot->weights = scratch.ExportPolicyWeights();
  Publish(std::move(snapshot));
  return Status::OK();
}

bool ModelServer::IsQuarantined(const std::string& path) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  const auto it = probe_failures_.find(path);
  return it != probe_failures_.end() && it->second.quarantined;
}

bool ModelServer::ShouldSkipQuarantined(const std::string& path,
                                        std::uintmax_t size, int64_t mtime) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  const auto it = probe_failures_.find(path);
  if (it == probe_failures_.end() || !it->second.quarantined) return false;
  if (it->second.size == size && it->second.mtime == mtime) return true;
  // The writer replaced the file: lift the quarantine, probe it fresh.
  probe_failures_.erase(it);
  return false;
}

void ModelServer::RecordProbeFailure(const std::string& path,
                                     std::uintmax_t size, int64_t mtime) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  ProbeFailures& entry = probe_failures_[path];
  if (entry.failures > 0 && (entry.size != size || entry.mtime != mtime)) {
    entry = ProbeFailures{};  // New content: fresh streak.
  }
  entry.size = size;
  entry.mtime = mtime;
  if (++entry.failures < kQuarantineProbeLimit) return;
  // Persistently corrupt: get it out of the poll loop for good. Rename to
  // *.bad (outside the watcher's *.ckpt glob) keeps the bytes around for a
  // post-mortem; if the rename fails (read-only dir), skip-list in memory.
  std::error_code rename_ec;
  std::filesystem::rename(path, path + ".bad", rename_ec);
  DPDP_LOG(WARN) << "serve: checkpoint " << path << " failed "
                 << entry.failures << " probes, quarantined"
                 << (rename_ec ? " (skip-listed; rename failed)"
                               : " (renamed to .bad)");
  Metrics().ckpt_rejected->Add();
  obs::RecordFlight(obs::FlightEventKind::kQuarantine, "serve.quarantine", -1,
                    entry.failures);
  if (rename_ec) {
    entry.quarantined = true;
  } else {
    probe_failures_.erase(path);  // The path no longer exists.
  }
}

int ModelServer::PollOnce(const std::string& model_dir) {
  Metrics().polls->Add();
  const uint64_t have = current_seq();
  std::string best_path;
  uint64_t best_seq = have;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(model_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().extension() != ".ckpt") continue;  // Skips .tmp files.
    const std::string path = entry.path().string();
    std::error_code stat_ec;
    const std::uintmax_t size = entry.file_size(stat_ec);
    const int64_t mtime =
        stat_ec ? 0
                : static_cast<int64_t>(
                      entry.last_write_time(stat_ec).time_since_epoch().count());
    if (ShouldSkipQuarantined(path, size, mtime)) continue;
    Result<CheckpointInfo> info = ReadCheckpointInfo(path);
    if (!info.ok()) {
      // Torn/corrupt/foreign file: count and move on. The CRC footer is
      // what makes mtime irrelevant here. Repeated failures of the SAME
      // bytes quarantine the file so it stops costing a read per poll.
      Metrics().invalid_skips->Add();
      RecordProbeFailure(path, size, mtime);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(quarantine_mu_);
      probe_failures_.erase(path);  // Healthy probe clears the streak.
    }
    if (info.value().seq > best_seq) {
      best_seq = info.value().seq;
      best_path = path;
    }
  }
  if (best_path.empty()) return 0;
  const Status status = LoadCheckpointFile(best_path);
  if (!status.ok()) {
    // Lost a race with a writer or architecture mismatch; next poll
    // retries.
    DPDP_LOG(WARN) << "serve: checkpoint " << best_path
                   << " rejected: " << status.message();
    Metrics().invalid_skips->Add();
    return 0;
  }
  return current_seq() > have ? 1 : 0;
}

void ModelServer::StartWatcher(const std::string& model_dir, int poll_ms) {
  std::string dir =
      model_dir.empty() ? EnvStr("DPDP_SERVE_MODEL_DIR", "") : model_dir;
  if (dir.empty()) return;
  if (poll_ms <= 0) poll_ms = EnvInt("DPDP_SERVE_POLL_MS", 50);
  poll_ms = std::max(1, poll_ms);
  std::lock_guard<std::mutex> lock(watcher_mu_);
  if (watcher_.joinable()) return;  // Already watching.
  watcher_stop_ = false;
  watcher_ = std::thread([this, dir, poll_ms] {
    std::unique_lock<std::mutex> lock(watcher_mu_);
    while (!watcher_stop_) {
      lock.unlock();
      PollOnce(dir);
      lock.lock();
      watcher_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                           [&] { return watcher_stop_; });
    }
  });
}

void ModelServer::StopWatcher() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = true;
    worker = std::move(watcher_);
  }
  watcher_cv_.notify_all();
  if (worker.joinable()) worker.join();
}

}  // namespace dpdp::serve
