#include "serve/request_queue.h"

#include <utility>

#include "util/status.h"

namespace dpdp::serve {

PushResult RequestQueue::TryPush(DecisionRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (static_cast<int>(queue_.size()) >= capacity_) {
      return PushResult::kFull;
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return PushResult::kAdmitted;
}

void RequestQueue::Requeue(std::vector<DecisionRequest>* batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = batch->rbegin(); it != batch->rend(); ++it) {
      queue_.push_front(std::move(*it));
    }
  }
  batch->clear();
  cv_.notify_all();
}

int RequestQueue::PopBatch(std::vector<DecisionRequest>* out, int max_batch,
                           long max_wait_us) {
  out->clear();
  if (max_batch < 1) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return 0;  // Closed and drained.

  // The flush deadline belongs to the oldest request: it bounds queueing
  // delay per request, independent of how many stragglers trickle in.
  const auto deadline =
      queue_.front().enqueue_time + std::chrono::microseconds(max_wait_us);
  for (;;) {
    while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (static_cast<int>(out->size()) >= max_batch || closed_) break;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Deadline hit: grab anything that raced in, then flush.
      while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      break;
    }
  }
  return static_cast<int>(out->size());
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  DPDP_CHECK(queue_.empty());  // Reopen only after the backlog is drained.
  closed_ = false;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dpdp::serve
