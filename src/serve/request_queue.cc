#include "serve/request_queue.h"

#include <utility>

namespace dpdp::serve {

bool RequestQueue::TryPush(DecisionRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || static_cast<int>(queue_.size()) >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return true;
}

int RequestQueue::PopBatch(std::vector<DecisionRequest>* out, int max_batch,
                           long max_wait_us) {
  out->clear();
  if (max_batch < 1) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return 0;  // Closed and drained.

  // The flush deadline belongs to the oldest request: it bounds queueing
  // delay per request, independent of how many stragglers trickle in.
  const auto deadline =
      queue_.front().enqueue_time + std::chrono::microseconds(max_wait_us);
  for (;;) {
    while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (static_cast<int>(out->size()) >= max_batch || closed_) break;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Deadline hit: grab anything that raced in, then flush.
      while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      break;
    }
  }
  return static_cast<int>(out->size());
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace dpdp::serve
