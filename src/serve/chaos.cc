#include "serve/chaos.h"

#include "util/env.h"
#include "util/rng.h"

namespace dpdp::serve {
namespace {

/// Sub-stream tags: one independent stream per fault kind, so tuning one
/// probability never shifts another kind's schedule (the DisruptionConfig
/// sub-stream rule). The corrupt-publish stream lives outside the
/// per-shard space entirely.
enum ChaosStream : uint64_t {
  kCrashStream = 0,
  kStallStream = 1,
  kSlowStream = 2,
  kCorruptStream = 0x436f7272,  // "Corr" — disjoint from shard cells.
};

/// Seed of the (shard, tick) cell. Shards are offset so the unsharded
/// service (shard index -1) gets its own stream rather than aliasing
/// shard 0's.
uint64_t CellSeed(uint64_t base, int shard, uint64_t tick) {
  return Rng::DeriveSeed(
      Rng::DeriveSeed(base, static_cast<uint64_t>(shard + 1)), tick);
}

bool Draw(uint64_t cell, uint64_t stream, double prob) {
  if (prob <= 0.0) return false;
  return Rng(Rng::DeriveSeed(cell, stream)).Bernoulli(prob);
}

}  // namespace

ChaosConfig ChaosConfigFromEnv() {
  ChaosConfig config;
  config.seed = static_cast<uint64_t>(
      EnvInt("DPDP_SERVE_CHAOS_SEED", static_cast<int>(config.seed)));
  config.stall_prob = EnvDouble("DPDP_SERVE_CHAOS_STALL_PROB",
                                config.stall_prob);
  config.stall_us = EnvInt("DPDP_SERVE_CHAOS_STALL_US",
                           static_cast<int>(config.stall_us));
  config.slow_prob = EnvDouble("DPDP_SERVE_CHAOS_SLOW_PROB",
                               config.slow_prob);
  config.slow_us = EnvInt("DPDP_SERVE_CHAOS_SLOW_US",
                          static_cast<int>(config.slow_us));
  config.crash_prob = EnvDouble("DPDP_SERVE_CHAOS_CRASH_PROB",
                                config.crash_prob);
  config.corrupt_publish_prob = EnvDouble("DPDP_SERVE_CHAOS_CORRUPT_PROB",
                                          config.corrupt_publish_prob);
  return config;
}

const char* ChaosActionName(ChaosAction action) {
  switch (action) {
    case ChaosAction::kNone:
      return "none";
    case ChaosAction::kEvalSlowdown:
      return "eval_slowdown";
    case ChaosAction::kStall:
      return "stall";
    case ChaosAction::kCrash:
      return "crash";
  }
  return "?";
}

ChaosAction ChaosPolicy::ActionAt(int shard, uint64_t tick) const {
  const uint64_t cell = CellSeed(config_.seed, shard, tick);
  // Severity order: a cell where both the crash and the stall stream fire
  // crashes — the harsher fault subsumes the milder one.
  if (Draw(cell, kCrashStream, config_.crash_prob)) return ChaosAction::kCrash;
  if (Draw(cell, kStallStream, config_.stall_prob)) return ChaosAction::kStall;
  if (Draw(cell, kSlowStream, config_.slow_prob)) {
    return ChaosAction::kEvalSlowdown;
  }
  return ChaosAction::kNone;
}

bool ChaosPolicy::CorruptPublishAt(uint64_t publish_index) const {
  if (config_.corrupt_publish_prob <= 0.0) return false;
  return Rng(Rng::DeriveSeed(Rng::DeriveSeed(config_.seed, kCorruptStream),
                             publish_index))
      .Bernoulli(config_.corrupt_publish_prob);
}

}  // namespace dpdp::serve
