#ifndef DPDP_SERVE_SERVICE_DISPATCHER_H_
#define DPDP_SERVE_SERVICE_DISPATCHER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "serve/dispatch_service.h"
#include "sim/dispatcher.h"

namespace dpdp::serve {

/// Adapts a DecisionService (one DispatchService, or a ShardRouter over N
/// of them) to the simulator's Dispatcher interface: one ChooseVehicle =
/// one Submit + blocking wait on the reply. This is the indirection that
/// lets any Simulator run "backed by the service" instead of owning an
/// agent — the simulator neither knows nor cares that its decision crossed
/// a queue (or a sharded fabric) and came back from a batched evaluation.
///
/// A degraded reply (vehicle -1) is returned as -1, so the simulator
/// performs its own greedy fallback and counts the degradation exactly as
/// it would for a local agent. Not thread-safe; one instance per client
/// simulator (the service behind it is the shared, thread-safe part).
class ServiceDispatcher : public Dispatcher {
 public:
  explicit ServiceDispatcher(DecisionService* service,
                             std::string name = "served")
      : service_(service), name_(std::move(name)) {}

  const char* name() const override { return name_.c_str(); }

  int ChooseVehicle(const DispatchContext& context) override {
    const auto start = std::chrono::steady_clock::now();
    ServeReply reply = service_->Submit(context).get();
    latencies_s_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    if (reply.shed) ++sheds_;
    if (reply.degraded) ++degraded_;
    if (reply.deadline_exceeded) ++deadline_exceeded_;
    return reply.vehicle;
  }

  /// Per-decision round-trip seconds (submit to reply), in decision order.
  const std::vector<double>& latencies_s() const { return latencies_s_; }
  long sheds() const { return sheds_; }
  long degraded() const { return degraded_; }
  /// Replies answered by the deadline fallback instead of the model — the
  /// client-side mirror of the service's serve.deadline_exceeded counter.
  long deadline_exceeded() const { return deadline_exceeded_; }

 private:
  DecisionService* const service_;
  const std::string name_;
  std::vector<double> latencies_s_;
  long sheds_ = 0;
  long degraded_ = 0;
  long deadline_exceeded_ = 0;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_SERVICE_DISPATCHER_H_
