#include "serve/shard_supervisor.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/log.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

obs::Counter& ScanCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.supervisor.scans");
  return *counter;
}

}  // namespace

SupervisorConfig SupervisorConfigFromEnv() {
  SupervisorConfig config;
  config.watchdog_period_ms =
      EnvInt("DPDP_SERVE_WATCHDOG_MS", config.watchdog_period_ms);
  config.stuck_after_ms = EnvInt("DPDP_SERVE_STUCK_MS", config.stuck_after_ms);
  config.breaker = BreakerConfigFromEnv();
  return config;
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kStuck:
      return "stuck";
    case ShardHealth::kDead:
      return "dead";
  }
  return "?";
}

ShardSupervisor::ShardSupervisor(const SupervisorConfig& config,
                                 ShardRouter* router)
    : config_(config), router_(router) {
  DPDP_CHECK(router_ != nullptr);
  const int n = router_->num_shards();
  breakers_.reserve(n);
  health_.assign(n, ShardHealth::kHealthy);
  health_gauges_.reserve(n);
  breaker_gauges_.reserve(n);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (int k = 0; k < n; ++k) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(config_.breaker));
    const std::string prefix = "serve.shard" + std::to_string(k);
    health_gauges_.push_back(registry.GetGauge(prefix + ".health"));
    breaker_gauges_.push_back(registry.GetGauge(prefix + ".breaker_state"));
    health_gauges_.back()->Set(0.0);
    breaker_gauges_.back()->Set(0.0);
  }
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (watchdog_.joinable()) return;
  stop_requested_ = false;
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void ShardSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void ShardSupervisor::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    ScanOnceLocked(MonotonicNanos());
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.watchdog_period_ms),
                      [this] { return stop_requested_; });
  }
}

void ShardSupervisor::ScanOnce(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ScanOnceLocked(now_ns);
}

ShardHealth ShardSupervisor::Probe(int k, int64_t now_ns) const {
  const DispatchService& shard = router_->shard(k);
  if (shard.crashed()) return ShardHealth::kDead;
  const int64_t age_ns = now_ns - shard.heartbeat_ns();
  if (shard.queue_size() > 0 &&
      age_ns > static_cast<int64_t>(config_.stuck_after_ms) * 1000000) {
    return ShardHealth::kStuck;
  }
  return ShardHealth::kHealthy;
}

void ShardSupervisor::FailOver(int k) {
  if (router_->IsTripped(k)) return;
  DPDP_TRACE_SPAN("serve.failover");
  DPDP_LOG(WARN) << "shard " << k << " unhealthy ("
                 << ShardHealthName(health_[k])
                 << "): failing its partition over";
  router_->TripShard(k);
}

bool ShardSupervisor::RestartShard(int k) {
  DPDP_TRACE_SPAN("serve.failover");
  std::vector<DecisionRequest> orphans;
  if (!router_->shard(k).Restart(&orphans)) return false;
  DPDP_LOG(INFO) << "shard " << k << " restarted; rerouting "
                 << orphans.size() << " orphaned request(s)";
  obs::RecordFlight(obs::FlightEventKind::kRestart, "serve.restart", k,
                    orphans.size());
  RerouteOrphans(k, &orphans);
  return true;
}

void ShardSupervisor::RerouteOrphans(int home,
                                     std::vector<DecisionRequest>* orphans) {
  // Orphans were counted at their original admission: re-enqueue without
  // recounting (Readmit), hopping past closed queues like the router does.
  // Zero lost replies is the invariant: every orphan is either admitted
  // somewhere live or answered as a shed right here.
  const int n = router_->num_shards();
  for (DecisionRequest& request : *orphans) {
    int target = router_->RedirectOf(home);
    bool answered = false;
    if (request.trace.active()) {
      // The orphan's lane continues on the supervisor thread: one readmit
      // hop linking its pre-crash hops to wherever it lands next.
      const int64_t now = MonotonicNanos();
      request.trace = obs::RecordHop("serve.hop.readmit", request.trace, now,
                                     now, obs::FlowPhase::kStep);
    }
    for (int hop = 0; hop < n; ++hop) {
      DispatchService& shard = router_->shard(target);
      const PushResult result = shard.Readmit(&request);
      if (result == PushResult::kAdmitted) {
        if (target != home) router_->shard(home).CountReroute();
        answered = true;
        break;
      }
      if (result == PushResult::kFull) {
        shard.AnswerShed(&request, /*closed_reject=*/false);
        answered = true;
        break;
      }
      target = (target + 1) % n;
    }
    if (!answered) {
      router_->shard(home).AnswerShed(&request, /*closed_reject=*/true);
    }
  }
  orphans->clear();
}

void ShardSupervisor::ScanOnceLocked(int64_t now_ns) {
  ++scans_;
  ScanCounter().Add();
  const int n = router_->num_shards();
  for (int k = 0; k < n; ++k) {
    const ShardHealth prev = health_[k];
    ShardHealth verdict = Probe(k, now_ns);
    CircuitBreaker& breaker = *breakers_[k];
    switch (verdict) {
      case ShardHealth::kDead: {
        health_[k] = verdict;
        // A crash is one failure event — the edge into dead, not the dead
        // state persisting across scans while the breaker backs off.
        if (prev != ShardHealth::kDead) {
          breaker.RecordFailure(now_ns);
          // The black-box moment: capture the recent-event rings exactly
          // once per death, before failover/restart overwrite them.
          obs::FlightRecorderAutoDump("shard_dead");
        }
        FailOver(k);
        // Restart gated by the breaker: closed (under threshold) restarts
        // now; half-open means the backoff elapsed and this restart IS the
        // probe; open keeps the shard down until the backoff ends.
        if (breaker.StateAt(now_ns) != BreakerState::kOpen) {
          if (RestartShard(k)) {
            router_->RestoreShard(k);
            verdict = ShardHealth::kHealthy;  // Back up, map restored.
            health_[k] = verdict;
          }
        }
        break;
      }
      case ShardHealth::kStuck: {
        health_[k] = verdict;
        // A stall is level-triggered: every stuck scan is a failure, so a
        // persistent wedge walks the breaker to its threshold and trips
        // the partition over; a blip under the threshold changes nothing.
        breaker.RecordFailure(now_ns);
        if (breaker.StateAt(now_ns) == BreakerState::kOpen) FailOver(k);
        break;
      }
      case ShardHealth::kHealthy: {
        health_[k] = verdict;
        // Closes the breaker from half-open, resets the failure streak.
        breaker.RecordSuccess(now_ns);
        if (router_->IsTripped(k) &&
            breaker.StateAt(now_ns) == BreakerState::kClosed &&
            !router_->shard(k).crashed()) {
          DPDP_TRACE_SPAN("serve.failover");
          DPDP_LOG(INFO) << "shard " << k
                         << " healthy again: restoring its partition";
          router_->RestoreShard(k);
        }
        break;
      }
    }
    health_gauges_[k]->Set(static_cast<double>(verdict));
    const double breaker_state = static_cast<double>(breaker.StateAt(now_ns));
    if (breaker_state != breaker_gauges_[k]->Value()) {
      obs::RecordFlight(obs::FlightEventKind::kBreaker, "serve.breaker", k,
                        static_cast<uint64_t>(breaker_state));
    }
    breaker_gauges_[k]->Set(breaker_state);
  }
}

ShardHealth ShardSupervisor::health(int k) const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_[k];
}

}  // namespace dpdp::serve
