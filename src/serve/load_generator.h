#ifndef DPDP_SERVE_LOAD_GENERATOR_H_
#define DPDP_SERVE_LOAD_GENERATOR_H_

#include <vector>

#include "model/instance.h"
#include "rl/config.h"
#include "serve/dispatch_service.h"
#include "sim/simulator.h"

namespace dpdp::serve {

/// Closed-loop load options: each client is one Simulator replaying its
/// instance and blocking on every decision (the next order is only
/// dispatched after the previous reply arrives — campus semantics).
struct LoadOptions {
  int episodes_per_client = 1;
  SimulatorConfig sim;
};

/// One client's outcome: its episode results plus per-decision round-trip
/// latencies in decision order.
struct ClientOutcome {
  std::vector<EpisodeResult> episodes;
  std::vector<double> latencies_s;
  long sheds = 0;
  long degraded = 0;
  long deadline_exceeded = 0;
};

/// Aggregate of one load run.
struct LoadReport {
  std::vector<ClientOutcome> clients;  ///< Index = instance index.
  double wall_seconds = 0.0;
  long total_decisions = 0;
  double decisions_per_second = 0.0;
  /// Round-trip decision latency percentiles over all clients, estimated
  /// with obs::HistogramQuantile over the standard latency buckets — the
  /// same estimator the telemetry plane applies to the serve.* histograms,
  /// so load-report and /metrics percentiles share one definition (exact
  /// up to bucket resolution; see PercentileNearestRank for raw-sample
  /// percentiles).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Runs one closed-loop client per instance against `service` (a single
/// DispatchService or a ShardRouter fabric), all concurrently on a private
/// thread pool with one thread per client (so N campuses genuinely
/// interleave even when DPDP_THREADS = 1), and reports merged
/// throughput/latency. Passing the same Instance* several times models
/// several concurrent clients of one campus. Client i's episode results
/// depend only on (instances[i], options) — never on which other clients
/// shared the run, nor on how many shards served it — because batched
/// evaluation is bit-identical to per-item evaluation.
LoadReport RunServedLoad(const std::vector<const Instance*>& instances,
                         DecisionService* service,
                         const LoadOptions& options);

/// The unbatched baseline: the same closed-loop clients, each owning a
/// private evaluation-mode DqnFleetAgent built from `agent_config`
/// (identical deterministic weight init per client) instead of sharing the
/// service. Same thread layout, so the only difference being measured is
/// batched-vs-independent Q evaluation.
LoadReport RunLocalAgentsLoad(const std::vector<const Instance*>& instances,
                              const AgentConfig& agent_config,
                              const LoadOptions& options);

/// Nearest-rank percentile (q in [0, 1]) of `samples`; 0 when empty.
/// Copies and sorts internally.
double PercentileNearestRank(std::vector<double> samples, double q);

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_LOAD_GENERATOR_H_
