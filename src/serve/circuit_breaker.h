#ifndef DPDP_SERVE_CIRCUIT_BREAKER_H_
#define DPDP_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "util/retry.h"

namespace dpdp::serve {

/// Shape of a per-shard circuit breaker. The open-state backoff reuses
/// RetryPolicy (util/retry) verbatim, so the breaker and the harness-level
/// retry loop speak one capped-exponential-backoff dialect:
/// open period k (0-based since the last fully-closed state) lasts
/// BackoffDelayMs(backoff, k) milliseconds, capped at
/// backoff.max_backoff_ms. RetryPolicy::max_attempts is ignored here — a
/// breaker never gives up, it just backs off at the cap.
struct BreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  int failure_threshold = 3;
  /// Open-state backoff schedule (initial_backoff_ms, backoff_multiplier,
  /// max_backoff_ms — max_attempts unused).
  RetryPolicy backoff;
};

/// Fills a BreakerConfig from DPDP_SERVE_BREAKER_THRESHOLD /
/// _BREAKER_BACKOFF_MS / _BREAKER_BACKOFF_MULT / _BREAKER_BACKOFF_MAX_MS.
BreakerConfig BreakerConfigFromEnv();

enum class BreakerState {
  kClosed = 0,    ///< Healthy: traffic flows, failures are counted.
  kOpen = 1,      ///< Tripped: traffic is rerouted until the backoff ends.
  kHalfOpen = 2,  ///< Backoff elapsed: one probe decides close vs re-open.
};

const char* BreakerStateName(BreakerState state);

/// The closed -> open -> half-open state machine guarding one shard.
///
/// Deterministic by construction: the breaker owns no clock and no RNG —
/// every transition is a pure function of the call sequence and the
/// timestamps passed in (monotonic nanos, any origin). That makes it a
/// pure unit under test (drive it with synthetic timestamps) and keeps the
/// supervisor's behavior replayable from a trace.
///
/// Transitions:
///   closed    --failure x threshold-->  open (backoff period k)
///   open      --backoff elapsed------>  half-open   (via StateAt)
///   half-open --success-------------->  closed      (failure streak reset,
///                                                    backoff reset to k=0)
///   half-open --failure-------------->  open (period k+1, capped)
///   closed    --success-------------->  closed      (failure streak reset)
///
/// Not thread-safe: owned and driven by the single supervisor thread.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config);

  /// Current state, advancing open -> half-open when the open period has
  /// elapsed by `now_ns`.
  BreakerState StateAt(int64_t now_ns);

  /// Records one health-probe failure at `now_ns`. In closed state,
  /// `failure_threshold` consecutive failures trip the breaker; in
  /// half-open a single failure re-opens it with the next (longer)
  /// backoff; in open state it is a no-op (the shard is already tripped).
  void RecordFailure(int64_t now_ns);

  /// Records one health-probe success. Closes the breaker from half-open
  /// and resets the failure streak and the backoff schedule.
  void RecordSuccess(int64_t now_ns);

  /// Milliseconds of the current/last open period (0 if never opened).
  int current_backoff_ms() const { return current_backoff_ms_; }
  /// Consecutive failures observed in closed state.
  int consecutive_failures() const { return consecutive_failures_; }
  /// Lifetime closed -> open transitions.
  uint64_t trips() const { return trips_; }

  const BreakerConfig& config() const { return config_; }

 private:
  void Open(int64_t now_ns);

  const BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int open_period_ = 0;  ///< k in BackoffDelayMs(backoff, k).
  int current_backoff_ms_ = 0;
  int64_t open_until_ns_ = 0;
  uint64_t trips_ = 0;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_CIRCUIT_BREAKER_H_
