#include "serve/circuit_breaker.h"

#include "util/env.h"

namespace dpdp::serve {

BreakerConfig BreakerConfigFromEnv() {
  BreakerConfig config;
  config.failure_threshold =
      EnvInt("DPDP_SERVE_BREAKER_THRESHOLD", config.failure_threshold);
  config.backoff.initial_backoff_ms = EnvInt(
      "DPDP_SERVE_BREAKER_BACKOFF_MS", config.backoff.initial_backoff_ms);
  config.backoff.backoff_multiplier = EnvDouble(
      "DPDP_SERVE_BREAKER_BACKOFF_MULT", config.backoff.backoff_multiplier);
  config.backoff.max_backoff_ms = EnvInt("DPDP_SERVE_BREAKER_BACKOFF_MAX_MS",
                                         config.backoff.max_backoff_ms);
  return config;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {}

BreakerState CircuitBreaker::StateAt(int64_t now_ns) {
  if (state_ == BreakerState::kOpen && now_ns >= open_until_ns_) {
    state_ = BreakerState::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::Open(int64_t now_ns) {
  state_ = BreakerState::kOpen;
  current_backoff_ms_ = BackoffDelayMs(config_.backoff, open_period_);
  open_until_ns_ = now_ns + static_cast<int64_t>(current_backoff_ms_) * 1000000;
  ++open_period_;  // The next re-open (from half-open) backs off longer.
}

void CircuitBreaker::RecordFailure(int64_t now_ns) {
  switch (StateAt(now_ns)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        ++trips_;
        Open(now_ns);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to open, longer backoff (capped).
      Open(now_ns);
      break;
    case BreakerState::kOpen:
      break;  // Already tripped; failures while open carry no information.
  }
}

void CircuitBreaker::RecordSuccess(int64_t now_ns) {
  const BreakerState state = StateAt(now_ns);
  consecutive_failures_ = 0;
  if (state == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    open_period_ = 0;  // A healthy shard earns a fresh backoff schedule.
  }
}

}  // namespace dpdp::serve
