#ifndef DPDP_SERVE_REQUEST_QUEUE_H_
#define DPDP_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "sim/dispatcher.h"

namespace dpdp::serve {

/// The answer to one decision request.
struct ServeReply {
  /// Chosen vehicle index, or -1 when the model refused the decision
  /// (non-finite Q for a feasible vehicle). A -1 is NOT substituted by the
  /// service on purpose: the caller's simulator performs its own greedy
  /// fallback and counts the degradation, exactly as it would for a local
  /// agent — which keeps served and local episode results bit-identical.
  int vehicle = -1;
  bool shed = false;      ///< Answered by admission control, not the model.
  bool degraded = false;  ///< vehicle == -1 (poisoned model output).
  /// The request's deadline expired before the model could answer: the
  /// reply carries the greedy-insertion fallback decision instead (a
  /// bounded-latency approximate answer beats a late exact one). Distinct
  /// from shed — the request WAS admitted; it just aged out.
  bool deadline_exceeded = false;
  uint64_t model_seq = 0; ///< Snapshot that scored (or shed) the request.
  int shard = -1;         ///< Answering shard (-1 outside a sharded fabric).
  /// Distributed-trace id of the request (0 when tracing was off at
  /// submit). Lets a caller correlate its reply with the request's hop
  /// lane in the exported Chrome trace.
  uint64_t trace_id = 0;
};

/// One queued decision request. The context is borrowed: the submitter
/// must keep it alive until the reply future is fulfilled. The dispatch
/// adapter guarantees this by blocking on the future inside ChooseVehicle.
struct DecisionRequest {
  const DispatchContext* context = nullptr;
  std::promise<ServeReply> reply;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Reply-by deadline (valid when has_deadline). Past it, the service
  /// answers with the greedy fallback instead of the model.
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  /// Request-scoped trace identity, updated at every recorded hop so the
  /// next hop parent-links to the previous one. Inactive ({0, 0}) when
  /// tracing is disabled — carrying it then costs two dead u64s.
  obs::TraceContext trace;
};

/// Outcome of a push attempt. kFull and kClosed are deliberately distinct:
/// a full queue is transient overload (shed this request, keep routing
/// here), a closed queue means the consumer is gone — a router should fail
/// the shard over, not shed into a void.
enum class PushResult {
  kAdmitted,
  kFull,    ///< At capacity: load-shed signal.
  kClosed,  ///< Queue closed (shard stopping, crashed, or restarting).
};

/// Bounded MPSC admission queue with micro-batch pops. Producers TryPush
/// (never block — a full queue is the load-shedding signal); the single
/// consumer pops coalesced batches under a max_batch / max_wait_us policy.
class RequestQueue {
 public:
  /// `capacity` bounds the number of queued (admitted, not yet popped)
  /// requests. 0 is legal and makes every TryPush fail — the drain-mode
  /// configuration where admission control sheds all traffic.
  explicit RequestQueue(int capacity) : capacity_(capacity) {}

  /// Enqueues `request` unless the queue is full or closed. On failure the
  /// request is left untouched (the caller still owns its promise and must
  /// answer it — shed, reroute, or fallback as policy dictates).
  PushResult TryPush(DecisionRequest&& request);

  /// Returns `batch` to the FRONT of the queue in order, ignoring the
  /// capacity bound and the closed flag: these requests were already
  /// admitted once, and dropping admitted work is the one thing the fabric
  /// never does. The crash path of a chaos-injected service loop uses this
  /// to put its popped batch back before dying, so the supervisor's drain
  /// sees every outstanding request.
  void Requeue(std::vector<DecisionRequest>* batch);

  /// Blocks until at least one request is queued (or the queue is closed),
  /// then collects up to `max_batch` requests into `out`. After the first
  /// request is taken, keeps waiting for more only until the OLDEST popped
  /// request has aged `max_wait_us` past its enqueue time — so a request
  /// admitted to an idle service is answered within roughly max_wait_us
  /// plus one evaluation, while a backlogged service flushes full batches
  /// immediately. Returns the number popped; 0 only when closed and
  /// drained (the consumer's exit condition — close never drops requests).
  int PopBatch(std::vector<DecisionRequest>* out, int max_batch,
               long max_wait_us);

  /// Wakes the consumer and makes further TryPush fail with kClosed.
  /// Already-queued requests remain poppable.
  void Close();

  /// Reverts Close so admission resumes — the supervised-restart path,
  /// called after the old consumer is joined and the backlog drained.
  /// Requires the queue to be empty.
  void Reopen();

  size_t size() const;
  bool closed() const;

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<DecisionRequest> queue_;
  bool closed_ = false;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_REQUEST_QUEUE_H_
