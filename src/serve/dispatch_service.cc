#include "serve/dispatch_service.h"

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/q_network.h"
#include "rl/state.h"
#include "util/env.h"
#include "util/rng.h"

namespace dpdp::serve {
namespace {

struct ServeMetrics {
  obs::Counter* requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  obs::Counter* shed = obs::MetricsRegistry::Global().GetCounter("serve.shed");
  obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("serve.batches");
  obs::Counter* batched_items =
      obs::MetricsRegistry::Global().GetCounter("serve.batched_items");
  obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetCounter("serve.degraded");
  obs::Histogram* batch_size = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram* queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_s", obs::LatencyBucketsSeconds());
  obs::Histogram* eval_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.eval_latency_s", obs::LatencyBucketsSeconds());
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics;
  return *metrics;
}

}  // namespace

ServeConfig ServeConfigFromEnv() {
  ServeConfig config;
  config.max_batch = EnvInt("DPDP_SERVE_MAX_BATCH", config.max_batch);
  config.max_wait_us = EnvInt("DPDP_SERVE_MAX_WAIT_US",
                              static_cast<int>(config.max_wait_us));
  config.queue_capacity =
      EnvInt("DPDP_SERVE_QUEUE_CAP", config.queue_capacity);
  return config;
}

DispatchService::DispatchService(const ServeConfig& config,
                                 ModelServer* models)
    : config_(config), models_(models), queue_(config.queue_capacity) {
  DPDP_CHECK(models_ != nullptr);
  loop_ = std::thread([this] { Loop(); });
}

DispatchService::~DispatchService() { Stop(); }

std::future<ServeReply> DispatchService::Submit(
    const DispatchContext& context) {
  DecisionRequest request;
  request.context = &context;
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<ServeReply> fut = request.reply.get_future();
  requests_.fetch_add(1, std::memory_order_relaxed);
  Metrics().requests->Add();
  if (!queue_.TryPush(std::move(request))) {
    // Shed: answer right here on the caller's thread with the emergency
    // rule. Overload slows one caller down by one greedy scan; it never
    // wedges the service or blocks the queue.
    ServeReply reply;
    reply.vehicle = GreedyInsertionFallback(context);
    reply.shed = true;
    reply.model_seq = models_->current_seq();
    sheds_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed->Add();
    request.reply.set_value(reply);
  }
  return fut;
}

void DispatchService::Stop() {
  if (stopped_.exchange(true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  queue_.Close();
  if (loop_.joinable()) loop_.join();
}

void DispatchService::Loop() {
  // The loop's private evaluation net. Weights are synced from the current
  // ModelSnapshot whenever its seq moves; the snapshot itself is immutable,
  // so in-flight evaluation and a concurrent Publish never touch the same
  // matrices.
  Rng scratch(models_->config().seed);
  std::unique_ptr<FleetQNetwork> net = MakeQNetwork(models_->config(), &scratch);
  const AgentConfig& agent_config = models_->config();
  bool synced_once = false;
  uint64_t net_seq = 0;

  std::vector<DecisionRequest> requests;
  std::vector<FleetState> states;
  std::vector<std::vector<int>> indices;
  DecisionBatch batch;
  ServeMetrics& metrics = Metrics();

  while (queue_.PopBatch(&requests, config_.max_batch, config_.max_wait_us) >
         0) {
    DPDP_TRACE_SPAN("serve.batch");
    const auto start = std::chrono::steady_clock::now();
    std::shared_ptr<const ModelSnapshot> snapshot = models_->Current();
    if (!synced_once || snapshot->seq != net_seq) {
      const std::vector<nn::Parameter*> params = net->Params();
      DPDP_CHECK(params.size() == snapshot->weights.size());
      for (size_t j = 0; j < params.size(); ++j) {
        params[j]->value = snapshot->weights[j];
      }
      net_seq = snapshot->seq;
      if (synced_once) swaps_applied_.fetch_add(1, std::memory_order_relaxed);
      synced_once = true;
    }

    const int n = static_cast<int>(requests.size());
    states.resize(n);
    indices.resize(n);
    batch.Clear();
    for (int i = 0; i < n; ++i) {
      metrics.queue_wait->Record(
          std::chrono::duration<double>(start - requests[i].enqueue_time)
              .count());
      states[i] = BuildFleetState(*requests[i].context, agent_config);
      indices[i] = InferenceIndices(states[i], agent_config);
      AppendSubFleetInputs(states[i], indices[i], agent_config.use_graph,
                           agent_config.num_neighbors, &batch);
    }
    const nn::Matrix& q = net->EvaluateBatch(batch);
    for (int i = 0; i < n; ++i) {
      const GreedyQChoice choice =
          ArgmaxFeasibleQ(states[i], indices[i], q, batch.offset(i));
      ServeReply reply;
      reply.vehicle = choice.vehicle;
      reply.degraded = choice.vehicle < 0;
      reply.model_seq = snapshot->seq;
      if (reply.degraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        metrics.degraded->Add();
      }
      requests[i].reply.set_value(reply);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    metrics.batches->Add();
    metrics.batched_items->Add(n);
    metrics.batch_size->Record(static_cast<double>(n));
    metrics.eval_latency->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
}

}  // namespace dpdp::serve
