#include "serve/dispatch_service.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/q_network.h"
#include "rl/state.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dpdp::serve {
namespace {

struct ServeMetrics {
  obs::Counter* requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  obs::Counter* shed = obs::MetricsRegistry::Global().GetCounter("serve.shed");
  obs::Counter* shed_closed =
      obs::MetricsRegistry::Global().GetCounter("serve.shed_closed");
  obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("serve.batches");
  obs::Counter* batched_items =
      obs::MetricsRegistry::Global().GetCounter("serve.batched_items");
  obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetCounter("serve.degraded");
  obs::Counter* deadline_exceeded =
      obs::MetricsRegistry::Global().GetCounter("serve.deadline_exceeded");
  obs::Counter* rerouted =
      obs::MetricsRegistry::Global().GetCounter("serve.rerouted");
  obs::Counter* restarts =
      obs::MetricsRegistry::Global().GetCounter("serve.restarts");
  obs::Counter* chaos_stalls =
      obs::MetricsRegistry::Global().GetCounter("serve.chaos.stalls");
  obs::Counter* chaos_slowdowns =
      obs::MetricsRegistry::Global().GetCounter("serve.chaos.slowdowns");
  obs::Counter* chaos_crashes =
      obs::MetricsRegistry::Global().GetCounter("serve.chaos.crashes");
  obs::Histogram* batch_size = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram* queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_s", obs::LatencyBucketsSeconds());
  obs::Histogram* eval_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.eval_latency_s", obs::LatencyBucketsSeconds());
  obs::Histogram* commit_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.commit_latency_s", obs::LatencyBucketsSeconds());
  /// End-to-end service latency (enqueue -> reply release), recorded for
  /// every answered request on every path (served, shed, deadline) — the
  /// histogram the SLO monitor's p99 objective reads by default.
  obs::Histogram* request_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request_latency_s", obs::LatencyBucketsSeconds());
  /// Queue depth sampled at each batch pop (aggregate; per-shard gauges
  /// live on the service). Gauge, not histogram: the live value is what a
  /// dashboard wants, and the timeseries sampler turns it into a curve.
  obs::Gauge* queue_depth =
      obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
  /// Per-hop latency histograms, recorded only for traced requests (the
  /// hop spans and these rows come from the same timestamps).
  obs::Histogram* hop_route = obs::MetricsRegistry::Global().GetHistogram(
      "serve.hop.route_s", obs::LatencyBucketsSeconds());
  obs::Histogram* hop_queue = obs::MetricsRegistry::Global().GetHistogram(
      "serve.hop.queue_s", obs::LatencyBucketsSeconds());
  obs::Histogram* hop_eval = obs::MetricsRegistry::Global().GetHistogram(
      "serve.hop.eval_s", obs::LatencyBucketsSeconds());
  obs::Histogram* hop_commit = obs::MetricsRegistry::Global().GetHistogram(
      "serve.hop.commit_s", obs::LatencyBucketsSeconds());
  obs::Histogram* hop_reply = obs::MetricsRegistry::Global().GetHistogram(
      "serve.hop.reply_s", obs::LatencyBucketsSeconds());
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics;
  return *metrics;
}

/// Nanos-since-steady-epoch of a steady_clock time_point — the same clock
/// MonotonicNanos reads, so queue-hop spans can start at enqueue time.
int64_t ToNanos(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

/// Seconds between two monotonic-nanos stamps (histogram convenience).
double SecondsBetween(int64_t start_ns, int64_t end_ns) {
  return static_cast<double>(end_ns - start_ns) / 1e9;
}

/// Records the submit-side route hop (the flow-start of the request's
/// trace lane) plus its serve.hop.route_s row. No-op for untraced
/// requests: one branch.
void RecordRouteHop(DecisionRequest* request, int64_t route_start) {
  if (!request->trace.active()) return;
  const int64_t now = MonotonicNanos();
  request->trace = obs::RecordHop("serve.hop.route", request->trace,
                                  route_start, now, obs::FlowPhase::kStart);
  Metrics().hop_route->Record(SecondsBetween(route_start, now));
}

}  // namespace

ServeConfig ServeConfigFromEnv() {
  ServeConfig config;
  config.max_batch =
      EnvIntStrict("DPDP_SERVE_MAX_BATCH", config.max_batch, 1, 65536);
  config.max_wait_us = EnvInt64Strict("DPDP_SERVE_MAX_WAIT_US",
                                      config.max_wait_us, 0, 60000000);
  config.queue_capacity = EnvIntStrict("DPDP_SERVE_QUEUE_CAP",
                                       config.queue_capacity, 1, 100000000);
  config.commit_us =
      EnvInt64Strict("DPDP_SERVE_COMMIT_US", config.commit_us, 0, 60000000);
  config.deadline_us = EnvInt64Strict("DPDP_SERVE_DEADLINE_US",
                                      config.deadline_us, 0, 600000000);
  config.chaos = ChaosConfigFromEnv();
  return config;
}

DispatchService::DispatchService(const ServeConfig& config,
                                 ModelServer* models, ShardTag tag)
    : config_(config),
      models_(models),
      tag_(tag),
      queue_(config.queue_capacity) {
  DPDP_CHECK(models_ != nullptr);
  if (config_.chaos.any()) chaos_.emplace(config_.chaos);
  if (tag_.index >= 0) {
    const std::string prefix = "serve.shard" + std::to_string(tag_.index);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    shard_requests_ = registry.GetCounter(prefix + ".requests");
    shard_sheds_ = registry.GetCounter(prefix + ".shed");
    shard_sheds_closed_ = registry.GetCounter(prefix + ".shed_closed");
    shard_batches_ = registry.GetCounter(prefix + ".batches");
    shard_batched_items_ = registry.GetCounter(prefix + ".batched_items");
    shard_degraded_ = registry.GetCounter(prefix + ".degraded");
    shard_deadline_exceeded_ =
        registry.GetCounter(prefix + ".deadline_exceeded");
    shard_rerouted_ = registry.GetCounter(prefix + ".rerouted");
    shard_restarts_ = registry.GetCounter(prefix + ".restarts");
    shard_queue_depth_ = registry.GetGauge(prefix + ".queue_depth");
    shard_span_name_ = prefix;
  }
  heartbeat_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
  loop_ = std::thread([this] { Loop(); });
}

DispatchService::~DispatchService() { Stop(); }

DecisionRequest DispatchService::MakeRequest(
    const DispatchContext& context) const {
  DecisionRequest request;
  request.context = &context;
  request.trace = obs::NewTraceContext();
  request.enqueue_time = std::chrono::steady_clock::now();
  if (config_.deadline_us > 0) {
    request.deadline =
        request.enqueue_time + std::chrono::microseconds(config_.deadline_us);
    request.has_deadline = true;
  }
  return request;
}

std::future<ServeReply> DispatchService::Submit(
    const DispatchContext& context) {
  const int64_t route_start = obs::TraceEnabled() ? MonotonicNanos() : 0;
  DecisionRequest request = MakeRequest(context);
  std::future<ServeReply> fut = request.reply.get_future();
  CountRequest();
  RecordRouteHop(&request, route_start);
  const PushResult result = queue_.TryPush(std::move(request));
  if (result != PushResult::kAdmitted) {
    // Shed: answer right here on the caller's thread with the emergency
    // rule. Overload slows one caller down by one greedy scan; it never
    // wedges the service or blocks the queue.
    AnswerShed(&request, /*closed_reject=*/result == PushResult::kClosed);
  }
  return fut;
}

std::future<ServeReply> DispatchService::SubmitWithDeadline(
    const DispatchContext& context,
    std::chrono::steady_clock::time_point deadline) {
  const int64_t route_start = obs::TraceEnabled() ? MonotonicNanos() : 0;
  DecisionRequest request = MakeRequest(context);
  request.deadline = deadline;
  request.has_deadline = true;
  std::future<ServeReply> fut = request.reply.get_future();
  CountRequest();
  RecordRouteHop(&request, route_start);
  if (std::chrono::steady_clock::now() >= deadline) {
    // Already expired at push: never worth a queue slot.
    AnswerDeadline(&request);
    return fut;
  }
  const PushResult result = queue_.TryPush(std::move(request));
  if (result != PushResult::kAdmitted) {
    AnswerShed(&request, /*closed_reject=*/result == PushResult::kClosed);
  }
  return fut;
}

PushResult DispatchService::Admit(DecisionRequest* request) {
  const PushResult result = queue_.TryPush(std::move(*request));
  // A closed shard never saw the request: the router re-routes it to a
  // live shard, which does the counting. Admitted and shed (kFull)
  // requests are this shard's traffic.
  if (result != PushResult::kClosed) CountRequest();
  return result;
}

PushResult DispatchService::Readmit(DecisionRequest* request) {
  return queue_.TryPush(std::move(*request));
}

void DispatchService::CountRequest() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Metrics().requests->Add();
  if (shard_requests_ != nullptr) shard_requests_->Add();
}

void DispatchService::AnswerShed(DecisionRequest* request,
                                 bool closed_reject) {
  ServeReply reply;
  reply.vehicle = GreedyInsertionFallback(*request->context);
  reply.shed = true;
  reply.model_seq = models_->current_seq();
  reply.shard = tag_.index;
  sheds_.fetch_add(1, std::memory_order_relaxed);
  Metrics().shed->Add();
  if (shard_sheds_ != nullptr) shard_sheds_->Add();
  if (closed_reject) {
    sheds_closed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed_closed->Add();
    if (shard_sheds_closed_ != nullptr) shard_sheds_closed_->Add();
  }
  const int64_t now = MonotonicNanos();
  Metrics().request_latency->Record(
      SecondsBetween(ToNanos(request->enqueue_time), now));
  if (request->trace.active()) {
    // Terminal hop: the shed decision ends the request's flow lane.
    request->trace = obs::RecordHop("serve.hop.shed", request->trace, now,
                                    now, obs::FlowPhase::kEnd);
  }
  reply.trace_id = request->trace.trace_id;
  request->reply.set_value(reply);
}

void DispatchService::AnswerDeadline(DecisionRequest* request) {
  ServeReply reply;
  reply.vehicle = GreedyInsertionFallback(*request->context);
  reply.deadline_exceeded = true;
  reply.model_seq = models_->current_seq();
  reply.shard = tag_.index;
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  Metrics().deadline_exceeded->Add();
  if (shard_deadline_exceeded_ != nullptr) shard_deadline_exceeded_->Add();
  const int64_t now = MonotonicNanos();
  Metrics().request_latency->Record(
      SecondsBetween(ToNanos(request->enqueue_time), now));
  if (request->trace.active()) {
    // Terminal hop: deadline triage answered with the fallback.
    request->trace = obs::RecordHop("serve.hop.triage", request->trace, now,
                                    now, obs::FlowPhase::kEnd);
  }
  reply.trace_id = request->trace.trace_id;
  request->reply.set_value(reply);
}

void DispatchService::CountReroute() {
  rerouted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().rerouted->Add();
  if (shard_rerouted_ != nullptr) shard_rerouted_->Add();
}

void DispatchService::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stopped_.store(true);
  queue_.Close();
  if (loop_.joinable()) loop_.join();
  // A crashed loop exits without draining; its in-hand batch was requeued.
  // Answer that backlog through the closed-shed path so no promise is ever
  // abandoned — the one thing the fabric never does is lose a reply.
  std::vector<DecisionRequest> leftovers;
  while (queue_.PopBatch(&leftovers, config_.max_batch, 0) > 0) {
    for (DecisionRequest& request : leftovers) {
      AnswerShed(&request, /*closed_reject=*/true);
    }
  }
}

bool DispatchService::Restart(std::vector<DecisionRequest>* orphans) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_.load() || !crashed_.load(std::memory_order_acquire)) {
    return false;
  }
  // Collect the dead loop, then drain the orphaned backlog: everything
  // admitted before (or while) the shard was down goes to the caller for
  // rerouting with its promise intact.
  queue_.Close();
  if (loop_.joinable()) loop_.join();
  std::vector<DecisionRequest> batch;
  while (queue_.PopBatch(&batch, config_.max_batch, 0) > 0) {
    for (DecisionRequest& request : batch) {
      orphans->push_back(std::move(request));
    }
  }
  queue_.Reopen();
  crashed_.store(false, std::memory_order_release);
  heartbeat_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  Metrics().restarts->Add();
  if (shard_restarts_ != nullptr) shard_restarts_->Add();
  loop_ = std::thread([this] { Loop(); });
  return true;
}

void DispatchService::Loop() {
  // The loop's private evaluation net. Weights are synced from the current
  // ModelSnapshot whenever its seq moves; the snapshot itself is immutable,
  // so in-flight evaluation and a concurrent Publish never touch the same
  // matrices. N shard loops syncing from the same ModelServer are N
  // independent subscribers of the one hot-swap channel: each holds its
  // own replica, and a Publish reaches every shard at its next batch
  // boundary without any cross-shard coordination. A restarted loop builds
  // a FRESH replica here and syncs it at its first batch — which is what
  // "resync from the model server" means for an in-process shard.
  Rng scratch(models_->config().seed);
  std::unique_ptr<FleetQNetwork> net = MakeQNetwork(models_->config(), &scratch);
  const AgentConfig& agent_config = models_->config();
  bool synced_once = false;
  uint64_t net_seq = 0;

  std::vector<DecisionRequest> requests;
  std::vector<DecisionRequest> live;
  std::vector<FleetState> states;
  std::vector<std::vector<int>> indices;
  DecisionBatch batch;
  ServeMetrics& metrics = Metrics();

  for (;;) {
    heartbeat_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
    if (queue_.PopBatch(&requests, config_.max_batch, config_.max_wait_us) ==
        0) {
      return;  // Closed and drained.
    }
    heartbeat_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
    // Backlog still queued after this pop, sampled once per batch: the
    // signal a dashboard reads for queue growth under overload.
    const double depth_now = static_cast<double>(queue_.size());
    metrics.queue_depth->Set(depth_now);
    if (shard_queue_depth_ != nullptr) shard_queue_depth_->Set(depth_now);
    const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
    if (chaos_) {
      switch (chaos_->ActionAt(tag_.index, tick)) {
        case ChaosAction::kCrash:
          // Die the way a killed worker dies — abruptly, but with the
          // in-hand batch requeued first so the supervisor's drain sees
          // every admitted request. The queue stays OPEN: requests keep
          // accumulating while the shard is down, exactly the backlog a
          // real restart has to cope with.
          metrics.chaos_crashes->Add();
          obs::RecordFlight(obs::FlightEventKind::kCrash, "serve.crash",
                            tag_.index, tick);
          for (DecisionRequest& request : requests) {
            if (!request.trace.active()) continue;
            const int64_t crash_ns = MonotonicNanos();
            request.trace =
                obs::RecordHop("serve.hop.requeue", request.trace, crash_ns,
                               crash_ns, obs::FlowPhase::kStep);
          }
          queue_.Requeue(&requests);
          crashed_.store(true, std::memory_order_release);
          return;
        case ChaosAction::kStall:
          metrics.chaos_stalls->Add();
          std::this_thread::sleep_for(
              std::chrono::microseconds(chaos_->config().stall_us));
          break;
        case ChaosAction::kEvalSlowdown:
          metrics.chaos_slowdowns->Add();
          std::this_thread::sleep_for(
              std::chrono::microseconds(chaos_->config().slow_us));
          break;
        case ChaosAction::kNone:
          break;
      }
    }

    DPDP_TRACE_SPAN("serve.batch");
    // Per-shard span annotation: the same batch shows up under its shard's
    // own name so a trace viewer separates the N loops.
    std::optional<obs::TraceSpan> shard_span;
    if (!shard_span_name_.empty()) shard_span.emplace(shard_span_name_.c_str());

    // Deadline triage: requests that aged out while queued (or while the
    // loop was stalled) get the greedy fallback immediately; only the
    // survivors pay for an evaluation. With no deadlines configured this
    // is a straight pass-through.
    live.clear();
    const auto triage_now = std::chrono::steady_clock::now();
    for (DecisionRequest& request : requests) {
      if (request.has_deadline && triage_now >= request.deadline) {
        AnswerDeadline(&request);
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) continue;

    const auto start = std::chrono::steady_clock::now();
    std::shared_ptr<const ModelSnapshot> snapshot = models_->Current();
    if (!synced_once || snapshot->seq != net_seq) {
      const std::vector<nn::Parameter*> params = net->Params();
      DPDP_CHECK(params.size() == snapshot->weights.size());
      for (size_t j = 0; j < params.size(); ++j) {
        params[j]->value = snapshot->weights[j];
      }
      net_seq = snapshot->seq;
      net_seq_.store(net_seq, std::memory_order_relaxed);
      if (synced_once) swaps_applied_.fetch_add(1, std::memory_order_relaxed);
      synced_once = true;
    }

    const int n = static_cast<int>(live.size());
    states.resize(n);
    indices.resize(n);
    batch.Clear();
    const int64_t eval_start_ns = ToNanos(start);
    for (int i = 0; i < n; ++i) {
      metrics.queue_wait->Record(
          std::chrono::duration<double>(start - live[i].enqueue_time)
              .count());
      if (live[i].trace.active()) {
        // The queue hop spans enqueue -> pop on the service thread, so the
        // flow arrow crosses from the submitter's lane into this shard's.
        const int64_t enqueued_ns = ToNanos(live[i].enqueue_time);
        live[i].trace =
            obs::RecordHop("serve.hop.queue", live[i].trace, enqueued_ns,
                           eval_start_ns, obs::FlowPhase::kStep);
        metrics.hop_queue->Record(
            SecondsBetween(enqueued_ns, eval_start_ns));
      }
      states[i] = BuildFleetState(*live[i].context, agent_config);
      indices[i] = InferenceIndices(states[i], agent_config);
      AppendSubFleetInputs(states[i], indices[i], agent_config.use_graph,
                           agent_config.num_neighbors, &batch);
    }
    const nn::Matrix& q = net->EvaluateBatch(batch);
    const int64_t eval_end_ns = MonotonicNanos();
    metrics.eval_latency->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    for (int i = 0; i < n; ++i) {
      if (!live[i].trace.active()) continue;
      live[i].trace =
          obs::RecordHop("serve.hop.eval", live[i].trace, eval_start_ns,
                         eval_end_ns, obs::FlowPhase::kStep);
      metrics.hop_eval->Record(SecondsBetween(eval_start_ns, eval_end_ns));
    }

    // Downstream commit: the batch's decisions become real only when the
    // downstream channel acks them, so replies are released after the
    // modeled commit wait. Pure latency, no CPU — concurrent shards
    // overlap their commits.
    if (config_.commit_us > 0) {
      DPDP_TRACE_SPAN("serve.commit");
      const auto commit_start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::microseconds(config_.commit_us));
      const int64_t commit_end_ns = MonotonicNanos();
      metrics.commit_latency->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        commit_start)
              .count());
      const int64_t commit_start_ns = ToNanos(commit_start);
      for (int i = 0; i < n; ++i) {
        if (!live[i].trace.active()) continue;
        live[i].trace =
            obs::RecordHop("serve.hop.commit", live[i].trace, commit_start_ns,
                           commit_end_ns, obs::FlowPhase::kStep);
        metrics.hop_commit->Record(
            SecondsBetween(commit_start_ns, commit_end_ns));
      }
    }

    const int64_t reply_start_ns = MonotonicNanos();
    for (int i = 0; i < n; ++i) {
      const GreedyQChoice choice =
          ArgmaxFeasibleQ(states[i], indices[i], q, batch.offset(i));
      ServeReply reply;
      reply.vehicle = choice.vehicle;
      reply.degraded = choice.vehicle < 0;
      reply.model_seq = snapshot->seq;
      reply.shard = tag_.index;
      if (reply.degraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        metrics.degraded->Add();
        if (shard_degraded_ != nullptr) shard_degraded_->Add();
      }
      const int64_t reply_ns = MonotonicNanos();
      metrics.request_latency->Record(
          SecondsBetween(ToNanos(live[i].enqueue_time), reply_ns));
      if (live[i].trace.active()) {
        // Terminal hop: the reply leaves the fabric, the flow lane ends.
        live[i].trace =
            obs::RecordHop("serve.hop.reply", live[i].trace, reply_start_ns,
                           reply_ns, obs::FlowPhase::kEnd);
        metrics.hop_reply->Record(SecondsBetween(reply_start_ns, reply_ns));
      }
      reply.trace_id = live[i].trace.trace_id;
      live[i].reply.set_value(reply);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    metrics.batches->Add();
    metrics.batched_items->Add(n);
    metrics.batch_size->Record(static_cast<double>(n));
    if (shard_batches_ != nullptr) {
      shard_batches_->Add();
      shard_batched_items_->Add(n);
    }
  }
}

}  // namespace dpdp::serve
