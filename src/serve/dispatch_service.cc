#include "serve/dispatch_service.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/q_network.h"
#include "rl/state.h"
#include "util/env.h"
#include "util/rng.h"

namespace dpdp::serve {
namespace {

struct ServeMetrics {
  obs::Counter* requests =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  obs::Counter* shed = obs::MetricsRegistry::Global().GetCounter("serve.shed");
  obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("serve.batches");
  obs::Counter* batched_items =
      obs::MetricsRegistry::Global().GetCounter("serve.batched_items");
  obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetCounter("serve.degraded");
  obs::Histogram* batch_size = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram* queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_s", obs::LatencyBucketsSeconds());
  obs::Histogram* eval_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.eval_latency_s", obs::LatencyBucketsSeconds());
  obs::Histogram* commit_latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.commit_latency_s", obs::LatencyBucketsSeconds());
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics;
  return *metrics;
}

}  // namespace

ServeConfig ServeConfigFromEnv() {
  ServeConfig config;
  config.max_batch = EnvInt("DPDP_SERVE_MAX_BATCH", config.max_batch);
  config.max_wait_us = EnvInt("DPDP_SERVE_MAX_WAIT_US",
                              static_cast<int>(config.max_wait_us));
  config.queue_capacity =
      EnvInt("DPDP_SERVE_QUEUE_CAP", config.queue_capacity);
  config.commit_us =
      EnvInt("DPDP_SERVE_COMMIT_US", static_cast<int>(config.commit_us));
  return config;
}

DispatchService::DispatchService(const ServeConfig& config,
                                 ModelServer* models, ShardTag tag)
    : config_(config),
      models_(models),
      tag_(tag),
      queue_(config.queue_capacity) {
  DPDP_CHECK(models_ != nullptr);
  if (tag_.index >= 0) {
    const std::string prefix = "serve.shard" + std::to_string(tag_.index);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    shard_requests_ = registry.GetCounter(prefix + ".requests");
    shard_sheds_ = registry.GetCounter(prefix + ".shed");
    shard_batches_ = registry.GetCounter(prefix + ".batches");
    shard_batched_items_ = registry.GetCounter(prefix + ".batched_items");
    shard_degraded_ = registry.GetCounter(prefix + ".degraded");
    shard_span_name_ = prefix;
  }
  loop_ = std::thread([this] { Loop(); });
}

DispatchService::~DispatchService() { Stop(); }

std::future<ServeReply> DispatchService::Submit(
    const DispatchContext& context) {
  DecisionRequest request;
  request.context = &context;
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<ServeReply> fut = request.reply.get_future();
  requests_.fetch_add(1, std::memory_order_relaxed);
  Metrics().requests->Add();
  if (shard_requests_ != nullptr) shard_requests_->Add();
  if (!queue_.TryPush(std::move(request))) {
    // Shed: answer right here on the caller's thread with the emergency
    // rule. Overload slows one caller down by one greedy scan; it never
    // wedges the service or blocks the queue.
    ServeReply reply;
    reply.vehicle = GreedyInsertionFallback(context);
    reply.shed = true;
    reply.model_seq = models_->current_seq();
    reply.shard = tag_.index;
    sheds_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed->Add();
    if (shard_sheds_ != nullptr) shard_sheds_->Add();
    request.reply.set_value(reply);
  }
  return fut;
}

void DispatchService::Stop() {
  if (stopped_.exchange(true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  queue_.Close();
  if (loop_.joinable()) loop_.join();
}

void DispatchService::Loop() {
  // The loop's private evaluation net. Weights are synced from the current
  // ModelSnapshot whenever its seq moves; the snapshot itself is immutable,
  // so in-flight evaluation and a concurrent Publish never touch the same
  // matrices. N shard loops syncing from the same ModelServer are N
  // independent subscribers of the one hot-swap channel: each holds its
  // own replica, and a Publish reaches every shard at its next batch
  // boundary without any cross-shard coordination.
  Rng scratch(models_->config().seed);
  std::unique_ptr<FleetQNetwork> net = MakeQNetwork(models_->config(), &scratch);
  const AgentConfig& agent_config = models_->config();
  bool synced_once = false;
  uint64_t net_seq = 0;

  std::vector<DecisionRequest> requests;
  std::vector<FleetState> states;
  std::vector<std::vector<int>> indices;
  DecisionBatch batch;
  ServeMetrics& metrics = Metrics();

  while (queue_.PopBatch(&requests, config_.max_batch, config_.max_wait_us) >
         0) {
    DPDP_TRACE_SPAN("serve.batch");
    // Per-shard span annotation: the same batch shows up under its shard's
    // own name so a trace viewer separates the N loops.
    std::optional<obs::TraceSpan> shard_span;
    if (!shard_span_name_.empty()) shard_span.emplace(shard_span_name_.c_str());
    const auto start = std::chrono::steady_clock::now();
    std::shared_ptr<const ModelSnapshot> snapshot = models_->Current();
    if (!synced_once || snapshot->seq != net_seq) {
      const std::vector<nn::Parameter*> params = net->Params();
      DPDP_CHECK(params.size() == snapshot->weights.size());
      for (size_t j = 0; j < params.size(); ++j) {
        params[j]->value = snapshot->weights[j];
      }
      net_seq = snapshot->seq;
      net_seq_.store(net_seq, std::memory_order_relaxed);
      if (synced_once) swaps_applied_.fetch_add(1, std::memory_order_relaxed);
      synced_once = true;
    }

    const int n = static_cast<int>(requests.size());
    states.resize(n);
    indices.resize(n);
    batch.Clear();
    for (int i = 0; i < n; ++i) {
      metrics.queue_wait->Record(
          std::chrono::duration<double>(start - requests[i].enqueue_time)
              .count());
      states[i] = BuildFleetState(*requests[i].context, agent_config);
      indices[i] = InferenceIndices(states[i], agent_config);
      AppendSubFleetInputs(states[i], indices[i], agent_config.use_graph,
                           agent_config.num_neighbors, &batch);
    }
    const nn::Matrix& q = net->EvaluateBatch(batch);
    metrics.eval_latency->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());

    // Downstream commit: the batch's decisions become real only when the
    // downstream channel acks them, so replies are released after the
    // modeled commit wait. Pure latency, no CPU — concurrent shards
    // overlap their commits.
    if (config_.commit_us > 0) {
      DPDP_TRACE_SPAN("serve.commit");
      const auto commit_start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::microseconds(config_.commit_us));
      metrics.commit_latency->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        commit_start)
              .count());
    }

    for (int i = 0; i < n; ++i) {
      const GreedyQChoice choice =
          ArgmaxFeasibleQ(states[i], indices[i], q, batch.offset(i));
      ServeReply reply;
      reply.vehicle = choice.vehicle;
      reply.degraded = choice.vehicle < 0;
      reply.model_seq = snapshot->seq;
      reply.shard = tag_.index;
      if (reply.degraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        metrics.degraded->Add();
        if (shard_degraded_ != nullptr) shard_degraded_->Add();
      }
      requests[i].reply.set_value(reply);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    metrics.batches->Add();
    metrics.batched_items->Add(n);
    metrics.batch_size->Record(static_cast<double>(n));
    if (shard_batches_ != nullptr) {
      shard_batches_->Add();
      shard_batched_items_->Add(n);
    }
  }
}

}  // namespace dpdp::serve
