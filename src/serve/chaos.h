#ifndef DPDP_SERVE_CHAOS_H_
#define DPDP_SERVE_CHAOS_H_

#include <cstdint>

namespace dpdp::serve {

/// Seeded fault injection for the serving fabric, mirroring the
/// simulator's sim/disruption discipline: every injected fault is a pure
/// function of (seed, shard, tick), where a tick is one service-loop batch
/// iteration. The default config injects nothing, so existing serving
/// paths are bit-for-bit unaffected; a fixed seed replays the same fault
/// schedule (in tick-space) on every run, which is what makes chaos soaks
/// scriptable.
///
/// All probabilities are per (shard, tick). Each fault kind draws from its
/// own sub-stream, so enabling one kind never shifts another kind's draws
/// — exactly the DisruptionConfig contract.
struct ChaosConfig {
  /// Base seed of the chaos stream (independent of model/dataset seeds).
  uint64_t seed = 0;

  /// Service-loop stall: the loop sleeps stall_us after popping a batch,
  /// before answering it — a GC pause / scheduler stall / stop-the-world.
  /// The batch is answered late (possibly past its deadline); the watchdog
  /// sees a stale heartbeat with a backed-up queue.
  double stall_prob = 0.0;
  long stall_us = 20000;

  /// Evaluation slowdown: the loop sleeps slow_us before EvaluateBatch —
  /// a slow inference (cache-cold replica, noisy neighbor). Milder than a
  /// stall; stretches the tail without tripping the watchdog.
  double slow_prob = 0.0;
  long slow_us = 2000;

  /// Hard shard crash: the service loop requeues the batch it just popped
  /// (admitted work is never lost) and exits without closing its queue —
  /// a killed process whose admission queue survives in shared memory.
  /// Only the ShardSupervisor brings the shard back.
  double crash_prob = 0.0;

  /// Corrupt checkpoint publish: chaos-aware checkpoint writers (the
  /// chaos demo's trainer stand-in) truncate the file body of publish k
  /// when CorruptPublishAt(k) — exercising the watcher's CRC rejection and
  /// quarantine path. Drawn from its own (seed, publish index) stream.
  double corrupt_publish_prob = 0.0;

  bool any() const {
    return stall_prob > 0.0 || slow_prob > 0.0 || crash_prob > 0.0 ||
           corrupt_publish_prob > 0.0;
  }
};

/// Fills a ChaosConfig from DPDP_SERVE_CHAOS_SEED / _STALL_PROB /
/// _STALL_US / _SLOW_PROB / _SLOW_US / _CRASH_PROB / _CORRUPT_PROB, with
/// the struct defaults (chaos off) as fallbacks.
ChaosConfig ChaosConfigFromEnv();

/// What chaos does to one (shard, tick) cell. At most one action fires per
/// cell; severity wins when multiple sub-streams trigger (crash > stall >
/// slowdown).
enum class ChaosAction {
  kNone,
  kEvalSlowdown,
  kStall,
  kCrash,
};

const char* ChaosActionName(ChaosAction action);

/// The seeded fault schedule. Stateless and thread-safe: ActionAt and
/// CorruptPublishAt are pure functions, so N shard loops can share one
/// policy and a test can replay the exact schedule a service saw.
class ChaosPolicy {
 public:
  explicit ChaosPolicy(const ChaosConfig& config) : config_(config) {}

  /// The action injected into shard `shard`'s service loop at batch
  /// iteration `tick`. Pure function of (config.seed, shard, tick).
  ChaosAction ActionAt(int shard, uint64_t tick) const;

  /// True when checkpoint publish number `publish_index` should be written
  /// corrupt. Pure function of (config.seed, publish_index); independent
  /// of the per-shard streams.
  bool CorruptPublishAt(uint64_t publish_index) const;

  const ChaosConfig& config() const { return config_; }

 private:
  const ChaosConfig config_;
};

}  // namespace dpdp::serve

#endif  // DPDP_SERVE_CHAOS_H_
