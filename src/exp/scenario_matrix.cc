#include "exp/scenario_matrix.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <sstream>

#include "baselines/greedy_baselines.h"
#include "exp/harness.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace dpdp {

namespace {

/// Sub-stream tag separating the instance-sample draw from per-cell seeds.
constexpr uint64_t kInstanceSampleTag = 0x5ce7a110u;

std::unique_ptr<Dispatcher> MakeBaselineByName(const std::string& method) {
  if (method == "B1") return std::make_unique<MinIncrementalLengthDispatcher>();
  if (method == "B2") return std::make_unique<MinTotalLengthDispatcher>();
  if (method == "B3") return std::make_unique<MaxAcceptedOrdersDispatcher>();
  return nullptr;
}

ScenarioCell RunCell(const ScenarioWorld& world, const std::string& sc_name,
                     const std::string& method, uint64_t cell_seed,
                     int episodes) {
  const WallTimer timer;
  EpisodeResult result;
  std::unique_ptr<Dispatcher> baseline = MakeBaselineByName(method);
  if (baseline != nullptr) {
    Simulator sim(&world.instance, world.sim_config);
    result = sim.RunEpisode(baseline.get());
  } else {
    const DrlOutcome outcome =
        TrainEvalOnInstance(world.instance, nn::Matrix(), method, cell_seed,
                            episodes, &world.sim_config);
    result = outcome.eval;
  }

  ScenarioCell cell;
  cell.scenario = sc_name;
  cell.method = method;
  cell.num_orders = result.num_orders;
  cell.num_served = result.num_served;
  cell.service_rate =
      result.num_orders > 0
          ? static_cast<double>(result.num_served) / result.num_orders
          : 0.0;
  cell.nuv = result.nuv;
  cell.total_cost = result.total_cost;
  cell.reward = -result.total_cost;
  cell.decisions = result.num_decisions;
  cell.degraded = result.num_degraded_decisions;
  cell.breakdowns = result.num_breakdowns;
  cell.replanned = result.num_replanned;
  cell.cancelled = result.num_cancelled;
  cell.wall_seconds = timer.ElapsedSeconds();
  return cell;
}

}  // namespace

ScenarioWorld BuildScenarioWorld(const scenario::Scenario& sc,
                                 const ScenarioMatrixConfig& config) {
  DpdpDataset::Config dc =
      StandardDatasetConfig(config.seed, config.mean_orders_per_day);
  // Demand layers ride inside the order generator; the topology layer
  // shapes the campus itself. Neither touches the baseline sub-streams.
  dc.orders.demand = sc.demand;
  dc.orders.scenario_seed = sc.seed;
  dc.campus.num_campuses = sc.topology.num_campuses;
  dc.campus.campus_spacing_km = sc.topology.campus_spacing_km;
  dc.campus.extra_depots = sc.topology.extra_depots;

  ScenarioWorld world;
  world.dataset = std::make_shared<DpdpDataset>(dc);
  world.instance = world.dataset->SampleInstance(
      "scenario:" + sc.name, config.num_orders, config.num_vehicles,
      config.day_lo, config.day_hi,
      Rng::DeriveSeed(Rng::DeriveSeed(config.seed, kInstanceSampleTag),
                      sc.seed));
  scenario::ApplyFleetLayer(sc.fleet, sc.seed, &world.instance);
  scenario::ApplyDockingLayer(sc.topology, sc.seed, &world.instance);
  // Layer application can tighten capacity or service time; re-validate so
  // a mis-specified scenario fails at build, not mid-episode.
  DPDP_CHECK_OK(ValidateInstance(world.instance));
  world.sim_config.travel = sc.travel;
  return world;
}

ScenarioMatrixResult RunScenarioMatrix(const ScenarioMatrixConfig& config,
                                       ThreadPool* pool) {
  const int num_scenarios = static_cast<int>(config.scenarios.size());
  const int num_methods = static_cast<int>(config.methods.size());
  DPDP_CHECK(num_scenarios > 0);
  DPDP_CHECK(num_methods > 0);
  if (pool == nullptr) pool = GlobalThreadPool();

  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* worlds_counter = registry.GetCounter("scenario.worlds");
  obs::Counter* cells_counter = registry.GetCounter("scenario.cells");
  obs::Counter* decisions_counter = registry.GetCounter("scenario.decisions");
  obs::Counter* degraded_counter =
      registry.GetCounter("scenario.degraded_decisions");
  obs::Counter* served_counter =
      registry.GetCounter("scenario.orders_served");

  // Worlds first (one per scenario, shared read-only by that row's cells).
  std::vector<ScenarioWorld> worlds(num_scenarios);
  pool->ParallelFor(num_scenarios, [&](int s) {
    worlds[s] = BuildScenarioWorld(config.scenarios[s], config);
    worlds_counter->Add(1);
  });

  ScenarioMatrixResult result;
  result.num_scenarios = num_scenarios;
  result.num_methods = num_methods;
  result.cells.resize(static_cast<size_t>(num_scenarios) * num_methods);
  pool->ParallelFor(num_scenarios * num_methods, [&](int i) {
    const int s = i / num_methods;
    const int m = i % num_methods;
    const uint64_t cell_seed = Rng::DeriveSeed(
        Rng::DeriveSeed(config.seed, static_cast<uint64_t>(s)),
        static_cast<uint64_t>(m));
    const ScenarioCell cell =
        RunCell(worlds[s], config.scenarios[s].name, config.methods[m],
                cell_seed, config.episodes);
    cells_counter->Add(1);
    decisions_counter->Add(static_cast<uint64_t>(cell.decisions));
    degraded_counter->Add(static_cast<uint64_t>(cell.degraded));
    served_counter->Add(static_cast<uint64_t>(cell.num_served));
    result.cells[i] = cell;
  });
  return result;
}

std::string ScenarioMatrixResult::FormatTable() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-10s %6s %10s %8s %6s %6s %5s\n",
                "scenario", "method", "NUV", "TC", "served", "rate", "dec",
                "deg");
  out << line;
  for (const ScenarioCell& c : cells) {
    char served[32];
    std::snprintf(served, sizeof(served), "%d/%d", c.num_served,
                  c.num_orders);
    std::snprintf(line, sizeof(line),
                  "%-14s %-10s %6.1f %10.1f %8s %6.2f %6d %5d\n",
                  c.scenario.c_str(), c.method.c_str(), c.nuv, c.total_cost,
                  served, c.service_rate, c.decisions, c.degraded);
    out << line;
  }
  return out.str();
}

std::string ScenarioMatrixResult::ToCsv() const {
  std::ostringstream out;
  out << "scenario,method,num_orders,num_served,service_rate,nuv,"
         "total_cost,reward,decisions,degraded,breakdowns,replanned,"
         "cancelled,wall_seconds\n";
  char line[512];
  for (const ScenarioCell& c : cells) {
    std::snprintf(line, sizeof(line),
                  "%s,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%d,%d,%d,%d,%d,%.6f\n",
                  c.scenario.c_str(), c.method.c_str(), c.num_orders,
                  c.num_served, c.service_rate, c.nuv, c.total_cost, c.reward,
                  c.decisions, c.degraded, c.breakdowns, c.replanned,
                  c.cancelled, c.wall_seconds);
    out << line;
  }
  return out.str();
}

}  // namespace dpdp
