#ifndef DPDP_EXP_HEATMAP_H_
#define DPDP_EXP_HEATMAP_H_

#include <string>

#include "nn/matrix.h"

namespace dpdp {

/// Renders a matrix (e.g. a 27 x 144 STD matrix) as a terminal heatmap.
/// Columns are average-pooled down to at most `max_cols`; intensities are
/// binned into the ramp " .:-=+*#%@" (darker = stronger demand, matching
/// the paper's Fig. 2 rendering). One output line per matrix row.
std::string RenderHeatmap(const nn::Matrix& matrix, int max_cols = 72);

/// Short textual profile of an STD matrix: total volume, hottest factories
/// and the share of demand in the paper's peak windows (10-12 h, 14-17 h).
std::string SummarizeStdMatrix(const nn::Matrix& matrix,
                               double horizon_min = 1440.0);

}  // namespace dpdp

#endif  // DPDP_EXP_HEATMAP_H_
