#ifndef DPDP_EXP_SCENARIO_MATRIX_H_
#define DPDP_EXP_SCENARIO_MATRIX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "model/instance.h"
#include "scenario/scenario.h"
#include "sim/environment.h"
#include "util/thread_pool.h"

namespace dpdp {

/// The method x scenario sweep: every method of `methods` evaluated on
/// every world of `scenarios`, producing one comparison table. Methods are
/// the paper's baselines by shorthand ("B1" min incremental length, "B2"
/// min total length, "B3" max accepted orders) or any DRL method name
/// MakeAgentByName accepts ("DQN", "AC", "ST-DDGN", ...).
struct ScenarioMatrixConfig {
  std::vector<scenario::Scenario> scenarios;
  std::vector<std::string> methods;
  uint64_t seed = 2021;  ///< Base seed; per-cell seeds are forked from it.
  double mean_orders_per_day = 90.0;
  int num_orders = 12;    ///< Orders per sampled instance.
  int num_vehicles = 4;
  int day_lo = 0;
  int day_hi = 2;
  int episodes = 4;       ///< DRL training episodes per cell.
};

/// One cell of the matrix: `method` evaluated on `scenario`'s world.
struct ScenarioCell {
  std::string scenario;
  std::string method;
  int num_orders = 0;
  int num_served = 0;
  double service_rate = 0.0;  ///< num_served / num_orders.
  double nuv = 0.0;
  double total_cost = 0.0;
  /// Episode reward under the paper's objective (minimize TC): -TC.
  double reward = 0.0;
  int decisions = 0;
  int degraded = 0;    ///< Greedy-fallback decisions (degradation counter).
  int breakdowns = 0;
  int replanned = 0;
  int cancelled = 0;
  double wall_seconds = 0.0;  ///< The only field that varies run to run.
};

struct ScenarioMatrixResult {
  /// Scenario-major: cells[s * num_methods + m].
  std::vector<ScenarioCell> cells;
  int num_scenarios = 0;
  int num_methods = 0;

  const ScenarioCell& cell(int s, int m) const {
    return cells[static_cast<size_t>(s) * num_methods + m];
  }

  /// Human-readable fixed-width comparison table.
  std::string FormatTable() const;
  /// Machine-readable CSV (header + one row per cell).
  std::string ToCsv() const;
};

/// A scenario's fully-built world: the dataset carrying the demand and
/// topology layers, the sampled instance with fleet profiles and docking
/// surcharges applied, and the simulator config carrying the travel wave.
/// Pure function of (scenario, matrix config) — bitwise reproducible.
struct ScenarioWorld {
  std::shared_ptr<DpdpDataset> dataset;  ///< Owns the road network.
  Instance instance;
  SimulatorConfig sim_config;
};

ScenarioWorld BuildScenarioWorld(const scenario::Scenario& sc,
                                 const ScenarioMatrixConfig& config);

/// Runs the full matrix, cells in parallel on `pool` (the global pool when
/// null). Cell (s, m) uses seed DeriveSeed(DeriveSeed(seed, s), m) and
/// writes only its own slot, so every field except wall_seconds is
/// bit-identical for every worker count. Emits scenario.* metrics:
/// scenario.worlds, scenario.cells, scenario.decisions,
/// scenario.degraded_decisions, scenario.orders_served.
ScenarioMatrixResult RunScenarioMatrix(const ScenarioMatrixConfig& config,
                                       ThreadPool* pool = nullptr);

}  // namespace dpdp

#endif  // DPDP_EXP_SCENARIO_MATRIX_H_
