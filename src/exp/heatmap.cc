#include "exp/heatmap.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/status.h"

namespace dpdp {

std::string RenderHeatmap(const nn::Matrix& matrix, int max_cols) {
  DPDP_CHECK(max_cols > 0);
  if (matrix.empty()) return "(empty)\n";
  const int rows = matrix.rows();
  const int cols = matrix.cols();
  const int out_cols = std::min(cols, max_cols);
  const int pool = (cols + out_cols - 1) / out_cols;

  // Average-pool columns.
  nn::Matrix pooled(rows, out_cols);
  for (int r = 0; r < rows; ++r) {
    for (int oc = 0; oc < out_cols; ++oc) {
      double sum = 0.0;
      int count = 0;
      for (int c = oc * pool; c < std::min(cols, (oc + 1) * pool); ++c) {
        sum += matrix(r, c);
        ++count;
      }
      pooled(r, oc) = count ? sum / count : 0.0;
    }
  }

  const double mx = std::max(pooled.MaxAll(), 1e-12);
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 9;

  std::ostringstream os;
  for (int r = 0; r < rows; ++r) {
    os << (r < 10 ? " " : "") << r << " |";
    for (int oc = 0; oc < out_cols; ++oc) {
      const int level = static_cast<int>(pooled(r, oc) / mx * kLevels);
      os << kRamp[std::clamp(level, 0, kLevels)];
    }
    os << "|\n";
  }
  return os.str();
}

std::string SummarizeStdMatrix(const nn::Matrix& matrix,
                               double horizon_min) {
  const int rows = matrix.rows();
  const int cols = matrix.cols();
  const double total = matrix.SumAll();

  std::vector<std::pair<double, int>> by_factory(rows);
  for (int r = 0; r < rows; ++r) {
    double s = 0.0;
    for (int c = 0; c < cols; ++c) s += matrix(r, c);
    by_factory[r] = {s, r};
  }
  std::sort(by_factory.rbegin(), by_factory.rend());

  auto window_share = [&](double lo_min, double hi_min) {
    if (total <= 0.0) return 0.0;
    double s = 0.0;
    for (int c = 0; c < cols; ++c) {
      const double mid = (c + 0.5) * horizon_min / cols;
      if (mid >= lo_min && mid < hi_min) {
        for (int r = 0; r < rows; ++r) s += matrix(r, c);
      }
    }
    return s / total;
  };

  std::ostringstream os;
  os << "total demand volume: " << total << "\n";
  os << "hottest factories (ordinal: volume):";
  for (int i = 0; i < std::min(rows, 5); ++i) {
    os << " " << by_factory[i].second << ": "
       << static_cast<long long>(by_factory[i].first) << ";";
  }
  os << "\n";
  os << "share in 10:00-12:00 window: " << window_share(600, 720) << "\n";
  os << "share in 14:00-17:00 window: " << window_share(840, 1020) << "\n";
  os << "share in 00:00-06:00 window: " << window_share(0, 360) << "\n";
  return os.str();
}

}  // namespace dpdp
