#include "exp/harness.h"

#include <algorithm>
#include <cstdint>

#include "obs/trace.h"
#include "rl/actor_critic.h"
#include "rl/config.h"
#include "rl/dqn_agent.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dpdp {

DpdpDataset::Config StandardDatasetConfig(uint64_t seed,
                                          double mean_orders_per_day,
                                          double min_window_slack_min,
                                          double max_window_slack_min) {
  // Calibration note: window tightness, speed and per-stop service time
  // are set so the fleet pressure matches the paper's reported scales
  // (Fig. 6: ~26-50 used vehicles for 50 vehicles / 150 orders).
  DpdpDataset::Config config;
  config.campus.num_factories = 27;
  config.campus.num_depots = 2;
  config.campus.seed = seed;
  config.orders.mean_orders_per_day = mean_orders_per_day;
  config.orders.min_window_slack_min = min_window_slack_min;
  config.orders.max_window_slack_min = max_window_slack_min;
  config.vehicle.capacity = 100.0;
  config.vehicle.fixed_cost = 300.0;
  config.vehicle.cost_per_km = 2.0;
  config.vehicle.speed_kmph = 30.0;
  config.vehicle.service_time_min = 10.0;
  config.orders.speed_kmph = config.vehicle.speed_kmph;
  config.orders.service_time_min = config.vehicle.service_time_min;
  config.seed = seed;
  return config;
}

std::unique_ptr<Agent> MakeAgentByName(const std::string& method,
                                       uint64_t seed) {
  if (method == "AC") {
    AgentConfig c = MakeDqnConfig(seed);  // Vanilla AC: no graph, no ST.
    return std::make_unique<ActorCriticAgent>(c, "AC");
  }
  if (method == "Graph-AC") {
    AgentConfig c = MakeDgnConfig(seed);  // Relational actor/critic.
    return std::make_unique<ActorCriticAgent>(c, "Graph-AC");
  }
  AgentConfig c;
  if (method == "DQN") {
    c = MakeDqnConfig(seed);
  } else if (method == "DDQN") {
    c = MakeDdqnConfig(seed);
  } else if (method == "ST-DDQN") {
    c = MakeStDdqnConfig(seed);
  } else if (method == "DGN") {
    c = MakeDgnConfig(seed);
  } else if (method == "DDGN") {
    c = MakeDdgnConfig(seed);
  } else if (method == "ST-DDGN") {
    c = MakeStDdgnConfig(seed);
  } else {
    DPDP_CHECK(false && "unknown DRL method name");
  }
  return std::make_unique<DqnFleetAgent>(c, method);
}

const std::vector<std::string>& ComparisonDrlMethods() {
  static const std::vector<std::string>* methods =
      new std::vector<std::string>{"DQN", "AC", "DGN", "ST-DDGN"};
  return *methods;
}

const std::vector<std::string>& AblationModels() {
  static const std::vector<std::string>* models =
      new std::vector<std::string>{"DDQN", "ST-DDQN", "DDGN", "ST-DDGN"};
  return *models;
}

DrlOutcome TrainEvalOnInstance(const Instance& instance,
                               const nn::Matrix& predicted_std,
                               const std::string& method, uint64_t seed,
                               int episodes,
                               const SimulatorConfig* base_sim_config) {
  SimulatorConfig sim_config =
      base_sim_config != nullptr ? *base_sim_config : SimulatorConfig{};
  sim_config.predicted_std = predicted_std;
  Simulator simulator(&instance, sim_config);

  DrlOutcome out;
  out.method = method;
  std::unique_ptr<Agent> agent = MakeAgentByName(method, seed);

  WallTimer timer;
  agent->set_training(true);
  TrainOptions options;
  options.episodes = episodes;
  out.curve = RunEpisodes(&simulator, agent.get(), options);
  out.train_seconds = timer.ElapsedSeconds();

  agent->set_training(false);
  agent->FinalizeTraining();
  out.eval = simulator.RunEpisode(agent.get());
  out.eval_decision_seconds = out.eval.decision_wall_seconds;
  return out;
}

Instance SampleInstanceInWindow(DpdpDataset* dataset,
                                const std::string& name, int num_orders,
                                int num_vehicles, int day_lo, int day_hi,
                                double t_lo_min, double t_hi_min,
                                uint64_t seed) {
  DPDP_CHECK(dataset != nullptr);
  std::vector<Order> pool;
  for (int d = day_lo; d <= day_hi; ++d) {
    for (const Order& o : dataset->Day(d)) {
      if (o.create_time_min >= t_lo_min && o.create_time_min < t_hi_min) {
        pool.push_back(o);
      }
    }
  }
  DPDP_CHECK(!pool.empty());
  Rng rng(seed);
  rng.Shuffle(&pool);
  Instance inst;
  inst.name = name;
  inst.network = dataset->network();
  inst.vehicle_config = dataset->config().vehicle;
  inst.num_time_intervals = dataset->config().num_intervals;
  inst.horizon_minutes = dataset->config().horizon_min;
  const auto& depot_ids = dataset->network()->depot_ids();
  inst.vehicle_depots.resize(num_vehicles);
  for (int v = 0; v < num_vehicles; ++v) {
    inst.vehicle_depots[v] = depot_ids[v % depot_ids.size()];
  }
  const size_t take = std::min<size_t>(pool.size(), num_orders);
  inst.orders.assign(pool.begin(), pool.begin() + take);
  CanonicalizeOrders(&inst.orders);
  DPDP_CHECK_OK(ValidateInstance(inst));
  return inst;
}

MethodSummary RunBaseline(const Instance& instance, Dispatcher* baseline,
                          const nn::Matrix& predicted_std) {
  SimulatorConfig sim_config;
  sim_config.predicted_std = predicted_std;
  Simulator simulator(&instance, sim_config);
  const EpisodeResult result = simulator.RunEpisode(baseline);
  MethodSummary summary;
  summary.method = baseline->name();
  summary.nuv.push_back(result.nuv);
  summary.tc.push_back(result.total_cost);
  summary.wall.push_back(result.decision_wall_seconds);
  summary.metrics.Absorb(result);
  return summary;
}

MethodSummary RunDrlMethod(const Instance& instance,
                           const nn::Matrix& predicted_std,
                           const std::string& method, int episodes,
                           int num_seeds, uint64_t seed_base,
                           ThreadPool* pool,
                           const SimulatorConfig* base_sim_config,
                           const RetryPolicy& retry_policy) {
  MethodSummary summary;
  summary.method = method;
  // Slots are pre-sized and each task writes only its own index, so the
  // aggregation is race-free and the results come out in seed order no
  // matter how the tasks are scheduled. Failed seeds are compacted out
  // afterwards, preserving that order.
  std::vector<double> nuv(num_seeds);
  std::vector<double> tc(num_seeds);
  std::vector<double> wall(num_seeds);
  std::vector<MethodSummary::MetricsRollup> rollup(num_seeds);
  std::vector<uint8_t> ok(num_seeds, 0);
  std::vector<std::string> errors(num_seeds);
  if (pool == nullptr) pool = GlobalThreadPool();
  pool->ParallelFor(num_seeds, [&](int s) {
    DPDP_TRACE_SPAN("exp.seed_run");
    // The retry wrapper absorbs exceptions (so one bad seed cannot abort
    // the whole sweep via ParallelFor's rethrow) and backs off between
    // transient failures.
    const Status status = RunWithRetry(
        [&]() -> Status {
          const DrlOutcome outcome = TrainEvalOnInstance(
              instance, predicted_std, method, Rng::DeriveSeed(seed_base, s),
              episodes, base_sim_config);
          nuv[s] = outcome.eval.nuv;
          tc[s] = outcome.eval.total_cost;
          wall[s] = outcome.eval_decision_seconds;
          // Re-rolled on retry (assignment, not +=) so a transient failure
          // followed by success cannot double-count its episodes.
          MethodSummary::MetricsRollup r;
          for (const EpisodeResult& e : outcome.curve.episodes) r.Absorb(e);
          r.Absorb(outcome.eval);
          rollup[s] = r;
          return Status::OK();
        },
        retry_policy);
    if (status.ok()) {
      ok[s] = 1;
    } else {
      errors[s] = status.ToString();
    }
  });
  for (int s = 0; s < num_seeds; ++s) {
    if (ok[s] != 0) {
      summary.nuv.push_back(nuv[s]);
      summary.tc.push_back(tc[s]);
      summary.wall.push_back(wall[s]);
      summary.metrics.Absorb(rollup[s]);
    } else {
      summary.seed_errors.push_back({s, errors[s]});
    }
  }
  return summary;
}

}  // namespace dpdp
