#ifndef DPDP_EXP_HARNESS_H_
#define DPDP_EXP_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "model/instance.h"
#include "nn/matrix.h"
#include "rl/agent.h"
#include "rl/trainer.h"
#include "sim/simulator.h"
#include "util/env.h"
#include "util/retry.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dpdp {

/// The standard experiment "world": the paper's campus (27 factories),
/// vehicle economics, and the synthetic order pool. `mean_orders_per_day`
/// and window tightness vary per experiment scale.
DpdpDataset::Config StandardDatasetConfig(uint64_t seed,
                                          double mean_orders_per_day,
                                          double min_window_slack_min = 45.0,
                                          double max_window_slack_min = 150.0);

/// Builds a DRL agent by its paper name: "DQN", "AC", "DDQN", "ST-DDQN",
/// "DGN", "DDGN" or "ST-DDGN". Aborts on unknown names.
std::unique_ptr<Agent> MakeAgentByName(const std::string& method,
                                       uint64_t seed);

/// Names of the four comparison DRL methods of Table I / Figs. 6-7.
const std::vector<std::string>& ComparisonDrlMethods();

/// Names of the four ablation models of Table II / Fig. 8.
const std::vector<std::string>& AblationModels();

/// One train-then-evaluate run of a DRL method on an instance.
struct DrlOutcome {
  std::string method;
  EpisodeResult eval;           ///< Greedy evaluation after training.
  TrainingCurve curve;          ///< Per-episode training metrics.
  double train_seconds = 0.0;
  double eval_decision_seconds = 0.0;  ///< Pure inference wall time.
};

/// Trains `method` for `episodes` on `instance` (ST Score computed from
/// `predicted_std` when non-empty) and evaluates the greedy policy once.
/// `base_sim_config`, when non-null, seeds the simulator configuration
/// (fault injection, buffering, ...); its predicted_std is overwritten by
/// the `predicted_std` argument.
DrlOutcome TrainEvalOnInstance(const Instance& instance,
                               const nn::Matrix& predicted_std,
                               const std::string& method, uint64_t seed,
                               int episodes,
                               const SimulatorConfig* base_sim_config =
                                   nullptr);

/// Aggregate of repeated runs (the paper repeats DRL training five times
/// per instance to smooth seed variance).
struct MethodSummary {
  /// A seed run that failed permanently (after retries) and was skipped.
  struct SeedError {
    int seed_index = -1;
    std::string message;
  };

  /// Observability rollup across every episode that contributed to this
  /// summary (training + evaluation, successful seeds only). Cross-checks
  /// the global metrics registry: e.g. `decisions` here must equal the
  /// delta of the `sim.decisions` counter over the sweep.
  struct MetricsRollup {
    int64_t episodes = 0;
    int64_t decisions = 0;
    int64_t degraded_decisions = 0;
    int64_t breakdowns = 0;
    int64_t cancellations = 0;
    int64_t replanned = 0;
    double decision_seconds = 0.0;

    void Absorb(const EpisodeResult& r) {
      ++episodes;
      decisions += r.num_decisions;
      degraded_decisions += r.num_degraded_decisions;
      breakdowns += r.num_breakdowns;
      cancellations += r.num_cancelled;
      replanned += r.num_replanned;
      decision_seconds += r.decision_wall_seconds;
    }
    void Absorb(const MetricsRollup& other) {
      episodes += other.episodes;
      decisions += other.decisions;
      degraded_decisions += other.degraded_decisions;
      breakdowns += other.breakdowns;
      cancellations += other.cancellations;
      replanned += other.replanned;
      decision_seconds += other.decision_seconds;
    }
  };

  std::string method;
  std::vector<double> nuv;
  std::vector<double> tc;
  std::vector<double> wall;  ///< Decision/inference seconds per run.
  MetricsRollup metrics;     ///< Aggregated episode telemetry.
  /// Seeds excluded from the statistics (RunDrlMethod retry gave up);
  /// empty on a fully healthy sweep.
  std::vector<SeedError> seed_errors;

  double nuv_mean() const { return Mean(nuv); }
  double nuv_std() const { return Stddev(nuv); }
  double tc_mean() const { return Mean(tc); }
  double tc_std() const { return Stddev(tc); }
  double wall_mean() const { return Mean(wall); }
};

/// Samples `num_orders` orders whose creation times fall inside
/// [t_lo_min, t_hi_min) from the pooled days — the tiny-instance protocol
/// of Table I, where a handful of *concurrent* orders stress the fleet.
Instance SampleInstanceInWindow(DpdpDataset* dataset,
                                const std::string& name, int num_orders,
                                int num_vehicles, int day_lo, int day_hi,
                                double t_lo_min, double t_hi_min,
                                uint64_t seed);

/// Runs a heuristic baseline once (it is deterministic) on `instance`.
MethodSummary RunBaseline(const Instance& instance, Dispatcher* baseline,
                          const nn::Matrix& predicted_std = nn::Matrix());

/// Trains + evaluates a DRL method across `num_seeds` independent runs.
/// Run s uses seed Rng::DeriveSeed(seed_base, s), so every run has its
/// own named RNG sub-stream. The runs execute in parallel on `pool`
/// (the process-wide DPDP_THREADS-sized pool when null); because each
/// run is self-contained (own Simulator, own agent, read-only instance
/// and predicted STD) the nuv/tc results are bit-identical for every
/// worker count — only the wall-time column varies.
///
/// Fault tolerance: each seed task runs under capped exponential backoff
/// (util/retry.h). Transient failures (uncaught exceptions, resource
/// exhaustion) are retried; a seed that fails permanently is recorded in
/// MethodSummary::seed_errors and skipped instead of sinking the sweep.
/// `base_sim_config` is forwarded to TrainEvalOnInstance.
MethodSummary RunDrlMethod(const Instance& instance,
                           const nn::Matrix& predicted_std,
                           const std::string& method, int episodes,
                           int num_seeds, uint64_t seed_base,
                           ThreadPool* pool = nullptr,
                           const SimulatorConfig* base_sim_config = nullptr,
                           const RetryPolicy& retry_policy = RetryPolicy());

}  // namespace dpdp

#endif  // DPDP_EXP_HARNESS_H_
