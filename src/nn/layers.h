#ifndef DPDP_NN_LAYERS_H_
#define DPDP_NN_LAYERS_H_

#include <iosfwd>
#include <vector>

#include "nn/gemm.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace dpdp::nn {

/// A trainable tensor: value plus accumulated gradient of identical shape.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Copies all parameter values from `src` to `dst` (same shapes required).
/// Used to sync DDQN target networks.
void CopyParameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst);

/// Polyak averaging: dst <- (1 - tau) * dst + tau * src.
void SoftUpdateParameters(const std::vector<Parameter*>& src,
                          const std::vector<Parameter*>& dst, double tau);

/// Serializes parameter values (shapes + doubles, little-endian binary).
void SaveParameters(const std::vector<Parameter*>& params, std::ostream* os);

/// Restores values saved by SaveParameters; shapes must match exactly.
/// Returns false on malformed input or shape mismatch.
bool LoadParameters(std::istream* is, const std::vector<Parameter*>& params);

/// Serializes a single matrix (i32 rows, i32 cols, row-major doubles).
/// Building block of the checkpoint format (optimizer moments, best-weight
/// snapshots) alongside SaveParameters.
void SaveMatrix(const Matrix& m, std::ostream* os);

/// Reads a matrix written by SaveMatrix into `m` (any prior shape is
/// replaced). Returns false on malformed input.
bool LoadMatrix(std::istream* is, Matrix* m);

/// Fully-connected layer y = x W + b with cached input for backprop.
/// Weights use He initialization (suited to the ReLU nets in this project).
///
/// Forward/Backward must be called in strict alternation: each Backward
/// consumes the cache left by the immediately preceding Forward.
///
/// The Workspace overloads are the hot path: they run on the blocked gemm
/// kernels and return references to layer-owned buffers (valid until the
/// layer's next Forward/Backward), so a steady-state pass performs no heap
/// allocation. The value-returning overloads are convenience wrappers over
/// the same code (via ThreadLocalWorkspace) that copy the result out.
class Linear {
 public:
  Linear(int in_dim, int out_dim, Rng* rng);

  /// x: (batch x in_dim) -> (batch x out_dim).
  const Matrix& Forward(const Matrix& x, Workspace& ws);
  Matrix Forward(const Matrix& x);

  /// dy: (batch x out_dim) -> dx (batch x in_dim); accumulates dW, db.
  const Matrix& Backward(const Matrix& dy, Workspace& ws);
  Matrix Backward(const Matrix& dy);

  std::vector<Parameter*> Params();

  int in_dim() const { return w_.value.rows(); }
  int out_dim() const { return w_.value.cols(); }

 private:
  Parameter w_;  ///< (in_dim x out_dim)
  Parameter b_;  ///< (1 x out_dim)
  Matrix cached_x_;
  Matrix y_;   ///< Layer-owned Forward output.
  Matrix dx_;  ///< Layer-owned Backward output.
};

/// Supported nonlinearities for MLP hidden layers.
enum class Activation { kReLU, kTanh, kIdentity };

/// ReLU with cached activation mask.
class ReLU {
 public:
  const Matrix& Forward(const Matrix& x, Workspace& ws);
  Matrix Forward(const Matrix& x);
  const Matrix& Backward(const Matrix& dy, Workspace& ws);
  Matrix Backward(const Matrix& dy) const;

 private:
  Matrix cached_mask_;
  Matrix y_;
  Matrix dx_;
};

/// Tanh with cached output.
class Tanh {
 public:
  const Matrix& Forward(const Matrix& x, Workspace& ws);
  Matrix Forward(const Matrix& x);
  const Matrix& Backward(const Matrix& dy, Workspace& ws);
  Matrix Backward(const Matrix& dy) const;

 private:
  Matrix cached_y_;
  Matrix dx_;
};

/// Multi-layer perceptron: Linear layers with a shared hidden activation
/// and an identity output layer. `dims` = {in, h1, ..., out}.
///
/// The Workspace overloads return a reference to the last layer's buffer;
/// it stays valid until this Mlp's next Forward/Backward call.
class Mlp {
 public:
  Mlp(const std::vector<int>& dims, Activation hidden_activation, Rng* rng);

  const Matrix& Forward(const Matrix& x, Workspace& ws);
  Matrix Forward(const Matrix& x);
  const Matrix& Backward(const Matrix& dy, Workspace& ws);
  Matrix Backward(const Matrix& dy);

  std::vector<Parameter*> Params();

  int in_dim() const;
  int out_dim() const;

 private:
  Activation activation_;
  std::vector<Linear> linears_;
  std::vector<ReLU> relus_;
  std::vector<Tanh> tanhs_;
};

}  // namespace dpdp::nn

#endif  // DPDP_NN_LAYERS_H_
