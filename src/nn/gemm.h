#ifndef DPDP_NN_GEMM_H_
#define DPDP_NN_GEMM_H_

#include <vector>

#include "nn/matrix.h"

namespace dpdp::nn {

/// Reusable scratch for the GEMM kernels and the layers built on them.
/// Owns the packed B-panel buffer, so a caller that keeps one Workspace
/// alive across calls pays zero heap allocations in steady state. Not
/// thread-safe: one Workspace per concurrently-running network.
class Workspace {
 public:
  /// Packed-panel buffer, grown on demand and never shrunk.
  std::vector<double>& PackBuffer(size_t min_size) {
    if (pack_.size() < min_size) pack_.resize(min_size);
    return pack_;
  }

  size_t pack_capacity() const { return pack_.capacity(); }

 private:
  std::vector<double> pack_;
};

/// Per-thread fallback Workspace used by the value-returning Matrix and
/// layer wrappers. Hot paths should own a Workspace instead so scratch
/// lifetime is explicit.
Workspace& ThreadLocalWorkspace();

/// Cache-blocked GEMM kernels. All of them compute every output element as
/// ONE dot product over the full k range in ascending-k order — blocking
/// and threading only change which element is computed when, never the
/// accumulation order inside an element. Results are therefore
/// bit-identical for any tile shape and any thread count, which is what
/// keeps the repo's determinism goldens valid (see DESIGN.md "Compute
/// kernel model").
///
/// `out` is resized (uninitialized) to the result shape; prior contents
/// are ignored unless the variant documents accumulation.

/// out = a (m x k) * b (k x n).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out, Workspace* ws);

/// out = a * b + row-broadcast bias (1 x n). The bias is added after the
/// k-accumulation finishes, matching MatMul(...).AddRowBroadcast(bias).
void GemmBias(const Matrix& a, const Matrix& b, const Matrix& bias,
              Matrix* out, Workspace* ws);

/// out = a (m x k) * b^T, with b given as (n x k).
void GemmTransposedB(const Matrix& a, const Matrix& b, Matrix* out,
                     Workspace* ws);

/// out (+)= a^T (k x m, stored as a (k x m) row-major, i.e. a's columns
/// index the output rows) * b (k x n). When `accumulate` is true the dot
/// products are added onto the existing contents of `out` (shape must
/// already match) — the gradient-accumulation path of Linear::Backward.
void GemmTransposedA(const Matrix& a, const Matrix& b, Matrix* out,
                     Workspace* ws, bool accumulate = false);

/// Ordered naive reference: out(i, j) = one dot product over ascending k,
/// no packing, no tiling. Compiled in the same translation unit as the
/// production kernels and accumulated through the same explicit
/// multiply-add helper (fused iff the kernels fuse), so the bit-equality
/// tests compare like for like even when DPDP_GEMM_NATIVE retargets this
/// TU. Test/verification use only.
void GemmReference(const Matrix& a, const Matrix& b, Matrix* out);

/// Worker count used for large GEMMs: DPDP_GEMM_THREADS when set to a
/// positive integer (read once at first use), else 1 (serial — the
/// networks in this project are small enough that the kernel itself is
/// the win; threading is opt-in for the big-matrix workloads).
int GemmThreads();

/// Programmatic override of DPDP_GEMM_THREADS (tests / benches). Values
/// < 1 are clamped to 1. Thread-compatible with concurrent GEMM calls
/// only in the sense that each call reads the value once at entry.
void SetGemmThreads(int n);

/// Flop threshold (2*m*n*k) above which a multi-threaded GEMM fans out
/// over row blocks. Below it the parallel dispatch overhead dominates.
inline constexpr long long kGemmParallelMinFlops = 1 << 22;

}  // namespace dpdp::nn

#endif  // DPDP_NN_GEMM_H_
