#ifndef DPDP_NN_LOSS_H_
#define DPDP_NN_LOSS_H_

namespace dpdp::nn {

/// Scalar loss utilities. TD targets in this project are scalars (the
/// Q-value of one chosen action), so these operate on doubles; the caller
/// scatters the returned derivative into the network's output gradient.

/// 0.5 * (pred - target)^2.
double MseLoss(double pred, double target);
/// d/dpred of MseLoss.
double MseLossGrad(double pred, double target);

/// Huber (smooth-L1) loss with threshold `delta` (> 0).
double HuberLoss(double pred, double target, double delta = 1.0);
/// d/dpred of HuberLoss.
double HuberLossGrad(double pred, double target, double delta = 1.0);

}  // namespace dpdp::nn

#endif  // DPDP_NN_LOSS_H_
