#include "nn/attention.h"

#include <cmath>

namespace dpdp::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int num_heads,
                                               Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  DPDP_CHECK(num_heads > 0);
  DPDP_CHECK(d_model % num_heads == 0);
}

const Matrix& MultiHeadSelfAttention::Forward(const Matrix& x,
                                              const Matrix& mask,
                                              const RowSpans* spans,
                                              Workspace& ws) {
  const int n = x.rows();
  DPDP_CHECK(x.cols() == d_model_);
  DPDP_CHECK(mask.rows() == n && mask.cols() == n);
  DPDP_CHECK(spans == nullptr || static_cast<int>(spans->size()) == n);

  mask_ = &mask;
  spans_.clear();
  if (spans != nullptr) spans_ = *spans;
  q_ = &wq_.Forward(x, ws);
  k_ = &wk_.Forward(x, ws);
  v_ = &wv_.Forward(x, ws);

  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));
  // Uninitialized resize is safe: the softmax pass writes every attention
  // entry inside each row's span (outside-span entries stay undefined and
  // are never read back — every walk below is span-restricted), and each
  // concat segment is zeroed before its weighted sum.
  attn_.resize(num_heads_);
  for (Matrix& a : attn_) a.Resize(n, n);
  concat_.Resize(n, d_model_);

  for (int h = 0; h < num_heads_; ++h) {
    const int off = h * d_head_;
    Matrix& a = attn_[h];
    for (int i = 0; i < n; ++i) {
      const int jb = spans ? (*spans)[i].first : 0;
      const int je = spans ? (*spans)[i].second : n;
      // Masked, numerically-stabilized softmax over allowed positions.
      double mx = -1e300;
      for (int j = jb; j < je; ++j) {
        if (mask(i, j) == 0.0) continue;
        double s = 0.0;
        for (int c = 0; c < d_head_; ++c) {
          s += (*q_)(i, off + c) * (*k_)(j, off + c);
        }
        s *= scale;
        a(i, j) = s;
        mx = std::max(mx, s);
      }
      DPDP_CHECK(mx > -1e299);  // Every row must attend to something.
      double denom = 0.0;
      for (int j = jb; j < je; ++j) {
        if (mask(i, j) == 0.0) {
          a(i, j) = 0.0;
        } else {
          a(i, j) = std::exp(a(i, j) - mx);
          denom += a(i, j);
        }
      }
      for (int j = jb; j < je; ++j) a(i, j) /= denom;
      // Weighted sum of values for this head.
      for (int c = 0; c < d_head_; ++c) concat_(i, off + c) = 0.0;
      for (int j = jb; j < je; ++j) {
        const double w = a(i, j);
        if (w == 0.0) continue;
        for (int c = 0; c < d_head_; ++c) {
          concat_(i, off + c) += w * (*v_)(j, off + c);
        }
      }
    }
  }
  return wo_.Forward(concat_, ws);
}

const Matrix& MultiHeadSelfAttention::Forward(const Matrix& x,
                                              const Matrix& mask,
                                              Workspace& ws) {
  return Forward(x, mask, nullptr, ws);
}

Matrix MultiHeadSelfAttention::Forward(const Matrix& x, const Matrix& mask) {
  return Forward(x, mask, nullptr, ThreadLocalWorkspace());
}

const Matrix& MultiHeadSelfAttention::Backward(const Matrix& dy,
                                               Workspace& ws) {
  const int n = dy.rows();
  DPDP_CHECK(dy.cols() == d_model_);
  DPDP_CHECK(!attn_.empty());

  const Matrix& dconcat = wo_.Backward(dy, ws);

  dq_.Resize(n, d_model_);
  dq_.Fill(0.0);
  dk_.Resize(n, d_model_);
  dk_.Fill(0.0);
  dv_.Resize(n, d_model_);
  dv_.Fill(0.0);
  da_.resize(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  const bool spanned = !spans_.empty();
  for (int h = 0; h < num_heads_; ++h) {
    const int off = h * d_head_;
    const Matrix& a = attn_[h];
    for (int i = 0; i < n; ++i) {
      const int jb = spanned ? spans_[i].first : 0;
      const int je = spanned ? spans_[i].second : n;
      // dA(i, j) = dconcat(i, head) . V(j, head); dV += A^T dconcat.
      std::fill(da_.begin() + jb, da_.begin() + je, 0.0);
      for (int j = jb; j < je; ++j) {
        if ((*mask_)(i, j) == 0.0) continue;
        double s = 0.0;
        for (int c = 0; c < d_head_; ++c) {
          s += dconcat(i, off + c) * (*v_)(j, off + c);
          dv_(j, off + c) += a(i, j) * dconcat(i, off + c);
        }
        da_[j] = s;
      }
      // Softmax backward: dS = A .* (dA - sum_j dA_j A_j).
      double dot = 0.0;
      for (int j = jb; j < je; ++j) dot += da_[j] * a(i, j);
      for (int j = jb; j < je; ++j) {
        if ((*mask_)(i, j) == 0.0) continue;
        const double ds = a(i, j) * (da_[j] - dot) * scale;
        if (ds == 0.0) continue;
        for (int c = 0; c < d_head_; ++c) {
          dq_(i, off + c) += ds * (*k_)(j, off + c);
          dk_(j, off + c) += ds * (*q_)(i, off + c);
        }
      }
    }
  }

  dx_ = wq_.Backward(dq_, ws);
  dx_.AddInPlace(wk_.Backward(dk_, ws));
  dx_.AddInPlace(wv_.Backward(dv_, ws));
  return dx_;
}

Matrix MultiHeadSelfAttention::Backward(const Matrix& dy) {
  return Backward(dy, ThreadLocalWorkspace());
}

std::vector<Parameter*> MultiHeadSelfAttention::Params() {
  std::vector<Parameter*> out;
  for (Linear* l : {&wq_, &wk_, &wv_, &wo_}) {
    for (Parameter* p : l->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace dpdp::nn
