#include "nn/attention.h"

#include <cmath>

namespace dpdp::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int num_heads,
                                               Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  DPDP_CHECK(num_heads > 0);
  DPDP_CHECK(d_model % num_heads == 0);
}

Matrix MultiHeadSelfAttention::Forward(const Matrix& x, const Matrix& mask) {
  const int n = x.rows();
  DPDP_CHECK(x.cols() == d_model_);
  DPDP_CHECK(mask.rows() == n && mask.cols() == n);

  mask_ = mask;
  q_ = wq_.Forward(x);
  k_ = wk_.Forward(x);
  v_ = wv_.Forward(x);

  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));
  attn_.assign(num_heads_, Matrix(n, n));
  concat_ = Matrix(n, d_model_);

  for (int h = 0; h < num_heads_; ++h) {
    const int off = h * d_head_;
    Matrix& a = attn_[h];
    for (int i = 0; i < n; ++i) {
      // Masked, numerically-stabilized softmax over allowed positions.
      double mx = -1e300;
      for (int j = 0; j < n; ++j) {
        if (mask(i, j) == 0.0) continue;
        double s = 0.0;
        for (int c = 0; c < d_head_; ++c) {
          s += q_(i, off + c) * k_(j, off + c);
        }
        s *= scale;
        a(i, j) = s;
        mx = std::max(mx, s);
      }
      DPDP_CHECK(mx > -1e299);  // Every row must attend to something.
      double denom = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask(i, j) == 0.0) {
          a(i, j) = 0.0;
        } else {
          a(i, j) = std::exp(a(i, j) - mx);
          denom += a(i, j);
        }
      }
      for (int j = 0; j < n; ++j) a(i, j) /= denom;
      // Weighted sum of values for this head.
      for (int j = 0; j < n; ++j) {
        const double w = a(i, j);
        if (w == 0.0) continue;
        for (int c = 0; c < d_head_; ++c) {
          concat_(i, off + c) += w * v_(j, off + c);
        }
      }
    }
  }
  return wo_.Forward(concat_);
}

Matrix MultiHeadSelfAttention::Backward(const Matrix& dy) {
  const int n = dy.rows();
  DPDP_CHECK(dy.cols() == d_model_);
  DPDP_CHECK(!attn_.empty());

  const Matrix dconcat = wo_.Backward(dy);

  Matrix dq(n, d_model_);
  Matrix dk(n, d_model_);
  Matrix dv(n, d_model_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  for (int h = 0; h < num_heads_; ++h) {
    const int off = h * d_head_;
    const Matrix& a = attn_[h];
    for (int i = 0; i < n; ++i) {
      // dA(i, j) = dconcat(i, head) . V(j, head); dV += A^T dconcat.
      std::vector<double> da(n, 0.0);
      for (int j = 0; j < n; ++j) {
        if (mask_(i, j) == 0.0) continue;
        double s = 0.0;
        for (int c = 0; c < d_head_; ++c) {
          s += dconcat(i, off + c) * v_(j, off + c);
          dv(j, off + c) += a(i, j) * dconcat(i, off + c);
        }
        da[j] = s;
      }
      // Softmax backward: dS = A .* (dA - sum_j dA_j A_j).
      double dot = 0.0;
      for (int j = 0; j < n; ++j) dot += da[j] * a(i, j);
      for (int j = 0; j < n; ++j) {
        if (mask_(i, j) == 0.0) continue;
        const double ds = a(i, j) * (da[j] - dot) * scale;
        if (ds == 0.0) continue;
        for (int c = 0; c < d_head_; ++c) {
          dq(i, off + c) += ds * k_(j, off + c);
          dk(j, off + c) += ds * q_(i, off + c);
        }
      }
    }
  }

  Matrix dx = wq_.Backward(dq);
  dx.AddInPlace(wk_.Backward(dk));
  dx.AddInPlace(wv_.Backward(dv));
  return dx;
}

std::vector<Parameter*> MultiHeadSelfAttention::Params() {
  std::vector<Parameter*> out;
  for (Linear* l : {&wq_, &wk_, &wv_, &wo_}) {
    for (Parameter* p : l->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace dpdp::nn
