#ifndef DPDP_NN_OPTIMIZER_H_
#define DPDP_NN_OPTIMIZER_H_

#include <iosfwd>
#include <vector>

#include "nn/layers.h"

namespace dpdp::nn {

/// Interface for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated in the
  /// parameters, then zeroes all gradients.
  virtual void Step() = 0;

  /// Zeroes accumulated gradients without stepping.
  void ZeroGrad();

 protected:
  explicit Optimizer(std::vector<Parameter*> params);

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  void ClipGradNorm(double max_norm);

  std::vector<Parameter*> params_;
};

/// Plain SGD with optional gradient clipping.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double clip_norm = 0.0);
  void Step() override;

 private:
  double lr_;
  double clip_norm_;
};

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double clip_norm = 0.0);
  void Step() override;

  /// Serializes the optimizer's mutable state (step count + first/second
  /// moments). Hyperparameters are not written — they are reconstructed
  /// from config on restore, and a shape mismatch fails LoadState.
  void SaveState(std::ostream* os) const;

  /// Restores state written by SaveState. Returns false on malformed input
  /// or moment-shape mismatch with the current parameter list.
  bool LoadState(std::istream* is);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double clip_norm_;
  long long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace dpdp::nn

#endif  // DPDP_NN_OPTIMIZER_H_
