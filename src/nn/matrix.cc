#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dpdp::nn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  DPDP_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    DPDP_CHECK(rows[r].size() == rows[0].size());
    for (int c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  DPDP_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() +
                           static_cast<size_t>(k) * other.cols_;
      double* orow = out.data_.data() + static_cast<size_t>(i) * out.cols_;
      for (int j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  DPDP_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* arow = data_.data() + static_cast<size_t>(i) * cols_;
    for (int j = 0; j < other.rows_; ++j) {
      const double* brow = other.data_.data() +
                           static_cast<size_t>(j) * other.cols_;
      double s = 0.0;
      for (int k = 0; k < cols_; ++k) s += arow[k] * brow[k];
      out(i, j) = s;
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (int k = 0; k < rows_; ++k) {
    const double* arow = data_.data() + static_cast<size_t>(k) * cols_;
    const double* brow = other.data_.data() +
                         static_cast<size_t>(k) * other.cols_;
    for (int i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      double* orow = out.data_.data() + static_cast<size_t>(i) * out.cols_;
      for (int j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other);
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double factor) {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  DPDP_CHECK(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(r, c) += row(0, c);
  }
  return out;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Row(int r) const {
  DPDP_CHECK(r >= 0 && r < rows_);
  Matrix out(1, cols_);
  for (int c = 0; c < cols_; ++c) out(0, c) = (*this)(r, c);
  return out;
}

void Matrix::SetRow(int r, const Matrix& row) {
  DPDP_CHECK(r >= 0 && r < rows_);
  DPDP_CHECK(row.rows_ == 1 && row.cols_ == cols_);
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = row(0, c);
}

Matrix Matrix::SoftmaxRows() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    double mx = -1e300;
    for (int c = 0; c < cols_; ++c) mx = std::max(mx, (*this)(r, c));
    double denom = 0.0;
    for (int c = 0; c < cols_; ++c) {
      out(r, c) = std::exp((*this)(r, c) - mx);
      denom += out(r, c);
    }
    DPDP_CHECK(denom > 0.0);
    for (int c = 0; c < cols_; ++c) out(r, c) /= denom;
  }
  return out;
}

double Matrix::SumAll() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::MaxAll() const {
  DPDP_CHECK(!data_.empty());
  double m = data_[0];
  for (double v : data_) m = std::max(m, v);
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double s = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    os << (r ? ", [" : "[");
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace dpdp::nn
