#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/gemm.h"

namespace dpdp::nn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  DPDP_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    DPDP_CHECK(rows[r].size() == rows[0].size());
    for (int c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  Gemm(*this, other, &out, &ThreadLocalWorkspace());
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  Matrix out;
  GemmTransposedB(*this, other, &out, &ThreadLocalWorkspace());
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  Matrix out;
  GemmTransposedA(*this, other, &out, &ThreadLocalWorkspace());
  return out;
}

void Matrix::Resize(int rows, int cols) {
  DPDP_CHECK(rows >= 0 && cols >= 0);
  const size_t need = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (need > data_.size()) data_.resize(need);
  rows_ = rows;
  cols_ = cols;
}

void Matrix::Reserve(int rows, int cols) {
  DPDP_CHECK(rows >= 0 && cols >= 0);
  const size_t need = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (need > data_.size()) data_.resize(need);
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other);
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const size_t n = static_cast<size_t>(size());
  Matrix out = *this;
  for (size_t i = 0; i < n; ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const size_t n = static_cast<size_t>(size());
  Matrix out = *this;
  for (size_t i = 0; i < n; ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  const size_t n = static_cast<size_t>(size());
  Matrix out = *this;
  for (size_t i = 0; i < n; ++i) out.data_[i] *= factor;
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double factor) {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) {
    data_[i] += factor * other.data_[i];
  }
}

void Matrix::Fill(double value) {
  std::fill_n(data_.begin(), static_cast<size_t>(size()), value);
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  DPDP_CHECK(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(r, c) += row(0, c);
  }
  return out;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Row(int r) const {
  DPDP_CHECK(r >= 0 && r < rows_);
  Matrix out(1, cols_);
  for (int c = 0; c < cols_; ++c) out(0, c) = (*this)(r, c);
  return out;
}

void Matrix::SetRow(int r, const Matrix& row) {
  DPDP_CHECK(r >= 0 && r < rows_);
  DPDP_CHECK(row.rows_ == 1 && row.cols_ == cols_);
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = row(0, c);
}

Matrix Matrix::SoftmaxRows() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    double mx = -1e300;
    for (int c = 0; c < cols_; ++c) mx = std::max(mx, (*this)(r, c));
    double denom = 0.0;
    for (int c = 0; c < cols_; ++c) {
      out(r, c) = std::exp((*this)(r, c) - mx);
      denom += out(r, c);
    }
    DPDP_CHECK(denom > 0.0);
    for (int c = 0; c < cols_; ++c) out(r, c) /= denom;
  }
  return out;
}

double Matrix::SumAll() const {
  const size_t n = static_cast<size_t>(size());
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += data_[i];
  return s;
}

double Matrix::MaxAll() const {
  DPDP_CHECK(size() > 0);
  const size_t n = static_cast<size_t>(size());
  double m = data_[0];
  for (size_t i = 0; i < n; ++i) m = std::max(m, data_[i]);
  return m;
}

double Matrix::FrobeniusNorm() const {
  const size_t n = static_cast<size_t>(size());
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += data_[i] * data_[i];
  return std::sqrt(s);
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  DPDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  const size_t n = static_cast<size_t>(size());
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Matrix::AllFinite() const {
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data_[i])) return false;
  }
  return true;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    os << (r ? ", [" : "[");
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace dpdp::nn
