#include "nn/optimizer.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpdp::nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  DPDP_CHECK(!params_.empty());
}

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void Optimizer::ClipGradNorm(double max_norm) {
  if (max_norm <= 0.0) return;
  double sq = 0.0;
  for (const Parameter* p : params_) {
    const double n = p->grad.FrobeniusNorm();
    sq += n * n;
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const double factor = max_norm / norm;
  for (Parameter* p : params_) p->grad = p->grad.Scale(factor);
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double clip_norm)
    : Optimizer(std::move(params)), lr_(lr), clip_norm_(clip_norm) {}

void Sgd::Step() {
  ClipGradNorm(clip_norm_);
  for (Parameter* p : params_) {
    p->value.AddScaled(p->grad, -lr_);
    p->ZeroGrad();
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps, double clip_norm)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      clip_norm_(clip_norm) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  DPDP_TRACE_SPAN("nn.adam_step");
  static obs::Counter* steps =
      obs::MetricsRegistry::Global().GetCounter("nn.adam_steps");
  steps->Add();
  ClipGradNorm(clip_norm_);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g = p->grad(r, c);
        m(r, c) = beta1_ * m(r, c) + (1.0 - beta1_) * g;
        v(r, c) = beta2_ * v(r, c) + (1.0 - beta2_) * g * g;
        const double mhat = m(r, c) / bc1;
        const double vhat = v(r, c) / bc2;
        p->value(r, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
    p->ZeroGrad();
  }
}

void Adam::SaveState(std::ostream* os) const {
  const int64_t t = t_;
  os->write(reinterpret_cast<const char*>(&t), sizeof(t));
  const uint64_t n = m_.size();
  os->write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (size_t i = 0; i < m_.size(); ++i) {
    SaveMatrix(m_[i], os);
    SaveMatrix(v_[i], os);
  }
}

bool Adam::LoadState(std::istream* is) {
  int64_t t = 0;
  is->read(reinterpret_cast<char*>(&t), sizeof(t));
  uint64_t n = 0;
  is->read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!*is || t < 0 || n != m_.size()) return false;
  std::vector<Matrix> m(m_.size());
  std::vector<Matrix> v(v_.size());
  for (size_t i = 0; i < m.size(); ++i) {
    if (!LoadMatrix(is, &m[i]) || !LoadMatrix(is, &v[i])) return false;
    if (m[i].rows() != m_[i].rows() || m[i].cols() != m_[i].cols() ||
        v[i].rows() != v_[i].rows() || v[i].cols() != v_[i].cols()) {
      return false;
    }
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

}  // namespace dpdp::nn
