#include "nn/loss.h"

#include <cmath>

#include "util/status.h"

namespace dpdp::nn {

double MseLoss(double pred, double target) {
  const double d = pred - target;
  return 0.5 * d * d;
}

double MseLossGrad(double pred, double target) { return pred - target; }

double HuberLoss(double pred, double target, double delta) {
  DPDP_CHECK(delta > 0.0);
  const double d = std::abs(pred - target);
  if (d <= delta) return 0.5 * d * d;
  return delta * (d - 0.5 * delta);
}

double HuberLossGrad(double pred, double target, double delta) {
  DPDP_CHECK(delta > 0.0);
  const double d = pred - target;
  if (std::abs(d) <= delta) return d;
  return d > 0.0 ? delta : -delta;
}

}  // namespace dpdp::nn
