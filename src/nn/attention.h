#ifndef DPDP_NN_ATTENTION_H_
#define DPDP_NN_ATTENTION_H_

#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace dpdp::nn {

/// Masked multi-head scaled dot-product self-attention (Vaswani et al.),
/// the "neighborhood attention" block of ST-DDGN (paper Fig. 5).
///
/// Each vehicle is a row of the input feature matrix X (K x d_model). The
/// adjacency mask (K x K, entries in {0,1}) restricts which vehicles each
/// row may attend to; row k of the mask is the one-hot neighbor selection
/// of vehicle k (its NE nearest vehicles plus itself). The product of the
/// feature matrix with this selection is exactly the paper's "relational
/// feature"; attention then mixes the selected rows, and a final dense
/// projection produces the higher-level representation.
///
/// Forward/Backward alternate strictly: Backward consumes the caches of the
/// immediately preceding Forward.
class MultiHeadSelfAttention {
 public:
  /// d_model must be divisible by num_heads.
  MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng);

  /// Per-row column windows: row i may only attend within columns
  /// [spans[i].first, spans[i].second). Lets a block-diagonal batch skip
  /// the quadratic cross-item scan — with spans, cost is the sum of the
  /// per-block costs instead of (total rows)^2.
  using RowSpans = std::vector<std::pair<int, int>>;

  /// X: (K x d_model); mask: (K x K) with mask(i, j) = 1 iff row i may
  /// attend to row j. Every row must allow at least one position (ensure
  /// the diagonal is set). Returns (K x d_model).
  ///
  /// The Workspace overload returns a reference to a layer-owned buffer
  /// (valid until the next Forward) and performs no heap allocation once
  /// the caches have grown to the working shape.
  ///
  /// `spans` (may be nullptr = full rows) promises mask(i, j) == 0 for
  /// every j outside row i's span; the caller owns that invariant.
  /// Numerics are bit-identical to the full-row walk because skipped
  /// columns are exactly the masked-out ones. With spans, attention-weight
  /// entries outside each row's span (last_attention_weights()) are
  /// uninitialized — only the softmax entries inside the span are defined.
  ///
  /// `mask` is borrowed, not copied: it must stay alive and unmodified
  /// until the matching Backward (or the next Forward) completes. Batched
  /// masks grow with the square of the total row count, so copying one
  /// per level would dwarf the attention math itself.
  const Matrix& Forward(const Matrix& x, const Matrix& mask,
                        const RowSpans* spans, Workspace& ws);
  const Matrix& Forward(const Matrix& x, const Matrix& mask, Workspace& ws);
  Matrix Forward(const Matrix& x, const Matrix& mask);

  /// dY: (K x d_model) -> dX (K x d_model); accumulates parameter grads.
  const Matrix& Backward(const Matrix& dy, Workspace& ws);
  Matrix Backward(const Matrix& dy);

  std::vector<Parameter*> Params();

  int d_model() const { return d_model_; }
  int num_heads() const { return num_heads_; }

  /// Attention weights of the last Forward, one (K x K) matrix per head
  /// (for diagnostics / tests).
  const std::vector<Matrix>& last_attention_weights() const { return attn_; }

 private:
  int d_model_;
  int num_heads_;
  int d_head_;

  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;

  // Forward caches. Owned buffers are reused across calls (resized, never
  // reallocated in steady state); mask_/q_/k_/v_ are borrowed — the mask
  // from the caller, the projections from wq_/wk_/wv_'s output buffers
  // (valid until those layers run again, i.e. until the next Forward).
  const Matrix* mask_ = nullptr;
  RowSpans spans_;             // Active row windows; empty = full rows.
  const Matrix* q_ = nullptr;  // (K x d_model) projected inputs.
  const Matrix* k_ = nullptr;
  const Matrix* v_ = nullptr;
  std::vector<Matrix> attn_;   // Per-head (K x K) softmax weights.
  Matrix concat_;              // (K x d_model) pre-output concat.

  // Backward scratch, same reuse policy.
  Matrix dq_, dk_, dv_;
  Matrix dx_;
  std::vector<double> da_;     // Per-row attention-grad scratch.
};

}  // namespace dpdp::nn

#endif  // DPDP_NN_ATTENTION_H_
