#ifndef DPDP_NN_ATTENTION_H_
#define DPDP_NN_ATTENTION_H_

#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace dpdp::nn {

/// Masked multi-head scaled dot-product self-attention (Vaswani et al.),
/// the "neighborhood attention" block of ST-DDGN (paper Fig. 5).
///
/// Each vehicle is a row of the input feature matrix X (K x d_model). The
/// adjacency mask (K x K, entries in {0,1}) restricts which vehicles each
/// row may attend to; row k of the mask is the one-hot neighbor selection
/// of vehicle k (its NE nearest vehicles plus itself). The product of the
/// feature matrix with this selection is exactly the paper's "relational
/// feature"; attention then mixes the selected rows, and a final dense
/// projection produces the higher-level representation.
///
/// Forward/Backward alternate strictly: Backward consumes the caches of the
/// immediately preceding Forward.
class MultiHeadSelfAttention {
 public:
  /// d_model must be divisible by num_heads.
  MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng);

  /// X: (K x d_model); mask: (K x K) with mask(i, j) = 1 iff row i may
  /// attend to row j. Every row must allow at least one position (ensure
  /// the diagonal is set). Returns (K x d_model).
  Matrix Forward(const Matrix& x, const Matrix& mask);

  /// dY: (K x d_model) -> dX (K x d_model); accumulates parameter grads.
  Matrix Backward(const Matrix& dy);

  std::vector<Parameter*> Params();

  int d_model() const { return d_model_; }
  int num_heads() const { return num_heads_; }

  /// Attention weights of the last Forward, one (K x K) matrix per head
  /// (for diagnostics / tests).
  const std::vector<Matrix>& last_attention_weights() const { return attn_; }

 private:
  int d_model_;
  int num_heads_;
  int d_head_;

  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;

  // Forward caches.
  Matrix mask_;
  Matrix q_, k_, v_;           // (K x d_model) projected inputs.
  std::vector<Matrix> attn_;   // Per-head (K x K) softmax weights.
  Matrix concat_;              // (K x d_model) pre-output concat.
};

}  // namespace dpdp::nn

#endif  // DPDP_NN_ATTENTION_H_
