#include "nn/gemm.h"

#include <algorithm>
#include <atomic>

#if defined(__FMA__) && defined(__AVX__)
#include <immintrin.h>
#endif

#include "obs/metrics.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace dpdp::nn {
namespace {

/// Whether every multiply-accumulate in this TU fuses (single rounding).
/// Fusion must be EXPLICIT: compiler FP contraction is decided per
/// expression, so the reference loop and the kernels can otherwise end up
/// with different roundings in the same TU (observed: GCC paired the
/// reference's products into vmulpd + vaddsd while contracting the kernels
/// into vfmadd). Every accumulation below routes through MulAdd/MulAddV so
/// kernel and reference round identically either way.
#if defined(__FMA__) && defined(__AVX__)
#define DPDP_GEMM_FMA 1
#endif

inline double MulAdd(double acc, double a, double b) {
#ifdef DPDP_GEMM_FMA
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Register-tile shape of the micro-kernel. kTileJ spans one packed-panel
/// row (contiguous, so the tj loop auto-vectorizes); kTileI rows share
/// each loaded panel value, cutting B traffic kTileI-fold.
constexpr int kTileI = 4;
constexpr int kTileJ = 8;

int PanelCount(int n) { return (n + kTileJ - 1) / kTileJ; }

/// Packs b (k x n) into j-panels of width kTileJ: panel p holds
/// dst[p*k*kTileJ + kk*kTileJ + tj] = b(kk, p*kTileJ + tj), zero-padded in
/// the tail panel. One pass over b in row order (streaming reads).
void PackPanelsFromColumns(const Matrix& b, double* dst) {
  const int k = b.rows();
  const int n = b.cols();
  for (int p = 0; p < PanelCount(n); ++p) {
    const int j0 = p * kTileJ;
    const int tj_n = std::min(kTileJ, n - j0);
    double* panel = dst + static_cast<size_t>(p) * k * kTileJ;
    for (int kk = 0; kk < k; ++kk) {
      const double* brow = b.data() + static_cast<size_t>(kk) * n + j0;
      double* d = panel + static_cast<size_t>(kk) * kTileJ;
      for (int tj = 0; tj < tj_n; ++tj) d[tj] = brow[tj];
      for (int tj = tj_n; tj < kTileJ; ++tj) d[tj] = 0.0;
    }
  }
}

/// Packs b (n x k) — logically b^T — into the same panel layout:
/// dst[p*k*kTileJ + kk*kTileJ + tj] = b(p*kTileJ + tj, kk). This is the
/// transposition pack of GemmTransposedB.
void PackPanelsFromRows(const Matrix& b, double* dst) {
  const int n = b.rows();
  const int k = b.cols();
  for (int p = 0; p < PanelCount(n); ++p) {
    const int j0 = p * kTileJ;
    const int tj_n = std::min(kTileJ, n - j0);
    double* panel = dst + static_cast<size_t>(p) * k * kTileJ;
    for (int tj = 0; tj < tj_n; ++tj) {
      const double* brow = b.data() + static_cast<size_t>(j0 + tj) * k;
      for (int kk = 0; kk < k; ++kk) panel[kk * kTileJ + tj] = brow[kk];
    }
    for (int tj = tj_n; tj < kTileJ; ++tj) {
      for (int kk = 0; kk < k; ++kk) panel[kk * kTileJ + tj] = 0.0;
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define DPDP_GEMM_VECTOR_EXT 1
/// Four-double SIMD lane (GCC/Clang vector extension). Lowered to one ymm
/// op under AVX2 and to xmm pairs on a generic build; either way each lane
/// is an independent scalar chain, so the determinism contract holds.
typedef double V4d __attribute__((vector_size(32)));

inline V4d LoadU(const double* p) {
  V4d v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU(double* p, V4d v) { __builtin_memcpy(p, &v, sizeof(v)); }

/// Vector-lane counterpart of MulAdd: fused exactly when MulAdd fuses, so
/// every lane rounds like the scalar chains.
inline V4d MulAddV(V4d acc, V4d a, V4d b) {
#ifdef DPDP_GEMM_FMA
  return _mm256_fmadd_pd(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Hand-tiled 4x8 micro-kernel over a full row tile with unit a-stride:
/// eight V4d accumulators + four broadcasts + two panel loads stay inside
/// the 16-register SIMD file, which GCC's autovectorizer fails to achieve
/// from the scalar loops (it spills the accumulator tile to the stack and
/// drops to ~half the throughput of even the naive kernel). Each
/// accumulator lane still sums its k terms in ascending order with the
/// shared MulAdd rounding.
inline void MicroKernel4x8(const double* a0, const double* a1,
                           const double* a2, const double* a3,
                           const double* panel, int k,
                           double acc[kTileI][kTileJ]) {
  V4d c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
  for (int kk = 0; kk < k; ++kk) {
    const double* bk = panel + static_cast<size_t>(kk) * kTileJ;
    const V4d b0 = LoadU(bk);
    const V4d b1 = LoadU(bk + 4);
    const V4d v0 = {a0[kk], a0[kk], a0[kk], a0[kk]};
    const V4d v1 = {a1[kk], a1[kk], a1[kk], a1[kk]};
    const V4d v2 = {a2[kk], a2[kk], a2[kk], a2[kk]};
    const V4d v3 = {a3[kk], a3[kk], a3[kk], a3[kk]};
    c00 = MulAddV(c00, v0, b0);
    c01 = MulAddV(c01, v0, b1);
    c10 = MulAddV(c10, v1, b0);
    c11 = MulAddV(c11, v1, b1);
    c20 = MulAddV(c20, v2, b0);
    c21 = MulAddV(c21, v2, b1);
    c30 = MulAddV(c30, v3, b0);
    c31 = MulAddV(c31, v3, b1);
  }
  StoreU(acc[0], c00);
  StoreU(acc[0] + 4, c01);
  StoreU(acc[1], c10);
  StoreU(acc[1] + 4, c11);
  StoreU(acc[2], c20);
  StoreU(acc[2] + 4, c21);
  StoreU(acc[3], c30);
  StoreU(acc[3] + 4, c31);
}
#endif  // DPDP_GEMM_VECTOR_EXT

/// The blocked core shared by every public variant. `a_i_stride` /
/// `a_k_stride` describe how A is addressed (Gemm walks rows, the
/// transposed-A variant walks columns); `packed` holds B in panel layout.
/// Computes out rows [i_begin, i_end). Every out(i, j) accumulates its k
/// terms in ascending order into one chain, so the result is independent
/// of tiling and of how callers split the i range (range splits land on
/// kTileI block boundaries, so each element always takes the same path).
void GemmCore(const double* a, long a_i_stride, long a_k_stride, int k,
              const double* packed, int n, const double* bias, double* out,
              long out_stride, bool accumulate, int i_begin, int i_end) {
  for (int i0 = i_begin; i0 < i_end; i0 += kTileI) {
    const int ti_n = std::min(kTileI, i_end - i0);
    for (int p = 0; p < PanelCount(n); ++p) {
      const int j0 = p * kTileJ;
      const int tj_n = std::min(kTileJ, n - j0);
      const double* panel = packed + static_cast<size_t>(p) * k * kTileJ;
      double acc[kTileI][kTileJ] = {};
      bool done = false;
#ifdef DPDP_GEMM_VECTOR_EXT
      if (ti_n == kTileI && a_k_stride == 1) {
        const double* a0 = a + static_cast<size_t>(i0) * a_i_stride;
        MicroKernel4x8(a0, a0 + a_i_stride, a0 + 2 * a_i_stride,
                       a0 + 3 * a_i_stride, panel, k, acc);
        done = true;
      }
#endif
      if (!done) {
        // Remainder path (partial tiles; strided A). Same per-element
        // ascending-k chains as the micro-kernel.
        for (int kk = 0; kk < k; ++kk) {
          const double* bk = panel + static_cast<size_t>(kk) * kTileJ;
          for (int ti = 0; ti < ti_n; ++ti) {
            const double av =
                a[static_cast<size_t>(i0 + ti) * a_i_stride +
                  static_cast<size_t>(kk) * a_k_stride];
            for (int tj = 0; tj < kTileJ; ++tj) {
              acc[ti][tj] = MulAdd(acc[ti][tj], av, bk[tj]);
            }
          }
        }
      }
      for (int ti = 0; ti < ti_n; ++ti) {
        double* orow = out + static_cast<size_t>(i0 + ti) * out_stride + j0;
        for (int tj = 0; tj < tj_n; ++tj) {
          double v = acc[ti][tj];
          if (bias != nullptr) v += bias[j0 + tj];
          orow[tj] = accumulate ? orow[tj] + v : v;
        }
      }
    }
  }
}

obs::Counter* GemmFlopsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("nn.gemm_flops");
  return counter;
}

/// 0 = not yet initialized from the environment. Atomic because the first
/// GEMM calls of a process may come from many serving/client threads at
/// once; concurrent lazy inits all store the same env-derived value.
std::atomic<int> g_gemm_threads{0};

/// Pool dedicated to GEMM fan-out. Sized once, at the first parallel
/// dispatch, from the thread count active at that moment; later
/// SetGemmThreads increases cap at this size. Never destroyed.
ThreadPool* GemmPool(int threads) {
  static ThreadPool* pool = new ThreadPool(threads);
  return pool;
}

/// Runs GemmCore over [0, m), fanning out contiguous row-block ranges when
/// the matrix is big enough and DPDP_GEMM_THREADS allows. Tasks write
/// disjoint out rows and each element's arithmetic is identical wherever
/// it runs, so the fan-out is bit-transparent.
void DispatchCore(const double* a, long a_i_stride, long a_k_stride, int m,
                  int k, const double* packed, int n, const double* bias,
                  double* out, long out_stride, bool accumulate) {
  const int threads = GemmThreads();
  const long long flops = 2LL * m * n * k;
  if (threads > 1 && flops >= kGemmParallelMinFlops && m > kTileI) {
    const int num_blocks = (m + kTileI - 1) / kTileI;
    const int tasks = std::min(threads, num_blocks);
    GemmPool(threads)->ParallelFor(tasks, [&](int t) {
      const int b0 = static_cast<int>(
          static_cast<long long>(num_blocks) * t / tasks);
      const int b1 = static_cast<int>(
          static_cast<long long>(num_blocks) * (t + 1) / tasks);
      GemmCore(a, a_i_stride, a_k_stride, k, packed, n, bias, out,
               out_stride, accumulate, b0 * kTileI,
               std::min(m, b1 * kTileI));
    });
  } else {
    GemmCore(a, a_i_stride, a_k_stride, k, packed, n, bias, out, out_stride,
             accumulate, 0, m);
  }
  GemmFlopsCounter()->Add(static_cast<uint64_t>(flops));
}

size_t PackedSize(int k, int n) {
  return static_cast<size_t>(PanelCount(n)) * k * kTileJ;
}

}  // namespace

Workspace& ThreadLocalWorkspace() {
  thread_local Workspace ws;
  return ws;
}

int GemmThreads() {
  int n = g_gemm_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = std::max(1, EnvInt("DPDP_GEMM_THREADS", 1));
    g_gemm_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void SetGemmThreads(int n) {
  g_gemm_threads.store(std::max(1, n), std::memory_order_relaxed);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out, Workspace* ws) {
  GemmBias(a, b, Matrix(), out, ws);
}

void GemmBias(const Matrix& a, const Matrix& b, const Matrix& bias,
              Matrix* out, Workspace* ws) {
  DPDP_CHECK(a.cols() == b.rows());
  DPDP_CHECK(bias.empty() || (bias.rows() == 1 && bias.cols() == b.cols()));
  DPDP_CHECK(out != &a && out != &b && out != &bias);
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  out->Resize(m, n);
  if (m == 0 || n == 0) return;
  double* packed = ws->PackBuffer(PackedSize(k, n)).data();
  PackPanelsFromColumns(b, packed);
  DispatchCore(a.data(), /*a_i_stride=*/k, /*a_k_stride=*/1, m, k, packed, n,
               bias.empty() ? nullptr : bias.data(), out->data(), n,
               /*accumulate=*/false);
}

void GemmTransposedB(const Matrix& a, const Matrix& b, Matrix* out,
                     Workspace* ws) {
  DPDP_CHECK(a.cols() == b.cols());
  DPDP_CHECK(out != &a && out != &b);
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  out->Resize(m, n);
  if (m == 0 || n == 0) return;
  double* packed = ws->PackBuffer(PackedSize(k, n)).data();
  PackPanelsFromRows(b, packed);
  DispatchCore(a.data(), /*a_i_stride=*/k, /*a_k_stride=*/1, m, k, packed, n,
               /*bias=*/nullptr, out->data(), n, /*accumulate=*/false);
}

void GemmReference(const Matrix& a, const Matrix& b, Matrix* out) {
  DPDP_CHECK(a.cols() == b.rows());
  DPDP_CHECK(out != &a && out != &b);
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  out->Resize(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s = MulAdd(s, a(i, kk), b(kk, j));
      (*out)(i, j) = s;
    }
  }
}

void GemmTransposedA(const Matrix& a, const Matrix& b, Matrix* out,
                     Workspace* ws, bool accumulate) {
  DPDP_CHECK(a.rows() == b.rows());
  DPDP_CHECK(out != &a && out != &b);
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  if (accumulate) {
    DPDP_CHECK(out->rows() == m && out->cols() == n);
  } else {
    out->Resize(m, n);
  }
  if (m == 0 || n == 0) return;
  double* packed = ws->PackBuffer(PackedSize(k, n)).data();
  PackPanelsFromColumns(b, packed);
  // A is walked down its columns: element (i, kk) of the logical A^T is
  // a(kk, i), i.e. i strides by 1 and kk by a.cols().
  DispatchCore(a.data(), /*a_i_stride=*/1, /*a_k_stride=*/a.cols(), m, k,
               packed, n, /*bias=*/nullptr, out->data(), n, accumulate);
}

}  // namespace dpdp::nn
