#ifndef DPDP_NN_MATRIX_H_
#define DPDP_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpdp::nn {

/// Dense row-major matrix of doubles. This is the numeric workhorse under
/// the neural-network substrate; everything (vectors included) is a Matrix
/// with vectors represented as 1xN or Nx1.
///
/// The class is deliberately small: the networks in this project are tiny
/// (state dim 5, hidden dims <= 64), so clarity beats BLAS.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  /// Builds a matrix from nested initializer data; all rows must have the
  /// same length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  /// Reshapes to rows x cols WITHOUT zeroing: newly exposed elements are
  /// unspecified (zero only the first time the backing store grows) and
  /// element positions are preserved only while `cols` is unchanged. The
  /// backing store never shrinks, so a matrix reused as scratch reaches a
  /// steady state with no allocation and no memset per call. Callers must
  /// overwrite every element before reading.
  void Resize(int rows, int cols);

  /// Pre-grows the backing store to hold rows x cols without changing the
  /// current shape. Lets long-lived scratch matrices front-load their one
  /// allocation.
  void Reserve(int rows, int cols);

  double& at(int r, int c) {
    DPDP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    DPDP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Matrix product this(rows x k) * other(k x cols).
  Matrix MatMul(const Matrix& other) const;

  /// Matrix product with `other` transposed: this(rows x k) * other^T.
  Matrix MatMulTransposed(const Matrix& other) const;

  /// this^T * other.
  Matrix TransposedMatMul(const Matrix& other) const;

  Matrix Transpose() const;

  /// Elementwise operations; shapes must match exactly.
  Matrix Add(const Matrix& other) const;
  Matrix Sub(const Matrix& other) const;
  Matrix Hadamard(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// In-place accumulate: this += other (shapes must match).
  void AddInPlace(const Matrix& other);
  /// In-place accumulate: this += factor * other.
  void AddScaled(const Matrix& other, double factor);
  void Fill(double value);

  /// Adds `row` (1 x cols) to every row of this matrix.
  Matrix AddRowBroadcast(const Matrix& row) const;

  /// Returns a 1 x cols matrix with the sum of all rows.
  Matrix SumRows() const;

  /// Returns row r as a 1 x cols matrix.
  Matrix Row(int r) const;
  /// Copies `row` (1 x cols) into row r.
  void SetRow(int r, const Matrix& row);

  /// Row-wise softmax (numerically stabilized).
  Matrix SoftmaxRows() const;

  double SumAll() const;
  double MaxAll() const;
  /// Frobenius norm of the matrix.
  double FrobeniusNorm() const;
  /// Frobenius norm of (this - other).
  double FrobeniusDistance(const Matrix& other) const;

  /// True when all elements are within `tol` of `other`'s.
  bool AllClose(const Matrix& other, double tol = 1e-9) const;

  /// True when no element is NaN or +/-Inf. Used by the dispatch-time
  /// degradation guards to reject poisoned network outputs.
  bool AllFinite() const;

  std::string DebugString(int max_rows = 8, int max_cols = 8) const;

 private:
  int rows_;
  int cols_;
  /// May hold more than rows_*cols_ elements after a shrinking Resize;
  /// every loop must bound itself by size(), never data_.size().
  std::vector<double> data_;
};

}  // namespace dpdp::nn

#endif  // DPDP_NN_MATRIX_H_
