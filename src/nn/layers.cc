#include "nn/layers.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

namespace dpdp::nn {

void CopyParameters(const std::vector<Parameter*>& src,
                    const std::vector<Parameter*>& dst) {
  DPDP_CHECK(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    DPDP_CHECK(src[i]->value.rows() == dst[i]->value.rows());
    DPDP_CHECK(src[i]->value.cols() == dst[i]->value.cols());
    dst[i]->value = src[i]->value;
  }
}

void SoftUpdateParameters(const std::vector<Parameter*>& src,
                          const std::vector<Parameter*>& dst, double tau) {
  DPDP_CHECK(src.size() == dst.size());
  DPDP_CHECK(tau >= 0.0 && tau <= 1.0);
  for (size_t i = 0; i < src.size(); ++i) {
    Matrix& d = dst[i]->value;
    const Matrix& s = src[i]->value;
    DPDP_CHECK(d.rows() == s.rows() && d.cols() == s.cols());
    for (int r = 0; r < d.rows(); ++r) {
      for (int c = 0; c < d.cols(); ++c) {
        d(r, c) = (1.0 - tau) * d(r, c) + tau * s(r, c);
      }
    }
  }
}

void SaveParameters(const std::vector<Parameter*>& params, std::ostream* os) {
  const uint64_t n = params.size();
  os->write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Parameter* p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    os->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    os->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    os->write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(sizeof(double)) * p->value.size());
  }
}

bool LoadParameters(std::istream* is, const std::vector<Parameter*>& params) {
  uint64_t n = 0;
  is->read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!*is || n != params.size()) return false;
  for (Parameter* p : params) {
    int32_t rows = 0;
    int32_t cols = 0;
    is->read(reinterpret_cast<char*>(&rows), sizeof(rows));
    is->read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!*is || rows != p->value.rows() || cols != p->value.cols()) {
      return false;
    }
    is->read(reinterpret_cast<char*>(p->value.data()),
             static_cast<std::streamsize>(sizeof(double)) * p->value.size());
    if (!*is) return false;
  }
  return true;
}

void SaveMatrix(const Matrix& m, std::ostream* os) {
  const int32_t rows = m.rows();
  const int32_t cols = m.cols();
  os->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os->write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(sizeof(double)) * m.size());
}

bool LoadMatrix(std::istream* is, Matrix* m) {
  int32_t rows = 0;
  int32_t cols = 0;
  is->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*is || rows < 0 || cols < 0) return false;
  Matrix loaded(rows, cols);
  is->read(reinterpret_cast<char*>(loaded.data()),
           static_cast<std::streamsize>(sizeof(double)) * loaded.size());
  if (!*is) return false;
  *m = std::move(loaded);
  return true;
}

namespace {
Matrix HeInit(int in_dim, int out_dim, Rng* rng) {
  Matrix w(in_dim, out_dim);
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (int r = 0; r < in_dim; ++r) {
    for (int c = 0; c < out_dim; ++c) w(r, c) = rng->Normal(0.0, scale);
  }
  return w;
}
}  // namespace

Linear::Linear(int in_dim, int out_dim, Rng* rng)
    : w_(HeInit(in_dim, out_dim, rng)), b_(Matrix(1, out_dim)) {}

const Matrix& Linear::Forward(const Matrix& x, Workspace& ws) {
  DPDP_CHECK(x.cols() == w_.value.rows());
  cached_x_ = x;
  GemmBias(x, w_.value, b_.value, &y_, &ws);
  return y_;
}

Matrix Linear::Forward(const Matrix& x) {
  return Forward(x, ThreadLocalWorkspace());
}

const Matrix& Linear::Backward(const Matrix& dy, Workspace& ws) {
  DPDP_CHECK(dy.rows() == cached_x_.rows());
  DPDP_CHECK(dy.cols() == w_.value.cols());
  GemmTransposedA(cached_x_, dy, &w_.grad, &ws, /*accumulate=*/true);
  for (int r = 0; r < dy.rows(); ++r) {
    for (int c = 0; c < dy.cols(); ++c) b_.grad(0, c) += dy(r, c);
  }
  GemmTransposedB(dy, w_.value, &dx_, &ws);
  return dx_;
}

Matrix Linear::Backward(const Matrix& dy) {
  return Backward(dy, ThreadLocalWorkspace());
}

std::vector<Parameter*> Linear::Params() { return {&w_, &b_}; }

const Matrix& ReLU::Forward(const Matrix& x, Workspace& ws) {
  (void)ws;
  // Every element of both buffers is written, so the uninitialized Resize
  // is safe.
  cached_mask_.Resize(x.rows(), x.cols());
  y_.Resize(x.rows(), x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      const bool on = x(r, c) > 0.0;
      y_(r, c) = on ? x(r, c) : 0.0;
      cached_mask_(r, c) = on ? 1.0 : 0.0;
    }
  }
  return y_;
}

Matrix ReLU::Forward(const Matrix& x) {
  return Forward(x, ThreadLocalWorkspace());
}

const Matrix& ReLU::Backward(const Matrix& dy, Workspace& ws) {
  (void)ws;
  DPDP_CHECK(dy.rows() == cached_mask_.rows());
  DPDP_CHECK(dy.cols() == cached_mask_.cols());
  dx_.Resize(dy.rows(), dy.cols());
  for (int r = 0; r < dy.rows(); ++r) {
    for (int c = 0; c < dy.cols(); ++c) {
      dx_(r, c) = dy(r, c) * cached_mask_(r, c);
    }
  }
  return dx_;
}

Matrix ReLU::Backward(const Matrix& dy) const {
  return dy.Hadamard(cached_mask_);
}

const Matrix& Tanh::Forward(const Matrix& x, Workspace& ws) {
  (void)ws;
  cached_y_.Resize(x.rows(), x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) cached_y_(r, c) = std::tanh(x(r, c));
  }
  return cached_y_;
}

Matrix Tanh::Forward(const Matrix& x) {
  return Forward(x, ThreadLocalWorkspace());
}

const Matrix& Tanh::Backward(const Matrix& dy, Workspace& ws) {
  (void)ws;
  DPDP_CHECK(dy.rows() == cached_y_.rows());
  DPDP_CHECK(dy.cols() == cached_y_.cols());
  dx_.Resize(dy.rows(), dy.cols());
  for (int r = 0; r < dy.rows(); ++r) {
    for (int c = 0; c < dy.cols(); ++c) {
      dx_(r, c) = dy(r, c) * (1.0 - cached_y_(r, c) * cached_y_(r, c));
    }
  }
  return dx_;
}

Matrix Tanh::Backward(const Matrix& dy) const {
  Matrix dx(dy.rows(), dy.cols());
  for (int r = 0; r < dy.rows(); ++r) {
    for (int c = 0; c < dy.cols(); ++c) {
      dx(r, c) = dy(r, c) * (1.0 - cached_y_(r, c) * cached_y_(r, c));
    }
  }
  return dx;
}

Mlp::Mlp(const std::vector<int>& dims, Activation hidden_activation, Rng* rng)
    : activation_(hidden_activation) {
  DPDP_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.emplace_back(dims[i], dims[i + 1], rng);
  }
  // One activation per hidden layer (the output layer stays linear).
  const size_t hidden = linears_.size() - 1;
  relus_.resize(hidden);
  tanhs_.resize(hidden);
}

const Matrix& Mlp::Forward(const Matrix& x, Workspace& ws) {
  // Each layer owns its output buffer, so chaining references never
  // aliases a gemm input with its output.
  const Matrix* h = &x;
  for (size_t i = 0; i < linears_.size(); ++i) {
    h = &linears_[i].Forward(*h, ws);
    if (i + 1 < linears_.size()) {
      switch (activation_) {
        case Activation::kReLU:
          h = &relus_[i].Forward(*h, ws);
          break;
        case Activation::kTanh:
          h = &tanhs_[i].Forward(*h, ws);
          break;
        case Activation::kIdentity:
          break;
      }
    }
  }
  return *h;
}

Matrix Mlp::Forward(const Matrix& x) {
  return Forward(x, ThreadLocalWorkspace());
}

const Matrix& Mlp::Backward(const Matrix& dy, Workspace& ws) {
  const Matrix* d = &dy;
  for (size_t i = linears_.size(); i-- > 0;) {
    if (i + 1 < linears_.size()) {
      switch (activation_) {
        case Activation::kReLU:
          d = &relus_[i].Backward(*d, ws);
          break;
        case Activation::kTanh:
          d = &tanhs_[i].Backward(*d, ws);
          break;
        case Activation::kIdentity:
          break;
      }
    }
    d = &linears_[i].Backward(*d, ws);
  }
  return *d;
}

Matrix Mlp::Backward(const Matrix& dy) {
  return Backward(dy, ThreadLocalWorkspace());
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (Linear& l : linears_) {
    for (Parameter* p : l.Params()) out.push_back(p);
  }
  return out;
}

int Mlp::in_dim() const { return linears_.front().in_dim(); }
int Mlp::out_dim() const { return linears_.back().out_dim(); }

}  // namespace dpdp::nn
