#include "obs/flight_recorder.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/timer.h"

namespace dpdp::obs {
namespace {

/// One seqlock-guarded ring slot. Every field is an atomic accessed with
/// relaxed order; the `seq` field (release on publish, acquire on read)
/// orders them. Writers are wait-free: bump seq to odd, store fields, bump
/// to even. Readers retry while seq is odd or changed mid-copy, then skip
/// the slot — a torn slot costs one missing event in a forensic dump, not
/// a stall on the serving path. TSan sees only atomics, so concurrent
/// dump-while-recording is race-free by construction.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> t_ns{0};
  std::atomic<int> kind{0};
  std::atomic<const char*> name{""};
  std::atomic<int> shard{-1};
  std::atomic<uint64_t> arg0{0};
  std::atomic<uint64_t> arg1{0};
};

struct FlightRing;

struct RecorderState {
  std::mutex mu;                     ///< Guards rings + retired.
  std::vector<FlightRing*> rings;    ///< Live per-thread rings.
  std::vector<FlightEvent> retired;  ///< Events from exited threads.
};

RecorderState& State() {
  static RecorderState* state = new RecorderState;  // Leaked: atexit-safe.
  return *state;
}

/// Per-thread ring of the last kFlightRingCapacity events. Only the owning
/// thread writes; any thread may snapshot concurrently via the seqlocks.
struct FlightRing {
  Slot slots[kFlightRingCapacity];
  std::atomic<uint64_t> head{0};  ///< Next write position (monotone).

  FlightRing() {
    RecorderState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.rings.push_back(this);
  }

  ~FlightRing() {
    RecorderState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.rings.erase(
        std::remove(state.rings.begin(), state.rings.end(), this),
        state.rings.end());
    std::vector<FlightEvent> events;
    Drain(&events);
    state.retired.insert(state.retired.end(), events.begin(), events.end());
    // Cap retired growth: churning threads keep only the freshest tail.
    const size_t cap = 4 * kFlightRingCapacity;
    if (state.retired.size() > cap) {
      state.retired.erase(state.retired.begin(),
                          state.retired.end() - static_cast<long>(cap));
    }
  }

  void Record(const FlightEvent& event) {
    const uint64_t pos = head.load(std::memory_order_relaxed);
    Slot& slot = slots[pos % kFlightRingCapacity];
    const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_release);  // Odd: in flight.
    slot.t_ns.store(event.t_ns, std::memory_order_relaxed);
    slot.kind.store(static_cast<int>(event.kind), std::memory_order_relaxed);
    slot.name.store(event.name, std::memory_order_relaxed);
    slot.shard.store(event.shard, std::memory_order_relaxed);
    slot.arg0.store(event.arg0, std::memory_order_relaxed);
    slot.arg1.store(event.arg1, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // Even: published.
    head.store(pos + 1, std::memory_order_relaxed);
  }

  /// Copies stable slots into `out` (oldest first within this ring).
  void Drain(std::vector<FlightEvent>* out) const {
    const uint64_t pos = head.load(std::memory_order_relaxed);
    const uint64_t n =
        std::min<uint64_t>(pos, static_cast<uint64_t>(kFlightRingCapacity));
    for (uint64_t i = pos - n; i < pos; ++i) {
      const Slot& slot = slots[i % kFlightRingCapacity];
      for (int attempt = 0; attempt < 4; ++attempt) {
        const uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1) != 0) break;  // Empty or mid-write.
        FlightEvent event;
        event.t_ns = slot.t_ns.load(std::memory_order_relaxed);
        event.kind = static_cast<FlightEventKind>(
            slot.kind.load(std::memory_order_relaxed));
        event.name = slot.name.load(std::memory_order_relaxed);
        event.shard = slot.shard.load(std::memory_order_relaxed);
        event.arg0 = slot.arg0.load(std::memory_order_relaxed);
        event.arg1 = slot.arg1.load(std::memory_order_relaxed);
        const uint64_t after = slot.seq.load(std::memory_order_acquire);
        if (before == after) {
          out->push_back(event);
          break;
        }
      }
    }
  }

  void Clear() {
    for (Slot& slot : slots) slot.seq.store(0, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
  }
};

FlightRing& LocalRing() {
  thread_local FlightRing ring;
  return ring;
}

bool InitFlightEnabled() { return EnvInt("DPDP_FLIGHT_RECORDER", 0) != 0; }

std::atomic<uint64_t> g_dump_count{0};

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

namespace internal {

std::atomic<bool> g_flight_enabled{InitFlightEnabled()};

void RecordFlightEvent(const FlightEvent& event) {
  FlightEvent stamped = event;
  stamped.t_ns = MonotonicNanos();
  LocalRing().Record(stamped);
}

}  // namespace internal

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kPublish:
      return "publish";
    case FlightEventKind::kQuarantine:
      return "quarantine";
    case FlightEventKind::kCrash:
      return "crash";
    case FlightEventKind::kRestart:
      return "restart";
    case FlightEventKind::kReroute:
      return "reroute";
    case FlightEventKind::kRestore:
      return "restore";
    case FlightEventKind::kBreaker:
      return "breaker";
    case FlightEventKind::kSloBreach:
      return "slo_breach";
    case FlightEventKind::kShed:
      return "shed";
    case FlightEventKind::kCustom:
      return "custom";
  }
  return "?";
}

void SetFlightRecorderEnabled(bool enabled) {
  internal::g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<FlightEvent> SnapshotFlightEvents() {
  RecorderState& state = State();
  std::vector<FlightEvent> all;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    all = state.retired;
    for (const FlightRing* ring : state.rings) ring->Drain(&all);
  }
  std::sort(all.begin(), all.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.t_ns < b.t_ns;
            });
  return all;
}

std::string FlightEventsToJson(const std::vector<FlightEvent>& events,
                               const std::string& reason, int64_t now_ns) {
  std::ostringstream os;
  os << "{\n  \"reason\": \"" << JsonEscape(reason.c_str())
     << "\",\n  \"dumped_at_ns\": " << now_ns
     << ",\n  \"event_count\": " << events.size() << ",\n  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    os << (i ? "," : "") << "\n    {\"t_ns\": " << e.t_ns << ", \"kind\": \""
       << FlightEventKindName(e.kind) << "\", \"name\": \""
       << JsonEscape(e.name) << "\", \"shard\": " << e.shard
       << ", \"arg0\": " << e.arg0 << ", \"arg1\": " << e.arg1 << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Status DumpFlightRecorder(const std::string& reason,
                          const std::string& path) {
  std::string target = path;
  if (target.empty()) target = EnvStr("DPDP_FLIGHT_RECORDER_FILE", "");
  if (target.empty()) {
    const std::string dir = EnvStr("DPDP_METRICS_DIR", "");
    target = dir.empty() ? "flight_recorder.json"
                         : dir + "/flight_recorder.json";
  }
  const std::vector<FlightEvent> events = SnapshotFlightEvents();
  return internal::WriteFileStaged(
      target, FlightEventsToJson(events, reason, MonotonicNanos()));
}

void FlightRecorderAutoDump(const char* reason) {
  if (!FlightRecorderEnabled()) return;
  if (DumpFlightRecorder(reason).ok()) {
    g_dump_count.fetch_add(1, std::memory_order_relaxed);
    static Counter* dumps =
        MetricsRegistry::Global().GetCounter("obs.flight_dumps");
    dumps->Add(1);
  }
}

uint64_t FlightRecorderDumps() {
  return g_dump_count.load(std::memory_order_relaxed);
}

void ResetFlightRecorder() {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.retired.clear();
  for (FlightRing* ring : state.rings) ring->Clear();
}

}  // namespace dpdp::obs
