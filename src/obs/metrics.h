#ifndef DPDP_OBS_METRICS_H_
#define DPDP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpdp::obs {

/// Number of cache-line-padded shards per metric. Increments hash the
/// calling thread onto a shard, so ThreadPool workers hammering the same
/// counter never contend on one atomic; reads sum the shards.
inline constexpr int kMetricShards = 16;

namespace internal {

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

/// Relaxed add for atomic<double> (histogram sums): CAS loop instead of
/// C++20 fetch_add to stay portable across libstdc++ versions.
void AtomicAddDouble(std::atomic<double>* target, double delta);

/// Small dense per-thread index used to pick a shard. Stable for the
/// thread's lifetime; different threads may share a shard (correctness
/// never depends on exclusivity, only contention does).
int ThreadShard();

/// The single flush mutex shared by every obs file export (trace flush,
/// metrics snapshot, flight-recorder dump, timeseries write). A crash-path
/// dump racing the atexit trace/metrics flush serializes here instead of
/// interleaving writes.
std::mutex& ExportMutex();

/// Writes `contents` to `path` via the checkpoint writer's convention:
/// create the parent directory, write everything to `<path>.tmp`, then
/// rename over `path` — a reader (or a crash) never observes a torn file.
/// Takes ExportMutex() internally; callers must NOT hold it.
Status WriteFileStaged(const std::string& path, const std::string& contents);

}  // namespace internal

/// Monotonically increasing event count. Thread-safe; Add is wait-free
/// (one relaxed fetch_add on the caller's shard).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  internal::CounterShard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (replay size, epsilon, ...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { internal::AtomicAddDouble(&value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
/// overflow bucket catches the rest. Records are sharded like Counter, so
/// concurrent Record calls from pool workers do not contend.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  /// Per-bucket totals, size bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    explicit Shard(size_t n) : buckets(n) {}
  };

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Exponential latency bucket bounds in seconds: 1us, 2us, 5us, 10us, ...
/// up to 10s (decade steps 1-2-5). Shared default for decision/batch/span
/// latency histograms so exported snapshots line up.
const std::vector<double>& LatencyBucketsSeconds();

/// One exported metric in a point-in-time snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;              ///< Counter total or gauge value.
  uint64_t count = 0;              ///< Histogram sample count.
  double sum = 0.0;                ///< Histogram sample sum.
  std::vector<double> bounds;      ///< Histogram upper bounds.
  std::vector<uint64_t> buckets;   ///< bounds.size() + 1 entries.
};

/// Thread-safe name -> metric registry. Lookup takes a mutex (do it once,
/// cache the pointer in a static); the returned pointers are stable for
/// the registry's lifetime and their update paths are lock-free.
class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used on first creation; later lookups of the same name
  /// return the existing histogram (bounds must match — checked).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Point-in-time values of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Estimates the q-quantile (q in [0, 1]) of a histogram snapshot by
/// linear interpolation inside the bucket holding the target rank. Exact
/// only up to bucket resolution. Edge cases are total: an empty histogram
/// (count 0 — e.g. a cold shard that never served) or a non-histogram
/// snapshot returns 0; q is clamped into [0, 1]; p0 is the lower edge of
/// the first non-empty bucket and p100 the upper edge of the last
/// non-empty one; a boundless histogram (only the overflow bucket) returns
/// the sample mean; a rank landing in the overflow bucket clamps to the
/// last bound, or to the mean when the mean exceeds it. This is how the
/// serving layer turns its latency histograms into reported p50/p95/p99.
double HistogramQuantile(const MetricSnapshot& snapshot, double q);

/// Serializes a snapshot. CSV columns: name,kind,value,count,sum,buckets
/// (buckets as "le<bound>:<count>" pairs joined by ';'). JSON is a single
/// object keyed by metric name.
std::string SnapshotToCsv(const std::vector<MetricSnapshot>& snapshot);
std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot);

/// Writes metrics_snapshot.csv + metrics_snapshot.json for the global
/// registry under `dir` (created if missing). Empty `dir` falls back to
/// DPDP_METRICS_DIR; if that is unset too, does nothing and returns OK.
Status WriteMetricsFiles(const std::string& dir = "");

}  // namespace dpdp::obs

#endif  // DPDP_OBS_METRICS_H_
