#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>

#include "util/env.h"
#include "util/timer.h"

namespace dpdp::obs {

Telemetry::Options Telemetry::FromEnv() {
  Options options;
  options.sampler = TimeSeriesSampler::FromEnv();
  options.slo = SloConfigFromEnv();
  options.http_port = EnvInt("DPDP_OBS_HTTP_PORT", -1);
  return options;
}

Telemetry::Telemetry(Options options)
    : options_(options),
      sampler_(options.sampler),
      exporter_(options.http_port),
      monitor_(options.slo) {
  exporter_.AddEndpoint("/slo", [this] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = SloJson();
    return response;
  });
  exporter_.AddEndpoint("/timeseries", [this] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = sampler_.ToJson();
    return response;
  });
}

Telemetry::~Telemetry() { Stop(); }

void Telemetry::Start() {
  if (started_) return;
  started_ = true;
  sampler_.Start();          // No-op when sample_interval_ms <= 0.
  (void)exporter_.Start();   // No-op when http_port < 0.
  if (monitor_.enabled()) {
    {
      std::lock_guard<std::mutex> lock(slo_mu_);
      slo_stopping_ = false;
      monitor_.TickAt(MonotonicNanos());  // Anchor the first window.
    }
    slo_thread_ = std::thread(&Telemetry::SloLoop, this);
  }
}

void Telemetry::Stop() {
  if (!started_) return;
  started_ = false;
  if (slo_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(slo_mu_);
      slo_stopping_ = true;
    }
    slo_cv_.notify_all();
    slo_thread_.join();
    // One final window so the tail of the run is judged too.
    std::lock_guard<std::mutex> lock(slo_mu_);
    (void)monitor_.EvaluateWindowAt(MonotonicNanos());
  }
  sampler_.Stop();
  (void)sampler_.WriteFiles();
  exporter_.Stop();
}

void Telemetry::SloLoop() {
  // Tick at a quarter of the window so boundaries are hit promptly; the
  // monitor itself only evaluates once per elapsed window.
  const int tick_ms = std::max(10, options_.slo.window_ms / 4);
  std::unique_lock<std::mutex> lock(slo_mu_);
  while (!slo_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                           [this] { return slo_stopping_; })) {
    monitor_.TickAt(MonotonicNanos());
  }
}

std::string Telemetry::SloJson() const {
  std::lock_guard<std::mutex> lock(slo_mu_);
  return monitor_.ToJson();
}

uint64_t Telemetry::SloWindows() const {
  std::lock_guard<std::mutex> lock(slo_mu_);
  return monitor_.windows();
}

uint64_t Telemetry::SloBreaches() const {
  std::lock_guard<std::mutex> lock(slo_mu_);
  return monitor_.breaches();
}

}  // namespace dpdp::obs
