#include "obs/timeseries.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/timer.h"

namespace dpdp::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

TimeSeriesSampler::Options TimeSeriesSampler::FromEnv() {
  Options options;
  options.sample_interval_ms = EnvInt("DPDP_OBS_SAMPLE_MS", 0);
  options.capacity = EnvInt("DPDP_OBS_SAMPLE_ROWS", 512);
  if (options.capacity < 1) options.capacity = 1;
  return options;
}

TimeSeriesSampler::TimeSeriesSampler() : TimeSeriesSampler(Options()) {}

TimeSeriesSampler::TimeSeriesSampler(Options options)
    : options_(options) {
  if (options_.capacity < 1) options_.capacity = 1;
}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ || options_.sample_interval_ms <= 0) return;
    running_ = true;
    stopping_ = false;
  }
  SampleOnce();  // Short runs still export at least one row.
  thread_ = std::thread(&TimeSeriesSampler::ThreadBody, this);
}

void TimeSeriesSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleOnce();  // Capture the tail of the run.
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void TimeSeriesSampler::ThreadBody() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::milliseconds(options_.sample_interval_ms);
  while (!cv_.wait_for(lock, period, [this] { return stopping_; })) {
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void TimeSeriesSampler::SampleOnce() {
  // Snapshot outside the row mutex: the registry walk takes its own lock
  // and can be slow with many shards; rows only need the computed deltas.
  const std::vector<MetricSnapshot> snapshot =
      MetricsRegistry::Global().Snapshot();
  TimeSeriesRow row;
  row.t_ns = MonotonicNanos();

  std::lock_guard<std::mutex> lock(mu_);
  auto column = [this](const std::string& name) -> size_t {
    auto [it, inserted] = column_index_.try_emplace(name, columns_.size());
    if (inserted) columns_.push_back(name);
    return it->second;
  };
  auto put = [&row](size_t index, double value) {
    if (row.values.size() <= index) row.values.resize(index + 1, 0.0);
    row.values[index] = value;
  };
  auto delta = [this](const std::string& name, double absolute) {
    auto [it, inserted] = prev_.try_emplace(name, 0.0);
    const double d = absolute - it->second;
    it->second = absolute;
    return d;
  };
  for (const MetricSnapshot& m : snapshot) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        put(column(m.name), delta(m.name, m.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        put(column(m.name), m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const std::string count_col = m.name + ".count";
        const std::string sum_col = m.name + ".sum";
        put(column(count_col),
            delta(count_col, static_cast<double>(m.count)));
        put(column(sum_col), delta(sum_col, m.sum));
        break;
      }
    }
  }
  row.values.resize(columns_.size(), 0.0);
  rows_.push_back(std::move(row));
  while (rows_.size() > static_cast<size_t>(options_.capacity)) {
    rows_.pop_front();
  }
}

std::vector<std::string> TimeSeriesSampler::ColumnNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return columns_;
}

std::vector<TimeSeriesRow> TimeSeriesSampler::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeriesRow> out(rows_.begin(), rows_.end());
  for (TimeSeriesRow& row : out) row.values.resize(columns_.size(), 0.0);
  return out;
}

size_t TimeSeriesSampler::RowCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

std::string TimeSeriesSampler::ToCsv() const {
  const std::vector<std::string> columns = ColumnNames();
  const std::vector<TimeSeriesRow> rows = Rows();
  std::ostringstream os;
  os << "t_ns";
  for (const std::string& name : columns) os << "," << name;
  os << "\n";
  for (const TimeSeriesRow& row : rows) {
    os << row.t_ns;
    for (double v : row.values) os << "," << FormatDouble(v);
    os << "\n";
  }
  return os.str();
}

std::string TimeSeriesSampler::ToJson() const {
  const std::vector<std::string> columns = ColumnNames();
  const std::vector<TimeSeriesRow> rows = Rows();
  std::ostringstream os;
  os << "{\n  \"columns\": [";
  for (size_t i = 0; i < columns.size(); ++i) {
    os << (i ? ", " : "") << "\"" << columns[i] << "\"";
  }
  os << "],\n  \"rows\": [";
  for (size_t r = 0; r < rows.size(); ++r) {
    os << (r ? "," : "") << "\n    {\"t_ns\": " << rows[r].t_ns
       << ", \"values\": [";
    for (size_t i = 0; i < rows[r].values.size(); ++i) {
      os << (i ? ", " : "") << FormatDouble(rows[r].values[i]);
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Status TimeSeriesSampler::WriteFiles(const std::string& dir) const {
  std::string target = dir;
  if (target.empty()) target = EnvStr("DPDP_METRICS_DIR", "");
  if (target.empty()) return Status::OK();
  Status written =
      internal::WriteFileStaged(target + "/timeseries.csv", ToCsv());
  if (!written.ok()) return written;
  return internal::WriteFileStaged(target + "/timeseries.json", ToJson());
}

}  // namespace dpdp::obs
