#ifndef DPDP_OBS_TIMESERIES_H_
#define DPDP_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace dpdp::obs {

/// One sampled row: a timestamp plus one value per column, parallel to
/// TimeSeriesSampler::ColumnNames(). Rows sampled before a column first
/// appeared are padded with 0 at export.
struct TimeSeriesRow {
  int64_t t_ns = 0;
  std::vector<double> values;
};

/// Background sampler turning the cumulative MetricsRegistry into a
/// bounded time series: every DPDP_OBS_SAMPLE_MS it snapshots the global
/// registry and appends one DELTA row to a fixed-size ring (oldest rows
/// evicted), so memory is constant no matter how long the process runs.
///
/// Column semantics per metric kind:
///   counter    -> one column  `<name>`        = increase since last sample
///   gauge      -> one column  `<name>`        = instantaneous value
///   histogram  -> two columns `<name>.count`  = new samples since last row
///                             `<name>.sum`    = their summed value
///
/// Deltas (not running totals) are what plots want: a column IS the rate
/// numerator for its sampling window. Columns appear when their metric is
/// first seen and keep their position afterwards.
///
/// Thread-safety: Start/Stop manage one background thread; SampleOnce is
/// the same code path callable deterministically from tests (and is safe
/// concurrently with the thread — rows append under one mutex).
class TimeSeriesSampler {
 public:
  struct Options {
    /// Sampling period. <= 0 disables the background thread (SampleOnce
    /// still works). Initialized from DPDP_OBS_SAMPLE_MS by FromEnv.
    int sample_interval_ms = 250;
    /// Ring capacity in rows. 512 rows at 250 ms ≈ the last 2 minutes.
    int capacity = 512;
  };

  /// Options from the environment: DPDP_OBS_SAMPLE_MS (default 0 =
  /// sampling off — telemetry knobs all default off) and
  /// DPDP_OBS_SAMPLE_ROWS (default 512).
  static Options FromEnv();

  TimeSeriesSampler();  ///< Default options.
  explicit TimeSeriesSampler(Options options);
  ~TimeSeriesSampler();  ///< Stops the background thread if running.

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Launches the sampling thread (no-op when already running or when
  /// sample_interval_ms <= 0). Takes one sample immediately so short runs
  /// still export at least one row.
  void Start();

  /// Stops and joins the thread, taking one final sample first so the tail
  /// of the run is never lost to interval truncation.
  void Stop();

  /// Takes one sample right now (test hook; also the thread's body).
  void SampleOnce();

  /// Column names in stable first-seen order.
  std::vector<std::string> ColumnNames() const;

  /// Rows oldest-first, each padded to ColumnNames().size().
  std::vector<TimeSeriesRow> Rows() const;

  size_t RowCount() const;

  /// CSV: header `t_ns,<col>,...`; one line per row, deltas as %.9g.
  std::string ToCsv() const;

  /// JSON: {"columns": [...], "rows": [{"t_ns": N, "values": [...]}, ...]}.
  std::string ToJson() const;

  /// Writes timeseries.csv + timeseries.json under `dir` (empty: falls
  /// back to DPDP_METRICS_DIR; unset too -> no-op OK) through the shared
  /// obs flush mutex with .tmp-then-rename staging.
  Status WriteFiles(const std::string& dir = "") const;

 private:
  void ThreadBody();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;   ///< Thread launched and not yet stopped.
  bool stopping_ = false;  ///< Tells the thread to exit its wait.
  std::thread thread_;
  std::vector<std::string> columns_;
  std::unordered_map<std::string, size_t> column_index_;
  /// Previous absolute values per column, for delta computation.
  std::unordered_map<std::string, double> prev_;
  std::deque<TimeSeriesRow> rows_;
};

}  // namespace dpdp::obs

#endif  // DPDP_OBS_TIMESERIES_H_
