#ifndef DPDP_OBS_TRACE_H_
#define DPDP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/timer.h"

namespace dpdp::obs {

namespace internal {
/// Global on/off switch, initialized from DPDP_TRACE. Extern so the
/// TraceSpan constructor inlines to a single relaxed load + branch when
/// tracing is disabled (< 2 ns, see bench/micro_components.cc).
extern std::atomic<bool> g_trace_enabled;

/// Appends one complete span to the calling thread's buffer.
void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns);
}  // namespace internal

/// True when span recording is active.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of the DPDP_TRACE switch (tests, demos).
void SetTraceEnabled(bool enabled);

/// Request-scoped trace identity, carried by a decision request across
/// every hop of the serving fabric (route, queue, reroute, requeue after a
/// crash, eval, commit, reply). Two plain u64s so embedding it in a
/// request struct costs nothing; trace_id == 0 means "tracing was off when
/// the request was born" and every downstream recording call is a no-op
/// branch. span_id is the id of the most recently recorded hop — the
/// parent the next hop links to.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// Allocates a fresh root context (process-unique nonzero trace id, no
/// parent span) when tracing is enabled. When disabled, returns the
/// inactive {0, 0} context after one relaxed load — the whole per-request
/// cost of the tracing plumbing in the default configuration.
TraceContext NewTraceContext();

/// Where a hop sits in its request's flow lane. The Chrome trace flow
/// chain is s -> t -> ... -> t -> f under one flow id (the trace id), so a
/// request's hops render as one connected arrow sequence across service
/// threads in Perfetto / chrome://tracing.
enum class FlowPhase {
  kNone = 0,   ///< Plain child span, no flow arrow.
  kStart = 1,  ///< First hop of the request (the route/submit hop).
  kStep = 2,   ///< Intermediate hop (queue, eval, commit, requeue, ...).
  kEnd = 3,    ///< Terminal hop (reply released, shed, or triaged).
};

/// Records one completed request hop [start_ns, end_ns) named `name`
/// (string literal) into the calling thread's buffer, parent-linked under
/// `trace` and flow-tagged with `phase`. Returns the context the NEXT hop
/// should use (same trace id, this hop's span id as parent). Inactive
/// contexts pass straight through: one branch, nothing recorded.
TraceContext RecordHop(const char* name, const TraceContext& trace,
                       int64_t start_ns, int64_t end_ns, FlowPhase phase);

/// RAII span: records [construction, destruction) of the enclosing scope
/// into the calling thread's buffer under `name`. `name` must outlive the
/// span (string literals). When tracing is disabled the whole object is
/// one branch on a relaxed atomic.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ns_ = MonotonicNanos();
    }
  }

  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, MonotonicNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

/// Number of spans currently buffered across all threads (tests).
size_t BufferedSpanCount();

/// Drains every thread's span buffer into a Chrome trace-event JSON file
/// ("traceEvents" array of "ph":"X" complete events plus "s"/"t"/"f" flow
/// events linking request hops, timestamps in microseconds) loadable in
/// Perfetto / chrome://tracing. Empty `path` falls back to
/// DPDP_TRACE_FILE, then <DPDP_METRICS_DIR>/trace.json, then
/// ./dpdp_trace.json. Buffered spans are consumed by the write. The file
/// is staged to `<path>.tmp` and renamed under the shared obs flush mutex,
/// so a concurrent flight-recorder dump or metrics flush can never
/// interleave into a torn JSON file.
Status WriteTraceFile(const std::string& path = "");

/// Discards all buffered spans without writing (tests).
void DiscardTrace();

}  // namespace dpdp::obs

/// Names a traced scope:  DPDP_TRACE_SPAN("sim.decision");
#define DPDP_TRACE_SPAN(name)                            \
  ::dpdp::obs::TraceSpan DPDP_TRACE_CONCAT_(dpdp_trace_span_, \
                                            __LINE__)(name)
#define DPDP_TRACE_CONCAT_(a, b) DPDP_TRACE_CONCAT2_(a, b)
#define DPDP_TRACE_CONCAT2_(a, b) a##b

#endif  // DPDP_OBS_TRACE_H_
