#ifndef DPDP_OBS_TRACE_H_
#define DPDP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/timer.h"

namespace dpdp::obs {

namespace internal {
/// Global on/off switch, initialized from DPDP_TRACE. Extern so the
/// TraceSpan constructor inlines to a single relaxed load + branch when
/// tracing is disabled (< 2 ns, see bench/micro_components.cc).
extern std::atomic<bool> g_trace_enabled;

/// Appends one complete span to the calling thread's buffer.
void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns);
}  // namespace internal

/// True when span recording is active.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of the DPDP_TRACE switch (tests, demos).
void SetTraceEnabled(bool enabled);

/// RAII span: records [construction, destruction) of the enclosing scope
/// into the calling thread's buffer under `name`. `name` must outlive the
/// span (string literals). When tracing is disabled the whole object is
/// one branch on a relaxed atomic.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ns_ = MonotonicNanos();
    }
  }

  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, MonotonicNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

/// Number of spans currently buffered across all threads (tests).
size_t BufferedSpanCount();

/// Drains every thread's span buffer into a Chrome trace-event JSON file
/// ("traceEvents" array of "ph":"X" complete events, timestamps in
/// microseconds) loadable in Perfetto / chrome://tracing. Empty `path`
/// falls back to DPDP_TRACE_FILE, then <DPDP_METRICS_DIR>/trace.json,
/// then ./dpdp_trace.json. Buffered spans are consumed by the write.
Status WriteTraceFile(const std::string& path = "");

/// Discards all buffered spans without writing (tests).
void DiscardTrace();

}  // namespace dpdp::obs

/// Names a traced scope:  DPDP_TRACE_SPAN("sim.decision");
#define DPDP_TRACE_SPAN(name)                            \
  ::dpdp::obs::TraceSpan DPDP_TRACE_CONCAT_(dpdp_trace_span_, \
                                            __LINE__)(name)
#define DPDP_TRACE_CONCAT_(a, b) DPDP_TRACE_CONCAT2_(a, b)
#define DPDP_TRACE_CONCAT2_(a, b) a##b

#endif  // DPDP_OBS_TRACE_H_
