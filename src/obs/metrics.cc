#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "util/env.h"

namespace dpdp::obs {
namespace internal {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

int ThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::mutex& ExportMutex() {
  static std::mutex* mu = new std::mutex;  // Leaked: atexit-flush safe.
  return *mu;
}

Status WriteFileStaged(const std::string& path, const std::string& contents) {
  std::lock_guard<std::mutex> lock(ExportMutex());
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
    if (ec) {
      return Status::Internal("cannot create dir for " + path + ": " +
                              ec.message());
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Status::Internal("cannot open " + tmp + " for writing");
    os << contents;
    if (!os) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace internal

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  DPDP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  shards_.reserve(kMetricShards);
  for (int i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Record(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = *shards_[internal::ThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&shard.sum, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& s : shards_) {
    total += s->sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += s->buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>;
    for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
      b->push_back(decade);
      b->push_back(2.0 * decade);
      b->push_back(5.0 * decade);
    }
    b->push_back(10.0);
    return b;
  }();
  return *bounds;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented code may run during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(name, bounds);
  } else {
    DPDP_CHECK(slot->bounds() == bounds);
  }
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [name, c] : impl_->counters) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kCounter;
      m.value = static_cast<double>(c->Value());
      m.count = c->Value();
      out.push_back(std::move(m));
    }
    for (const auto& [name, g] : impl_->gauges) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kGauge;
      m.value = g->Value();
      out.push_back(std::move(m));
    }
    for (const auto& [name, h] : impl_->histograms) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kHistogram;
      m.count = h->Count();
      m.sum = h->Sum();
      m.value = m.count > 0 ? m.sum / static_cast<double>(m.count) : 0.0;
      m.bounds = h->bounds();
      m.buckets = h->BucketCounts();
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

const char* KindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double HistogramQuantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.kind != MetricSnapshot::Kind::kHistogram ||
      snapshot.count == 0 || snapshot.buckets.empty()) {
    return 0.0;
  }
  // A boundless histogram (only the overflow bucket) carries no positional
  // information beyond its running sum, so the mean is the only defensible
  // estimate for any q. Also the clamp target when every sample landed in
  // overflow: the mean is then at least the last bound, where plain
  // clamping would systematically under-report.
  const double mean = snapshot.sum / static_cast<double>(snapshot.count);
  if (snapshot.bounds.empty()) return mean;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // q = 0 lands on the first non-empty bucket's lower edge: empty buckets
  // are skipped below without advancing the cumulative rank, so rank 0
  // resolves to the smallest sample's bucket, not to bucket 0.
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(snapshot.buckets[i]);
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= snapshot.bounds.size()) break;  // Overflow: clamp below.
    const double lo = i == 0 ? 0.0 : snapshot.bounds[i - 1];
    const double hi = snapshot.bounds[i];
    const double frac = (target - cumulative) / in_bucket;
    return lo + frac * (hi - lo);
  }
  // The target rank lives in the overflow bucket: clamp to the last bound
  // (never below it — the mean can exceed it when overflow mass is heavy).
  return std::max(snapshot.bounds.back(), mean);
}

std::string SnapshotToCsv(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  os << "name,kind,value,count,sum,buckets\n";
  for (const MetricSnapshot& m : snapshot) {
    os << m.name << "," << KindName(m.kind) << "," << FormatDouble(m.value)
       << "," << m.count << "," << FormatDouble(m.sum) << ",";
    for (size_t b = 0; b < m.buckets.size(); ++b) {
      if (b) os << ";";
      os << "le"
         << (b < m.bounds.size() ? FormatDouble(m.bounds[b])
                                 : std::string("inf"))
         << ":" << m.buckets[b];
    }
    os << "\n";
  }
  return os.str();
}

std::string SnapshotToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  os << "{\n";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& m = snapshot[i];
    os << "  \"" << m.name << "\": {\"kind\": \"" << KindName(m.kind)
       << "\", \"value\": " << FormatDouble(m.value);
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      os << ", \"count\": " << m.count
         << ", \"sum\": " << FormatDouble(m.sum) << ", \"buckets\": [";
      for (size_t b = 0; b < m.buckets.size(); ++b) {
        if (b) os << ", ";
        os << "{\"le\": "
           << (b < m.bounds.size() ? FormatDouble(m.bounds[b])
                                   : std::string("\"inf\""))
           << ", \"count\": " << m.buckets[b] << "}";
      }
      os << "]";
    }
    os << "}" << (i + 1 < snapshot.size() ? "," : "") << "\n";
  }
  os << "}\n";
  return os.str();
}

Status WriteMetricsFiles(const std::string& dir) {
  std::string target = dir;
  if (target.empty()) target = EnvStr("DPDP_METRICS_DIR", "");
  if (target.empty()) return Status::OK();
  const std::vector<MetricSnapshot> snapshot =
      MetricsRegistry::Global().Snapshot();
  const struct {
    const char* file;
    std::string contents;
  } outputs[] = {
      {"metrics_snapshot.csv", SnapshotToCsv(snapshot)},
      {"metrics_snapshot.json", SnapshotToJson(snapshot)},
  };
  for (const auto& out : outputs) {
    const Status written =
        internal::WriteFileStaged(target + "/" + out.file, out.contents);
    if (!written.ok()) return written;
  }
  return Status::OK();
}

}  // namespace dpdp::obs
