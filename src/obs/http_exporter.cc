#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "util/env.h"

namespace dpdp::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool LegalChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Splits "serve.shard<k>.rest" into family "serve.rest" + shard label k.
/// Returns -1 (no label) for every other shape.
int ExtractShardLabel(const std::string& name, std::string* family) {
  const size_t at = name.find(".shard");
  if (at == std::string::npos) return -1;
  size_t digits = at + 6;  // Past ".shard".
  size_t end = digits;
  while (end < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[end]))) {
    ++end;
  }
  if (end == digits || end >= name.size() || name[end] != '.') return -1;
  *family = name.substr(0, at) + name.substr(end);
  return std::stoi(name.substr(digits, end - digits));
}

/// One exposition series: the snapshot plus its rendered label set.
struct Series {
  std::string labels;  ///< Either "" or `shard="3"`.
  int shard = -1;
  const MetricSnapshot* metric = nullptr;
};

std::string LabeledName(const std::string& prom_name,
                        const std::string& suffix,
                        const std::string& labels,
                        const std::string& extra = "") {
  std::string out = prom_name + suffix;
  if (labels.empty() && extra.empty()) return out;
  out += "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (char c : name) out += LegalChar(c) ? c : '_';
  return out;
}

std::string PrometheusFromSnapshot(
    const std::vector<MetricSnapshot>& snapshot) {
  // Group by family so each "# TYPE" header is emitted exactly once even
  // though per-shard series are alphabetically scattered in the snapshot.
  std::map<std::string, std::vector<Series>> families;
  for (const MetricSnapshot& m : snapshot) {
    Series series;
    series.metric = &m;
    std::string family;
    series.shard = ExtractShardLabel(m.name, &family);
    if (series.shard < 0) {
      family = m.name;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "shard=\"%d\"", series.shard);
      series.labels = buf;
    }
    families[SanitizeMetricName(family)].push_back(series);
  }

  std::ostringstream os;
  for (auto& [prom_name, series_list] : families) {
    std::sort(series_list.begin(), series_list.end(),
              [](const Series& a, const Series& b) {
                return a.shard < b.shard;
              });
    const MetricSnapshot& first = *series_list.front().metric;
    const char* type = first.kind == MetricSnapshot::Kind::kCounter
                           ? "counter"
                           : (first.kind == MetricSnapshot::Kind::kGauge
                                  ? "gauge"
                                  : "histogram");
    os << "# TYPE " << prom_name << " " << type << "\n";
    for (const Series& series : series_list) {
      const MetricSnapshot& m = *series.metric;
      switch (m.kind) {
        case MetricSnapshot::Kind::kCounter:
        case MetricSnapshot::Kind::kGauge:
          os << LabeledName(prom_name, "", series.labels) << " "
             << FormatDouble(m.value) << "\n";
          break;
        case MetricSnapshot::Kind::kHistogram: {
          uint64_t cumulative = 0;
          for (size_t b = 0; b < m.buckets.size(); ++b) {
            cumulative += m.buckets[b];
            const std::string le =
                b < m.bounds.size()
                    ? "le=\"" + FormatDouble(m.bounds[b]) + "\""
                    : std::string("le=\"+Inf\"");
            os << LabeledName(prom_name, "_bucket", series.labels, le)
               << " " << cumulative << "\n";
          }
          os << LabeledName(prom_name, "_sum", series.labels) << " "
             << FormatDouble(m.sum) << "\n";
          os << LabeledName(prom_name, "_count", series.labels) << " "
             << m.count << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

HttpExporter::HttpExporter(int port) : configured_port_(port) {
  if (configured_port_ < 0) {
    configured_port_ = EnvInt("DPDP_OBS_HTTP_PORT", -1);
  }
  endpoints_["/metrics"] = [] {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        PrometheusFromSnapshot(MetricsRegistry::Global().Snapshot());
    return response;
  };
  endpoints_["/healthz"] = [] {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  };
}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  if (configured_port_ < 0 || running()) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("obs exporter: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(configured_port_));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("obs exporter: cannot bind 127.0.0.1:" +
                            std::to_string(configured_port_));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpExporter::AcceptLoop, this);
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_.store(-1, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void HttpExporter::AddEndpoint(const std::string& path,
                               std::function<HttpResponse()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[path] = std::move(fn);
}

HttpResponse HttpExporter::HandlePath(const std::string& path) const {
  // Strip the query string: scrapers add ?format= style noise.
  const size_t query = path.find('?');
  const std::string clean =
      query == std::string::npos ? path : path.substr(0, query);
  std::function<HttpResponse()> handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = endpoints_.find(clean);
    if (it != endpoints_.end()) handler = it->second;
  }
  if (!handler) {
    HttpResponse response;
    response.status = 404;
    response.body = "not found: " + clean + "\n";
    return response;
  }
  return handler();
}

int HttpExporter::ParseRequestPath(const std::string& head,
                                   std::string* path) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return 400;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return 400;
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return 400;
  if (method != "GET") return 405;
  *path = target;
  return 0;
}

void HttpExporter::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check the stop flag.
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    ServeConnection(client);
    ::close(client);
  }
}

void HttpExporter::ServeConnection(int fd) {
  // Read until the end of the request head, tolerating partial reads. A
  // short per-connection deadline (~2 s total) bounds stuck clients.
  std::string head;
  char buf[1024];
  for (int spins = 0; spins < 20; ++spins) {
    if (head.find("\r\n\r\n") != std::string::npos) break;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, /*timeout_ms=*/100) <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.size() > 16384) break;  // Absurd head: reject below.
  }

  std::string path;
  const int parse_error = ParseRequestPath(head, &path);
  HttpResponse response;
  if (head.find("\r\n\r\n") == std::string::npos) {
    response.status = 400;
    response.body = "incomplete request\n";
  } else if (parse_error != 0) {
    response.status = parse_error;
    response.body =
        parse_error == 405 ? "method not allowed\n" : "bad request\n";
  } else {
    response = HandlePath(path);
  }

  const char* reason = response.status == 200
                           ? "OK"
                           : (response.status == 404
                                  ? "Not Found"
                                  : (response.status == 405
                                         ? "Method Not Allowed"
                                         : "Bad Request"));
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << " " << reason << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  const std::string wire = os.str();
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace dpdp::obs
