#ifndef DPDP_OBS_TELEMETRY_H_
#define DPDP_OBS_TELEMETRY_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/http_exporter.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace dpdp::obs {

/// One-stop wiring of the live telemetry plane: the time-series sampler,
/// the SLO monitor, and the HTTP exporter, each driven by its own
/// environment knobs and each individually optional. Demos construct one
/// of these from the environment, Start() it before load, Stop() it after
/// — with every knob at its default the whole object is inert (no
/// threads, no socket, no files).
///
///   DPDP_OBS_SAMPLE_MS   > 0 starts the sampler (timeseries.csv/json on
///                        Stop when DPDP_METRICS_DIR is set)
///   DPDP_SLO_*           any objective >= 0 starts the SLO tick thread
///   DPDP_OBS_HTTP_PORT   >= 0 binds the exporter (0 = ephemeral) and
///                        registers /slo + /timeseries next to the
///                        built-in /metrics + /healthz
///
/// The SLO monitor is single-threaded by contract; Telemetry serializes
/// the tick thread and the /slo endpoint behind one mutex.
class Telemetry {
 public:
  struct Options {
    TimeSeriesSampler::Options sampler;
    SloConfig slo;
    int http_port = -1;  ///< < 0 = exporter disabled.
  };

  /// All knobs from the environment (see class comment).
  static Options FromEnv();

  explicit Telemetry(Options options);
  ~Telemetry();  ///< Stops everything still running.

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Starts whichever components are enabled. Idempotent.
  void Start();

  /// Stops the SLO tick thread (after one final window evaluation), the
  /// sampler (final sample + timeseries file export), and the exporter.
  /// Idempotent.
  void Stop();

  TimeSeriesSampler& sampler() { return sampler_; }
  HttpExporter& exporter() { return exporter_; }

  /// Thread-safe view of the SLO monitor's JSON (the /slo endpoint body).
  std::string SloJson() const;

  /// Thread-safe SLO totals (tests / demo summaries).
  uint64_t SloWindows() const;
  uint64_t SloBreaches() const;

 private:
  void SloLoop();

  Options options_;
  TimeSeriesSampler sampler_;
  HttpExporter exporter_;

  mutable std::mutex slo_mu_;  ///< Serializes monitor_ ticks and reads.
  SloMonitor monitor_;
  std::condition_variable slo_cv_;
  bool slo_stopping_ = false;
  std::thread slo_thread_;
  bool started_ = false;
};

}  // namespace dpdp::obs

#endif  // DPDP_OBS_TELEMETRY_H_
