#ifndef DPDP_OBS_FLIGHT_RECORDER_H_
#define DPDP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpdp::obs {

/// What happened, in one word. The flight recorder keeps the LAST few
/// hundred of these per thread — the black box a post-mortem replays after
/// the fabric declares a shard dead or an SLO burns through its budget.
enum class FlightEventKind {
  kPublish = 0,     ///< Model snapshot published (arg0 = seq).
  kQuarantine = 1,  ///< Checkpoint quarantined / rejected.
  kCrash = 2,       ///< Service loop crashed (arg0 = shard tick).
  kRestart = 3,     ///< Supervised restart (arg0 = orphans rerouted).
  kReroute = 4,     ///< Partition failed over (arg0 = stand-in shard).
  kRestore = 5,     ///< Partition restored to its home shard.
  kBreaker = 6,     ///< Breaker state change (arg0 = new BreakerState).
  kSloBreach = 7,   ///< SLO objective breached (arg0 = objective index).
  kShed = 8,        ///< Load shed burst marker.
  kCustom = 9,      ///< Anything else; `name` carries the label.
};

const char* FlightEventKindName(FlightEventKind kind);

/// One recorded event. `name` must be a string literal (stored by
/// pointer, like trace span names); shard is -1 when not shard-scoped.
struct FlightEvent {
  int64_t t_ns = 0;
  FlightEventKind kind = FlightEventKind::kCustom;
  const char* name = "";
  int shard = -1;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

namespace internal {
extern std::atomic<bool> g_flight_enabled;
void RecordFlightEvent(const FlightEvent& event);
}  // namespace internal

/// True when the flight recorder is armed (DPDP_FLIGHT_RECORDER=1 or
/// SetFlightRecorderEnabled). Disabled recording is one relaxed load.
inline bool FlightRecorderEnabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of the DPDP_FLIGHT_RECORDER switch.
void SetFlightRecorderEnabled(bool enabled);

/// Records one structured event into the calling thread's lock-free ring
/// (oldest events overwritten once the ring wraps). Wait-free for the
/// writer: each ring slot is a seqlock of relaxed atomics, so concurrent
/// dumps never block recording and TSan sees no races. No-op (one branch)
/// when the recorder is disabled.
inline void RecordFlight(FlightEventKind kind, const char* name,
                         int shard = -1, uint64_t arg0 = 0,
                         uint64_t arg1 = 0) {
  if (!FlightRecorderEnabled()) return;
  FlightEvent event;
  event.kind = kind;
  event.name = name;
  event.shard = shard;
  event.arg0 = arg0;
  event.arg1 = arg1;
  internal::RecordFlightEvent(event);
}

/// Events per per-thread ring. Small on purpose: the recorder answers
/// "what happened in the last seconds before the incident", not "what
/// happened today" (that is the trace / timeseries job).
inline constexpr int kFlightRingCapacity = 256;

/// Point-in-time copy of every thread's ring, oldest first. Slots being
/// concurrently overwritten are skipped (seqlock retry, then give up) —
/// a dump is a best-effort forensic artifact, never a synchronization
/// point. Events are NOT consumed: successive dumps overlap.
std::vector<FlightEvent> SnapshotFlightEvents();

/// Serializes a snapshot to a JSON object: {"reason": ..., "dumped_at_ns":
/// ..., "events": [{t_ns, kind, name, shard, arg0, arg1}, ...]}.
std::string FlightEventsToJson(const std::vector<FlightEvent>& events,
                               const std::string& reason, int64_t now_ns);

/// Dumps the current rings to `path` (empty: DPDP_FLIGHT_RECORDER_FILE,
/// then <DPDP_METRICS_DIR>/flight_recorder.json, then
/// ./flight_recorder.json) through the shared obs flush mutex with
/// .tmp-then-rename staging — safe against a concurrent trace/metrics
/// flush even on the crash path. `reason` lands in the JSON header.
Status DumpFlightRecorder(const std::string& reason,
                          const std::string& path = "");

/// Auto-dump hook for the fabric: when the recorder is armed, dumps with
/// `reason` and counts obs.flight_dumps; otherwise does nothing. Called by
/// the ShardSupervisor when it declares a shard dead and by the SloMonitor
/// when an objective first breaches.
void FlightRecorderAutoDump(const char* reason);

/// Lifetime auto-dumps actually written (tests / CI assertions).
uint64_t FlightRecorderDumps();

/// Clears every live ring and the retired list (tests).
void ResetFlightRecorder();

}  // namespace dpdp::obs

#endif  // DPDP_OBS_FLIGHT_RECORDER_H_
