#ifndef DPDP_OBS_SLO_H_
#define DPDP_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dpdp::obs {

/// Service-level objectives evaluated once per sampling window against the
/// global MetricsRegistry. An objective with a negative bound is disabled.
/// Metric names are configurable so tests can point the monitor at
/// synthetic counters and golden-check the window math.
struct SloConfig {
  /// Evaluation window. Each window is judged good or breached as a whole
  /// (the SRE "bad window" model), so budget math is a windows ratio.
  int window_ms = 1000;

  /// p99 bound (seconds) on `latency_metric` within the window. < 0 off.
  double p99_latency_s = -1.0;
  /// Max shed fraction: shed / requests within the window. < 0 off.
  double max_shed_rate = -1.0;
  /// Max deadline-exceeded fraction within the window. < 0 off.
  double max_deadline_rate = -1.0;

  /// Error budget: allowed fraction of breached windows. Burn rate 1.0
  /// means the service is breaching exactly as fast as the budget allows;
  /// > 1.0 means the budget is burning down.
  double error_budget = 0.01;

  /// Metric names the objectives read. Defaults match the serving layer.
  std::string latency_metric = "serve.request_latency_s";
  std::string requests_metric = "serve.requests";
  std::string shed_metric = "serve.shed";
  std::string deadline_metric = "serve.deadline_exceeded";
};

/// SloConfig from the environment: DPDP_SLO_WINDOW_MS, DPDP_SLO_P99_S,
/// DPDP_SLO_MAX_SHED_RATE, DPDP_SLO_MAX_DEADLINE_RATE, DPDP_SLO_BUDGET.
/// With none of the bound variables set, every objective stays disabled.
SloConfig SloConfigFromEnv();

/// One evaluated window.
struct SloWindowReport {
  int64_t window_start_ns = 0;
  int64_t window_end_ns = 0;
  uint64_t requests = 0;           ///< Window delta of requests_metric.
  uint64_t shed = 0;               ///< Window delta of shed_metric.
  uint64_t deadline_exceeded = 0;  ///< Window delta of deadline_metric.
  uint64_t latency_count = 0;      ///< Latency samples in the window.
  double p99_s = 0.0;              ///< p99 of the window's samples.
  double shed_rate = 0.0;
  double deadline_rate = 0.0;
  bool latency_breach = false;
  bool shed_breach = false;
  bool deadline_breach = false;

  bool breached() const {
    return latency_breach || shed_breach || deadline_breach;
  }
};

/// Config-driven SLO monitor. Clock-injected like the circuit breaker: it
/// owns no clock and no thread — every evaluation is a pure function of
/// the injected timestamps and the registry's state, so tests drive it
/// with synthetic nanos and golden-check the window math.
///
/// Per evaluated window it computes metric deltas (counters and latency
/// histogram buckets vs. the previous window), judges each enabled
/// objective, bumps the slo.* counters (slo.windows, slo.breaches,
/// slo.latency_breaches, slo.shed_breaches, slo.deadline_breaches), and
/// updates the slo.budget_burn gauge: breached_windows / (error_budget *
/// total_windows), i.e. 1.0 = burning exactly at budget. On a good ->
/// breached edge it records a flight-recorder event and triggers
/// FlightRecorderAutoDump("slo_breach") (no-op unless the recorder is
/// armed).
///
/// Not thread-safe: owned and ticked by one thread (the Telemetry
/// sampler's thread in the demos, the test body in tests).
class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig& config);

  /// True when at least one objective is enabled. A disabled monitor's
  /// TickAt is a single comparison.
  bool enabled() const { return enabled_; }

  /// Advances to `now_ns`: evaluates one window per elapsed window_ms
  /// period since the last evaluation (catching up at most a handful at
  /// once; long gaps collapse into one window ending at `now_ns`). The
  /// first call only anchors the window origin.
  void TickAt(int64_t now_ns);

  /// Evaluates one window [last_eval_ns, now_ns) right now, regardless of
  /// window boundaries (test hook; also TickAt's body). Returns the
  /// report of the evaluated window.
  SloWindowReport EvaluateWindowAt(int64_t now_ns);

  /// Most recent windows, oldest first (bounded ring of 128).
  std::vector<SloWindowReport> History() const;

  uint64_t windows() const { return windows_; }
  uint64_t breaches() const { return breached_windows_; }
  /// breached / (budget * total) — see class comment. 0 until a window
  /// has been evaluated.
  double BudgetBurn() const;

  /// JSON for the /slo endpoint: config, totals, budget burn, and the
  /// recent window reports.
  std::string ToJson() const;

  const SloConfig& config() const { return config_; }

 private:
  const SloConfig config_;
  const bool enabled_;
  bool anchored_ = false;
  int64_t last_eval_ns_ = 0;
  bool was_breached_ = false;  ///< Previous window state, for edge dumps.
  uint64_t windows_ = 0;
  uint64_t breached_windows_ = 0;

  /// Previous absolute counter values / latency bucket totals.
  double prev_requests_ = 0.0;
  double prev_shed_ = 0.0;
  double prev_deadline_ = 0.0;
  uint64_t prev_latency_count_ = 0;
  std::vector<uint64_t> prev_latency_buckets_;

  std::deque<SloWindowReport> history_;

  /// slo.* registry handles (null until first evaluation).
  Counter* windows_counter_ = nullptr;
  Counter* breaches_counter_ = nullptr;
  Counter* latency_breaches_ = nullptr;
  Counter* shed_breaches_ = nullptr;
  Counter* deadline_breaches_ = nullptr;
  Gauge* budget_burn_gauge_ = nullptr;
};

}  // namespace dpdp::obs

#endif  // DPDP_OBS_SLO_H_
