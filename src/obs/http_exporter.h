#ifndef DPDP_OBS_HTTP_EXPORTER_H_
#define DPDP_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace dpdp::obs {

/// Rewrites `name` into a legal Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes '_' (so "serve.queue_wait_s" ->
/// "serve_queue_wait_s"), and a leading digit gets a '_' prefix.
std::string SanitizeMetricName(const std::string& name);

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): one "# TYPE" line per family, counters/gauges as
/// single samples, histograms as cumulative `_bucket{le="..."}` series
/// plus `+Inf`, `_sum`, and `_count`. Per-shard serving metrics
/// ("serve.shard<k>.requests") collapse into their aggregate family with a
/// shard label: serve_requests{shard="3"} — so one PromQL selector sums
/// the shards and the unlabeled aggregate series stays comparable next to
/// them. Families are emitted in sorted-name order; series in a family
/// sorted by label.
std::string PrometheusFromSnapshot(
    const std::vector<MetricSnapshot>& snapshot);

/// A response an endpoint handler produces.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal single-threaded HTTP/1.1 exporter for scrapes. One background
/// thread accepts loopback connections and serves one GET per connection
/// (Connection: close), which is all Prometheus, curl, and the CI smoke
/// job need — this is a diagnostics port, not a web server.
///
/// Built-in endpoints: /metrics (Prometheus exposition of the global
/// registry) and /healthz ("ok"). AddEndpoint registers or replaces a
/// path with a custom handler — the serving demos plug in a
/// supervisor-backed /healthz and the Telemetry facade adds /slo and
/// /timeseries, keeping obs free of any dependency on the serve layer.
///
/// Unknown paths get 404, non-GET methods 405, malformed request lines
/// 400. Requests are read robustly across partial reads (headers split
/// over many TCP segments) with a per-connection deadline so a stuck
/// client cannot wedge the exporter.
class HttpExporter {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port() — tests);
  /// < 0 reads DPDP_OBS_HTTP_PORT (default -1 = exporter disabled,
  /// Start() is a no-op returning OK).
  explicit HttpExporter(int port = -1);
  ~HttpExporter();  ///< Stops the thread and closes the socket.

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:<port> and launches the accept thread. No-op OK when
  /// disabled (port < 0) or already running.
  Status Start();

  /// Stops the accept thread and closes the listener. Idempotent.
  void Stop();

  /// True between a successful Start and Stop.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves ephemeral port 0), or -1 when not running.
  int port() const { return bound_port_.load(std::memory_order_acquire); }

  /// Registers (or replaces) the handler for `path` (exact match, query
  /// strings stripped before lookup). Safe while running.
  void AddEndpoint(const std::string& path, std::function<HttpResponse()> fn);

  /// Dispatches one already-parsed GET path through the endpoint table —
  /// the same code the socket path runs (tests hit this directly).
  HttpResponse HandlePath(const std::string& path) const;

  /// Parses an HTTP request head ("GET /metrics HTTP/1.1\r\n...") into
  /// `path`. Returns 0 on success, else the error status code (400 bad
  /// request line, 405 non-GET). Exposed for tests.
  static int ParseRequestPath(const std::string& head, std::string* path);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  int configured_port_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> bound_port_{-1};
  int listen_fd_ = -1;
  std::thread thread_;
  mutable std::mutex mu_;  ///< Guards endpoints_.
  std::map<std::string, std::function<HttpResponse()>> endpoints_;
};

}  // namespace dpdp::obs

#endif  // DPDP_OBS_HTTP_EXPORTER_H_
