#include "obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/flight_recorder.h"
#include "util/env.h"

namespace dpdp::obs {
namespace {

constexpr size_t kHistoryCapacity = 128;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Finds `name` in a sorted-by-name snapshot (the Snapshot() contract).
const MetricSnapshot* Find(const std::vector<MetricSnapshot>& snapshot,
                           const std::string& name) {
  const auto it = std::lower_bound(
      snapshot.begin(), snapshot.end(), name,
      [](const MetricSnapshot& m, const std::string& n) { return m.name < n; });
  if (it == snapshot.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

SloConfig SloConfigFromEnv() {
  SloConfig config;
  config.window_ms = EnvInt("DPDP_SLO_WINDOW_MS", config.window_ms);
  config.p99_latency_s = EnvDouble("DPDP_SLO_P99_S", config.p99_latency_s);
  config.max_shed_rate =
      EnvDouble("DPDP_SLO_MAX_SHED_RATE", config.max_shed_rate);
  config.max_deadline_rate =
      EnvDouble("DPDP_SLO_MAX_DEADLINE_RATE", config.max_deadline_rate);
  config.error_budget = EnvDouble("DPDP_SLO_BUDGET", config.error_budget);
  return config;
}

SloMonitor::SloMonitor(const SloConfig& config)
    : config_(config),
      enabled_(config.p99_latency_s >= 0.0 || config.max_shed_rate >= 0.0 ||
               config.max_deadline_rate >= 0.0) {}

void SloMonitor::TickAt(int64_t now_ns) {
  if (!enabled_) return;
  if (!anchored_) {
    // First tick only anchors: capture the current counter / bucket totals
    // as the delta baselines so the first real window does not absorb
    // everything the process did before the monitor started.
    const std::vector<MetricSnapshot> snapshot =
        MetricsRegistry::Global().Snapshot();
    auto baseline = [&snapshot](const std::string& name, double* prev) {
      const MetricSnapshot* m = Find(snapshot, name);
      *prev = m != nullptr ? m->value : 0.0;
    };
    baseline(config_.requests_metric, &prev_requests_);
    baseline(config_.shed_metric, &prev_shed_);
    baseline(config_.deadline_metric, &prev_deadline_);
    const MetricSnapshot* latency = Find(snapshot, config_.latency_metric);
    if (latency != nullptr &&
        latency->kind == MetricSnapshot::Kind::kHistogram) {
      prev_latency_buckets_ = latency->buckets;
      prev_latency_count_ = latency->count;
    }
    last_eval_ns_ = now_ns;
    anchored_ = true;
    return;
  }
  const int64_t window_ns = static_cast<int64_t>(config_.window_ms) * 1000000;
  if (window_ns <= 0 || now_ns - last_eval_ns_ < window_ns) return;
  (void)EvaluateWindowAt(now_ns);
}

SloWindowReport SloMonitor::EvaluateWindowAt(int64_t now_ns) {
  const std::vector<MetricSnapshot> snapshot =
      MetricsRegistry::Global().Snapshot();

  SloWindowReport report;
  report.window_start_ns = last_eval_ns_;
  report.window_end_ns = now_ns;
  last_eval_ns_ = now_ns;

  auto counter_delta = [&snapshot](const std::string& name, double* prev) {
    const MetricSnapshot* m = Find(snapshot, name);
    const double absolute = m != nullptr ? m->value : *prev;
    const double delta = absolute - *prev;
    *prev = absolute;
    return delta < 0.0 ? 0.0 : delta;
  };
  report.requests = static_cast<uint64_t>(
      counter_delta(config_.requests_metric, &prev_requests_));
  report.shed =
      static_cast<uint64_t>(counter_delta(config_.shed_metric, &prev_shed_));
  report.deadline_exceeded = static_cast<uint64_t>(
      counter_delta(config_.deadline_metric, &prev_deadline_));

  // Window p99: subtract the previous cumulative bucket counts from the
  // current ones and quantile the difference — the histogram of ONLY the
  // samples that arrived inside this window.
  const MetricSnapshot* latency = Find(snapshot, config_.latency_metric);
  if (latency != nullptr &&
      latency->kind == MetricSnapshot::Kind::kHistogram) {
    MetricSnapshot window = *latency;
    if (prev_latency_buckets_.size() == window.buckets.size()) {
      for (size_t i = 0; i < window.buckets.size(); ++i) {
        window.buckets[i] -= prev_latency_buckets_[i];
      }
      window.count -= prev_latency_count_;
    }
    // Window sum is unknowable from cumulative sums alone once deltas can
    // be zero-count; approximate with count-weighted mean which only
    // matters for the overflow-clamp path of HistogramQuantile.
    window.sum = latency->count > 0
                     ? latency->sum / static_cast<double>(latency->count) *
                           static_cast<double>(window.count)
                     : 0.0;
    prev_latency_buckets_ = latency->buckets;
    prev_latency_count_ = latency->count;
    report.latency_count = window.count;
    report.p99_s = HistogramQuantile(window, 0.99);
  }

  const double requests = static_cast<double>(report.requests);
  report.shed_rate =
      requests > 0.0 ? static_cast<double>(report.shed) / requests : 0.0;
  report.deadline_rate =
      requests > 0.0
          ? static_cast<double>(report.deadline_exceeded) / requests
          : 0.0;

  report.latency_breach = config_.p99_latency_s >= 0.0 &&
                          report.latency_count > 0 &&
                          report.p99_s > config_.p99_latency_s;
  report.shed_breach = config_.max_shed_rate >= 0.0 && requests > 0.0 &&
                       report.shed_rate > config_.max_shed_rate;
  report.deadline_breach = config_.max_deadline_rate >= 0.0 &&
                           requests > 0.0 &&
                           report.deadline_rate > config_.max_deadline_rate;

  anchored_ = true;

  if (windows_counter_ == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    windows_counter_ = registry.GetCounter("slo.windows");
    breaches_counter_ = registry.GetCounter("slo.breaches");
    latency_breaches_ = registry.GetCounter("slo.latency_breaches");
    shed_breaches_ = registry.GetCounter("slo.shed_breaches");
    deadline_breaches_ = registry.GetCounter("slo.deadline_breaches");
    budget_burn_gauge_ = registry.GetGauge("slo.budget_burn");
  }
  ++windows_;
  windows_counter_->Add(1);
  if (report.latency_breach) latency_breaches_->Add(1);
  if (report.shed_breach) shed_breaches_->Add(1);
  if (report.deadline_breach) deadline_breaches_->Add(1);
  if (report.breached()) {
    ++breached_windows_;
    breaches_counter_->Add(1);
    if (!was_breached_) {
      // Good -> breached edge: capture the black box exactly once per
      // incident, not once per breached window.
      RecordFlight(FlightEventKind::kSloBreach, "slo.breach", -1,
                   report.latency_breach ? 1 : 0,
                   report.shed_breach ? 1 : (report.deadline_breach ? 2 : 0));
      FlightRecorderAutoDump("slo_breach");
    }
  }
  was_breached_ = report.breached();
  budget_burn_gauge_->Set(BudgetBurn());

  history_.push_back(report);
  while (history_.size() > kHistoryCapacity) history_.pop_front();
  return report;
}

std::vector<SloWindowReport> SloMonitor::History() const {
  return std::vector<SloWindowReport>(history_.begin(), history_.end());
}

double SloMonitor::BudgetBurn() const {
  if (windows_ == 0 || config_.error_budget <= 0.0) return 0.0;
  return static_cast<double>(breached_windows_) /
         (config_.error_budget * static_cast<double>(windows_));
}

std::string SloMonitor::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"config\": {\"window_ms\": " << config_.window_ms
     << ", \"p99_latency_s\": " << FormatDouble(config_.p99_latency_s)
     << ", \"max_shed_rate\": " << FormatDouble(config_.max_shed_rate)
     << ", \"max_deadline_rate\": " << FormatDouble(config_.max_deadline_rate)
     << ", \"error_budget\": " << FormatDouble(config_.error_budget)
     << ", \"latency_metric\": \"" << config_.latency_metric << "\"},\n"
     << "  \"enabled\": " << (enabled_ ? "true" : "false")
     << ",\n  \"windows\": " << windows_
     << ",\n  \"breached_windows\": " << breached_windows_
     << ",\n  \"budget_burn\": " << FormatDouble(BudgetBurn())
     << ",\n  \"recent\": [";
  for (size_t i = 0; i < history_.size(); ++i) {
    const SloWindowReport& w = history_[i];
    os << (i ? "," : "") << "\n    {\"start_ns\": " << w.window_start_ns
       << ", \"end_ns\": " << w.window_end_ns
       << ", \"requests\": " << w.requests << ", \"shed\": " << w.shed
       << ", \"deadline_exceeded\": " << w.deadline_exceeded
       << ", \"p99_s\": " << FormatDouble(w.p99_s)
       << ", \"shed_rate\": " << FormatDouble(w.shed_rate)
       << ", \"deadline_rate\": " << FormatDouble(w.deadline_rate)
       << ", \"breached\": " << (w.breached() ? "true" : "false") << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace dpdp::obs
