#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/env.h"

namespace dpdp::obs {
namespace {

struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;
  int tid = 0;  ///< Stamped by AppendEvent from the owning buffer.
  /// Request-scoped linkage; all zero for plain spans.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  FlowPhase flow = FlowPhase::kNone;
};

/// Per-thread span buffer. The owning thread appends under the buffer's
/// own (uncontended) mutex; the writer thread locks the same mutex to
/// drain, so flushing while other threads keep tracing is safe. On thread
/// exit the remaining events retire into the global list.
struct ThreadBuffer;

struct TraceState {
  std::mutex mu;                       ///< Guards buffers + retired.
  std::vector<ThreadBuffer*> buffers;  ///< Live per-thread buffers.
  std::vector<TraceEvent> retired;     ///< Events from exited threads.
  std::atomic<int> next_tid{0};
};

TraceState& State() {
  static TraceState* state = new TraceState;  // Leaked: see registry note.
  return *state;
}

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid;

  ThreadBuffer() {
    TraceState& state = State();
    tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(this);
  }

  ~ThreadBuffer() {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.erase(
        std::remove(state.buffers.begin(), state.buffers.end(), this),
        state.buffers.end());
    std::lock_guard<std::mutex> self(mu);
    state.retired.insert(state.retired.end(), events.begin(), events.end());
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void AppendEvent(const TraceEvent& event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(event);
  buffer.events.back().tid = buffer.tid;
}

/// Collects (and consumes) every buffered event, sorted by start time.
std::vector<TraceEvent> DrainAll() {
  TraceState& state = State();
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(state.mu);
  all.swap(state.retired);
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> self(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return all;
}

void WriteTraceAtExit() {
  if (TraceEnabled()) (void)WriteTraceFile();
}

bool InitTraceEnabled() {
  const bool enabled = EnvInt("DPDP_TRACE", 0) != 0;
  // Bench/example binaries get a trace file without any explicit flush
  // call; explicit WriteTraceFile calls earlier just leave an empty tail.
  if (enabled) std::atexit(WriteTraceAtExit);
  return enabled;
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

/// Monotone span-id source shared by traces and hops. Starts at 1 so id 0
/// stays the "no trace" sentinel.
std::atomic<uint64_t> g_next_id{1};

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{InitTraceEnabled()};

void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  AppendEvent(event);
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

TraceContext NewTraceContext() {
  if (!TraceEnabled()) return {};
  TraceContext context;
  context.trace_id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  context.span_id = 0;  // Root: the first hop records parent 0.
  return context;
}

TraceContext RecordHop(const char* name, const TraceContext& trace,
                       int64_t start_ns, int64_t end_ns, FlowPhase phase) {
  if (!trace.active()) return trace;
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  event.trace_id = trace.trace_id;
  event.span_id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  event.parent_id = trace.span_id;
  event.flow = phase;
  AppendEvent(event);
  TraceContext next = trace;
  next.span_id = event.span_id;
  return next;
}

size_t BufferedSpanCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  size_t n = state.retired.size();
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> self(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void DiscardTrace() { DrainAll(); }

Status WriteTraceFile(const std::string& path) {
  std::string target = path;
  if (target.empty()) target = EnvStr("DPDP_TRACE_FILE", "");
  if (target.empty()) {
    const std::string dir = EnvStr("DPDP_METRICS_DIR", "");
    target = dir.empty() ? "dpdp_trace.json" : dir + "/trace.json";
  }
  const std::vector<TraceEvent> events = DrainAll();
  std::ostringstream os;
  // Chrome trace-event format: complete ("ph":"X") events, microsecond
  // timestamps relative to the earliest span so traces start near t=0.
  // Request hops additionally carry their trace/span/parent ids as args
  // and an adjacent flow event (s/t/f chained on the trace id), so one
  // request's hops render as a connected lane across service threads.
  const int64_t origin_ns = events.empty() ? 0 : events.front().start_ns;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    const double ts_us = static_cast<double>(e.start_ns - origin_ns) / 1e3;
    const double dur_us = static_cast<double>(e.end_ns - e.start_ns) / 1e3;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %d",
                  ts_us, dur_us, e.tid);
    os << "\n{\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \"dpdp\", "
       << buf;
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    ", \"args\": {\"trace\": %llu, \"span\": %llu, "
                    "\"parent\": %llu}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_id));
      os << buf;
    }
    os << "}";
    if (e.flow != FlowPhase::kNone) {
      // The flow event binds to the slice enclosing its timestamp on this
      // thread, i.e. the hop span just written. One chain per request:
      // name/cat/id identical across the chain, phases s -> t... -> f.
      const char* ph = e.flow == FlowPhase::kStart
                           ? "s"
                           : (e.flow == FlowPhase::kStep ? "t" : "f");
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\": \"serve.request\", \"cat\": \"flow\", "
                    "\"ph\": \"%s\", \"id\": %llu, \"ts\": %.3f, "
                    "\"pid\": 1, \"tid\": %d%s}",
                    ph, static_cast<unsigned long long>(e.trace_id), ts_us,
                    e.tid, e.flow == FlowPhase::kEnd ? ", \"bp\": \"e\"" : "");
      os << "," << buf;
    }
  }
  os << "\n]}\n";
  return internal::WriteFileStaged(target, os.str());
}

}  // namespace dpdp::obs
