#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/env.h"

namespace dpdp::obs {
namespace {

struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;
  int tid;
};

/// Per-thread span buffer. The owning thread appends under the buffer's
/// own (uncontended) mutex; the writer thread locks the same mutex to
/// drain, so flushing while other threads keep tracing is safe. On thread
/// exit the remaining events retire into the global list.
struct ThreadBuffer;

struct TraceState {
  std::mutex mu;                       ///< Guards buffers + retired.
  std::vector<ThreadBuffer*> buffers;  ///< Live per-thread buffers.
  std::vector<TraceEvent> retired;     ///< Events from exited threads.
  std::atomic<int> next_tid{0};
};

TraceState& State() {
  static TraceState* state = new TraceState;  // Leaked: see registry note.
  return *state;
}

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid;

  ThreadBuffer() {
    TraceState& state = State();
    tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(this);
  }

  ~ThreadBuffer() {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.erase(
        std::remove(state.buffers.begin(), state.buffers.end(), this),
        state.buffers.end());
    std::lock_guard<std::mutex> self(mu);
    state.retired.insert(state.retired.end(), events.begin(), events.end());
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

/// Collects (and consumes) every buffered event, sorted by start time.
std::vector<TraceEvent> DrainAll() {
  TraceState& state = State();
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(state.mu);
  all.swap(state.retired);
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> self(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return all;
}

void WriteTraceAtExit() {
  if (TraceEnabled()) (void)WriteTraceFile();
}

bool InitTraceEnabled() {
  const bool enabled = EnvInt("DPDP_TRACE", 0) != 0;
  // Bench/example binaries get a trace file without any explicit flush
  // call; explicit WriteTraceFile calls earlier just leave an empty tail.
  if (enabled) std::atexit(WriteTraceAtExit);
  return enabled;
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{InitTraceEnabled()};

void RecordSpan(const char* name, int64_t start_ns, int64_t end_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back({name, start_ns, end_ns, buffer.tid});
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

size_t BufferedSpanCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  size_t n = state.retired.size();
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> self(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void DiscardTrace() { DrainAll(); }

Status WriteTraceFile(const std::string& path) {
  std::string target = path;
  if (target.empty()) target = EnvStr("DPDP_TRACE_FILE", "");
  if (target.empty()) {
    const std::string dir = EnvStr("DPDP_METRICS_DIR", "");
    target = dir.empty() ? "dpdp_trace.json" : dir + "/trace.json";
  }
  const std::filesystem::path file(target);
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
    if (ec) {
      return Status::Internal("cannot create trace dir: " + ec.message());
    }
  }
  const std::vector<TraceEvent> events = DrainAll();
  std::ofstream os(target, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open trace file " + target);
  // Chrome trace-event format: complete ("ph":"X") events, microsecond
  // timestamps relative to the earliest span so traces start near t=0.
  const int64_t origin_ns = events.empty() ? 0 : events.front().start_ns;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) os << ",";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %d",
                  static_cast<double>(e.start_ns - origin_ns) / 1e3,
                  static_cast<double>(e.end_ns - e.start_ns) / 1e3, e.tid);
    os << "\n{\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \"dpdp\", "
       << buf << "}";
  }
  os << "\n]}\n";
  if (!os) return Status::Internal("short write to trace file " + target);
  return Status::OK();
}

}  // namespace dpdp::obs
