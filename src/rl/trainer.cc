#include "rl/trainer.h"

#include <cstdio>

#include "rl/checkpoint.h"
#include "rl/learning.h"
#include "stpred/std_matrix.h"
#include "util/env.h"

namespace dpdp {

std::string TrainOptions::checkpoint_path(
    const std::string& agent_name) const {
  std::string dir = checkpoint_dir;
  if (dir.empty()) dir = EnvStr("DPDP_CHECKPOINT_DIR", ".");
  return dir + "/" + agent_name + ".ckpt";
}

double TrainingCurve::TailMean(const std::vector<double>& series,
                               int window) {
  if (series.empty()) return 0.0;
  const size_t n = series.size();
  const size_t w = std::min<size_t>(static_cast<size_t>(window), n);
  double s = 0.0;
  for (size_t i = n - w; i < n; ++i) s += series[i];
  return s / static_cast<double>(w);
}

TrainingCurve RunEpisodes(Simulator* simulator, Dispatcher* dispatcher,
                          const TrainOptions& options) {
  DPDP_CHECK(simulator != nullptr && dispatcher != nullptr);
  TrainingCurve curve;
  curve.agent_name = dispatcher->name();

  auto* learner = dynamic_cast<LearningDispatcher*>(dispatcher);
  int start_episode = 0;
  if (!options.resume_from.empty()) {
    // Resuming from a checkpoint that doesn't restore is a correctness
    // hazard (a fresh agent would silently masquerade as a trained one),
    // so fail loudly instead of falling back.
    DPDP_CHECK(learner != nullptr);
    Result<int> resumed = LoadCheckpoint(options.resume_from, learner);
    if (!resumed.ok()) {
      std::fprintf(stderr, "FATAL: cannot resume from %s: %s\n",
                   options.resume_from.c_str(),
                   resumed.status().ToString().c_str());
      DPDP_CHECK(resumed.ok());
    }
    start_episode = resumed.value();
    // Align the simulator's episode counter so the remaining episodes draw
    // the same disruption streams an uninterrupted run would have.
    simulator->set_episodes_run(start_episode);
  }

  const bool checkpointing =
      options.checkpoint_every > 0 && learner != nullptr;
  const std::string ckpt_path =
      checkpointing ? options.checkpoint_path(curve.agent_name)
                    : std::string();

  for (int e = start_episode; e < options.episodes; ++e) {
    const EpisodeResult result = simulator->RunEpisode(dispatcher);
    curve.nuv.push_back(result.nuv);
    curve.total_cost.push_back(result.total_cost);
    if (!options.demand_for_diff.empty()) {
      curve.capacity_diff.push_back(DistributionDiff(
          options.demand_for_diff, simulator->LastCapacityDistribution()));
    }
    curve.episodes.push_back(result);
    if (options.on_episode) options.on_episode(e, result);
    if (checkpointing && ((e + 1 - start_episode) % options.checkpoint_every ==
                              0 ||
                          e + 1 == options.episodes)) {
      const Status saved = SaveCheckpoint(ckpt_path, e + 1, *learner);
      if (!saved.ok()) {
        // A failed periodic save must not kill training — warn and go on;
        // the next interval retries.
        std::fprintf(stderr, "WARNING: checkpoint save failed: %s\n",
                     saved.ToString().c_str());
      }
    }
  }
  return curve;
}

}  // namespace dpdp
