#include "rl/trainer.h"

#include <filesystem>
#include <fstream>

#include "obs/trace.h"
#include "rl/agent.h"
#include "rl/checkpoint.h"
#include "stpred/std_matrix.h"
#include "util/env.h"
#include "util/log.h"

namespace dpdp {

std::string TrainOptions::checkpoint_path(
    const std::string& agent_name) const {
  std::string dir = checkpoint_dir;
  if (dir.empty()) dir = EnvStr("DPDP_CHECKPOINT_DIR", ".");
  return dir + "/" + agent_name + ".ckpt";
}

std::string TrainOptions::resolved_metrics_path() const {
  if (!metrics_path.empty()) return metrics_path;
  const std::string dir = EnvStr("DPDP_METRICS_DIR", "");
  return dir.empty() ? std::string() : dir + "/metrics.csv";
}

TrainOptions TrainOptions::FromEnv() {
  TrainOptions options;
  options.episodes =
      EnvIntStrict("DPDP_TRAIN_EPISODES", options.episodes, 1, 1000000);
  options.checkpoint_every = EnvIntStrict(
      "DPDP_TRAIN_CHECKPOINT_EVERY", options.checkpoint_every, 0, 1000000);
  options.checkpoint_dir = EnvStr("DPDP_TRAIN_CHECKPOINT_DIR", "");
  options.resume_from = EnvStr("DPDP_TRAIN_RESUME_FROM", "");
  options.metrics_path = EnvStr("DPDP_TRAIN_METRICS", "");
  return options;
}

namespace {

/// Appends one row per finished episode to the metrics.csv time series
/// (the recorded data behind Fig. 8-style convergence plots). Opening or
/// writing failures log a warning and disable the writer — telemetry must
/// never sink a training run.
class EpisodeMetricsWriter {
 public:
  explicit EpisodeMetricsWriter(const std::string& path) {
    if (path.empty()) return;
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(target.parent_path(), ec);
    }
    os_.open(path, std::ios::trunc);
    if (!os_) {
      DPDP_LOG(WARN) << "cannot open metrics file " << path
                     << "; episode metrics disabled";
      return;
    }
    os_ << "episode,nuv,total_cost,total_travel_length,loss,epsilon,"
           "mean_q,max_q,replay_size,num_decisions,decision_seconds,"
           "degraded,breakdowns,cancelled,replanned,unserved\n";
  }

  void WriteRow(int episode, const EpisodeResult& r,
                const TrainingStats& stats) {
    if (!os_.is_open() || !os_) return;
    os_ << episode << ',' << r.nuv << ',' << r.total_cost << ','
        << r.total_travel_length << ',' << stats.loss << ','
        << stats.epsilon << ',' << stats.mean_q << ',' << stats.max_q << ','
        << stats.replay_size << ',' << r.num_decisions << ','
        << r.decision_wall_seconds << ',' << r.num_degraded_decisions << ','
        << r.num_breakdowns << ',' << r.num_cancelled << ','
        << r.num_replanned << ',' << r.num_unserved << '\n';
    os_.flush();  // Row-granular durability: a crash keeps finished rows.
  }

 private:
  std::ofstream os_;
};

}  // namespace

double TrainingCurve::TailMean(const std::vector<double>& series,
                               int window) {
  if (series.empty()) return 0.0;
  const size_t n = series.size();
  const size_t w = std::min<size_t>(static_cast<size_t>(window), n);
  double s = 0.0;
  for (size_t i = n - w; i < n; ++i) s += series[i];
  return s / static_cast<double>(w);
}

TrainingCurve RunEpisodes(Simulator* simulator, Dispatcher* dispatcher,
                          const TrainOptions& options) {
  DPDP_CHECK(simulator != nullptr && dispatcher != nullptr);
  TrainingCurve curve;
  curve.agent_name = dispatcher->name();

  auto* learner = dynamic_cast<Agent*>(dispatcher);
  int start_episode = 0;
  if (!options.resume_from.empty()) {
    // Resuming from a checkpoint that doesn't restore is a correctness
    // hazard (a fresh agent would silently masquerade as a trained one),
    // so fail loudly instead of falling back.
    DPDP_CHECK(learner != nullptr);
    Result<int> resumed = LoadCheckpoint(options.resume_from, learner);
    if (!resumed.ok()) {
      DPDP_LOG(ERROR) << "cannot resume from " << options.resume_from << ": "
                      << resumed.status().ToString();
      DPDP_CHECK(resumed.ok());
    }
    start_episode = resumed.value();
    // Align the simulator's episode counter so the remaining episodes draw
    // the same disruption streams an uninterrupted run would have.
    simulator->set_episodes_run(start_episode);
  }

  const bool checkpointing =
      options.checkpoint_every > 0 && learner != nullptr;
  const std::string ckpt_path =
      checkpointing ? options.checkpoint_path(curve.agent_name)
                    : std::string();
  EpisodeMetricsWriter metrics_writer(options.resolved_metrics_path());

  for (int e = start_episode; e < options.episodes; ++e) {
    DPDP_TRACE_SPAN("rl.train_episode");
    const EpisodeResult result = simulator->RunEpisode(dispatcher);
    curve.nuv.push_back(result.nuv);
    curve.total_cost.push_back(result.total_cost);
    if (!options.demand_for_diff.empty()) {
      curve.capacity_diff.push_back(DistributionDiff(
          options.demand_for_diff, simulator->LastCapacityDistribution()));
    }
    curve.episodes.push_back(result);
    metrics_writer.WriteRow(e, result,
                            learner != nullptr ? learner->Stats()
                                               : TrainingStats{});
    if (options.on_episode) options.on_episode(e, result);
    if (checkpointing && ((e + 1 - start_episode) % options.checkpoint_every ==
                              0 ||
                          e + 1 == options.episodes)) {
      const Status saved = SaveCheckpoint(ckpt_path, e + 1, *learner);
      if (!saved.ok()) {
        // A failed periodic save must not kill training — warn and go on;
        // the next interval retries.
        DPDP_LOG(WARN) << "checkpoint save failed: " << saved.ToString();
      }
    }
  }
  return curve;
}

}  // namespace dpdp
