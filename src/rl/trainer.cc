#include "rl/trainer.h"

#include "stpred/std_matrix.h"

namespace dpdp {

double TrainingCurve::TailMean(const std::vector<double>& series,
                               int window) {
  if (series.empty()) return 0.0;
  const size_t n = series.size();
  const size_t w = std::min<size_t>(static_cast<size_t>(window), n);
  double s = 0.0;
  for (size_t i = n - w; i < n; ++i) s += series[i];
  return s / static_cast<double>(w);
}

TrainingCurve RunEpisodes(Simulator* simulator, Dispatcher* dispatcher,
                          const TrainOptions& options) {
  DPDP_CHECK(simulator != nullptr && dispatcher != nullptr);
  TrainingCurve curve;
  curve.agent_name = dispatcher->name();
  for (int e = 0; e < options.episodes; ++e) {
    const EpisodeResult result = simulator->RunEpisode(dispatcher);
    curve.nuv.push_back(result.nuv);
    curve.total_cost.push_back(result.total_cost);
    if (!options.demand_for_diff.empty()) {
      curve.capacity_diff.push_back(DistributionDiff(
          options.demand_for_diff, simulator->LastCapacityDistribution()));
    }
    curve.episodes.push_back(result);
    if (options.on_episode) options.on_episode(e, result);
  }
  return curve;
}

}  // namespace dpdp
