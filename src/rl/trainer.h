#ifndef DPDP_RL_TRAINER_H_
#define DPDP_RL_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "sim/dispatcher.h"
#include "sim/simulator.h"

namespace dpdp {

/// Per-episode training curve: the Fig. 8 (NUV, TC) series plus the Fig. 9
/// demand/capacity Frobenius "Diff" when a demand matrix is supplied.
struct TrainingCurve {
  std::string agent_name;
  std::vector<double> nuv;
  std::vector<double> total_cost;
  std::vector<double> capacity_diff;  ///< Empty unless demand provided.
  std::vector<EpisodeResult> episodes;

  /// Mean of the last `window` entries of `series` (convergence summary).
  static double TailMean(const std::vector<double>& series, int window);
};

/// Options for the episode loop.
struct TrainOptions {
  int episodes = 100;
  /// Demand STD matrix for the capacity-diff diagnostic (Fig. 9); leave
  /// empty to skip.
  nn::Matrix demand_for_diff;
  /// Optional progress callback (episode index, result).
  std::function<void(int, const EpisodeResult&)> on_episode;

  /// Crash safety: when > 0 and the dispatcher is an Agent, a
  /// checkpoint is written after every `checkpoint_every` episodes (and
  /// after the last one) to `checkpoint_path()`.
  int checkpoint_every = 0;
  /// Checkpoint file directory; empty falls back to the DPDP_CHECKPOINT_DIR
  /// environment variable, then to "." .
  std::string checkpoint_dir;
  /// When set, training resumes from this checkpoint file: the agent state
  /// is restored, the simulator's episode counter is aligned (so disruption
  /// streams match), and the loop starts at the recorded episode. The
  /// curve only contains the episodes run in this call. A missing or
  /// corrupt file aborts loudly rather than silently restarting from
  /// scratch.
  std::string resume_from;

  /// Observability: when non-empty (or when DPDP_METRICS_DIR is set, which
  /// yields <dir>/metrics.csv), each finished episode appends one row of
  /// training telemetry — NUV/TC, loss, epsilon, mean/max greedy Q, replay
  /// size, decision count/latency and degradation counters — so
  /// convergence plots come from recorded data instead of ad-hoc prints.
  /// The file is truncated per RunEpisodes call; telemetry failures log a
  /// warning and never abort training.
  std::string metrics_path;

  /// Where checkpoints land: <dir>/<agent name>.ckpt.
  std::string checkpoint_path(const std::string& agent_name) const;
  /// metrics_path, falling back to $DPDP_METRICS_DIR/metrics.csv; empty
  /// string disables the per-episode metrics time series.
  std::string resolved_metrics_path() const;

  /// Environment-driven options, mirroring ServeConfigFromEnv so every
  /// subsystem's knobs parse through the same layer (see README):
  ///   DPDP_TRAIN_EPISODES          episode count (default 100)
  ///   DPDP_TRAIN_CHECKPOINT_EVERY  checkpoint cadence, 0 = off
  ///   DPDP_TRAIN_CHECKPOINT_DIR    checkpoint directory override
  ///   DPDP_TRAIN_RESUME_FROM       checkpoint file to resume from
  ///   DPDP_TRAIN_METRICS           metrics.csv path override
  static TrainOptions FromEnv();
};

/// Runs `options.episodes` episodes of `simulator` under `dispatcher`
/// (the dispatcher should be in training mode if it learns) and records
/// the per-episode metrics. With checkpointing enabled, kill + resume
/// reproduces the uninterrupted run bit-for-bit.
TrainingCurve RunEpisodes(Simulator* simulator, Dispatcher* dispatcher,
                          const TrainOptions& options);

}  // namespace dpdp

#endif  // DPDP_RL_TRAINER_H_
