#ifndef DPDP_RL_REPLAY_H_
#define DPDP_RL_REPLAY_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/matrix.h"
#include "rl/state.h"
#include "util/rng.h"

namespace dpdp {

/// Compact (float) storage of a FleetState inside the replay buffer.
struct StoredFleetState {
  int num_vehicles = 0;
  std::vector<float> features;    ///< num_vehicles x kStateFeatures.
  std::vector<uint8_t> feasible;  ///< num_vehicles.
  std::vector<float> positions;   ///< num_vehicles x 2.

  static StoredFleetState FromFleetState(const FleetState& s);
  FleetState ToFleetState() const;
  bool empty() const { return num_vehicles == 0; }
};

/// One MDP transition (S, a, R, S', terminal) with the episode-final reward
/// R = r + r_bar already folded in (Algorithm 3 stores transitions at
/// episode end).
struct Transition {
  StoredFleetState state;
  int action = -1;      ///< Full-fleet vehicle index.
  float reward = 0.0f;
  bool terminal = false;
  StoredFleetState next_state;  ///< Empty when terminal.
};

/// One recorded decision of an in-flight episode, before the episode-end
/// reward folding. `next_state` stays empty (and `terminal` true) for the
/// episode's final decision.
struct EpisodeStep {
  StoredFleetState state;
  int action = -1;
  double instant_reward = 0.0;
  StoredFleetState next_state;
  bool terminal = false;
};

/// Folds the episode-mean instant reward into every step (Eq. 7/8:
/// R = r + r_bar, applied at episode end per Algorithm 3) and converts the
/// steps into replay-ready transitions, preserving decision order. Shared
/// by the local learning agents and the src/train/ actor-learner fabric so
/// both produce bit-identical transitions from the same decisions.
std::vector<Transition> FoldEpisodeRewards(std::vector<EpisodeStep> steps);

/// Fixed-capacity ring-buffer experience replay with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(int capacity);

  void Add(Transition t);

  int size() const { return static_cast<int>(data_.size()); }
  int capacity() const { return capacity_; }

  const Transition& at(int i) const { return data_[i]; }

  /// Uniformly samples `n` transitions (with replacement when n > size).
  std::vector<const Transition*> Sample(int n, Rng* rng) const;

  /// Serializes contents + write cursor (binary). Part of the training
  /// checkpoint: resuming with the exact buffer contents is required for
  /// bit-identical kill-and-resume.
  void Save(std::ostream* os) const;

  /// Restores state written by Save. Returns false on malformed input or a
  /// capacity mismatch with this buffer.
  bool Load(std::istream* is);

 private:
  int capacity_;
  size_t write_pos_ = 0;
  std::vector<Transition> data_;
};

}  // namespace dpdp

#endif  // DPDP_RL_REPLAY_H_
