#ifndef DPDP_RL_CONFIG_H_
#define DPDP_RL_CONFIG_H_

#include <cstdint>

#include "stpred/divergence.h"

namespace dpdp {

class ThreadPool;

/// Hyperparameters shared by the DRL dispatchers. Defaults follow the
/// paper's recommended settings scaled to this repo's from-scratch NN
/// substrate (small hidden sizes keep CPU training fast at fleet scale).
struct AgentConfig {
  // --- Model architecture -------------------------------------------------
  /// Per-vehicle encoder/embedding width (also the attention d_model).
  int hidden_dim = 32;
  /// Heads of the multi-head scaled dot-product attention.
  int num_heads = 2;
  /// Stacked neighborhood-attention levels (the paper uses 2).
  int attention_levels = 2;
  /// NE: number of nearest vehicles (by Euclidean distance) attended to.
  int num_neighbors = 8;
  /// Graph relational module on/off (DGN/DDGN vs DQN/DDQN).
  bool use_graph = true;
  /// ST Score state feature on/off (the "ST-" prefix of the model names).
  bool use_st_score = true;
  /// Double-DQN targets (argmax online, value from target) vs vanilla DQN.
  bool double_dqn = true;
  /// Constraint embedding (Sec. IV-C): when true (the paper's design) the
  /// route planner excludes infeasible vehicles *before* inference and the
  /// network scores only the feasible sub-fleet. When false the network
  /// scores the whole fleet (contextual-DQN-style output masking) — same
  /// action set, wasted computation; used by the ablation bench.
  bool use_constraint_embedding = true;

  // --- MDP / reward --------------------------------------------------------
  /// alpha in Eq. (6): scales rewards into a friendly numeric range.
  double reward_alpha = 0.01;
  /// Follow Eq. (6) literally (fixed cost charged when f = 1). The default
  /// implements the evident intent: charge mu when a fresh vehicle is
  /// activated (see DESIGN.md deviation note).
  bool literal_used_flag_cost = false;
  /// Discount factor gamma.
  double gamma = 0.95;
  /// Length normalizer (km) for the d / d' state features.
  double length_norm_km = 50.0;

  // --- Training ------------------------------------------------------------
  double learning_rate = 1e-3;
  double grad_clip_norm = 5.0;
  int replay_capacity = 20000;
  int batch_size = 32;
  /// Mini-batch updates performed at the end of each episode (Algorithm 3
  /// does one; more speeds up wall-clock convergence).
  int updates_per_episode = 8;
  /// When true, the per-episode update count grows with the episode's
  /// transition count (one update per batch_size transitions, at least
  /// updates_per_episode), so industry-scale days with hundreds of orders
  /// get proportionally more gradient steps.
  bool scale_updates_with_episode = true;
  /// Episodes between target-network syncs (the updating period tau).
  int target_sync_episodes = 5;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  /// Episodes over which epsilon decays linearly start -> end.
  int epsilon_decay_episodes = 60;

  /// Snapshot the online weights whenever a (low-epsilon) training episode
  /// achieves the best total cost so far, and restore that snapshot in
  /// FinalizeTraining(). Stabilizes greedy evaluation against the noise of
  /// late exploration.
  bool track_best_weights = true;
  /// Episodes only count as snapshot candidates once epsilon has decayed
  /// to at most this value (otherwise the episode result is mostly noise).
  double best_weights_max_epsilon = 0.25;

  // --- Parallelism ---------------------------------------------------------
  /// Parallel minibatch gradient accumulation: each sampled transition's
  /// forward/backward pass runs on a worker-local clone of the online /
  /// target networks and the per-transition gradients are reduced into
  /// the optimizer in transition order. The fixed reduction order makes
  /// the update bit-identical for every worker count (the clone path
  /// rounds differently from the legacy in-place accumulation, so
  /// flag-on and flag-off runs may differ in the last ulp — each is
  /// individually deterministic). The Make*Config constructors
  /// initialize this from the DPDP_PARALLEL_BATCH environment variable.
  bool parallel_batch = false;
  /// Pool used by parallel_batch; not owned. Null = process-wide pool.
  ThreadPool* batch_pool = nullptr;

  DivergenceKind divergence = DivergenceKind::kJensenShannon;
  uint64_t seed = 17;
};

/// Convenience constructors for the ablation grid of Table II.
AgentConfig MakeDqnConfig(uint64_t seed);      ///< DQN: no graph, no ST, single.
AgentConfig MakeDdqnConfig(uint64_t seed);     ///< DDQN: no graph, no ST.
AgentConfig MakeStDdqnConfig(uint64_t seed);   ///< ST-DDQN: ST, no graph.
AgentConfig MakeDgnConfig(uint64_t seed);      ///< DGN: graph, no ST, single.
AgentConfig MakeDdgnConfig(uint64_t seed);     ///< DDGN: graph, no ST.
AgentConfig MakeStDdgnConfig(uint64_t seed);   ///< ST-DDGN: graph + ST.

}  // namespace dpdp

#endif  // DPDP_RL_CONFIG_H_
