#include "rl/q_network.h"

#include "rl/state.h"

namespace dpdp {
namespace {

nn::Matrix ColumnFromVector(const std::vector<double>& v) {
  nn::Matrix m(static_cast<int>(v.size()), 1);
  for (size_t i = 0; i < v.size(); ++i) m(static_cast<int>(i), 0) = v[i];
  return m;
}

std::vector<double> VectorFromColumn(const nn::Matrix& m) {
  DPDP_CHECK(m.cols() == 1);
  std::vector<double> v(m.rows());
  for (int i = 0; i < m.rows(); ++i) v[i] = m(i, 0);
  return v;
}

}  // namespace

MlpQNetwork::MlpQNetwork(const AgentConfig& config, Rng* rng)
    : mlp_({kStateFeatures, config.hidden_dim, config.hidden_dim, 1},
           nn::Activation::kReLU, rng) {}

std::vector<double> MlpQNetwork::Forward(const nn::Matrix& features,
                                         const nn::Matrix& adjacency) {
  (void)adjacency;  // No relational structure in the factorized MLP.
  return VectorFromColumn(mlp_.Forward(features));
}

void MlpQNetwork::Backward(const std::vector<double>& dq) {
  mlp_.Backward(ColumnFromVector(dq));
}

std::vector<nn::Parameter*> MlpQNetwork::Params() { return mlp_.Params(); }

GraphQNetwork::GraphQNetwork(const AgentConfig& config, Rng* rng)
    : levels_(config.attention_levels),
      encoder_({kStateFeatures, config.hidden_dim, config.hidden_dim},
               nn::Activation::kReLU, rng),
      head_({config.hidden_dim * (config.attention_levels + 1),
             config.hidden_dim, 1},
            nn::Activation::kReLU, rng) {
  DPDP_CHECK(levels_ >= 1);
  for (int l = 0; l < levels_; ++l) {
    attention_.emplace_back(config.hidden_dim, config.num_heads, rng);
  }
  relus_.resize(levels_);
}

std::vector<double> GraphQNetwork::Forward(const nn::Matrix& features,
                                           const nn::Matrix& adjacency) {
  const int m = features.rows();
  const int d = encoder_.out_dim();
  level_outputs_.clear();
  level_outputs_.push_back(encoder_.Forward(features));  // Level 0.
  for (int l = 0; l < levels_; ++l) {
    level_outputs_.push_back(relus_[l].Forward(
        attention_[l].Forward(level_outputs_.back(), adjacency)));
  }
  // Concatenate every level's representation (paper: initial + high-level
  // representations are concatenated before the Q head).
  nn::Matrix concat(m, d * (levels_ + 1));
  for (int l = 0; l <= levels_; ++l) {
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < d; ++c) {
        concat(r, l * d + c) = level_outputs_[l](r, c);
      }
    }
  }
  return VectorFromColumn(head_.Forward(concat));
}

void GraphQNetwork::Backward(const std::vector<double>& dq) {
  DPDP_CHECK(!level_outputs_.empty());
  const int m = static_cast<int>(dq.size());
  const int d = encoder_.out_dim();
  const nn::Matrix dconcat = head_.Backward(ColumnFromVector(dq));
  DPDP_CHECK(dconcat.rows() == m && dconcat.cols() == d * (levels_ + 1));

  // Split the concat gradient back into per-level slices.
  std::vector<nn::Matrix> dlevel(levels_ + 1);
  for (int l = 0; l <= levels_; ++l) {
    dlevel[l] = nn::Matrix(m, d);
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < d; ++c) dlevel[l](r, c) = dconcat(r, l * d + c);
    }
  }
  // Walk the attention stack backwards, folding in each level's direct
  // contribution from the concatenation.
  nn::Matrix dh = dlevel[levels_];
  for (int l = levels_ - 1; l >= 0; --l) {
    const nn::Matrix da = relus_[l].Backward(dh);
    dh = attention_[l].Backward(da);
    dh.AddInPlace(dlevel[l]);
  }
  encoder_.Backward(dh);
  level_outputs_.clear();
}

std::vector<nn::Parameter*> GraphQNetwork::Params() {
  std::vector<nn::Parameter*> out = encoder_.Params();
  for (auto& a : attention_) {
    for (nn::Parameter* p : a.Params()) out.push_back(p);
  }
  for (nn::Parameter* p : head_.Params()) out.push_back(p);
  return out;
}

std::unique_ptr<FleetQNetwork> MakeQNetwork(const AgentConfig& config,
                                            Rng* rng) {
  if (config.use_graph) {
    return std::make_unique<GraphQNetwork>(config, rng);
  }
  return std::make_unique<MlpQNetwork>(config, rng);
}

}  // namespace dpdp
