#include "rl/q_network.h"

#include "obs/trace.h"
#include "rl/state.h"

namespace dpdp {

void DecisionBatch::Clear() {
  num_items_ = 0;
  offsets_.resize(1);
  features_.Resize(0, features_.cols());
  row_spans_.clear();
  adjacency_dirty_ = true;
}

int DecisionBatch::AddItem(int rows, int cols) {
  DPDP_CHECK(rows >= 0 && cols > 0);
  DPDP_CHECK(features_.rows() == 0 || features_.cols() == cols);
  const int item = num_items_;
  const int begin = offsets_[item];
  features_.Resize(begin + rows, cols);
  offsets_.push_back(begin + rows);
  row_spans_.insert(row_spans_.end(), static_cast<size_t>(rows),
                    {begin, begin + rows});
  if (item < static_cast<int>(adjacencies_.size())) {
    adjacencies_[item].Resize(rows, rows);
    adjacencies_[item].Fill(0.0);
  } else {
    adjacencies_.emplace_back(rows, rows);
  }
  ++num_items_;
  adjacency_dirty_ = true;
  return item;
}

int DecisionBatch::Add(const nn::Matrix& features,
                       const nn::Matrix& adjacency) {
  DPDP_CHECK(adjacency.empty() || (adjacency.rows() == features.rows() &&
                                   adjacency.cols() == features.rows()));
  const int item = AddItem(features.rows(), features.cols());
  const int begin = offset(item);
  for (int r = 0; r < features.rows(); ++r) {
    for (int c = 0; c < features.cols(); ++c) {
      features_(begin + r, c) = features(r, c);
    }
  }
  if (!adjacency.empty()) adjacencies_[item] = adjacency;
  return item;
}

nn::Matrix& DecisionBatch::mutable_adjacency(int item) {
  DPDP_CHECK(item >= 0 && item < num_items_);
  adjacency_dirty_ = true;
  return adjacencies_[item];
}

const nn::Matrix& DecisionBatch::adjacency() const {
  if (adjacency_dirty_) {
    const int total = total_rows();
    block_adjacency_.Resize(total, total);
    block_adjacency_.Fill(0.0);
    for (int i = 0; i < num_items_; ++i) {
      const nn::Matrix& a = adjacencies_[i];
      const int begin = offsets_[i];
      const int m = rows(i);
      DPDP_CHECK(a.rows() == m && a.cols() == m);
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < m; ++c) {
          block_adjacency_(begin + r, begin + c) = a(r, c);
        }
      }
    }
    adjacency_dirty_ = false;
  }
  return block_adjacency_;
}

MlpQNetwork::MlpQNetwork(const AgentConfig& config, Rng* rng)
    : mlp_({kStateFeatures, config.hidden_dim, config.hidden_dim, 1},
           nn::Activation::kReLU, rng) {}

const nn::Matrix& MlpQNetwork::EvaluateBatch(const DecisionBatch& batch) {
  DPDP_TRACE_SPAN("nn.forward");
  return mlp_.Forward(batch.features(), ws_);
}

void MlpQNetwork::BackwardBatch(const nn::Matrix& dq) {
  DPDP_CHECK(dq.cols() == 1);
  mlp_.Backward(dq, ws_);
}

std::vector<nn::Parameter*> MlpQNetwork::Params() { return mlp_.Params(); }

GraphQNetwork::GraphQNetwork(const AgentConfig& config, Rng* rng)
    : levels_(config.attention_levels),
      encoder_({kStateFeatures, config.hidden_dim, config.hidden_dim},
               nn::Activation::kReLU, rng),
      head_({config.hidden_dim * (config.attention_levels + 1),
             config.hidden_dim, 1},
            nn::Activation::kReLU, rng) {
  DPDP_CHECK(levels_ >= 1);
  for (int l = 0; l < levels_; ++l) {
    attention_.emplace_back(config.hidden_dim, config.num_heads, rng);
  }
  relus_.resize(levels_);
  dlevel_.resize(levels_ + 1);
  level_.resize(levels_ + 1);
}

const nn::Matrix& GraphQNetwork::EvaluateBatch(const DecisionBatch& batch) {
  DPDP_TRACE_SPAN("nn.forward");
  const int m = batch.total_rows();
  const int d = encoder_.out_dim();
  const nn::Matrix& adjacency = batch.adjacency();

  // The level outputs live in the layers' own buffers; each level has its
  // own ReLU, so the references stay valid through concatenation.
  level_[0] = &encoder_.Forward(batch.features(), ws_);
  for (int l = 0; l < levels_; ++l) {
    level_[l + 1] = &relus_[l].Forward(
        attention_[l].Forward(*level_[l], adjacency, &batch.row_spans(),
                              ws_),
        ws_);
  }
  // Concatenate every level's representation (paper: initial + high-level
  // representations are concatenated before the Q head). Every entry is
  // written, so the uninitialized Resize is safe.
  concat_.Resize(m, d * (levels_ + 1));
  for (int l = 0; l <= levels_; ++l) {
    const nn::Matrix& src = *level_[l];
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < d; ++c) concat_(r, l * d + c) = src(r, c);
    }
  }
  forward_valid_ = true;
  return head_.Forward(concat_, ws_);
}

void GraphQNetwork::BackwardBatch(const nn::Matrix& dq) {
  DPDP_CHECK(forward_valid_);
  DPDP_CHECK(dq.cols() == 1);
  const int m = dq.rows();
  const int d = encoder_.out_dim();
  const nn::Matrix& dconcat = head_.Backward(dq, ws_);
  DPDP_CHECK(dconcat.rows() == m && dconcat.cols() == d * (levels_ + 1));

  // Split the concat gradient back into per-level slices.
  for (int l = 0; l <= levels_; ++l) {
    dlevel_[l].Resize(m, d);
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < d; ++c) dlevel_[l](r, c) = dconcat(r, l * d + c);
    }
  }
  // Walk the attention stack backwards, folding in each level's direct
  // contribution from the concatenation.
  const nn::Matrix* dh = &dlevel_[levels_];
  for (int l = levels_ - 1; l >= 0; --l) {
    const nn::Matrix& da = relus_[l].Backward(*dh, ws_);
    dh_ = attention_[l].Backward(da, ws_);
    dh_.AddInPlace(dlevel_[l]);
    dh = &dh_;
  }
  encoder_.Backward(*dh, ws_);
  forward_valid_ = false;
}

std::vector<nn::Parameter*> GraphQNetwork::Params() {
  std::vector<nn::Parameter*> out = encoder_.Params();
  for (auto& a : attention_) {
    for (nn::Parameter* p : a.Params()) out.push_back(p);
  }
  for (nn::Parameter* p : head_.Params()) out.push_back(p);
  return out;
}

std::unique_ptr<FleetQNetwork> MakeQNetwork(const AgentConfig& config,
                                            Rng* rng) {
  if (config.use_graph) {
    return std::make_unique<GraphQNetwork>(config, rng);
  }
  return std::make_unique<MlpQNetwork>(config, rng);
}

}  // namespace dpdp
