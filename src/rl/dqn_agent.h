#ifndef DPDP_RL_DQN_AGENT_H_
#define DPDP_RL_DQN_AGENT_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/learning.h"
#include "rl/q_network.h"
#include "rl/replay.h"
#include "rl/state.h"
#include "sim/dispatcher.h"
#include "util/rng.h"

namespace dpdp {

/// The value-based DRL dispatcher family of the paper (Algorithm 3):
/// depending on AgentConfig flags this is DQN, DDQN, ST-DDQN, DGN, DDGN or
/// ST-DDGN. One network scores the feasible sub-fleet per order; training
/// uses episode-end reward folding (Eq. 7/8), experience replay, and
/// (double-)DQN targets with a periodically synced target network.
class DqnFleetAgent : public LearningDispatcher {
 public:
  DqnFleetAgent(const AgentConfig& config, std::string name);

  const char* name() const override { return name_.c_str(); }
  int ChooseVehicle(const DispatchContext& context) override;
  void OnEpisodeEnd(const EpisodeResult& result) override;
  /// Restores the best-episode weight snapshot (if any) into the online
  /// and target networks.
  void FinalizeTraining() override;

  /// Training mode enables epsilon-greedy exploration, transition
  /// recording and episode-end updates. Off by default for evaluation.
  void set_training(bool training) override { training_ = training; }
  bool training() const override { return training_; }

  double epsilon() const { return epsilon_; }
  int episodes_trained() const { return episodes_trained_; }
  double last_loss() const { return last_loss_; }
  const AgentConfig& config() const { return config_; }

  /// Greedy Q-values for a context (diagnostics; -inf for infeasible).
  std::vector<double> QValues(const DispatchContext& context);

  /// Serializes / restores the online network weights.
  void Save(std::ostream* os);
  bool Load(std::istream* is);

 private:
  struct Pending {
    StoredFleetState state;
    int action = -1;
    double instant_reward = 0.0;
    bool active = false;
  };
  struct EpisodeStep {
    StoredFleetState state;
    int action;
    double instant_reward;
    StoredFleetState next_state;
    bool terminal;
  };

  double InstantReward(const DispatchContext& context, int chosen) const;
  /// Vehicle rows the network scores: the feasible sub-fleet under
  /// constraint embedding, the whole fleet otherwise.
  std::vector<int> InferenceIndices(const FleetState& state) const;
  /// Forward pass over the feasible sub-fleet; returns (sub-q-values,
  /// feasible index list).
  std::vector<double> SubFleetQ(const FleetState& state, FleetQNetwork* net,
                                const std::vector<int>& idx);
  void TrainBatch();

  AgentConfig config_;
  std::string name_;
  Rng rng_;
  std::unique_ptr<FleetQNetwork> online_;
  std::unique_ptr<FleetQNetwork> target_;
  std::unique_ptr<nn::Adam> optimizer_;
  ReplayBuffer replay_;

  bool training_ = false;
  double epsilon_;
  int episodes_trained_ = 0;
  double last_loss_ = 0.0;
  Pending pending_;
  std::vector<EpisodeStep> episode_;
  double best_episode_cost_ = 0.0;
  std::vector<nn::Matrix> best_weights_;  ///< Empty until first snapshot.
};

}  // namespace dpdp

#endif  // DPDP_RL_DQN_AGENT_H_
