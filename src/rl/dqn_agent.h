#ifndef DPDP_RL_DQN_AGENT_H_
#define DPDP_RL_DQN_AGENT_H_

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/optimizer.h"
#include "rl/agent.h"
#include "rl/config.h"
#include "rl/q_network.h"
#include "rl/replay.h"
#include "rl/state.h"
#include "sim/dispatcher.h"
#include "util/rng.h"

namespace dpdp {

/// The value-based DRL dispatcher family of the paper (Algorithm 3):
/// depending on AgentConfig flags this is DQN, DDQN, ST-DDQN, DGN, DDGN or
/// ST-DDGN. One network scores the feasible sub-fleet per order; training
/// uses episode-end reward folding (Eq. 7/8), experience replay, and
/// (double-)DQN targets with a periodically synced target network.
class DqnFleetAgent : public Agent {
 public:
  DqnFleetAgent(const AgentConfig& config, std::string name);
  ~DqnFleetAgent() override;

  const char* name() const override { return name_.c_str(); }
  /// Returns -1 (no usable choice) when the network emits a non-finite
  /// Q-value for any feasible vehicle; the environment then degrades to
  /// the greedy fallback. Nothing is recorded for such a decision.
  int Act(const DispatchContext& context) override;
  /// Syncs the recorded transition onto the vehicle the environment
  /// actually executed (they differ when graceful degradation overrode the
  /// choice).
  void Observe(const DispatchContext& context, int vehicle) override;
  void Learn(const EpisodeResult& result) override;
  /// Restores the best-episode weight snapshot (if any) into the online
  /// and target networks.
  void FinalizeTraining() override;

  /// Training mode enables epsilon-greedy exploration, transition
  /// recording and episode-end updates. Off by default for evaluation.
  void set_training(bool training) override { training_ = training; }
  bool training() const override { return training_; }

  double epsilon() const { return epsilon_; }
  int episodes_trained() const { return episodes_trained_; }
  double last_loss() const { return last_loss_; }
  int replay_size() const { return replay_.size(); }
  const AgentConfig& config() const { return config_; }

  /// Loss, epsilon, mean/max greedy Q of the last training episode and
  /// the replay fill level — the metrics.csv row source. Telemetry only:
  /// not part of the checkpointed state.
  TrainingStats Stats() const override;

  /// Greedy Q-values for a context (diagnostics; -inf for infeasible).
  std::vector<double> QValues(const DispatchContext& context);

  /// Serializes / restores the online network weights.
  void Save(std::ostream* os);
  bool Load(std::istream* is);

  /// Copies the online (policy) parameter values, in Params() order. The
  /// serving layer's snapshot source: a ModelServer materializes these into
  /// an immutable weight set after restoring a checkpoint into a scratch
  /// agent.
  std::vector<nn::Matrix> ExportPolicyWeights();

  /// Full training-state checkpoint (weights, target, optimizer moments,
  /// RNG, epsilon schedule, best-weights snapshot, replay buffer). Must be
  /// called at an episode boundary — mid-episode pending transitions are
  /// not captured. LoadState + continued training is bit-identical to an
  /// uninterrupted run.
  Status SaveState(std::ostream* os) const override;
  Status LoadState(std::istream* is) override;

  /// One gradient step over an externally sampled minibatch: batched
  /// (double-)DQN targets, one stacked forward/backward, one Adam step.
  /// Returns the minibatch Huber loss. The headless-learner entry point of
  /// the src/train/ fabric, which owns replay sampling itself; the local
  /// TrainBatch path is Sample + TrainOnBatch.
  double TrainOnBatch(const std::vector<const Transition*>& batch);
  /// Copies the online parameters into the target network. Exposed for
  /// the learner role, which syncs on an update-count schedule instead of
  /// this agent's episode-count schedule.
  void SyncTarget();

 private:
  struct Pending {
    StoredFleetState state;
    int action = -1;
    double instant_reward = 0.0;
    bool active = false;
  };

  /// Worker-local online/target network clones used by the parallel
  /// minibatch path (config.parallel_batch): each worker gets private
  /// activation caches and gradient buffers while sharing the master
  /// parameter values via an explicit per-batch sync.
  struct WorkerNets;

  /// One-item forward pass over the feasible sub-fleet via `batch`
  /// (cleared and rebuilt). Returns the Q column, row i = Q(idx[i]); the
  /// reference lives in `net`. Mutates only `net` and `batch`, so distinct
  /// net/batch pairs may run concurrently.
  const nn::Matrix& SubFleetQ(const FleetState& state, FleetQNetwork* net,
                              const std::vector<int>& idx,
                              DecisionBatch* batch) const;
  /// The (double-)DQN target y for one transition, computed on the given
  /// online/target networks with `batch` as scratch (parallel path; the
  /// serial path batches its targets inside TrainBatch).
  double TdTarget(const Transition& t, FleetQNetwork* online_net,
                  FleetQNetwork* target_net, DecisionBatch* batch) const;
  /// Runs forward + backward for one transition on `online_net`
  /// (accumulating the dq * inv_batch gradient into its parameters) and
  /// returns the Huber loss of the TD error. `batch`/`dq` are caller
  /// scratch (worker-local in the parallel path).
  double AccumulateTransitionGradient(const Transition& t,
                                      FleetQNetwork* online_net,
                                      FleetQNetwork* target_net,
                                      double inv_batch, DecisionBatch* batch,
                                      nn::Matrix* dq) const;
  void TrainBatch();
  void TrainBatchParallel(const std::vector<const Transition*>& batch);
  /// Checks a WorkerNets out of the cache (creating/syncing on demand)
  /// and back in. Thread-safe.
  std::unique_ptr<WorkerNets> AcquireWorkerNets();
  void ReleaseWorkerNets(std::unique_ptr<WorkerNets> nets);

  AgentConfig config_;
  std::string name_;
  Rng rng_;
  std::unique_ptr<FleetQNetwork> online_;
  std::unique_ptr<FleetQNetwork> target_;
  std::unique_ptr<nn::Adam> optimizer_;
  ReplayBuffer replay_;

  /// Decision-time batch, rebuilt per ChooseVehicle/QValues call on the
  /// simulation thread (storage reused, so the steady-state decision path
  /// does not allocate).
  DecisionBatch act_batch_;
  /// Serial-TrainBatch scratch: next-state and state batches spanning the
  /// whole minibatch, plus the dq column.
  DecisionBatch next_batch_;
  DecisionBatch state_batch_;
  nn::Matrix dq_;

  bool training_ = false;
  double epsilon_;
  int episodes_trained_ = 0;
  double last_loss_ = 0.0;
  Pending pending_;
  /// True between a ChooseVehicle that recorded pending_ and the matching
  /// OnOrderAssigned; gates the executed-action sync so a degraded
  /// decision (nothing recorded) cannot clobber stale pending state.
  bool decision_recorded_ = false;
  std::vector<EpisodeStep> episode_;
  double best_episode_cost_ = 0.0;
  std::vector<nn::Matrix> best_weights_;  ///< Empty until first snapshot.

  // Greedy-Q telemetry of the in-flight training episode (pure
  // observation; excluded from SaveState by design). q_* accumulate per
  // greedy decision and fold into last_* at episode end.
  double q_sum_ = 0.0;
  double q_max_ = 0.0;
  int q_count_ = 0;
  double last_mean_q_ = 0.0;
  double last_max_q_ = 0.0;

  // Parallel-batch worker state (used only when config_.parallel_batch).
  std::mutex worker_nets_mu_;
  std::vector<std::unique_ptr<WorkerNets>> worker_nets_cache_;
  uint64_t batch_generation_ = 0;  ///< Bumped per batch to trigger syncs.
};

}  // namespace dpdp

#endif  // DPDP_RL_DQN_AGENT_H_
