#include "rl/dqn_agent.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpdp {

namespace {

/// Shared across all agents; see SimMetrics for the caching rationale.
struct RlMetrics {
  obs::Counter* train_batches =
      obs::MetricsRegistry::Global().GetCounter("rl.train_batches");
  obs::Counter* transitions =
      obs::MetricsRegistry::Global().GetCounter("rl.transitions_added");
  obs::Histogram* batch_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "rl.train_batch_latency_s", obs::LatencyBucketsSeconds());
  obs::Gauge* replay_size =
      obs::MetricsRegistry::Global().GetGauge("rl.replay_size");
};

RlMetrics& Metrics() {
  static RlMetrics* metrics = new RlMetrics;
  return *metrics;
}

}  // namespace

/// Worker-local clones for the parallel minibatch path. `synced_generation`
/// tracks the last batch whose master weights were copied in, so a clone
/// re-used within one batch skips the redundant sync.
struct DqnFleetAgent::WorkerNets {
  std::unique_ptr<FleetQNetwork> online;
  std::unique_ptr<FleetQNetwork> target;
  /// Worker-local evaluation scratch; SubFleetQ runs concurrently on
  /// worker nets, so the batch must not be shared with the agent.
  DecisionBatch batch;
  nn::Matrix dq;
  uint64_t synced_generation = 0;
};

DqnFleetAgent::~DqnFleetAgent() = default;

DqnFleetAgent::DqnFleetAgent(const AgentConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      rng_(config.seed),
      replay_(config.replay_capacity),
      epsilon_(config.epsilon_start) {
  Rng net_rng = rng_.Fork();
  online_ = MakeQNetwork(config_, &net_rng);
  // The target net gets its own init then an immediate weight sync so both
  // start identical.
  Rng target_rng = rng_.Fork();
  target_ = MakeQNetwork(config_, &target_rng);
  nn::CopyParameters(online_->Params(), target_->Params());
  optimizer_ = std::make_unique<nn::Adam>(online_->Params(),
                                          config_.learning_rate, 0.9, 0.999,
                                          1e-8, config_.grad_clip_norm);
}

const nn::Matrix& DqnFleetAgent::SubFleetQ(const FleetState& state,
                                           FleetQNetwork* net,
                                           const std::vector<int>& idx,
                                           DecisionBatch* batch) const {
  DPDP_TRACE_SPAN("rl.q_forward");
  batch->Clear();
  AppendSubFleetInputs(state, idx, config_.use_graph, config_.num_neighbors,
                       batch);
  return net->EvaluateBatch(*batch);
}

int DqnFleetAgent::Act(const DispatchContext& context) {
  const FleetState state = BuildFleetState(context, config_);
  const std::vector<int> feasible = state.FeasibleIndices();
  DPDP_CHECK(!feasible.empty());

  int action = -1;
  if (training_ && rng_.Bernoulli(epsilon_)) {
    action = feasible[rng_.UniformInt(static_cast<int>(feasible.size()))];
  } else {
    const std::vector<int> idx = InferenceIndices(state, config_);
    const nn::Matrix& q = SubFleetQ(state, online_.get(), idx, &act_batch_);
    // Argmax restricted to feasible vehicles (infeasible ones keep the
    // paper's "extremely small negative" Q). A non-finite feasible score
    // refuses the whole decision (vehicle -1) so the simulator's greedy
    // fallback takes over instead of argmax silently comparing garbage.
    const GreedyQChoice choice = ArgmaxFeasibleQ(state, idx, q);
    if (choice.vehicle < 0) return -1;
    action = choice.vehicle;
    if (training_) {
      q_sum_ += choice.q;
      q_max_ = q_count_ == 0 ? choice.q : std::max(q_max_, choice.q);
      ++q_count_;
    }
  }

  if (training_) {
    StoredFleetState stored = StoredFleetState::FromFleetState(state);
    if (pending_.active) {
      episode_.push_back({std::move(pending_.state), pending_.action,
                          pending_.instant_reward, stored,
                          /*terminal=*/false});
    }
    pending_.state = std::move(stored);
    pending_.action = action;
    pending_.instant_reward = InstantReward(context, action, config_);
    pending_.active = true;
    decision_recorded_ = true;
  }
  return action;
}

void DqnFleetAgent::Observe(const DispatchContext& context, int vehicle) {
  if (!training_ || !decision_recorded_) return;
  decision_recorded_ = false;
  if (vehicle == pending_.action) return;
  // Graceful degradation (or any environment override) executed a
  // different vehicle than we chose: learn from the action that actually
  // happened.
  pending_.action = vehicle;
  pending_.instant_reward = InstantReward(context, vehicle, config_);
}

void DqnFleetAgent::Learn(const EpisodeResult& result) {
  if (!training_) return;
  if (config_.track_best_weights &&
      epsilon_ <= config_.best_weights_max_epsilon &&
      (best_weights_.empty() || result.total_cost < best_episode_cost_)) {
    best_episode_cost_ = result.total_cost;
    best_weights_.clear();
    for (const nn::Parameter* p : online_->Params()) {
      best_weights_.push_back(p->value);
    }
  }
  if (pending_.active) {
    episode_.push_back({std::move(pending_.state), pending_.action,
                        pending_.instant_reward, StoredFleetState{},
                        /*terminal=*/true});
    pending_.active = false;
  }
  if (episode_.empty()) return;

  const size_t episode_transitions = episode_.size();
  for (Transition& t : FoldEpisodeRewards(std::move(episode_))) {
    replay_.Add(std::move(t));
  }
  Metrics().transitions->Add(episode_transitions);
  episode_.clear();

  if (replay_.size() >= config_.batch_size) {
    int updates = config_.updates_per_episode;
    if (config_.scale_updates_with_episode) {
      updates = std::max(updates,
                         static_cast<int>(episode_transitions /
                                          std::max(1, config_.batch_size)));
    }
    for (int u = 0; u < updates; ++u) TrainBatch();
  }

  ++episodes_trained_;
  const double frac = std::min(
      1.0, static_cast<double>(episodes_trained_) /
               std::max(1, config_.epsilon_decay_episodes));
  epsilon_ = config_.epsilon_start +
             frac * (config_.epsilon_end - config_.epsilon_start);
  if (episodes_trained_ % config_.target_sync_episodes == 0) {
    SyncTarget();
  }

  // Fold the episode's greedy-Q accumulators into the Stats() snapshot.
  last_mean_q_ = q_count_ > 0 ? q_sum_ / static_cast<double>(q_count_) : 0.0;
  last_max_q_ = q_count_ > 0 ? q_max_ : 0.0;
  q_sum_ = 0.0;
  q_max_ = 0.0;
  q_count_ = 0;
  Metrics().replay_size->Set(static_cast<double>(replay_.size()));
}

TrainingStats DqnFleetAgent::Stats() const {
  TrainingStats stats;
  stats.loss = last_loss_;
  stats.epsilon = epsilon_;
  stats.mean_q = last_mean_q_;
  stats.max_q = last_max_q_;
  stats.replay_size = replay_.size();
  return stats;
}

double DqnFleetAgent::TdTarget(const Transition& t, FleetQNetwork* online_net,
                               FleetQNetwork* target_net,
                               DecisionBatch* batch) const {
  double y = t.reward;
  if (t.terminal || t.next_state.empty()) return y;
  const FleetState next = t.next_state.ToFleetState();
  if (next.NumFeasible() == 0) return y;

  const std::vector<int> next_idx = InferenceIndices(next, config_);
  auto feasible_max = [&](const nn::Matrix& q) {
    int best = -1;
    double best_q = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < next_idx.size(); ++i) {
      if (!next.feasible[next_idx[i]]) continue;
      if (q(static_cast<int>(i), 0) > best_q) {
        best_q = q(static_cast<int>(i), 0);
        best = static_cast<int>(i);
      }
    }
    return best;
  };
  double next_value = 0.0;
  if (config_.double_dqn) {
    // Double DQN: argmax from the online net, value from the target. The
    // argmax is taken before the target evaluation so a shared underlying
    // buffer could never be a hazard (distinct nets today, but cheap
    // insurance).
    const int best = feasible_max(SubFleetQ(next, online_net, next_idx,
                                            batch));
    const nn::Matrix& qt = SubFleetQ(next, target_net, next_idx, batch);
    next_value = qt(best, 0);
  } else {
    const nn::Matrix& qt = SubFleetQ(next, target_net, next_idx, batch);
    next_value = qt(feasible_max(qt), 0);
  }
  return y + config_.gamma * next_value;
}

double DqnFleetAgent::AccumulateTransitionGradient(
    const Transition& t, FleetQNetwork* online_net, FleetQNetwork* target_net,
    double inv_batch, DecisionBatch* batch, nn::Matrix* dq) const {
  const double y = TdTarget(t, online_net, target_net, batch);

  const FleetState state = t.state.ToFleetState();
  const std::vector<int> idx = InferenceIndices(state, config_);
  const auto it = std::find(idx.begin(), idx.end(), t.action);
  DPDP_CHECK(it != idx.end());
  const int sub_action = static_cast<int>(it - idx.begin());

  const nn::Matrix& q = SubFleetQ(state, online_net, idx, batch);
  const double q_sa = q(sub_action, 0);
  dq->Resize(q.rows(), 1);
  dq->Fill(0.0);
  (*dq)(sub_action, 0) = nn::HuberLossGrad(q_sa, y) * inv_batch;
  {
    DPDP_TRACE_SPAN("rl.q_backward");
    online_net->BackwardBatch(*dq);
  }
  return nn::HuberLoss(q_sa, y);
}

void DqnFleetAgent::TrainBatch() {
  // The sample always comes from the agent's own rng_, so the replay draw
  // sequence is identical whether the update itself runs serially or in
  // parallel.
  std::vector<const Transition*> batch;
  {
    DPDP_TRACE_SPAN("rl.replay_sample");
    batch = replay_.Sample(config_.batch_size, &rng_);
  }
  TrainOnBatch(batch);
}

double DqnFleetAgent::TrainOnBatch(
    const std::vector<const Transition*>& batch) {
  DPDP_TRACE_SPAN("rl.train_batch");
  WallTimer timer;
  RlMetrics& metrics = Metrics();
  metrics.train_batches->Add();
  if (config_.parallel_batch) {
    TrainBatchParallel(batch);
    metrics.batch_latency->Record(timer.ElapsedSeconds());
    return last_loss_;
  }

  // Serial path, fully batched: every transition's next-state sub-fleet is
  // scored in one EvaluateBatch per network, then every state sub-fleet in
  // one more, with a single backward. Rows of a stacked batch are
  // independent (block-diagonal masks), so each TD target is bit-identical
  // to the per-transition evaluation.
  const int n = static_cast<int>(batch.size());
  const double inv_batch = 1.0 / static_cast<double>(n);

  // Phase 1: batched (double-)DQN targets.
  std::vector<double> y(n, 0.0);
  std::vector<int> next_item(n, -1);
  std::vector<FleetState> next_states(n);
  std::vector<std::vector<int>> next_idx(n);
  next_batch_.Clear();
  for (int i = 0; i < n; ++i) {
    const Transition& t = *batch[i];
    y[i] = t.reward;
    if (t.terminal || t.next_state.empty()) continue;
    next_states[i] = t.next_state.ToFleetState();
    if (next_states[i].NumFeasible() == 0) continue;
    next_idx[i] = InferenceIndices(next_states[i], config_);
    next_item[i] = AppendSubFleetInputs(next_states[i], next_idx[i],
                                        config_.use_graph,
                                        config_.num_neighbors, &next_batch_);
  }
  if (next_batch_.num_items() > 0) {
    auto feasible_max = [&](const nn::Matrix& q, int i) {
      const int off = next_batch_.offset(next_item[i]);
      int best = -1;
      double best_q = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < next_idx[i].size(); ++r) {
        if (!next_states[i].feasible[next_idx[i][r]]) continue;
        const double qr = q(off + static_cast<int>(r), 0);
        if (qr > best_q) {
          best_q = qr;
          best = static_cast<int>(r);
        }
      }
      return best;
    };
    std::vector<int> best_next(n, -1);
    if (config_.double_dqn) {
      // Argmaxes must be pulled out of the online result before the target
      // evaluation reuses any buffers.
      const nn::Matrix& qo = online_->EvaluateBatch(next_batch_);
      for (int i = 0; i < n; ++i) {
        if (next_item[i] >= 0) best_next[i] = feasible_max(qo, i);
      }
    }
    const nn::Matrix& qt = target_->EvaluateBatch(next_batch_);
    for (int i = 0; i < n; ++i) {
      if (next_item[i] < 0) continue;
      const int best =
          config_.double_dqn ? best_next[i] : feasible_max(qt, i);
      y[i] += config_.gamma *
              qt(next_batch_.offset(next_item[i]) + best, 0);
    }
  }

  // Phase 2: one stacked forward over the minibatch states, one backward.
  state_batch_.Clear();
  std::vector<int> sub_action(n, -1);
  for (int i = 0; i < n; ++i) {
    const Transition& t = *batch[i];
    const FleetState state = t.state.ToFleetState();
    const std::vector<int> idx = InferenceIndices(state, config_);
    const auto it = std::find(idx.begin(), idx.end(), t.action);
    DPDP_CHECK(it != idx.end());
    sub_action[i] = static_cast<int>(it - idx.begin());
    AppendSubFleetInputs(state, idx, config_.use_graph,
                         config_.num_neighbors, &state_batch_);
  }
  const nn::Matrix& q = online_->EvaluateBatch(state_batch_);
  dq_.Resize(q.rows(), 1);
  dq_.Fill(0.0);
  double loss_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int row = state_batch_.offset(i) + sub_action[i];
    const double q_sa = q(row, 0);
    dq_(row, 0) = nn::HuberLossGrad(q_sa, y[i]) * inv_batch;
    loss_sum += nn::HuberLoss(q_sa, y[i]);
  }
  {
    DPDP_TRACE_SPAN("rl.q_backward");
    online_->BackwardBatch(dq_);
  }
  optimizer_->Step();
  last_loss_ = loss_sum * inv_batch;
  metrics.batch_latency->Record(timer.ElapsedSeconds());
  return last_loss_;
}

void DqnFleetAgent::SyncTarget() {
  nn::CopyParameters(online_->Params(), target_->Params());
}

std::unique_ptr<DqnFleetAgent::WorkerNets> DqnFleetAgent::AcquireWorkerNets() {
  std::unique_ptr<WorkerNets> nets;
  {
    std::lock_guard<std::mutex> lock(worker_nets_mu_);
    if (!worker_nets_cache_.empty()) {
      nets = std::move(worker_nets_cache_.back());
      worker_nets_cache_.pop_back();
    }
  }
  if (nets == nullptr) {
    nets = std::make_unique<WorkerNets>();
    // The init values are irrelevant -- the sync below overwrites them --
    // so a throwaway rng keeps clone creation independent of rng_ state.
    Rng scratch(config_.seed);
    nets->online = MakeQNetwork(config_, &scratch);
    nets->target = MakeQNetwork(config_, &scratch);
  }
  if (nets->synced_generation != batch_generation_) {
    // Masters are read-only while a batch's ParallelFor is in flight (all
    // gradients go to the clones), so concurrent syncs are safe.
    nn::CopyParameters(online_->Params(), nets->online->Params());
    nn::CopyParameters(target_->Params(), nets->target->Params());
    for (nn::Parameter* p : nets->online->Params()) p->ZeroGrad();
    nets->synced_generation = batch_generation_;
  }
  return nets;
}

void DqnFleetAgent::ReleaseWorkerNets(std::unique_ptr<WorkerNets> nets) {
  std::lock_guard<std::mutex> lock(worker_nets_mu_);
  worker_nets_cache_.push_back(std::move(nets));
}

void DqnFleetAgent::TrainBatchParallel(
    const std::vector<const Transition*>& batch) {
  ++batch_generation_;  // Invalidates every cached clone's weight sync.
  const double inv_batch = 1.0 / static_cast<double>(batch.size());

  // Phase 1: per-transition forward/backward on worker-local clones. Task i
  // writes only results[i], so no locking is needed on the result slots.
  struct PerTransition {
    double loss = 0.0;
    std::vector<nn::Matrix> grads;
  };
  std::vector<PerTransition> results(batch.size());
  ThreadPool* pool =
      config_.batch_pool != nullptr ? config_.batch_pool : GlobalThreadPool();
  pool->ParallelFor(static_cast<int>(batch.size()), [&](int i) {
    std::unique_ptr<WorkerNets> nets = AcquireWorkerNets();
    results[i].loss = AccumulateTransitionGradient(
        *batch[i], nets->online.get(), nets->target.get(), inv_batch,
        &nets->batch, &nets->dq);
    for (nn::Parameter* p : nets->online->Params()) {
      results[i].grads.push_back(p->grad);
      p->ZeroGrad();
    }
    ReleaseWorkerNets(std::move(nets));
  });

  // Phase 2: reduce in transition order -- the fixed order makes the summed
  // gradient (and thus the whole run) bit-identical for any worker count.
  const std::vector<nn::Parameter*> master = online_->Params();
  double loss_sum = 0.0;
  for (PerTransition& r : results) {
    loss_sum += r.loss;
    DPDP_CHECK(r.grads.size() == master.size());
    for (size_t j = 0; j < master.size(); ++j) {
      master[j]->grad.AddInPlace(r.grads[j]);
    }
  }
  optimizer_->Step();
  last_loss_ = loss_sum * inv_batch;
}

void DqnFleetAgent::FinalizeTraining() {
  if (best_weights_.empty()) return;
  const std::vector<nn::Parameter*> params = online_->Params();
  DPDP_CHECK(params.size() == best_weights_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = best_weights_[i];
  }
  nn::CopyParameters(online_->Params(), target_->Params());
}

std::vector<double> DqnFleetAgent::QValues(const DispatchContext& context) {
  const FleetState state = BuildFleetState(context, config_);
  const std::vector<int> idx = InferenceIndices(state, config_);
  std::vector<double> out(context.options.size(),
                          -std::numeric_limits<double>::infinity());
  if (state.NumFeasible() == 0) return out;
  const nn::Matrix& q = SubFleetQ(state, online_.get(), idx, &act_batch_);
  for (size_t i = 0; i < idx.size(); ++i) {
    if (state.feasible[idx[i]]) out[idx[i]] = q(static_cast<int>(i), 0);
  }
  return out;
}

void DqnFleetAgent::Save(std::ostream* os) {
  nn::SaveParameters(online_->Params(), os);
}

std::vector<nn::Matrix> DqnFleetAgent::ExportPolicyWeights() {
  std::vector<nn::Matrix> weights;
  for (const nn::Parameter* p : online_->Params()) {
    weights.push_back(p->value);
  }
  return weights;
}

bool DqnFleetAgent::Load(std::istream* is) {
  if (!nn::LoadParameters(is, online_->Params())) return false;
  nn::CopyParameters(online_->Params(), target_->Params());
  return true;
}

namespace {

constexpr uint32_t kAgentStateVersion = 1;

template <typename T>
void WritePod(std::ostream* os, const T& value) {
  os->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream* is, T* value) {
  is->read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(*is);
}

}  // namespace

Status DqnFleetAgent::SaveState(std::ostream* os) const {
  DPDP_CHECK(os != nullptr);
  DPDP_CHECK(!pending_.active && episode_.empty());  // Episode boundary.
  WritePod(os, kAgentStateVersion);
  nn::SaveParameters(online_->Params(), os);
  nn::SaveParameters(target_->Params(), os);
  optimizer_->SaveState(os);
  const Rng::State rng_state = rng_.GetState();
  WritePod(os, rng_state.seed);
  for (uint64_t word : rng_state.s) WritePod(os, word);
  WritePod(os, static_cast<uint8_t>(rng_state.have_cached_normal ? 1 : 0));
  WritePod(os, rng_state.cached_normal);
  WritePod(os, epsilon_);
  WritePod(os, static_cast<int32_t>(episodes_trained_));
  WritePod(os, last_loss_);
  WritePod(os, best_episode_cost_);
  WritePod(os, static_cast<uint64_t>(best_weights_.size()));
  for (const nn::Matrix& m : best_weights_) nn::SaveMatrix(m, os);
  replay_.Save(os);
  if (!*os) return Status::Internal("agent state write failed");
  return Status::OK();
}

Status DqnFleetAgent::LoadState(std::istream* is) {
  DPDP_CHECK(is != nullptr);
  uint32_t version = 0;
  if (!ReadPod(is, &version) || version != kAgentStateVersion) {
    return Status::InvalidArgument("unsupported agent state version");
  }
  if (!nn::LoadParameters(is, online_->Params()) ||
      !nn::LoadParameters(is, target_->Params())) {
    return Status::InvalidArgument(
        "agent weights malformed or architecture mismatch");
  }
  if (!optimizer_->LoadState(is)) {
    return Status::InvalidArgument("optimizer state malformed");
  }
  Rng::State rng_state;
  uint8_t have_cached = 0;
  if (!ReadPod(is, &rng_state.seed) || !ReadPod(is, &rng_state.s[0]) ||
      !ReadPod(is, &rng_state.s[1]) || !ReadPod(is, &rng_state.s[2]) ||
      !ReadPod(is, &rng_state.s[3]) || !ReadPod(is, &have_cached) ||
      !ReadPod(is, &rng_state.cached_normal)) {
    return Status::InvalidArgument("rng state malformed");
  }
  rng_state.have_cached_normal = have_cached != 0;
  double epsilon = 0.0;
  int32_t episodes_trained = 0;
  double last_loss = 0.0;
  double best_cost = 0.0;
  uint64_t num_best = 0;
  if (!ReadPod(is, &epsilon) || !ReadPod(is, &episodes_trained) ||
      !ReadPod(is, &last_loss) || !ReadPod(is, &best_cost) ||
      !ReadPod(is, &num_best) || episodes_trained < 0 ||
      num_best > (1ull << 20)) {
    return Status::InvalidArgument("agent scalar state malformed");
  }
  std::vector<nn::Matrix> best_weights(num_best);
  for (nn::Matrix& m : best_weights) {
    if (!nn::LoadMatrix(is, &m)) {
      return Status::InvalidArgument("best-weights snapshot malformed");
    }
  }
  if (!replay_.Load(is)) {
    return Status::InvalidArgument("replay buffer malformed");
  }
  rng_.SetState(rng_state);
  epsilon_ = epsilon;
  episodes_trained_ = episodes_trained;
  last_loss_ = last_loss;
  best_episode_cost_ = best_cost;
  best_weights_ = std::move(best_weights);
  pending_ = Pending{};
  decision_recorded_ = false;
  episode_.clear();
  // Telemetry accumulators restart from zero (not checkpointed).
  q_sum_ = 0.0;
  q_max_ = 0.0;
  q_count_ = 0;
  last_mean_q_ = 0.0;
  last_max_q_ = 0.0;
  // Cached worker clones hold pre-restore weights; force a resync.
  ++batch_generation_;
  return Status::OK();
}

}  // namespace dpdp
