#include "rl/dqn_agent.h"

#include <algorithm>
#include <limits>

#include "nn/loss.h"

namespace dpdp {

DqnFleetAgent::DqnFleetAgent(const AgentConfig& config, std::string name)
    : config_(config),
      name_(std::move(name)),
      rng_(config.seed),
      replay_(config.replay_capacity),
      epsilon_(config.epsilon_start) {
  Rng net_rng = rng_.Fork();
  online_ = MakeQNetwork(config_, &net_rng);
  // The target net gets its own init then an immediate weight sync so both
  // start identical.
  Rng target_rng = rng_.Fork();
  target_ = MakeQNetwork(config_, &target_rng);
  nn::CopyParameters(online_->Params(), target_->Params());
  optimizer_ = std::make_unique<nn::Adam>(online_->Params(),
                                          config_.learning_rate, 0.9, 0.999,
                                          1e-8, config_.grad_clip_norm);
}

double DqnFleetAgent::InstantReward(const DispatchContext& context,
                                    int chosen) const {
  const VehicleOption& opt = context.options[chosen];
  const VehicleConfig& cfg = context.instance->vehicle_config;
  // Eq. (6). The paper's text charges mu * f; the evident intent (and the
  // default here) charges the fixed cost when a *fresh* vehicle is used.
  const double fixed_flag = config_.literal_used_flag_cost
                                ? (opt.used ? 1.0 : 0.0)
                                : (opt.used ? 0.0 : 1.0);
  return -config_.reward_alpha *
         (cfg.fixed_cost * fixed_flag +
          cfg.cost_per_km * opt.incremental_length);
}

std::vector<int> DqnFleetAgent::InferenceIndices(
    const FleetState& state) const {
  if (config_.use_constraint_embedding) return state.FeasibleIndices();
  std::vector<int> all(state.num_vehicles());
  for (int v = 0; v < state.num_vehicles(); ++v) all[v] = v;
  return all;
}

std::vector<double> DqnFleetAgent::SubFleetQ(const FleetState& state,
                                             FleetQNetwork* net,
                                             const std::vector<int>& idx) {
  const SubFleetInputs in = BuildSubFleetInputs(
      state, idx, config_.use_graph, config_.num_neighbors);
  return net->Forward(in.features, in.adjacency);
}

int DqnFleetAgent::ChooseVehicle(const DispatchContext& context) {
  const FleetState state = BuildFleetState(context, config_);
  const std::vector<int> feasible = state.FeasibleIndices();
  DPDP_CHECK(!feasible.empty());

  int action = -1;
  if (training_ && rng_.Bernoulli(epsilon_)) {
    action = feasible[rng_.UniformInt(static_cast<int>(feasible.size()))];
  } else {
    const std::vector<int> idx = InferenceIndices(state);
    const std::vector<double> q = SubFleetQ(state, online_.get(), idx);
    // Argmax restricted to feasible vehicles (infeasible ones keep the
    // paper's "extremely small negative" Q).
    int best = -1;
    double best_q = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < idx.size(); ++i) {
      if (!state.feasible[idx[i]]) continue;
      if (q[i] > best_q) {
        best_q = q[i];
        best = idx[i];
      }
    }
    DPDP_CHECK(best >= 0);
    action = best;
  }

  if (training_) {
    StoredFleetState stored = StoredFleetState::FromFleetState(state);
    if (pending_.active) {
      episode_.push_back({std::move(pending_.state), pending_.action,
                          pending_.instant_reward, stored,
                          /*terminal=*/false});
    }
    pending_.state = std::move(stored);
    pending_.action = action;
    pending_.instant_reward = InstantReward(context, action);
    pending_.active = true;
  }
  return action;
}

void DqnFleetAgent::OnEpisodeEnd(const EpisodeResult& result) {
  if (!training_) return;
  if (config_.track_best_weights &&
      epsilon_ <= config_.best_weights_max_epsilon &&
      (best_weights_.empty() || result.total_cost < best_episode_cost_)) {
    best_episode_cost_ = result.total_cost;
    best_weights_.clear();
    for (const nn::Parameter* p : online_->Params()) {
      best_weights_.push_back(p->value);
    }
  }
  if (pending_.active) {
    episode_.push_back({std::move(pending_.state), pending_.action,
                        pending_.instant_reward, StoredFleetState{},
                        /*terminal=*/true});
    pending_.active = false;
  }
  if (episode_.empty()) return;

  // Long-term reward (Eq. 7): the episode-mean instant reward, folded into
  // every transition (Eq. 8).
  const size_t episode_transitions = episode_.size();
  double mean_reward = 0.0;
  for (const EpisodeStep& s : episode_) mean_reward += s.instant_reward;
  mean_reward /= static_cast<double>(episode_.size());
  for (EpisodeStep& s : episode_) {
    Transition t;
    t.state = std::move(s.state);
    t.action = s.action;
    t.reward = static_cast<float>(s.instant_reward + mean_reward);
    t.terminal = s.terminal;
    t.next_state = std::move(s.next_state);
    replay_.Add(std::move(t));
  }
  episode_.clear();

  if (replay_.size() >= config_.batch_size) {
    int updates = config_.updates_per_episode;
    if (config_.scale_updates_with_episode) {
      updates = std::max(updates,
                         static_cast<int>(episode_transitions /
                                          std::max(1, config_.batch_size)));
    }
    for (int u = 0; u < updates; ++u) TrainBatch();
  }

  ++episodes_trained_;
  const double frac = std::min(
      1.0, static_cast<double>(episodes_trained_) /
               std::max(1, config_.epsilon_decay_episodes));
  epsilon_ = config_.epsilon_start +
             frac * (config_.epsilon_end - config_.epsilon_start);
  if (episodes_trained_ % config_.target_sync_episodes == 0) {
    nn::CopyParameters(online_->Params(), target_->Params());
  }
}

void DqnFleetAgent::TrainBatch() {
  const std::vector<const Transition*> batch =
      replay_.Sample(config_.batch_size, &rng_);
  double loss_sum = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch.size());

  for (const Transition* t : batch) {
    // --- TD target -------------------------------------------------------
    double y = t->reward;
    if (!t->terminal && !t->next_state.empty()) {
      const FleetState next = t->next_state.ToFleetState();
      if (next.NumFeasible() > 0) {
        const std::vector<int> next_idx = InferenceIndices(next);
        auto feasible_max = [&](const std::vector<double>& q) {
          int best = -1;
          double best_q = -std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < next_idx.size(); ++i) {
            if (!next.feasible[next_idx[i]]) continue;
            if (q[i] > best_q) {
              best_q = q[i];
              best = static_cast<int>(i);
            }
          }
          return best;
        };
        double next_value = 0.0;
        if (config_.double_dqn) {
          // Double DQN: argmax from the online net, value from the target.
          const std::vector<double> qo =
              SubFleetQ(next, online_.get(), next_idx);
          const int best = feasible_max(qo);
          const std::vector<double> qt =
              SubFleetQ(next, target_.get(), next_idx);
          next_value = qt[best];
        } else {
          const std::vector<double> qt =
              SubFleetQ(next, target_.get(), next_idx);
          next_value = qt[feasible_max(qt)];
        }
        y += config_.gamma * next_value;
      }
    }

    // --- Prediction + gradient -------------------------------------------
    const FleetState state = t->state.ToFleetState();
    const std::vector<int> idx = InferenceIndices(state);
    const auto it = std::find(idx.begin(), idx.end(), t->action);
    DPDP_CHECK(it != idx.end());
    const int sub_action = static_cast<int>(it - idx.begin());

    const std::vector<double> q = SubFleetQ(state, online_.get(), idx);
    loss_sum += nn::HuberLoss(q[sub_action], y);
    std::vector<double> dq(q.size(), 0.0);
    dq[sub_action] = nn::HuberLossGrad(q[sub_action], y) * inv_batch;
    online_->Backward(dq);
  }

  optimizer_->Step();
  last_loss_ = loss_sum * inv_batch;
}

void DqnFleetAgent::FinalizeTraining() {
  if (best_weights_.empty()) return;
  const std::vector<nn::Parameter*> params = online_->Params();
  DPDP_CHECK(params.size() == best_weights_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = best_weights_[i];
  }
  nn::CopyParameters(online_->Params(), target_->Params());
}

std::vector<double> DqnFleetAgent::QValues(const DispatchContext& context) {
  const FleetState state = BuildFleetState(context, config_);
  const std::vector<int> idx = InferenceIndices(state);
  std::vector<double> out(context.options.size(),
                          -std::numeric_limits<double>::infinity());
  if (state.NumFeasible() == 0) return out;
  const std::vector<double> q = SubFleetQ(state, online_.get(), idx);
  for (size_t i = 0; i < idx.size(); ++i) {
    if (state.feasible[idx[i]]) out[idx[i]] = q[i];
  }
  return out;
}

void DqnFleetAgent::Save(std::ostream* os) {
  nn::SaveParameters(online_->Params(), os);
}

bool DqnFleetAgent::Load(std::istream* is) {
  if (!nn::LoadParameters(is, online_->Params())) return false;
  nn::CopyParameters(online_->Params(), target_->Params());
  return true;
}

}  // namespace dpdp
